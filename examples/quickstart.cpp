// Quickstart: train AutoPower on two known configurations and predict the
// power of an unseen one.
//
//   $ ./examples/quickstart
//
// Walks the full public API: performance simulation (gem5 stand-in),
// golden label collection (VLSI-flow stand-in), few-shot training, and
// per-component / per-group prediction.

#include <cstdio>
#include <iostream>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  // 1. The substrates: a performance simulator and the golden power flow.
  sim::PerfSimulator simulator;
  power::GoldenPowerModel golden;

  // 2. Build the evaluation grid (15 configurations x 8 workloads) and
  //    pick the two "known" configurations: C1 and C15.
  const auto data = exp::ExperimentData::build(simulator, golden);
  const auto known = exp::ExperimentData::training_configs(2);
  std::cout << "Known configurations: " << known[0] << ", " << known[1]
            << "\n\n";

  // 3. Train AutoPower. Golden labels (netlist reports, RTL activity,
  //    power simulation) are read for the known configurations only.
  core::AutoPowerModel model;
  model.train(data.contexts_of(known), golden);

  // 4. Predict an unseen configuration running an unseen-to-training
  //    workload combination: C11 running dhrystone.
  const auto& cfg = arch::boom_config("C11");
  core::EvalContext ctx;
  ctx.cfg = &cfg;
  ctx.workload = "dhrystone";
  const auto& profile = workload::workload_by_name("dhrystone");
  ctx.program = workload::program_features(profile);
  ctx.events = simulator.simulate(cfg, profile);

  const auto prediction = model.predict(ctx);
  const auto reference = golden.evaluate(cfg, ctx.events);

  util::TablePrinter table({"Component", "Clock (mW)", "SRAM (mW)",
                            "Logic (mW)", "Total (mW)", "Golden (mW)"});
  for (const auto& cp : prediction.components) {
    table.add_row({std::string(arch::component_name(cp.component)),
                   util::fmt(cp.groups.clock), util::fmt(cp.groups.sram),
                   util::fmt(cp.groups.logic()),
                   util::fmt(cp.groups.total()),
                   util::fmt(reference.of(cp.component).total())});
  }
  table.print(std::cout);

  std::printf("\nPredicted total: %.2f mW   golden: %.2f mW   error: %.2f%%\n",
              prediction.total(), reference.total(),
              100.0 * (prediction.total() - reference.total()) /
                  reference.total());
  return 0;
}
