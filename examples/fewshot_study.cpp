// Few-shot data-requirement study: how much golden data does each method
// need?  Mirrors the question the paper poses in the introduction —
// ML power models are "data-hungry" because every training configuration
// costs a full VLSI-flow run (weeks).
//
// For k = 2..8 known configurations, trains AutoPower and McPAT-Calib and
// reports the held-out accuracy, then prints the smallest k at which each
// method reaches a 5% MAPE target.

#include <cstdio>
#include <iostream>
#include <vector>

#include "exp/harness.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Few-shot study: accuracy vs golden-data budget ===\n");

  sim::PerfSimulator simulator;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(simulator, golden);

  util::TablePrinter table({"Known configs", "VLSI-flow runs needed",
                            "AutoPower MAPE", "McPAT-Calib MAPE"});
  int autopower_hits_target = 0;
  int mcpat_hits_target = 0;
  constexpr double kTarget = 5.0;  // percent

  for (int k = 2; k <= 8; ++k) {
    exp::MethodSelection sel;
    sel.mcpat_calib_component = false;
    const auto results = exp::compare_methods(data, golden, k, sel);
    const double ap = results[0].accuracy.mape;
    const double mc = results[1].accuracy.mape;
    if (autopower_hits_target == 0 && ap <= kTarget) {
      autopower_hits_target = k;
    }
    if (mcpat_hits_target == 0 && mc <= kTarget) mcpat_hits_target = k;
    table.add_row({std::to_string(k), std::to_string(k),
                   util::fmt_pct(ap), util::fmt_pct(mc)});
  }
  table.print(std::cout);

  std::printf("\nTo reach %.0f%% MAPE:\n", kTarget);
  if (autopower_hits_target > 0) {
    std::printf("  AutoPower needs %d golden configurations.\n",
                autopower_hits_target);
  } else {
    std::puts("  AutoPower did not reach the target in this sweep.");
  }
  if (mcpat_hits_target > 0) {
    std::printf("  McPAT-Calib needs %d golden configurations.\n",
                mcpat_hits_target);
  } else {
    std::puts(
        "  McPAT-Calib did not reach the target with up to 8 "
        "configurations.");
  }
  std::puts(
      "\nEach golden configuration costs a full RTL->netlist->power-sim "
      "flow; AutoPower's structural decoupling is what buys the data "
      "efficiency.");
  return 0;
}
