// Time-based power trace prediction (paper Sec. III-B5) as a runnable
// example: predict the 50-cycle-granularity power trace of the GEMM
// kernel on an unseen configuration and render golden vs predicted as an
// ASCII chart.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "exp/trace.hpp"

using namespace autopower;

namespace {

/// Downsamples a trace to `buckets` points (mean per bucket).
std::vector<double> downsample(const std::vector<double>& trace,
                               std::size_t buckets) {
  std::vector<double> out(buckets, 0.0);
  std::vector<int> counts(buckets, 0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t b = i * buckets / trace.size();
    out[b] += trace[i];
    ++counts[b];
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    if (counts[b] > 0) out[b] /= counts[b];
  }
  return out;
}

/// Renders one series as rows of '#' (golden) or 'o' (predicted).
void render(const std::vector<double>& golden,
            const std::vector<double>& predicted) {
  const double lo =
      0.95 * std::min(*std::min_element(golden.begin(), golden.end()),
                      *std::min_element(predicted.begin(), predicted.end()));
  const double hi =
      1.05 * std::max(*std::max_element(golden.begin(), golden.end()),
                      *std::max_element(predicted.begin(), predicted.end()));
  const int rows = 16;
  for (int r = rows; r >= 0; --r) {
    const double level = lo + (hi - lo) * r / rows;
    std::string line;
    for (std::size_t i = 0; i < golden.size(); ++i) {
      const bool g = golden[i] >= level;
      const bool p = predicted[i] >= level;
      line += g && p ? '*' : (g ? '#' : (p ? 'o' : ' '));
    }
    std::printf("%8.1f |%s\n", level, line.c_str());
  }
  std::printf("         +%s\n", std::string(golden.size(), '-').c_str());
  std::puts("          time ->   (#: golden, o: predicted, *: both)");
}

}  // namespace

int main() {
  std::puts("=== GEMM power trace on C3 (model trained on C1/C15) ===\n");

  sim::PerfSimulator simulator;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(simulator, golden);

  core::AutoPowerModel model;
  model.train(data.contexts_of(exp::ExperimentData::training_configs(2)),
              golden);

  const auto& cfg = arch::boom_config("C3");
  const auto& gemm = workload::workload_by_name("gemm");
  const auto trace = exp::build_trace(simulator, golden, cfg, gemm);
  const auto predicted = model.predict_trace(trace.windows);

  std::printf("Simulated %.0f cycles in %zu windows of %d cycles.\n\n",
              trace.total_cycles, trace.windows.size(),
              trace.window_cycles);
  render(downsample(trace.golden_total, 100), downsample(predicted, 100));

  const auto err = exp::trace_errors(trace.golden_total, predicted);
  std::printf(
      "\nMax power error: %.1f%%   min power error: %.1f%%   average "
      "per-window error: %.1f%%\n",
      err.max_power_error, err.min_power_error, err.average_error);
  std::puts(
      "The model was trained on whole-workload average power only — no "
      "time-based data (paper Table IV protocol).");
  return 0;
}
