// Design-space exploration: the use case that motivates architecture-level
// power models (paper Sec. I — "fast yet accurate architecture-level power
// evaluation to support the early optimization of CPU microarchitecture").
//
// Trains AutoPower on two known configurations, then sweeps the whole
// design space, scoring each configuration by performance (IPC), power,
// and two efficiency metrics (IPC/W and the energy-delay product), and
// prints a ranking an architect could act on — without running the VLSI
// flow for the other 13 configurations.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "util/table.hpp"

using namespace autopower;

namespace {

struct ConfigScore {
  std::string name;
  double ipc = 0.0;
  double power_mw = 0.0;     // predicted average over workloads
  double golden_mw = 0.0;    // for reference
  double ipc_per_watt = 0.0;
  double edp = 0.0;          // energy-delay product proxy (P / IPC^2)
};

}  // namespace

int main() {
  std::puts("=== Early design-space exploration with AutoPower ===\n");

  sim::PerfSimulator simulator;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(simulator, golden);
  const auto known = exp::ExperimentData::training_configs(2);

  core::AutoPowerModel model;
  model.train(data.contexts_of(known), golden);

  // Score every configuration by its workload-average IPC and power.
  std::vector<ConfigScore> scores;
  for (const auto& cfg : arch::boom_design_space()) {
    ConfigScore score;
    score.name = cfg.name();
    int n = 0;
    for (const auto& s : data.samples()) {
      if (s.ctx.cfg != &cfg) continue;
      score.ipc += s.ctx.events.rate(arch::EventKind::kInstructions);
      score.power_mw += model.predict_total(s.ctx);
      score.golden_mw += s.golden.total();
      ++n;
    }
    score.ipc /= n;
    score.power_mw /= n;
    score.golden_mw /= n;
    score.ipc_per_watt = score.ipc / (score.power_mw * 1e-3);
    score.edp = score.power_mw / (score.ipc * score.ipc);
    scores.push_back(score);
  }

  std::sort(scores.begin(), scores.end(),
            [](const ConfigScore& a, const ConfigScore& b) {
              return a.ipc_per_watt > b.ipc_per_watt;
            });

  util::TablePrinter table({"Rank", "Config", "IPC", "Pred. power (mW)",
                            "Golden (mW)", "IPC/W", "EDP proxy"});
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const auto& s = scores[i];
    table.add_row({std::to_string(i + 1), s.name, util::fmt(s.ipc),
                   util::fmt(s.power_mw), util::fmt(s.golden_mw),
                   util::fmt(s.ipc_per_watt, 1), util::fmt(s.edp, 1)});
  }
  table.print(std::cout);

  // Does the predicted ranking agree with the golden ranking?  Count
  // pairwise inversions on IPC/W.
  int inversions = 0;
  int pairs = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    for (std::size_t j = i + 1; j < scores.size(); ++j) {
      const double gi = scores[i].ipc / (scores[i].golden_mw * 1e-3);
      const double gj = scores[j].ipc / (scores[j].golden_mw * 1e-3);
      inversions += gi < gj;  // predicted order says i >= j
      ++pairs;
    }
  }
  std::printf(
      "\nRanking fidelity: %d / %d pairwise orderings match the golden "
      "flow (%.1f%%).\n",
      pairs - inversions, pairs,
      100.0 * (pairs - inversions) / pairs);
  std::puts(
      "Only 2 of 15 configurations ever went through the (weeks-long) "
      "VLSI flow.");
  return 0;
}
