// Tests for the golden activity model (RTL-simulation stand-in).

#include <gtest/gtest.h>

#include "netlist/synthesis.hpp"
#include "power/activity.hpp"
#include "sim/perfsim.hpp"

namespace autopower::power {
namespace {

using arch::ComponentKind;
using arch::EventKind;

arch::EventVector busy_events() {
  arch::EventVector ev;
  ev[EventKind::kCycles] = 1000.0;
  ev[EventKind::kInstructions] = 1800.0;
  ev[EventKind::kBranches] = 300.0;
  ev[EventKind::kBpLookups] = 700.0;
  ev[EventKind::kBpMispredicts] = 20.0;
  ev[EventKind::kFetchPackets] = 700.0;
  ev[EventKind::kDecodedUops] = 1900.0;
  ev[EventKind::kRenameUops] = 1900.0;
  ev[EventKind::kDispatchedUops] = 1900.0;
  ev[EventKind::kCommittedUops] = 1800.0;
  ev[EventKind::kRobOccupancy] = 40000.0;
  ev[EventKind::kICacheAccesses] = 700.0;
  ev[EventKind::kICacheMisses] = 15.0;
  ev[EventKind::kRegfileReads] = 4000.0;
  ev[EventKind::kRegfileWrites] = 1800.0;
  ev[EventKind::kIntIssued] = 1200.0;
  ev[EventKind::kMemIssued] = 600.0;
  ev[EventKind::kFpIssued] = 200.0;
  ev[EventKind::kLoadsExecuted] = 450.0;
  ev[EventKind::kStoresExecuted] = 200.0;
  ev[EventKind::kDcacheAccesses] = 650.0;
  ev[EventKind::kDcacheMisses] = 40.0;
  ev[EventKind::kDcacheWritebacks] = 12.0;
  ev[EventKind::kMshrAllocs] = 40.0;
  ev[EventKind::kAluOps] = 1400.0;
  ev[EventKind::kFpuOps] = 200.0;
  ev[EventKind::kLdqOcc] = 8000.0;
  ev[EventKind::kStqOcc] = 5000.0;
  ev[EventKind::kItlbAccesses] = 700.0;
  ev[EventKind::kDtlbAccesses] = 650.0;
  ev[EventKind::kDtlbMisses] = 4.0;
  return ev;
}

arch::EventVector idle_events() {
  arch::EventVector ev;
  ev[EventKind::kCycles] = 1000.0;
  ev[EventKind::kInstructions] = 50.0;
  ev[EventKind::kCommittedUops] = 50.0;
  ev[EventKind::kDispatchedUops] = 55.0;
  ev[EventKind::kBranches] = 5.0;
  return ev;
}

TEST(Activity, RatesWithinBounds) {
  const GoldenActivityModel model;
  const auto& cfg = arch::boom_config("C8");
  for (ComponentKind c : arch::all_components()) {
    for (const auto& ev : {busy_events(), idle_events()}) {
      const auto act = model.component_activity(cfg, c, ev);
      EXPECT_GE(act.gated_active_rate, 0.0);
      EXPECT_LE(act.gated_active_rate, 1.0);
      EXPECT_GE(act.register_toggle_rate, 0.0);
      EXPECT_LE(act.register_toggle_rate, 1.0);
      EXPECT_GE(act.comb_toggle_rate, 0.0);
      EXPECT_LE(act.comb_toggle_rate, 1.0);
    }
  }
}

TEST(Activity, BusyBeatsIdle) {
  const GoldenActivityModel model;
  const auto& cfg = arch::boom_config("C8");
  const auto busy = busy_events();
  const auto idle = idle_events();
  for (ComponentKind c : arch::all_components()) {
    const auto a_busy = model.component_activity(cfg, c, busy);
    const auto a_idle = model.component_activity(cfg, c, idle);
    EXPECT_GT(a_busy.gated_active_rate, a_idle.gated_active_rate)
        << arch::component_name(c);
  }
}

TEST(Activity, Deterministic) {
  const GoldenActivityModel model;
  const auto& cfg = arch::boom_config("C3");
  const auto ev = busy_events();
  const auto a = model.component_activity(cfg, ComponentKind::kRob, ev);
  const auto b = model.component_activity(cfg, ComponentKind::kRob, ev);
  EXPECT_DOUBLE_EQ(a.gated_active_rate, b.gated_active_rate);
  EXPECT_DOUBLE_EQ(a.register_toggle_rate, b.register_toggle_rate);
  EXPECT_DOUBLE_EQ(a.comb_toggle_rate, b.comb_toggle_rate);
}

TEST(Activity, WaveformNoiseVariesAcrossWindows) {
  // Two windows with slightly different counters must see different
  // jitter (labels are not a deterministic function of the rate alone).
  const GoldenActivityModel model;
  const auto& cfg = arch::boom_config("C3");
  auto ev1 = busy_events();
  auto ev2 = busy_events();
  ev2[EventKind::kFetchPackets] += 1.0;
  const auto a1 = model.component_activity(cfg, ComponentKind::kIfu, ev1);
  const auto a2 = model.component_activity(cfg, ComponentKind::kIfu, ev2);
  EXPECT_NE(a1.gated_active_rate, a2.gated_active_rate);
}

TEST(SramActivity, NonNegativeAndDeterministic) {
  const GoldenActivityModel model;
  const auto& cfg = arch::boom_config("C8");
  const auto ev = busy_events();
  for (ComponentKind c : arch::all_components()) {
    // Use position names from the floorplan.
    const netlist::SynthesisModel synth;
    for (const auto& pos : synth.synthesize(cfg, c).sram_positions) {
      const auto a = model.sram_activity(cfg, c, pos.name, ev);
      const auto b = model.sram_activity(cfg, c, pos.name, ev);
      EXPECT_GE(a.read_freq, 0.0) << pos.name;
      EXPECT_GE(a.write_freq, 0.0) << pos.name;
      EXPECT_DOUBLE_EQ(a.read_freq, b.read_freq);
      EXPECT_DOUBLE_EQ(a.write_freq, b.write_freq);
    }
  }
}

TEST(SramActivity, CacheArraysTrackAccessRates) {
  const GoldenActivityModel model;
  const auto& cfg = arch::boom_config("C8");
  const auto busy = busy_events();
  const auto idle = idle_events();
  const auto busy_act = model.sram_activity(
      cfg, ComponentKind::kICacheDataArray, "data", busy);
  const auto idle_act = model.sram_activity(
      cfg, ComponentKind::kICacheDataArray, "data", idle);
  EXPECT_GT(busy_act.read_freq, idle_act.read_freq);
  // Refills write: busy stream misses, idle stream doesn't.
  EXPECT_GT(busy_act.write_freq, idle_act.write_freq);
}

TEST(SramActivity, LdqAndStqDiffer) {
  const GoldenActivityModel model;
  const auto& cfg = arch::boom_config("C8");
  const auto ev = busy_events();
  const auto ldq =
      model.sram_activity(cfg, ComponentKind::kLsu, "ldq", ev);
  const auto stq =
      model.sram_activity(cfg, ComponentKind::kLsu, "stq", ev);
  EXPECT_NE(ldq.read_freq, stq.read_freq);
  // Loads outnumber stores in the busy stream.
  EXPECT_GT(ldq.write_freq, stq.write_freq);
}

TEST(Activity, EndToEndWithSimulatorEvents) {
  // The activity model composes with real simulator output.
  const GoldenActivityModel model;
  sim::PerfSimulator sim;
  const auto& cfg = arch::boom_config("C10");
  const auto ev =
      sim.simulate(cfg, workload::workload_by_name("dhrystone"));
  for (ComponentKind c : arch::all_components()) {
    const auto act = model.component_activity(cfg, c, ev);
    EXPECT_GT(act.gated_active_rate, 0.0) << arch::component_name(c);
    EXPECT_LT(act.gated_active_rate, 1.0) << arch::component_name(c);
  }
}

}  // namespace
}  // namespace autopower::power
