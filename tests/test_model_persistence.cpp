// Integration tests: persistence of the fully-trained AutoPower model and
// the extension baselines/workloads.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "baselines/panda.hpp"
#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "ml/metrics.hpp"
#include "util/error.hpp"

namespace autopower {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim_ = new sim::PerfSimulator();
    golden_ = new power::GoldenPowerModel();
    data_ = new exp::ExperimentData(
        exp::ExperimentData::build(*sim_, *golden_));
    train_configs_ = new std::vector<std::string>(
        exp::ExperimentData::training_configs(2));
    model_ = new core::AutoPowerModel();
    model_->train(data_->contexts_of(*train_configs_), *golden_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete train_configs_;
    delete data_;
    delete golden_;
    delete sim_;
  }

  static sim::PerfSimulator* sim_;
  static power::GoldenPowerModel* golden_;
  static exp::ExperimentData* data_;
  static std::vector<std::string>* train_configs_;
  static core::AutoPowerModel* model_;
};

sim::PerfSimulator* PersistenceTest::sim_ = nullptr;
power::GoldenPowerModel* PersistenceTest::golden_ = nullptr;
exp::ExperimentData* PersistenceTest::data_ = nullptr;
std::vector<std::string>* PersistenceTest::train_configs_ = nullptr;
core::AutoPowerModel* PersistenceTest::model_ = nullptr;

TEST_F(PersistenceTest, FullModelRoundTripIsBitExact) {
  std::stringstream buf;
  model_->save(buf);

  core::AutoPowerModel restored;
  restored.load(buf);
  EXPECT_TRUE(restored.trained());

  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    const auto a = model_->predict(s->ctx);
    const auto b = restored.predict(s->ctx);
    ASSERT_EQ(a.components.size(), b.components.size());
    for (std::size_t i = 0; i < a.components.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.components[i].groups.clock,
                       b.components[i].groups.clock);
      EXPECT_DOUBLE_EQ(a.components[i].groups.sram,
                       b.components[i].groups.sram);
      EXPECT_DOUBLE_EQ(a.components[i].groups.logic_register,
                       b.components[i].groups.logic_register);
      EXPECT_DOUBLE_EQ(a.components[i].groups.logic_comb,
                       b.components[i].groups.logic_comb);
    }
  }
}

TEST_F(PersistenceTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "autopower_model.ap";
  model_->save_to_file(path);
  core::AutoPowerModel restored;
  restored.load_from_file(path);
  const auto& ctx = data_->samples().back().ctx;
  EXPECT_DOUBLE_EQ(model_->predict_total(ctx),
                   restored.predict_total(ctx));
  std::remove(path.c_str());
}

TEST_F(PersistenceTest, FingerprintSurvivesRoundTripAndIsWellFormed) {
  // The fingerprint is a content hash of the serialized archive, so a
  // trained model and every copy loaded from its archive agree — that
  // equality is what lets serving memo keys built before a save/load
  // boundary stay valid across it.
  const std::string& fp = model_->fingerprint();
  ASSERT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"), std::string::npos);

  std::stringstream buf;
  model_->save(buf);
  core::AutoPowerModel restored;
  restored.load(buf);
  EXPECT_EQ(restored.fingerprint(), fp);

  // Untrained models have no archive and therefore no identity.
  core::AutoPowerModel fresh;
  EXPECT_TRUE(fresh.fingerprint().empty());
}

TEST_F(PersistenceTest, SaveUntrainedThrows) {
  core::AutoPowerModel fresh;
  std::stringstream buf;
  EXPECT_THROW(fresh.save(buf), util::InvalidArgument);
}

TEST_F(PersistenceTest, LoadGarbageThrows) {
  std::stringstream buf("not an autopower archive at all");
  core::AutoPowerModel model;
  EXPECT_THROW(model.load(buf), util::InvalidArgument);
  EXPECT_FALSE(model.trained());
}

TEST_F(PersistenceTest, LoadMissingFileThrows) {
  core::AutoPowerModel model;
  EXPECT_THROW(model.load_from_file("/nonexistent/path/model.ap"),
               util::InvalidArgument);
}

TEST_F(PersistenceTest, PandaTrainsAndIsReasonable) {
  baselines::PandaBaseline panda;
  panda.train(data_->contexts_of(*train_configs_), *golden_);
  EXPECT_TRUE(panda.trained());

  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    actual.push_back(s->golden.total());
    pred.push_back(panda.predict_total(s->ctx));
  }
  EXPECT_LT(ml::mape(actual, pred), 25.0);
  EXPECT_GT(ml::pearson_r(actual, pred), 0.7);
}

TEST_F(PersistenceTest, PandaResourceFunctionsGrowWithSize) {
  for (arch::ComponentKind c : arch::all_components()) {
    const double small = baselines::PandaBaseline::resource_function(
        c, arch::boom_config("C1"));
    const double large = baselines::PandaBaseline::resource_function(
        c, arch::boom_config("C15"));
    EXPECT_GT(small, 0.0) << arch::component_name(c);
    EXPECT_GT(large, small) << arch::component_name(c);
  }
}

TEST_F(PersistenceTest, ExtensionWorkloadsAvailable) {
  const auto& ws = workload::extension_workloads();
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].name, "fft");
  EXPECT_EQ(ws[1].name, "coremark");
  EXPECT_EQ(workload::workload_by_name("fft").name, "fft");
  // fft is fp-heavy; coremark is integer-only.
  EXPECT_GT(workload::program_features(ws[0]).fp_frac, 0.2);
  EXPECT_DOUBLE_EQ(workload::program_features(ws[1]).fp_frac, 0.0);
}

TEST_F(PersistenceTest, ModelGeneralisesToUnseenWorkload) {
  const auto& fft = workload::workload_by_name("fft");
  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto& cfg : arch::boom_design_space()) {
    core::EvalContext ctx;
    ctx.cfg = &cfg;
    ctx.workload = fft.name;
    ctx.program = workload::program_features(fft);
    ctx.events = sim_->simulate(cfg, fft);
    actual.push_back(golden_->evaluate(cfg, ctx.events).total());
    pred.push_back(model_->predict_total(ctx));
  }
  EXPECT_LT(ml::mape(actual, pred), 12.0);
}

}  // namespace
}  // namespace autopower
