// Randomized differential oracles over the fast paths (src/testcore).
//
// Every optimised path in this repository claims BIT-identity with a
// reference path.  These properties generate hundreds of random inputs
// per oracle and compare the two paths exactly:
//
//   (a) reference vs presorted tree builder  -> byte-equal archives,
//   (b) per-sample vs SoA batched forest predict -> identical doubles,
//   (c) cold vs memoized / shared-structural-cache simulate and
//       simulate_trace -> identical event vectors,
//   (d) serial vs multi-threaded train / batch engine / sweep ->
//       byte-equal archives and field-identical reports.
//
// On failure the proptest runner prints the base seed and the exact
// AUTOPOWER_PROPTEST_SEED line that reproduces the case; this binary
// also accepts --seed=N and --cases=N (see main() at the bottom).

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "arch/events.hpp"
#include "arch/params.hpp"
#include "core/autopower.hpp"
#include "ml/gbt.hpp"
#include "power/golden.hpp"
#include "serve/engine.hpp"
#include "serve/sweep.hpp"
#include "sim/perfsim.hpp"
#include "testcore/generators.hpp"
#include "testcore/proptest.hpp"
#include "util/archive.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace autopower {
namespace {

using testcore::Pcg32;

// ---------------------------------------------------------------------
// Shared helpers.

std::string gbt_archive(const ml::GBTRegressor& model) {
  std::ostringstream out;
  util::ArchiveWriter writer(out);
  model.save(writer);
  return out.str();
}

std::string model_archive(const core::AutoPowerModel& model) {
  std::ostringstream out;
  model.save(out);
  return out.str();
}

std::optional<std::string> events_diff(const arch::EventVector& a,
                                       const arch::EventVector& b,
                                       const std::string& where) {
  for (std::size_t i = 0; i < arch::kNumEvents; ++i) {
    const auto kind = static_cast<arch::EventKind>(i);
    if (a[kind] != b[kind]) {
      std::ostringstream msg;
      msg << where << ": event " << arch::event_name(kind) << " differs: "
          << a[kind] << " vs " << b[kind];
      return msg.str();
    }
  }
  return std::nullopt;
}

std::string describe_dataset(const ml::Dataset& data,
                             const ml::GbtOptions& opt) {
  std::ostringstream out;
  out << data.size() << " rows x " << data.num_features()
      << " features, rounds=" << opt.num_rounds
      << " depth=" << opt.tree.max_depth << " lr=" << opt.learning_rate
      << " lambda=" << opt.tree.lambda << " gamma=" << opt.tree.gamma
      << " mcw=" << opt.tree.min_child_weight;
  if (data.size() <= 10) {
    out << "; rows:";
    for (std::size_t i = 0; i < data.size(); ++i) {
      out << " [";
      for (const double v : data.features(i)) out << v << ",";
      out << "->" << data.target(i) << "]";
    }
  }
  return out.str();
}

ml::Dataset drop_row(const ml::Dataset& data, std::size_t row) {
  ml::Dataset out(data.feature_names());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != row) out.add_sample(data.features(i), data.target(i));
  }
  return out;
}

// Small AutoPower hyper-parameters so a full 22x3 train fits in a
// property case (the differential claim is thread-count invariance, not
// accuracy, so tiny ensembles are enough).
core::AutoPowerOptions tiny_autopower_options() {
  core::AutoPowerOptions opt;
  opt.clock.gbt.num_rounds = 3;
  opt.clock.gbt.tree.max_depth = 2;
  opt.sram.gbt.num_rounds = 3;
  opt.sram.gbt.tree.max_depth = 2;
  opt.logic.gbt.num_rounds = 3;
  opt.logic.gbt.tree.max_depth = 2;
  return opt;
}

const power::GoldenPowerModel& shared_golden() {
  static const power::GoldenPowerModel* golden =
      new power::GoldenPowerModel();
  return *golden;
}

// ---------------------------------------------------------------------
// Oracle (a): reference vs presorted tree builder.

struct TreeCase {
  ml::Dataset data;
  ml::GbtOptions opt;
};

TEST(DifferentialTrees, ReferenceVsPresortedBuildersBitIdentical) {
  const auto result = testcore::run_property<TreeCase>(
      {.name = "tree.reference_vs_presorted", .cases = 200},
      [](Pcg32& rng) {
        return TreeCase{testcore::random_dataset(rng),
                        testcore::random_gbt_options(rng)};
      },
      [](const TreeCase& c) -> std::optional<std::string> {
        ml::GbtOptions fast = c.opt;
        fast.tree.reference_split_search = false;
        ml::GbtOptions reference = c.opt;
        reference.tree.reference_split_search = true;
        ml::GBTRegressor fast_model(fast);
        ml::GBTRegressor ref_model(reference);
        fast_model.fit(c.data);
        ref_model.fit(c.data);
        if (gbt_archive(fast_model) != gbt_archive(ref_model)) {
          return "presorted and reference builders produced different "
                 "archives";
        }
        return std::nullopt;
      },
      [](const TreeCase& c) { return describe_dataset(c.data, c.opt); },
      // Shrink: fewer rows first, then fewer rounds / shallower trees.
      [](const TreeCase& c) {
        std::vector<TreeCase> out;
        const std::size_t limit = c.data.size() < 8 ? c.data.size() : 8;
        if (c.data.size() > 2) {
          for (std::size_t i = 0; i < limit; ++i) {
            out.push_back({drop_row(c.data, i), c.opt});
          }
        }
        if (c.opt.num_rounds > 1) {
          TreeCase fewer = c;
          fewer.opt.num_rounds = c.opt.num_rounds / 2;
          out.push_back(std::move(fewer));
        }
        if (c.opt.tree.max_depth > 1) {
          TreeCase shallower = c;
          shallower.opt.tree.max_depth = c.opt.tree.max_depth - 1;
          out.push_back(std::move(shallower));
        }
        return out;
      });
  ASSERT_TRUE(result.passed) << result.report;
  EXPECT_GE(result.cases_run, 1);
}

// ---------------------------------------------------------------------
// Oracle (b): per-sample predict vs the flattened SoA batched paths.

TEST(DifferentialTrees, ScalarVsBatchedPredictBitIdentical) {
  const auto result = testcore::run_property<TreeCase>(
      {.name = "gbt.scalar_vs_batched_predict", .cases = 200},
      [](Pcg32& rng) {
        return TreeCase{testcore::random_dataset(rng),
                        testcore::random_gbt_options(rng)};
      },
      [](const TreeCase& c) -> std::optional<std::string> {
        ml::GBTRegressor model(c.opt);
        model.fit(c.data);

        // Query both the training rows and fresh rows (exercise leaves
        // the fit never visited).
        Pcg32 query_rng(util::hash_str("query-rows"));
        std::vector<double> rows(c.data.row_major_features().begin(),
                                 c.data.row_major_features().end());
        const std::size_t features = c.data.num_features();
        for (int extra = 0; extra < 16; ++extra) {
          for (std::size_t j = 0; j < features; ++j) {
            rows.push_back(query_rng.next_range(-12.0, 12.0));
          }
        }

        const auto batched = model.predict_rows(rows, features);
        const std::size_t count = rows.size() / features;
        if (batched.size() != count) return "predict_rows size mismatch";
        for (std::size_t i = 0; i < count; ++i) {
          const std::span<const double> row(rows.data() + i * features,
                                            features);
          const double scalar = model.predict(row);
          if (scalar != batched[i]) {
            std::ostringstream msg;
            msg << "row " << i << ": predict()=" << scalar
                << " predict_rows()=" << batched[i];
            return msg.str();
          }
        }

        const auto all = model.predict_all(c.data);
        for (std::size_t i = 0; i < c.data.size(); ++i) {
          if (all[i] != batched[i]) {
            std::ostringstream msg;
            msg << "predict_all row " << i << " differs from predict_rows";
            return msg.str();
          }
        }
        return std::nullopt;
      },
      [](const TreeCase& c) { return describe_dataset(c.data, c.opt); });
  ASSERT_TRUE(result.passed) << result.report;
}

// ---------------------------------------------------------------------
// Oracle (c): cold vs memoized / shared-cache simulation.

struct SimCase {
  arch::HardwareConfig cfg;
  workload::WorkloadProfile wl;
  sim::SimOptions opt;
};

std::string describe_sim_case(const SimCase& c) {
  std::ostringstream out;
  out << "config " << c.cfg.name() << " [";
  for (const arch::HwParam p : arch::all_hw_params()) {
    out << c.cfg.value(p) << " ";
  }
  out << "], workload " << c.wl.name << " (" << c.wl.phases.size()
      << " phases, " << c.wl.instructions << " instrs), samples="
      << c.opt.sample_accesses << "/" << c.opt.sample_branches
      << " window=" << c.opt.window_cycles;
  return out.str();
}

TEST(DifferentialSim, ColdVsMemoizedSimulateBitIdentical) {
  const auto result = testcore::run_property<SimCase>(
      {.name = "sim.cold_vs_memoized", .cases = 200},
      [](Pcg32& rng) {
        SimCase c{testcore::random_hardware_config(rng),
                  testcore::random_workload_profile(rng),
                  testcore::small_sim_options(rng)};
        // Keep the trace window count bounded for the trace comparison.
        c.wl.instructions = 20'000 + rng.next_below(20'000);
        return c;
      },
      [](const SimCase& c) -> std::optional<std::string> {
        sim::PerfSimulator cold(c.opt);
        const auto ev_cold = cold.simulate(c.cfg, c.wl);

        // Same instance again: the instance PhaseRates memo answers.
        const auto ev_memo = cold.simulate(c.cfg, c.wl);
        if (auto d = events_diff(ev_cold, ev_memo, "instance memo")) {
          return d;
        }

        // Second instance sharing the structural cache: every structural
        // measurement is a hit, the composition recomputes.
        sim::PerfSimulator shared(c.opt, cold.structural_cache());
        const auto ev_shared = shared.simulate(c.cfg, c.wl);
        if (auto d = events_diff(ev_cold, ev_shared, "shared structural")) {
          return d;
        }

        // Trace path: fresh-cache vs warm shared-cache windows.
        const auto trace_warm = shared.simulate_trace(c.cfg, c.wl);
        sim::PerfSimulator fresh(c.opt);
        const auto trace_cold = fresh.simulate_trace(c.cfg, c.wl);
        if (trace_cold.size() != trace_warm.size()) {
          return "trace window counts differ";
        }
        for (std::size_t w = 0; w < trace_cold.size(); ++w) {
          if (auto d = events_diff(trace_cold[w], trace_warm[w],
                                   "trace window " + std::to_string(w))) {
            return d;
          }
        }
        return std::nullopt;
      },
      describe_sim_case);
  ASSERT_TRUE(result.passed) << result.report;
}

// ---------------------------------------------------------------------
// Oracle (d): serial vs multi-threaded train / batch / sweep.

struct ParallelCase {
  arch::HardwareConfig cfg_a;
  arch::HardwareConfig cfg_b;
  workload::WorkloadProfile wl_a;
  workload::WorkloadProfile wl_b;
  sim::SimOptions sim_opt;
};

std::string describe_parallel_case(const ParallelCase& c) {
  std::ostringstream out;
  out << "configs " << c.cfg_a.name() << "/" << c.cfg_b.name()
      << ", workloads " << c.wl_a.name << "/" << c.wl_b.name;
  return out.str();
}

TEST(DifferentialParallel, SerialVsThreadedTrainByteIdentical) {
  const auto result = testcore::run_property<ParallelCase>(
      {.name = "train.serial_vs_threaded", .cases = 200},
      [](Pcg32& rng) {
        ParallelCase c{testcore::random_hardware_config(rng),
                       testcore::random_hardware_config(rng),
                       testcore::random_workload_profile(rng),
                       testcore::random_workload_profile(rng),
                       testcore::small_sim_options(rng)};
        c.wl_a.instructions = 20'000 + rng.next_below(20'000);
        c.wl_b.instructions = 20'000 + rng.next_below(20'000);
        return c;
      },
      [](const ParallelCase& c) -> std::optional<std::string> {
        sim::PerfSimulator sim(c.sim_opt);
        std::vector<core::EvalContext> ctxs;
        for (const auto* cfg : {&c.cfg_a, &c.cfg_b}) {
          for (const auto* wl : {&c.wl_a, &c.wl_b}) {
            core::EvalContext ctx;
            ctx.cfg = cfg;
            ctx.workload = wl->name;
            ctx.program = workload::program_features(*wl);
            ctx.events = sim.simulate(*cfg, *wl);
            ctxs.push_back(std::move(ctx));
          }
        }

        core::AutoPowerModel serial(tiny_autopower_options());
        serial.train(ctxs, shared_golden(), 1);
        core::AutoPowerModel threaded(tiny_autopower_options());
        threaded.train(ctxs, shared_golden(), 4);
        if (model_archive(serial) != model_archive(threaded)) {
          return "threads=1 and threads=4 training archives differ";
        }
        return std::nullopt;
      },
      describe_parallel_case);
  ASSERT_TRUE(result.passed) << result.report;
}

// The engines and the sweep model persist across cases: their memo
// layers survive run() calls by design, and the determinism contract
// explicitly covers pre-warmed caches — so warm-state comparisons are
// part of what this oracle checks.
class EngineInvariance : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SimOptions opt;
    opt.sample_accesses = 500;
    opt.sample_branches = 500;
    sim::PerfSimulator sim(opt);
    std::vector<core::EvalContext> ctxs;
    for (const char* cfg_name : {"C1", "C15"}) {
      const auto& cfg = arch::boom_config(cfg_name);
      for (const char* wl_name : {"dhrystone", "qsort"}) {
        const auto& wl = workload::workload_by_name(wl_name);
        core::EvalContext ctx;
        ctx.cfg = &cfg;
        ctx.workload = wl.name;
        ctx.program = workload::program_features(wl);
        ctx.events = sim.simulate(cfg, wl);
        ctxs.push_back(std::move(ctx));
      }
    }
    auto model =
        std::make_shared<core::AutoPowerModel>(tiny_autopower_options());
    model->train(ctxs, shared_golden(), 1);
    model_ = new std::shared_ptr<const core::AutoPowerModel>(model);
    serial_ = new serve::BatchEngine(*model_, {.threads = 1});
    threaded_ = new serve::BatchEngine(*model_, {.threads = 3});
    sweep_structural_serial_ =
        new std::shared_ptr<util::StructuralSimCache>(
            std::make_shared<util::StructuralSimCache>());
    sweep_structural_threaded_ =
        new std::shared_ptr<util::StructuralSimCache>(
            std::make_shared<util::StructuralSimCache>());
  }
  static void TearDownTestSuite() {
    delete sweep_structural_threaded_;
    delete sweep_structural_serial_;
    delete threaded_;
    delete serial_;
    delete model_;
  }

  static std::shared_ptr<const core::AutoPowerModel>* model_;
  static serve::BatchEngine* serial_;
  static serve::BatchEngine* threaded_;
  static std::shared_ptr<util::StructuralSimCache>* sweep_structural_serial_;
  static std::shared_ptr<util::StructuralSimCache>*
      sweep_structural_threaded_;
};

std::shared_ptr<const core::AutoPowerModel>* EngineInvariance::model_ =
    nullptr;
serve::BatchEngine* EngineInvariance::serial_ = nullptr;
serve::BatchEngine* EngineInvariance::threaded_ = nullptr;
std::shared_ptr<util::StructuralSimCache>*
    EngineInvariance::sweep_structural_serial_ = nullptr;
std::shared_ptr<util::StructuralSimCache>*
    EngineInvariance::sweep_structural_threaded_ = nullptr;

std::optional<std::string> responses_diff(
    const std::vector<serve::BatchResponse>& a,
    const std::vector<serve::BatchResponse>& b) {
  if (a.size() != b.size()) return "response counts differ";
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    std::ostringstream msg;
    msg << "response " << i << " (" << x.config << "/" << x.workload
        << "): ";
    if (x.index != y.index || x.config != y.config ||
        x.workload != y.workload || x.mode != y.mode) {
      msg << "identity fields differ";
      return msg.str();
    }
    if (x.ok != y.ok || x.error != y.error) {
      msg << "ok/error differ: '" << x.error << "' vs '" << y.error << "'";
      return msg.str();
    }
    if (x.total_mw != y.total_mw) {
      msg << "total_mw " << x.total_mw << " vs " << y.total_mw;
      return msg.str();
    }
    if (x.trace_mw != y.trace_mw) {
      msg << "trace_mw differs";
      return msg.str();
    }
    if (x.components.size() != y.components.size()) {
      msg << "component counts differ";
      return msg.str();
    }
    for (std::size_t j = 0; j < x.components.size(); ++j) {
      const auto& cx = x.components[j];
      const auto& cy = y.components[j];
      if (cx.component != cy.component || cx.clock_mw != cy.clock_mw ||
          cx.sram_mw != cy.sram_mw || cx.logic_mw != cy.logic_mw ||
          cx.total_mw != cy.total_mw) {
        msg << "component " << cx.component << " differs";
        return msg.str();
      }
    }
  }
  return std::nullopt;
}

std::string describe_batch(const std::vector<serve::BatchRequest>& batch) {
  std::ostringstream out;
  out << batch.size() << " requests:";
  for (const auto& r : batch) {
    out << " " << r.config << "/" << r.workload << "/"
        << serve::to_string(r.mode);
  }
  return out.str();
}

TEST_F(EngineInvariance, SerialVsThreadedBatchBitIdentical) {
  const auto result =
      testcore::run_property<std::vector<serve::BatchRequest>>(
          {.name = "engine.serial_vs_threaded", .cases = 200},
          [](Pcg32& rng) {
            return testcore::random_request_batch(rng, 6,
                                                  /*include_invalid=*/true);
          },
          [](const std::vector<serve::BatchRequest>& batch)
              -> std::optional<std::string> {
            return responses_diff(serial_->run(batch),
                                  threaded_->run(batch));
          },
          describe_batch);
  ASSERT_TRUE(result.passed) << result.report;
}

struct SweepCase {
  serve::SweepSpec spec;
};

std::string describe_sweep(const SweepCase& c) {
  std::ostringstream out;
  out << "base " << c.spec.base << ", axes";
  for (const auto& axis : c.spec.axes) {
    out << " " << arch::hw_param_name(axis.param) << "=";
    for (const int v : axis.values) out << v << ",";
  }
  out << " workloads";
  for (const auto& w : c.spec.workloads) out << " " << w;
  return out.str();
}

std::optional<std::string> sweep_reports_diff(const serve::SweepReport& a,
                                              const serve::SweepReport& b) {
  if (a.configs != b.configs || a.evaluations != b.evaluations) {
    return "sweep sizes differ";
  }
  if (a.rows.size() != b.rows.size()) return "row counts differ";
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    const auto& x = a.rows[i];
    const auto& y = b.rows[i];
    if (!(x.config == y.config)) {
      return "row " + std::to_string(i) + " config differs";
    }
    if (x.rank != y.rank || x.mean_total_mw != y.mean_total_mw ||
        x.mean_ipc != y.mean_ipc || x.ipc_per_watt != y.ipc_per_watt) {
      return "row " + std::to_string(i) + " metrics differ";
    }
    if (x.cells.size() != y.cells.size()) {
      return "row " + std::to_string(i) + " cell counts differ";
    }
    for (std::size_t j = 0; j < x.cells.size(); ++j) {
      const auto& cx = x.cells[j];
      const auto& cy = y.cells[j];
      if (cx.workload != cy.workload || cx.ok != cy.ok ||
          cx.error != cy.error || cx.total_mw != cy.total_mw ||
          cx.ipc != cy.ipc) {
        return "row " + std::to_string(i) + " cell " + std::to_string(j) +
               " differs";
      }
    }
  }
  return std::nullopt;
}

TEST_F(EngineInvariance, SerialVsThreadedSweepBitIdentical) {
  const auto result = testcore::run_property<SweepCase>(
      {.name = "sweep.serial_vs_threaded", .cases = 200},
      [](Pcg32& rng) {
        SweepCase c;
        const auto& space = arch::boom_design_space();
        c.spec.base = space[rng.index(space.size())].name();
        // One axis, two values drawn from that axis's design-space pool.
        const auto params = arch::all_hw_params();
        const arch::HwParam param = params[rng.index(params.size())];
        std::vector<int> pool;
        for (const auto& cfg : space) {
          const int v = cfg.value(param);
          bool seen = false;
          for (const int u : pool) seen = seen || u == v;
          if (!seen) pool.push_back(v);
        }
        serve::SweepAxis axis{param, {}};
        axis.values.push_back(pool[rng.index(pool.size())]);
        axis.values.push_back(pool[rng.index(pool.size())]);
        c.spec.axes.push_back(std::move(axis));
        const auto& workloads = workload::riscv_tests_workloads();
        c.spec.workloads = {workloads[rng.index(workloads.size())].name};
        const int metric = rng.next_int(0, 2);
        c.spec.metric = metric == 0   ? serve::SweepMetric::kIpcPerWatt
                        : metric == 1 ? serve::SweepMetric::kIpc
                                      : serve::SweepMetric::kPower;
        return c;
      },
      [](const SweepCase& c) -> std::optional<std::string> {
        serve::SweepSpec serial_spec = c.spec;
        serial_spec.threads = 1;
        serve::SweepSpec threaded_spec = c.spec;
        threaded_spec.threads = 3;
        const auto serial_report = serve::run_sweep(
            **model_, serial_spec, *sweep_structural_serial_);
        const auto threaded_report = serve::run_sweep(
            **model_, threaded_spec, *sweep_structural_threaded_);
        return sweep_reports_diff(serial_report, threaded_report);
      },
      describe_sweep);
  ASSERT_TRUE(result.passed) << result.report;
}

// ---------------------------------------------------------------------
// Oracle: SIGKILL-mid-sweep -> resume bit-identity.  A kill leaves the
// checkpoint file as a byte prefix of what an uninterrupted run writes
// (appends + batched fsync, possibly torn mid-line), so truncating a
// finished checkpoint at a random offset reproduces every possible kill
// point — including inside the header and inside a row.  Resuming from
// that prefix must yield a report byte-identical to the uninterrupted
// run's, for any thread count, metric and top-k.

struct ResumeCase {
  serve::SweepSpec spec;
  double cut_frac = 0.0;  ///< where the "kill" lands, as a file fraction
};

std::string describe_resume(const ResumeCase& c) {
  std::ostringstream out;
  out << describe_sweep({c.spec}) << ", threads " << c.spec.threads
      << ", top " << c.spec.top << ", cut at "
      << static_cast<int>(c.cut_frac * 100.0) << "%";
  return out.str();
}

std::string report_bytes(const serve::SweepReport& report) {
  std::ostringstream out;
  serve::write_sweep_report(out, report);
  return out.str();
}

TEST_F(EngineInvariance, TruncatedCheckpointResumeBitIdentical) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("autopower_resume_diff_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string ckpt = (dir / "sweep.ckpt").string();

  const auto result = testcore::run_property<ResumeCase>(
      {.name = "sweep.truncated_resume", .cases = 200},
      [](Pcg32& rng) {
        ResumeCase c;
        const auto& space = arch::boom_design_space();
        c.spec.base = space[rng.index(space.size())].name();
        const auto params = arch::all_hw_params();
        const arch::HwParam param = params[rng.index(params.size())];
        std::vector<int> pool;
        for (const auto& cfg : space) {
          const int v = cfg.value(param);
          bool seen = false;
          for (const int u : pool) seen = seen || u == v;
          if (!seen) pool.push_back(v);
        }
        serve::SweepAxis axis{param, {}};
        for (int i = 0; i < 3; ++i) {
          axis.values.push_back(pool[rng.index(pool.size())]);
        }
        c.spec.axes.push_back(std::move(axis));
        const auto& workloads = workload::riscv_tests_workloads();
        c.spec.workloads = {workloads[rng.index(workloads.size())].name};
        c.spec.threads = 1 + rng.index(3);
        c.spec.top = rng.next_bool(0.3) ? 2 : 0;
        c.spec.metric = rng.next_bool() ? serve::SweepMetric::kIpcPerWatt
                                        : serve::SweepMetric::kPower;
        c.cut_frac = rng.next_unit();
        return c;
      },
      [&ckpt](const ResumeCase& c) -> std::optional<std::string> {
        std::error_code ec;
        std::filesystem::remove(ckpt, ec);
        serve::SweepSpec spec = c.spec;
        spec.checkpoint = ckpt;
        const auto full = serve::run_sweep(**model_, spec);
        const std::string want = report_bytes(full);

        // "Kill" the run: keep only a byte prefix of its checkpoint.
        std::string bytes;
        {
          std::ifstream in(ckpt, std::ios::binary);
          std::ostringstream buf;
          buf << in.rdbuf();
          bytes = buf.str();
        }
        const auto cut =
            static_cast<std::size_t>(c.cut_frac * double(bytes.size()));
        {
          std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
          out << bytes.substr(0, cut);
        }

        spec.resume = true;
        const auto resumed = serve::run_sweep(**model_, spec);
        if (const auto diff = sweep_reports_diff(full, resumed)) {
          return "resumed report differs: " + *diff;
        }
        if (report_bytes(resumed) != want) {
          return "resumed report bytes differ after cutting " +
                 std::to_string(cut) + "/" + std::to_string(bytes.size());
        }
        return std::nullopt;
      },
      describe_resume);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  ASSERT_TRUE(result.passed) << result.report;
}

}  // namespace
}  // namespace autopower

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  autopower::testcore::apply_cli_flags(&argc, argv);
  return RUN_ALL_TESTS();
}
