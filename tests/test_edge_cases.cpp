// Edge-case and failure-injection tests across module boundaries.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/autopower.hpp"
#include "core/scaling_model.hpp"
#include "exp/harness.hpp"
#include "exp/trace.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace autopower {
namespace {

TEST(EdgeCases, ScalingModelFromSingleObservation) {
  // One known configuration: every law degenerates to the constant (or an
  // arbitrary exact single-point fit) — prediction must still reproduce
  // the observed configuration exactly.
  const auto& c1 = arch::boom_config("C1");
  std::vector<core::BlockObservation> obs{{&c1, 120, 8, 1}};
  core::ScalingPatternModel model;
  model.fit(arch::component_hw_params(arch::ComponentKind::kIfu), obs);
  const auto pred = model.predict(c1);
  EXPECT_EQ(pred.width, 120);
  EXPECT_EQ(pred.depth, 8);
  EXPECT_EQ(pred.count, 1);
}

TEST(EdgeCases, TrainingOnSingleConfiguration) {
  // k=1 is outside the paper's protocol but the API must degrade
  // gracefully: ridge models become constants, predictions stay finite
  // and positive on other configurations.
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  std::vector<core::EvalContext> train;
  const auto& cfg = arch::boom_config("C8");
  for (const auto& w : workload::riscv_tests_workloads()) {
    core::EvalContext ctx;
    ctx.cfg = &cfg;
    ctx.workload = w.name;
    ctx.program = workload::program_features(w);
    ctx.events = sim.simulate(cfg, w);
    train.push_back(std::move(ctx));
  }
  core::AutoPowerModel model;
  model.train(train, golden);

  const auto& other = arch::boom_config("C3");
  core::EvalContext ctx;
  ctx.cfg = &other;
  ctx.workload = "vvadd";
  const auto& w = workload::workload_by_name("vvadd");
  ctx.program = workload::program_features(w);
  ctx.events = sim.simulate(other, w);
  const double p = model.predict_total(ctx);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1000.0);
}

TEST(EdgeCases, TrainingOnSingleWorkload) {
  // One workload x two configurations: 2 samples total.  Activity models
  // see no workload variation; the model must still train and predict.
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  std::vector<core::EvalContext> train;
  const auto& w = workload::workload_by_name("dhrystone");
  for (const char* name : {"C1", "C15"}) {
    core::EvalContext ctx;
    ctx.cfg = &arch::boom_config(name);
    ctx.workload = w.name;
    ctx.program = workload::program_features(w);
    ctx.events = sim.simulate(*ctx.cfg, w);
    train.push_back(std::move(ctx));
  }
  core::AutoPowerModel model;
  model.train(train, golden);
  EXPECT_GT(model.predict_total(train.front()), 0.0);
}

TEST(EdgeCases, TraceErrorsOnSingleWindow) {
  const std::vector<double> golden{50.0};
  const std::vector<double> pred{55.0};
  const auto err = exp::trace_errors(golden, pred);
  EXPECT_NEAR(err.max_power_error, 10.0, 1e-9);
  EXPECT_NEAR(err.min_power_error, 10.0, 1e-9);
  EXPECT_NEAR(err.average_error, 10.0, 1e-9);
}

TEST(EdgeCases, EmptyTraceWindows) {
  core::AutoPowerModel model;
  const std::vector<core::EvalContext> empty;
  // An untrained model with no windows: nothing to do, empty result.
  const auto out = model.predict_trace(empty);
  EXPECT_TRUE(out.empty());
}

TEST(EdgeCases, TablePrinterAccessors) {
  util::TablePrinter t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(EdgeCases, FmtNegativeAndZero) {
  EXPECT_EQ(util::fmt(-4.356, 2), "-4.36");
  EXPECT_EQ(util::fmt(0.0, 2), "0.00");
  EXPECT_EQ(util::fmt_pct(-0.5, 1), "-0.5%");
}

TEST(EdgeCases, MethodSelectionSubsets) {
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);
  exp::MethodSelection only_autopower;
  only_autopower.mcpat_calib = false;
  only_autopower.mcpat_calib_component = false;
  const auto results =
      exp::compare_methods(data, golden, 2, only_autopower);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].method, "AutoPower");
}

TEST(EdgeCases, EventVectorZeroCycles) {
  arch::EventVector ev;
  ev[arch::EventKind::kLoads] = 100.0;  // counts without cycles
  EXPECT_DOUBLE_EQ(ev.rate(arch::EventKind::kLoads), 0.0);
}

TEST(EdgeCases, ComponentNetlistOfUnknownConfigStillWorks) {
  // A configuration outside Table II (hand-built) must flow through the
  // golden pipeline: the synthesis model is parametric, not a lookup.
  std::array<int, arch::kNumHwParams> values{8, 4, 28, 120, 120, 120, 28,
                                             18, 2, 4, 8, 32, 6, 4};
  const arch::HardwareConfig custom("custom", values);
  power::GoldenPowerModel golden;
  const auto& netlists = golden.netlist_of(custom);
  EXPECT_EQ(netlists.size(), arch::kNumComponents);
  for (const auto& nl : netlists) {
    EXPECT_GT(nl.register_count, 0.0);
  }

  sim::PerfSimulator sim;
  const auto ev =
      sim.simulate(custom, workload::workload_by_name("dhrystone"));
  EXPECT_GT(golden.evaluate(custom, ev).total(), 0.0);
}

TEST(EdgeCases, ModelPredictsCustomConfiguration) {
  // Train on Table II corners, predict a configuration not in Table II —
  // the actual design-space-exploration use case.
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);
  core::AutoPowerModel model;
  model.train(data.contexts_of(exp::ExperimentData::training_configs(2)),
              golden);

  std::array<int, arch::kNumHwParams> values{8, 3, 20, 90, 100, 100, 20,
                                             15, 1, 3, 8, 16, 4, 4};
  const arch::HardwareConfig custom("custom", values);
  core::EvalContext ctx;
  ctx.cfg = &custom;
  ctx.workload = "qsort";
  const auto& w = workload::workload_by_name("qsort");
  ctx.program = workload::program_features(w);
  ctx.events = sim.simulate(custom, w);

  const double predicted = model.predict_total(ctx);
  const double golden_power = golden.evaluate(custom, ctx.events).total();
  EXPECT_GT(predicted, 0.0);
  // Interpolation inside the trained span: should be within ~20%.
  EXPECT_NEAR(predicted, golden_power, 0.2 * golden_power);
}

}  // namespace
}  // namespace autopower
