// util/metrics, util/parse, util/io: the observability layer's contract.
//
// The MetricsRegistry tests cover single-threaded semantics (bucket
// placement, same-name-same-instance, the enabled switch) and exact
// concurrent sums; the Concurrent* tests are also run under the tsan
// preset by tools/check.sh to race-check the sharded recording and the
// snapshot-while-recording path.  The parse/io tests pin the CLI flag
// and output-stream hardening down to the exact failure messages.

#include <gtest/gtest.h>

#include <climits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/jsonl.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"
#include "util/parse.hpp"

namespace util = autopower::util;

namespace {

/// Restores the process-wide metrics switch even if the test fails.
struct EnabledGuard {
  ~EnabledGuard() { util::MetricsRegistry::set_enabled(true); }
};

TEST(MetricsRegistryTest, CounterAddsAndResets) {
  util::MetricsRegistry registry;
  util::Counter& c = registry.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  util::MetricsRegistry registry;
  util::Counter& a = registry.counter("dup");
  util::Counter& b = registry.counter("dup");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
  EXPECT_EQ(&registry.histogram("h"), &registry.histogram("h"));
}

TEST(MetricsRegistryTest, GaugeKeepsLastValue) {
  util::MetricsRegistry registry;
  util::Gauge& g = registry.gauge("test.gauge");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(MetricsRegistryTest, HistogramBucketPlacement) {
  util::MetricsRegistry registry;
  util::Histogram& h = registry.histogram("test.hist");
  // bucket i counts values with bit_width == i: 0 | [1,1] | [2,3] | [4,7]
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  h.observe(7);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 17u);
}

TEST(MetricsRegistryTest, HistogramOverflowBucketAbsorbsHugeValues) {
  util::MetricsRegistry registry;
  util::Histogram& h = registry.histogram("test.hist");
  h.observe(std::uint64_t{1} << 62);
  h.observe(~std::uint64_t{0});
  EXPECT_EQ(h.bucket(util::Histogram::kBuckets - 1), 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(MetricsRegistryTest, BucketBoundsAreInclusivePowersOfTwo) {
  EXPECT_EQ(util::Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(util::Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(util::Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(util::Histogram::bucket_bound(3), 7u);
  EXPECT_EQ(util::Histogram::bucket_bound(util::Histogram::kBuckets - 1),
            ~std::uint64_t{0});
}

TEST(MetricsRegistryTest, DisabledSwitchSuppressesRecording) {
  EnabledGuard guard;
  util::MetricsRegistry registry;
  util::Counter& c = registry.counter("c");
  util::Gauge& g = registry.gauge("g");
  util::Histogram& h = registry.histogram("h");
  util::MetricsRegistry::set_enabled(false);
  c.inc();
  g.set(9.0);
  h.observe(100);
  { util::ScopedTimer t(h); }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  util::MetricsRegistry::set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsRegistryTest, ScopedTimerObservesOnce) {
  util::MetricsRegistry registry;
  util::Histogram& h = registry.histogram("timer");
  { util::ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  util::MetricsRegistry registry;
  util::Counter& c = registry.counter("concurrent");
  util::Histogram& h = registry.histogram("concurrent.hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotWhileRecordingIsSafe) {
  // Writers hammer every instrument kind while the main thread snapshots;
  // under ThreadSanitizer this proves the relaxed-atomic recording and
  // the locked to_json() never race.
  util::MetricsRegistry registry;
  util::Counter& c = registry.counter("snap.counter");
  util::Gauge& g = registry.gauge("snap.gauge");
  util::Histogram& h = registry.histogram("snap.hist");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c, &g, &h] {
      for (int i = 0; i < 5000; ++i) {
        c.inc();
        g.set(static_cast<double>(i));
        h.observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const std::string json = registry.to_json();
    EXPECT_FALSE(json.empty());
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 4u * 5000u);
}

TEST(MetricsRegistryTest, ToJsonRoundTripsThroughServeParser) {
  util::MetricsRegistry registry;
  registry.counter("a.count").add(7);
  registry.gauge("a.rate").set(2.5);
  util::Histogram& h = registry.histogram("a.lat_ns");
  h.observe(5);
  h.observe(5);

  const auto root = autopower::serve::JsonValue::parse(registry.to_json());
  EXPECT_EQ(root.find("counters")->find("a.count")->as_number(), 7.0);
  EXPECT_EQ(root.find("gauges")->find("a.rate")->as_number(), 2.5);
  const auto* hist = root.find("histograms")->find("a.lat_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_number(), 2.0);
  EXPECT_EQ(hist->find("sum")->as_number(), 10.0);
  EXPECT_EQ(hist->find("mean")->as_number(), 5.0);
  const auto& buckets = hist->find("buckets")->as_array();
  ASSERT_EQ(buckets.size(), util::Histogram::kBuckets);
  EXPECT_EQ(buckets[3].as_number(), 2.0);  // bit_width(5) == 3
  const auto& bounds = root.find("histogram_bounds")->as_array();
  ASSERT_EQ(bounds.size(), util::Histogram::kBuckets);
  EXPECT_EQ(bounds[2].as_number(), 3.0);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsReferencesValid) {
  util::MetricsRegistry registry;
  util::Counter& c = registry.counter("r");
  c.add(5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(registry.counter("r").value(), 1u);
}

TEST(ParseIntTest, AcceptsPlainIntegers) {
  EXPECT_EQ(util::parse_int("42", "--n"), 42);
  EXPECT_EQ(util::parse_int("-7", "--n"), -7);
  EXPECT_EQ(util::parse_int("0", "--n"), 0);
  EXPECT_EQ(util::parse_int(std::to_string(INT_MAX), "--n"), INT_MAX);
}

TEST(ParseIntTest, RejectsTrailingGarbage) {
  EXPECT_THROW(util::parse_int("4x", "--threads"), util::InvalidArgument);
  EXPECT_THROW(util::parse_int("3abc", "--top"), util::InvalidArgument);
  EXPECT_THROW(util::parse_int("4 ", "--n"), util::InvalidArgument);
  EXPECT_THROW(util::parse_int("1.5", "--n"), util::InvalidArgument);
}

TEST(ParseIntTest, RejectsNonNumbers) {
  EXPECT_THROW(util::parse_int("", "--n"), util::InvalidArgument);
  EXPECT_THROW(util::parse_int("abc", "--n"), util::InvalidArgument);
  EXPECT_THROW(util::parse_int("+4", "--n"), util::InvalidArgument);
  EXPECT_THROW(util::parse_int(" 4", "--n"), util::InvalidArgument);
}

TEST(ParseIntTest, RejectsOverflow) {
  EXPECT_THROW(util::parse_int("99999999999999999999", "--n"),
               util::InvalidArgument);
  EXPECT_THROW(util::parse_int("-99999999999999999999", "--n"),
               util::InvalidArgument);
}

TEST(ParseIntTest, EnforcesRange) {
  EXPECT_EQ(util::parse_int("1", "--threads", 1), 1);
  EXPECT_THROW(util::parse_int("0", "--threads", 1), util::InvalidArgument);
  EXPECT_THROW(util::parse_int("-2", "--top", 1), util::InvalidArgument);
  EXPECT_THROW(util::parse_int("11", "--n", 0, 10), util::InvalidArgument);
}

namespace {

/// A streambuf whose target has failed: every write is refused.
struct FailingBuf : std::streambuf {
  int overflow(int) override { return traits_type::eof(); }
};

}  // namespace

TEST(StreamCheckTest, GoodStreamPasses) {
  std::ostringstream out;
  out << "report line\n";
  EXPECT_NO_THROW(util::flush_and_check(out, "test report"));
}

TEST(StreamCheckTest, FailedWriteIsDetectedAtFlush) {
  FailingBuf buf;
  std::ostream out(&buf);
  out << "this write is silently dropped";
  try {
    util::flush_and_check(out, "truncated report");
    FAIL() << "flush_and_check should throw on a failed stream";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated report"),
              std::string::npos);
  }
}

TEST(StreamCheckTest, LatchedFailureFromEarlierWriteIsDetected) {
  std::ostringstream out;
  out.setstate(std::ios::badbit);
  EXPECT_THROW(util::flush_and_check(out, "bad stream"), util::Error);
}

}  // namespace
