// Property tests for the fast training/inference paths.
//
// The presorted exact-greedy tree builder and the flattened batched GBT
// inference are pure optimisations: they must reproduce the reference
// implementations bit-for-bit.  These tests pin that contract on datasets
// chosen to stress the tie-breaking paths — duplicate-heavy columns,
// constant columns — across a grid of tree hyper-parameters, and also pin
// the archive-validation fixes in RegressionTree::load.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <sstream>
#include <vector>

#include "ml/gbt.hpp"
#include "ml/tree.hpp"
#include "util/archive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace autopower::ml {
namespace {

// Duplicate-heavy and degenerate features: "dup" takes four distinct
// values, "konst" is constant (never splittable), "coarse" has many ties.
Dataset awkward_dataset(std::size_t n, std::uint64_t seed) {
  Dataset data({"dup", "cont", "konst", "coarse"});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double dup = std::floor(rng.next_range(0.0, 4.0));
    const double cont = rng.next_range(-1.0, 1.0);
    const double konst = 2.5;
    const double coarse = std::floor(rng.next_range(0.0, 10.0)) / 10.0;
    const double y = dup + (cont > 0.0 ? 2.0 : 0.0) + 3.0 * coarse +
                     rng.next_range(-0.1, 0.1);
    data.add_sample(std::array{dup, cont, konst, coarse}, y);
  }
  return data;
}

std::string tree_archive(const RegressionTree& tree) {
  std::ostringstream os;
  util::ArchiveWriter w(os);
  tree.save(w);
  return os.str();
}

std::string gbt_archive(const GBTRegressor& model) {
  std::ostringstream os;
  util::ArchiveWriter w(os);
  model.save(w);
  return os.str();
}

TEST(FastPath, PresortedTreeMatchesReferenceByteForByte) {
  const TreeOptions grid[] = {
      {.max_depth = 1, .lambda = 0.0},
      {.max_depth = 3, .lambda = 1.0},
      {.max_depth = 3, .lambda = 1.0, .gamma = 0.5},
      {.max_depth = 4, .lambda = 0.5, .min_child_weight = 3.0},
      {.max_depth = 5, .lambda = 1e-6},
  };
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto data = awkward_dataset(seed % 2 == 0 ? 37 : 200, seed);
    std::vector<double> grad(data.size());
    const std::vector<double> hess(data.size(), 1.0);
    for (std::size_t i = 0; i < data.size(); ++i) grad[i] = -data.target(i);

    for (TreeOptions options : grid) {
      options.reference_split_search = true;
      RegressionTree reference;
      reference.fit(data, grad, hess, options);

      options.reference_split_search = false;
      RegressionTree fast;
      fast.fit(data, grad, hess, options);

      EXPECT_EQ(tree_archive(fast), tree_archive(reference))
          << "seed " << seed << " depth " << options.max_depth;
    }
  }
}

TEST(FastPath, GbtEnsemblesIdenticalUnderBothBuilders) {
  const auto data = awkward_dataset(150, 11);
  GbtOptions fast_opts{.num_rounds = 40, .learning_rate = 0.2};
  GbtOptions ref_opts = fast_opts;
  ref_opts.tree.reference_split_search = true;

  GBTRegressor fast(fast_opts);
  GBTRegressor reference(ref_opts);
  fast.fit(data);
  reference.fit(data);

  // The builder flag is serialized nowhere; the trees must be the trees.
  EXPECT_EQ(gbt_archive(fast), gbt_archive(reference));
}

TEST(FastPath, BatchedPredictAllBitIdenticalToPerSample) {
  const auto data = awkward_dataset(173, 23);  // not a multiple of the block
  GBTRegressor model(GbtOptions{.num_rounds = 30, .learning_rate = 0.15});
  model.fit(data);

  const auto batched = model.predict_all(data);
  ASSERT_EQ(batched.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(batched[i], model.predict(data.features(i))) << "sample " << i;
  }

  // The flattened forest is rebuilt on load; it must match too.
  std::stringstream buf;
  util::ArchiveWriter w(buf);
  model.save(w);
  util::ArchiveReader r(buf);
  GBTRegressor restored;
  restored.load(r);
  const auto batched2 = restored.predict_all(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(batched2[i], batched[i]);
  }
}

TEST(FastPath, PredictRowsValidatesArity) {
  const auto data = awkward_dataset(40, 3);
  GBTRegressor model(GbtOptions{.num_rounds = 5});
  model.fit(data);

  const std::vector<double> rows(12, 0.5);
  EXPECT_THROW((void)model.predict_rows(rows, 5), util::Error);  // 12 % 5
  EXPECT_THROW((void)model.predict_rows(rows, 2), util::Error);  // arity < 4
  EXPECT_THROW((void)model.predict_rows(rows, 0), util::Error);
  EXPECT_NO_THROW((void)model.predict_rows(rows, 4));

  GBTRegressor unfitted;
  EXPECT_THROW((void)unfitted.predict_rows(rows, 4), util::NotFitted);
}

// --- RegressionTree::load archive validation --------------------------------

std::string raw_tree_archive(const std::vector<std::int64_t>& structure,
                             const std::vector<double>& values) {
  std::ostringstream os;
  util::ArchiveWriter w(os);
  w.write("tree.depth", std::int64_t{1});
  w.write("tree.structure", structure);
  w.write("tree.values", values);
  return os.str();
}

void expect_load_rejects(const std::string& archive) {
  std::istringstream is(archive);
  util::ArchiveReader r(is);
  RegressionTree tree;
  EXPECT_THROW(tree.load(r), util::Error);
}

TEST(FastPath, LoadRejectsNegativeChildIndicesOtherThanLeafMarker) {
  // Node 0 splits with left = -5: passes a naive `< node_count` bound but
  // would index out of bounds in predict().
  expect_load_rejects(raw_tree_archive({0, -5, 2, -1, -1, -1, -1, -1, -1},
                                       {0.5, 0.0, 0.0, 1.0, 0.0, 2.0}));
  // Same for the right child.
  expect_load_rejects(raw_tree_archive({0, 1, -2, -1, -1, -1, -1, -1, -1},
                                       {0.5, 0.0, 0.0, 1.0, 0.0, 2.0}));
  // And for a nonsense feature id below the leaf marker.
  expect_load_rejects(raw_tree_archive({-3, 1, 2, -1, -1, -1, -1, -1, -1},
                                       {0.5, 0.0, 0.0, 1.0, 0.0, 2.0}));
}

TEST(FastPath, LoadRejectsInteriorNodeWithLeafChild) {
  // Node 0 claims to split on feature 0 but its right child is the leaf
  // marker: predict() would walk to index -1.
  expect_load_rejects(raw_tree_archive({0, 1, -1, -1, -1, -1},
                                       {0.5, 0.0, 0.0, 1.0}));
}

TEST(FastPath, LoadAcceptsWellFormedArchive) {
  const auto archive = raw_tree_archive({0, 1, 2, -1, -1, -1, -1, -1, -1},
                                        {0.5, 0.0, 0.0, 1.0, 0.0, 2.0});
  std::istringstream is(archive);
  util::ArchiveReader r(is);
  RegressionTree tree;
  tree.load(r);
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_EQ(tree.predict(std::array{0.0}), 1.0);
  EXPECT_EQ(tree.predict(std::array{0.9}), 2.0);
}

}  // namespace
}  // namespace autopower::ml
