// Differential oracles for the SIMD kernel layer (util/simd.hpp).
//
// Every vector kernel claims BIT-identity with its scalar twin.  These
// properties pin that claim over random sizes (including 0 and every
// tail length below the vector width), unaligned base pointers, NaNs
// and denormals, for every tier the host can execute:
//
//   (a) each KernelTable entry vs the scalar table, element-exact,
//   (b) Rng::fill_u64 / fill_unit vs the next_u64()/next_unit() loop,
//       including the post-fill stream position, and BufferedRng as a
//       drop-in for Rng under data-dependent draw counts,
//   (c) GBT predict_all / predict_rows and the presorted tree builder
//       (fit -> archive bytes) across tiers via set_active_tier(),
//   (d) the AUTOPOWER_SIMD environment override, exercised in a child
//       process per tier name (this binary re-runs itself with
//       --print-tier, which prints the resolved tier and exits).
//
// Like test_differential, this binary has a custom main() accepting
// --seed=N / --cases=N (see testcore/proptest.hpp).

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/gbt.hpp"
#include "testcore/generators.hpp"
#include "testcore/proptest.hpp"
#include "util/archive.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace autopower {
namespace {

using testcore::Pcg32;
using util::simd::KernelTable;
using util::simd::PaddedTreeView;
using util::simd::Tier;

// Path of this test binary, for the --print-tier subprocess tests.
std::string g_self_path;  // NOLINT

// ---------------------------------------------------------------------
// Helpers.

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Bit-exact vector comparison; names the first mismatching element.
/// Exception: two NaNs compare equal regardless of sign/payload.  When
/// BOTH operands of an x86 add/mul are NaN the hardware propagates the
/// *first* operand's NaN, and which operand the scalar twin's compiled
/// code puts first is the compiler's choice (addition commutes) — it
/// differs between the -O2 and sanitizer builds.  Finite results,
/// signed zeros, denormals and single-NaN propagation stay pinned bit
/// for bit; only the sign/payload of a NaN produced from two NaN
/// operands is unspecified, and no production input feeds NaN into
/// these kernels anyway (NaN thresholds in the forest kernel are
/// compared, never arithmetically combined).
std::optional<std::string> diff_doubles(const std::vector<double>& ref,
                                        const std::vector<double>& got,
                                        const std::string& what) {
  if (ref.size() != got.size()) {
    return what + ": size " + std::to_string(ref.size()) + " vs " +
           std::to_string(got.size());
  }
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (std::isnan(ref[i]) && std::isnan(got[i])) continue;
    if (bits(ref[i]) != bits(got[i])) {
      std::ostringstream msg;
      msg.precision(17);
      msg << what << ": element " << i << " differs: " << ref[i] << " (0x"
          << std::hex << bits(ref[i]) << ") vs " << std::dec << got[i]
          << " (0x" << std::hex << bits(got[i]) << ")";
      return msg.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> diff_u64(const std::vector<std::uint64_t>& ref,
                                    const std::vector<std::uint64_t>& got,
                                    const std::string& what) {
  if (ref.size() != got.size()) return what + ": size mismatch";
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i] != got[i]) {
      std::ostringstream msg;
      msg << what << ": element " << i << " differs: 0x" << std::hex
          << ref[i] << " vs 0x" << got[i];
      return msg.str();
    }
  }
  return std::nullopt;
}

/// Random double from a palette that stresses the kernels: ordinary
/// finite values, huge/tiny magnitudes, denormals, zeros and NaN/inf.
double stress_double(Pcg32& rng, bool allow_non_finite) {
  switch (rng.next_int(0, allow_non_finite ? 7 : 5)) {
    case 0: return rng.next_range(-1e3, 1e3);
    case 1: return rng.next_range(-1.0, 1.0) * 1e300;
    case 2: return rng.next_range(-1.0, 1.0) * 1e-300;
    case 3:  // denormal
      return static_cast<double>(rng.next_int(1, 100)) *
             std::numeric_limits<double>::denorm_min();
    case 4: return rng.next_bool() ? 0.0 : -0.0;
    case 5: return rng.next_range(-1e6, 1e6);
    case 6: return std::numeric_limits<double>::quiet_NaN();
    default:
      return rng.next_bool() ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity();
  }
}

std::vector<double> stress_vector(Pcg32& rng, std::size_t n,
                                  bool allow_non_finite) {
  std::vector<double> out(n);
  for (double& v : out) v = stress_double(rng, allow_non_finite);
  return out;
}

/// Tiers with a table on this host, scalar first (the reference).
std::vector<const KernelTable*> available_tables() {
  std::vector<const KernelTable*> out;
  for (Tier t : {Tier::kScalar, Tier::kSse2, Tier::kAvx2}) {
    if (const KernelTable* kt = util::simd::kernels_for(t)) out.push_back(kt);
  }
  return out;
}

/// Restores the dispatched tier (and its gauge) on scope exit, so tier-
/// flipping tests cannot leak state into later tests.
class TierGuard {
 public:
  TierGuard() : saved_(util::simd::active_tier()) {}
  ~TierGuard() { util::simd::set_active_tier(saved_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  Tier saved_;
};

std::string gbt_archive(const ml::GBTRegressor& model) {
  std::ostringstream out;
  util::ArchiveWriter writer(out);
  model.save(writer);
  return out.str();
}

// ---------------------------------------------------------------------
// (a) Raw kernel oracles: every tier's entry vs the scalar table.
//
// Sizes sweep 0..~3x the widest vector width so every tail length is
// hit; a random lead offset into an oversized buffer exercises
// unaligned bases (the kernels use unaligned loads throughout).

struct Buffers {
  std::size_t n = 0;
  std::size_t lead = 0;  ///< elements skipped at the buffer front
};

Buffers random_extent(Pcg32& rng) {
  Buffers b;
  b.n = static_cast<std::size_t>(rng.next_int(0, 24));
  b.lead = static_cast<std::size_t>(rng.next_int(0, 3));
  return b;
}

TEST(SimdKernels, AxpyMatchesScalarOnAllTiers) {
  const auto tables = available_tables();
  const auto result = testcore::run_property<std::uint64_t>(
      {.name = "simd.axpy", .cases = 300},
      [](Pcg32& rng) { return rng.next_u64(); },
      [&tables](const std::uint64_t& seed) -> std::optional<std::string> {
        Pcg32 rng(seed);
        const Buffers b = random_extent(rng);
        const double a = stress_double(rng, true);
        const auto x = stress_vector(rng, b.lead + b.n, true);
        const auto y0 = stress_vector(rng, b.lead + b.n, true);
        std::vector<double> ref;
        for (const KernelTable* kt : tables) {
          auto y = y0;
          kt->axpy(a, x.data() + b.lead, y.data() + b.lead, b.n);
          if (kt->tier == Tier::kScalar) {
            ref = y;
            continue;
          }
          if (auto d = diff_doubles(
                  ref, y,
                  std::string("axpy ") +
                      std::string(util::simd::tier_name(kt->tier)) +
                      " n=" + std::to_string(b.n) +
                      " lead=" + std::to_string(b.lead))) {
            return d;
          }
        }
        return std::nullopt;
      });
  ASSERT_TRUE(result.passed) << result.report;
}

TEST(SimdKernels, SubDivMatchesScalarOnAllTiers) {
  const auto tables = available_tables();
  const auto result = testcore::run_property<std::uint64_t>(
      {.name = "simd.sub_div", .cases = 300},
      [](Pcg32& rng) { return rng.next_u64(); },
      [&tables](const std::uint64_t& seed) -> std::optional<std::string> {
        Pcg32 rng(seed);
        const Buffers b = random_extent(rng);
        const auto x = stress_vector(rng, b.lead + b.n, true);
        const auto mean = stress_vector(rng, b.lead + b.n, true);
        auto scale = stress_vector(rng, b.lead + b.n, true);
        // Occasional zero scale: the IEEE divide (inf/NaN results) must
        // still match the scalar op bit for bit.
        for (double& s : scale) {
          if (rng.next_bool(0.1)) s = 0.0;
        }
        std::vector<double> ref;
        for (const KernelTable* kt : tables) {
          std::vector<double> out(b.lead + b.n, -7.0);
          kt->sub_div(x.data() + b.lead, mean.data() + b.lead,
                      scale.data() + b.lead, out.data() + b.lead, b.n);
          if (kt->tier == Tier::kScalar) {
            ref = out;
            continue;
          }
          if (auto d = diff_doubles(
                  ref, out,
                  std::string("sub_div ") +
                      std::string(util::simd::tier_name(kt->tier)) +
                      " n=" + std::to_string(b.n))) {
            return d;
          }
        }
        return std::nullopt;
      });
  ASSERT_TRUE(result.passed) << result.report;
}

TEST(SimdKernels, GathersMatchScalarOnAllTiers) {
  const auto tables = available_tables();
  const auto result = testcore::run_property<std::uint64_t>(
      {.name = "simd.gather", .cases = 300},
      [](Pcg32& rng) { return rng.next_u64(); },
      [&tables](const std::uint64_t& seed) -> std::optional<std::string> {
        Pcg32 rng(seed);
        const Buffers b = random_extent(rng);
        const std::size_t src_len = b.n + 1 + rng.index(16);
        const auto src = stress_vector(rng, src_len, true);
        std::vector<std::uint32_t> idx(b.n);
        for (auto& i : idx) {
          i = static_cast<std::uint32_t>(rng.index(src_len));
        }
        const std::size_t stride = 1 + rng.index(5);
        const auto strided_src = stress_vector(rng, b.n * stride + 1, true);

        std::vector<double> ref_g;
        std::vector<double> ref_s;
        for (const KernelTable* kt : tables) {
          std::vector<double> got_g(b.n, -7.0);
          std::vector<double> got_s(b.n, -7.0);
          kt->gather(src.data(), idx.data(), got_g.data(), b.n);
          kt->strided_gather(strided_src.data(), stride, got_s.data(), b.n);
          if (kt->tier == Tier::kScalar) {
            ref_g = got_g;
            ref_s = got_s;
            continue;
          }
          const auto name = std::string(util::simd::tier_name(kt->tier));
          if (auto d = diff_doubles(ref_g, got_g, "gather " + name)) return d;
          if (auto d = diff_doubles(ref_s, got_s,
                                    "strided_gather " + name +
                                        " stride=" + std::to_string(stride))) {
            return d;
          }
        }
        return std::nullopt;
      });
  ASSERT_TRUE(result.passed) << result.report;
}

TEST(SimdKernels, AffineRowsMatchesScalarOnAllTiers) {
  const auto tables = available_tables();
  const auto result = testcore::run_property<std::uint64_t>(
      {.name = "simd.affine_rows", .cases = 300},
      [](Pcg32& rng) { return rng.next_u64(); },
      [&tables](const std::uint64_t& seed) -> std::optional<std::string> {
        Pcg32 rng(seed);
        const std::size_t count = static_cast<std::size_t>(rng.next_int(0, 17));
        const std::size_t arity = static_cast<std::size_t>(rng.next_int(1, 9));
        const auto rows = stress_vector(rng, count * arity, true);
        const auto coef = stress_vector(rng, arity, true);
        const double intercept = stress_double(rng, true);
        std::vector<double> ref;
        for (const KernelTable* kt : tables) {
          std::vector<double> out(count, -7.0);
          kt->affine_rows(rows.data(), arity, count, coef.data(), intercept,
                          out.data());
          if (kt->tier == Tier::kScalar) {
            ref = out;
            continue;
          }
          if (auto d = diff_doubles(
                  ref, out,
                  std::string("affine_rows ") +
                      std::string(util::simd::tier_name(kt->tier)) +
                      " count=" + std::to_string(count) +
                      " arity=" + std::to_string(arity))) {
            return d;
          }
        }
        return std::nullopt;
      });
  ASSERT_TRUE(result.passed) << result.report;
}

TEST(SimdKernels, ForestLeafAddMatchesScalarOnAllTiers) {
  const auto tables = available_tables();
  const auto result = testcore::run_property<std::uint64_t>(
      {.name = "simd.forest_leaf_add", .cases = 300},
      [](Pcg32& rng) { return rng.next_u64(); },
      [&tables](const std::uint64_t& seed) -> std::optional<std::string> {
        Pcg32 rng(seed);
        // A raw padded tree: the kernel contract holds for arbitrary
        // feature/threshold/weight arrays (the walk only consults
        // condition bits along one root-to-leaf path), so no leaf-
        // replication invariant is needed here.
        const auto depth =
            static_cast<std::int32_t>(rng.next_int(0, util::simd::kMaxPaddedDepth));
        const std::size_t interior = (std::size_t{1} << depth) - 1;
        const std::size_t leaves = std::size_t{1} << depth;
        const std::size_t features = 1 + rng.index(6);
        std::vector<std::int32_t> feature(interior);
        for (auto& f : feature) {
          f = static_cast<std::int32_t>(rng.index(features));
        }
        // Thresholds stay finite-or-NaN; the comparison (x < t, false
        // for NaN) is the interesting edge, exercised from the x side
        // too since the columns carry NaN/denormals.
        std::vector<double> threshold(interior);
        for (double& t : threshold) {
          t = rng.next_bool(0.1) ? std::numeric_limits<double>::quiet_NaN()
                                 : rng.next_range(-10.0, 10.0);
        }
        const auto weight = stress_vector(rng, leaves, false);
        const PaddedTreeView tree{feature.data(), threshold.data(),
                                  weight.data(), depth};

        const std::size_t rows = static_cast<std::size_t>(rng.next_int(0, 19));
        const std::size_t col_stride = rows + rng.index(4);
        const auto cols =
            stress_vector(rng, features * std::max<std::size_t>(col_stride, 1),
                          true);
        const double lr = rng.next_range(0.01, 1.0);
        const auto out0 = stress_vector(rng, rows, false);

        std::vector<double> ref;
        for (const KernelTable* kt : tables) {
          auto out = out0;
          kt->forest_leaf_add(tree, cols.data(), col_stride, rows, lr,
                              out.data());
          if (kt->tier == Tier::kScalar) {
            ref = out;
            continue;
          }
          if (auto d = diff_doubles(
                  ref, out,
                  std::string("forest_leaf_add ") +
                      std::string(util::simd::tier_name(kt->tier)) +
                      " depth=" + std::to_string(depth) +
                      " rows=" + std::to_string(rows))) {
            return d;
          }
        }
        return std::nullopt;
      });
  ASSERT_TRUE(result.passed) << result.report;
}

TEST(SimdKernels, RngFillsMatchScalarOnAllTiers) {
  const auto tables = available_tables();
  const auto result = testcore::run_property<std::uint64_t>(
      {.name = "simd.rng_fill", .cases = 300},
      [](Pcg32& rng) { return rng.next_u64(); },
      [&tables](const std::uint64_t& seed) -> std::optional<std::string> {
        Pcg32 rng(seed);
        const std::size_t n = static_cast<std::size_t>(rng.next_int(0, 24));
        // Bases across the whole u64 range, including near-wraparound:
        // the counter arithmetic is modular and must match in every lane.
        const std::uint64_t base =
            rng.next_bool(0.2) ? ~std::uint64_t{0} - rng.next_below(1000)
                               : rng.next_u64();
        std::vector<std::uint64_t> ref_u;
        std::vector<double> ref_d;
        for (const KernelTable* kt : tables) {
          std::vector<std::uint64_t> got_u(n, 0);
          std::vector<double> got_d(n, -7.0);
          kt->rng_fill_u64(base, got_u.data(), n);
          kt->rng_fill_unit(base, got_d.data(), n);
          if (kt->tier == Tier::kScalar) {
            ref_u = got_u;
            ref_d = got_d;
            continue;
          }
          const auto name = std::string(util::simd::tier_name(kt->tier));
          if (auto d = diff_u64(ref_u, got_u, "rng_fill_u64 " + name)) {
            return d;
          }
          if (auto d = diff_doubles(ref_d, got_d, "rng_fill_unit " + name)) {
            return d;
          }
        }
        return std::nullopt;
      });
  ASSERT_TRUE(result.passed) << result.report;
}

// ---------------------------------------------------------------------
// (b) Rng / BufferedRng stream contracts.

TEST(SimdRng, FillMatchesLoopAndAdvancesStream) {
  const auto result = testcore::run_property<std::uint64_t>(
      {.name = "simd.rng_fill_stream", .cases = 200},
      [](Pcg32& rng) { return rng.next_u64(); },
      [](const std::uint64_t& seed) -> std::optional<std::string> {
        Pcg32 rng(seed);
        const std::size_t n = static_cast<std::size_t>(rng.next_int(0, 300));
        util::Rng loop_rng(seed);
        util::Rng fill_rng(seed);

        std::vector<std::uint64_t> expect_u(n);
        for (auto& v : expect_u) v = loop_rng.next_u64();
        std::vector<std::uint64_t> got_u(n);
        fill_rng.fill_u64(got_u);
        if (auto d = diff_u64(expect_u, got_u, "fill_u64 vs loop")) return d;

        // Post-fill stream position: the next draws must agree too.
        std::vector<double> expect_d(7);
        for (auto& v : expect_d) v = loop_rng.next_unit();
        std::vector<double> got_d(7);
        fill_rng.fill_unit(got_d);
        return diff_doubles(expect_d, got_d, "fill_unit after fill_u64");
      });
  ASSERT_TRUE(result.passed) << result.report;
}

TEST(SimdRng, BufferedRngIsDropInForRng) {
  const auto result = testcore::run_property<std::uint64_t>(
      {.name = "simd.buffered_rng", .cases = 200},
      [](Pcg32& rng) { return rng.next_u64(); },
      [](const std::uint64_t& seed) -> std::optional<std::string> {
        Pcg32 rng(seed);
        util::Rng plain(seed);
        util::BufferedRng buffered(seed);
        // Data-dependent op mix, long enough to cross several 128-draw
        // buffer refills.
        const int ops = rng.next_int(1, 500);
        for (int i = 0; i < ops; ++i) {
          switch (rng.next_int(0, 3)) {
            case 0: {
              const auto a = plain.next_u64();
              const auto b = buffered.next_u64();
              if (a != b) return std::string("next_u64 diverged at op ") +
                                 std::to_string(i);
              break;
            }
            case 1: {
              const double a = plain.next_unit();
              const double b = buffered.next_unit();
              if (bits(a) != bits(b)) {
                return std::string("next_unit diverged at op ") +
                       std::to_string(i);
              }
              break;
            }
            case 2: {
              const double a = plain.next_range(-3.0, 9.0);
              const double b = buffered.next_range(-3.0, 9.0);
              if (bits(a) != bits(b)) {
                return std::string("next_range diverged at op ") +
                       std::to_string(i);
              }
              break;
            }
            default: {
              const auto a = plain.next_below(97);
              const auto b = buffered.next_below(97);
              if (a != b) return std::string("next_below diverged at op ") +
                                 std::to_string(i);
              break;
            }
          }
        }
        return std::nullopt;
      });
  ASSERT_TRUE(result.passed) << result.report;
}

// ---------------------------------------------------------------------
// (c) End-to-end tier differencing: the model layer must produce the
// same bits whichever tier is dispatched.

TEST(SimdTiers, GbtPredictIsBitIdenticalAcrossTiers) {
  TierGuard guard;
  const Tier best = util::simd::detect_best_tier();
  if (best == Tier::kScalar) GTEST_SKIP() << "host has no vector tier";

  const auto result = testcore::run_property<std::uint64_t>(
      {.name = "simd.gbt_predict_tiers", .cases = 40},
      [](Pcg32& rng) { return rng.next_u64(); },
      [best](const std::uint64_t& seed) -> std::optional<std::string> {
        Pcg32 rng(seed);
        const auto data = testcore::random_dataset(rng, {});
        const auto opt = testcore::random_gbt_options(rng);

        util::simd::set_active_tier(Tier::kScalar);
        ml::GBTRegressor model(opt);
        model.fit(data);
        const auto scalar_pred = model.predict_all(data);

        util::simd::set_active_tier(best);
        const auto vector_pred = model.predict_all(data);
        util::simd::set_active_tier(Tier::kScalar);
        return diff_doubles(scalar_pred, vector_pred,
                            "predict_all scalar vs " +
                                std::string(util::simd::tier_name(best)));
      });
  ASSERT_TRUE(result.passed) << result.report;
}

TEST(SimdTiers, TreeBuilderArchivesAreByteIdenticalAcrossTiers) {
  TierGuard guard;
  const Tier best = util::simd::detect_best_tier();
  if (best == Tier::kScalar) GTEST_SKIP() << "host has no vector tier";

  const auto result = testcore::run_property<std::uint64_t>(
      {.name = "simd.tree_fit_tiers", .cases = 40},
      [](Pcg32& rng) { return rng.next_u64(); },
      [best](const std::uint64_t& seed) -> std::optional<std::string> {
        Pcg32 rng(seed);
        const auto data = testcore::random_dataset(rng, {});
        const auto opt = testcore::random_gbt_options(rng);

        util::simd::set_active_tier(Tier::kScalar);
        ml::GBTRegressor scalar_model(opt);
        scalar_model.fit(data);
        const std::string scalar_bytes = gbt_archive(scalar_model);

        util::simd::set_active_tier(best);
        ml::GBTRegressor vector_model(opt);
        vector_model.fit(data);
        const std::string vector_bytes = gbt_archive(vector_model);
        util::simd::set_active_tier(Tier::kScalar);

        if (scalar_bytes != vector_bytes) {
          return std::string("fit archives differ between scalar and ") +
                 std::string(util::simd::tier_name(best));
        }
        return std::nullopt;
      });
  ASSERT_TRUE(result.passed) << result.report;
}

// ---------------------------------------------------------------------
// Dispatch plumbing.

TEST(SimdDispatch, TierTablesAndNamesAreConsistent) {
  TierGuard guard;
  const Tier best = util::simd::detect_best_tier();
  ASSERT_NE(util::simd::kernels_for(Tier::kScalar), nullptr);
  EXPECT_EQ(util::simd::kernels_for(Tier::kScalar)->tier, Tier::kScalar);
  for (Tier t : {Tier::kScalar, Tier::kSse2, Tier::kAvx2}) {
    const KernelTable* kt = util::simd::kernels_for(t);
    if (t <= best) {
      ASSERT_NE(kt, nullptr) << "tier <= best must have a table";
      EXPECT_EQ(kt->tier, t);
      EXPECT_NE(kt->axpy, nullptr);
      EXPECT_NE(kt->forest_leaf_add, nullptr);
      EXPECT_NE(kt->rng_fill_unit, nullptr);
    } else {
      EXPECT_EQ(kt, nullptr) << "tier above best must be unavailable";
    }
  }

  EXPECT_EQ(util::simd::tier_name(Tier::kScalar), "scalar");
  EXPECT_EQ(util::simd::tier_name(Tier::kSse2), "sse2");
  EXPECT_EQ(util::simd::tier_name(Tier::kAvx2), "avx2");
  EXPECT_EQ(util::simd::parse_tier("scalar"), Tier::kScalar);
  EXPECT_EQ(util::simd::parse_tier("sse2"), Tier::kSse2);
  EXPECT_EQ(util::simd::parse_tier("avx2"), Tier::kAvx2);
  EXPECT_EQ(util::simd::parse_tier("AVX2"), std::nullopt);
  EXPECT_EQ(util::simd::parse_tier(""), std::nullopt);
  EXPECT_EQ(util::simd::parse_tier("bogus"), std::nullopt);
}

TEST(SimdDispatch, SetActiveTierClampsAndSwitches) {
  TierGuard guard;
  const Tier best = util::simd::detect_best_tier();

  EXPECT_EQ(util::simd::set_active_tier(Tier::kScalar), Tier::kScalar);
  EXPECT_EQ(util::simd::active_tier(), Tier::kScalar);
  EXPECT_EQ(util::simd::kernels().tier, Tier::kScalar);

  // A request above the host's capability clamps to the detected best.
  EXPECT_EQ(util::simd::set_active_tier(Tier::kAvx2), best);
  EXPECT_EQ(util::simd::active_tier(), best);
  EXPECT_EQ(util::simd::kernels().tier, best);
}

// ---------------------------------------------------------------------
// (d) AUTOPOWER_SIMD environment override, observed from a child
// process (the override is read once at first dispatch, so it cannot be
// tested in-process).  The child is this very binary run with
// --print-tier, which prints the resolved tier number and exits.

int tier_in_subprocess(const std::string& env_value) {
  const std::string cmd = "AUTOPOWER_SIMD='" + env_value + "' '" +
                          g_self_path + "' --print-tier 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[32] = {};
  const bool got = std::fgets(buf, sizeof(buf), pipe) != nullptr;
  const int status = pclose(pipe);
  if (!got || !WIFEXITED(status) || WEXITSTATUS(status) != 0) return -1;
  return std::atoi(buf);
}

TEST(SimdDispatch, EnvOverrideSelectsEachAvailableTier) {
  const Tier best = util::simd::detect_best_tier();
  // Forcing scalar always works, on any host.
  EXPECT_EQ(tier_in_subprocess("scalar"), static_cast<int>(Tier::kScalar));
  // Each supported tier can be requested exactly.
  for (Tier t : {Tier::kSse2, Tier::kAvx2}) {
    if (t > best) continue;
    EXPECT_EQ(tier_in_subprocess(std::string(util::simd::tier_name(t))),
              static_cast<int>(t));
  }
  // Unknown values and requests above the host's capability fall back
  // to auto-detection.
  EXPECT_EQ(tier_in_subprocess("bogus"), static_cast<int>(best));
  EXPECT_EQ(tier_in_subprocess("avx2"),
            static_cast<int>(std::min(Tier::kAvx2, best)));
}

}  // namespace
}  // namespace autopower

int main(int argc, char** argv) {
  // Subprocess mode for the env-override tests: print the tier the
  // dispatcher resolved (after AUTOPOWER_SIMD) and exit.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--print-tier") {
      std::printf("%d\n",
                  static_cast<int>(autopower::util::simd::active_tier()));
      return 0;
    }
  }
  autopower::g_self_path = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  autopower::testcore::apply_cli_flags(&argc, argv);
  return RUN_ALL_TESTS();
}
