// Tests for the scaling-pattern hardware model (paper Sec. II-B, Table I).

#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "core/scaling_model.hpp"
#include "netlist/synthesis.hpp"
#include "util/archive.hpp"
#include "util/error.hpp"

namespace autopower::core {
namespace {

using arch::ComponentKind;
using arch::HwParam;

const arch::HardwareConfig* cfg(const char* name) {
  return &arch::boom_config(name);
}

TEST(ProportionalLaw, FitsSingleParameter) {
  const std::array params{HwParam::kFetchWidth};
  const std::array configs{cfg("C1"), cfg("C15")};  // FW 4 and 8
  const std::array values{120.0, 240.0};            // 30 * FW
  const auto law = fit_proportional_law(params, configs, values);
  ASSERT_EQ(law.params.size(), 1u);
  EXPECT_EQ(law.params[0], HwParam::kFetchWidth);
  EXPECT_NEAR(law.k, 30.0, 1e-9);
  EXPECT_NEAR(law.max_rel_error, 0.0, 1e-12);
}

TEST(ProportionalLaw, FitsPaperTableIExample) {
  // Paper Sec. II-B worked example: capacities w*d*c are 120*8*1 = 960
  // and 240*40*1 = 9600 while FetchWidth*DecodeWidth is 4 and 40, so the
  // fitted law is Capacity = 240 * FetchWidth * DecodeWidth with zero
  // error.  (The paper's text scales its example by a bit-width factor;
  // the fitted combination and exactness are what matter.)
  const std::array params{HwParam::kFetchWidth, HwParam::kDecodeWidth,
                          HwParam::kFetchBufferEntry};
  const std::array configs{cfg("C1"), cfg("C15")};
  const std::array capacity{120.0 * 8.0, 240.0 * 40.0};
  const auto law = fit_proportional_law(params, configs, capacity);
  ASSERT_EQ(law.params.size(), 2u);
  EXPECT_NEAR(law.k, 240.0, 1e-9);
  EXPECT_NEAR(law.max_rel_error, 0.0, 1e-12);
}

TEST(ProportionalLaw, ConstantLawWinsOnConstantData) {
  const std::array params{HwParam::kFetchWidth, HwParam::kBranchCount};
  const std::array configs{cfg("C1"), cfg("C8"), cfg("C15")};
  const std::array values{7.0, 7.0, 7.0};
  const auto law = fit_proportional_law(params, configs, values);
  EXPECT_TRUE(law.params.empty());
  EXPECT_NEAR(law.k, 7.0, 1e-12);
}

TEST(ProportionalLaw, PrefersFewerFactorsOnTies) {
  // FetchWidth-proportional data is also (trivially) fit by adding a
  // constant-across-configs parameter; the smaller subset must win.
  const std::array params{HwParam::kFetchWidth, HwParam::kDecodeWidth};
  // C6 and C7 share FetchWidth 8 but differ in DecodeWidth (2 vs 3).
  const std::array configs{cfg("C1"), cfg("C6")};
  const std::array values{8.0, 16.0};  // 2 * FW
  const auto law = fit_proportional_law(params, configs, values);
  ASSERT_EQ(law.params.size(), 1u);
  EXPECT_EQ(law.params[0], HwParam::kFetchWidth);
}

TEST(ProportionalLaw, EvaluateAndToString) {
  ProportionalLaw law;
  law.k = 8.0;
  law.params = {HwParam::kDecodeWidth};
  EXPECT_DOUBLE_EQ(law.evaluate(*cfg("C15")), 40.0);  // 8 * 5
  EXPECT_NE(law.to_string().find("DecodeWidth"), std::string::npos);
}

TEST(ProportionalLaw, RejectsBadInput) {
  const std::array params{HwParam::kFetchWidth};
  const std::array<const arch::HardwareConfig*, 0> no_configs{};
  const std::array<double, 0> no_values{};
  EXPECT_THROW(
      (void)fit_proportional_law(params, no_configs, no_values),
      util::InvalidArgument);
}

TEST(ScalingModel, RecoverstheIfuMetaShape) {
  // End-to-end Table I example: fit on C1/C15 floorplans, predict C8.
  const netlist::SynthesisModel synth;
  const auto meta_of = [&](const char* name) {
    for (const auto& p :
         synth.synthesize(arch::boom_config(name), ComponentKind::kIfu)
             .sram_positions) {
      if (p.name == "meta") return p;
    }
    throw util::Error("no meta");
  };
  std::vector<BlockObservation> obs;
  for (const char* name : {"C1", "C15"}) {
    const auto p = meta_of(name);
    obs.push_back(
        {cfg(name), p.block_width, p.block_depth, p.block_count});
  }
  ScalingPatternModel model;
  model.fit(arch::component_hw_params(ComponentKind::kIfu), obs);

  const auto pred = model.predict(*cfg("C8"));
  const auto actual = meta_of("C8");
  EXPECT_EQ(pred.width, actual.block_width);    // 240
  EXPECT_EQ(pred.depth, actual.block_depth);    // 24
  EXPECT_EQ(pred.count, actual.block_count);    // 1
}

TEST(ScalingModel, HandlesBankedCountScaling) {
  // Regfile int_rf: width 64 (constant), depth IntPhyRegister, count
  // DecodeWidth — count-scaling must be recovered exactly.
  const netlist::SynthesisModel synth;
  std::vector<BlockObservation> obs;
  for (const char* name : {"C1", "C15"}) {
    const auto& pos =
        synth.synthesize(arch::boom_config(name), ComponentKind::kRegfile)
            .sram_positions[0];  // int_rf
    obs.push_back(
        {cfg(name), pos.block_width, pos.block_depth, pos.block_count});
  }
  ScalingPatternModel model;
  model.fit(arch::component_hw_params(ComponentKind::kRegfile), obs);
  const auto pred = model.predict(*cfg("C10"));
  EXPECT_EQ(pred.width, 64);
  EXPECT_EQ(pred.depth, 108);  // IntPhyRegister of C10
  EXPECT_EQ(pred.count, 4);    // DecodeWidth of C10
}

TEST(ScalingModel, HandlesRatioDepth) {
  // ROB: depth = RobEntry / DecodeWidth is NOT proportional to any
  // parameter product — exactly why the model fits capacity/throughput
  // instead of the shape directly (paper Sec. II-B).
  const netlist::SynthesisModel synth;
  std::vector<BlockObservation> obs;
  for (const char* name : {"C1", "C15"}) {
    const auto& pos =
        synth.synthesize(arch::boom_config(name), ComponentKind::kRob)
            .sram_positions[0];
    obs.push_back(
        {cfg(name), pos.block_width, pos.block_depth, pos.block_count});
  }
  ScalingPatternModel model;
  model.fit(arch::component_hw_params(ComponentKind::kRob), obs);
  const auto pred = model.predict(*cfg("C7"));  // DW 3, ROB 81
  EXPECT_EQ(pred.width, 210);
  EXPECT_EQ(pred.depth, 27);
  EXPECT_EQ(pred.count, 1);
}

TEST(ScalingModel, ErrorsBeforeFit) {
  ScalingPatternModel model;
  EXPECT_FALSE(model.fitted());
  EXPECT_THROW((void)model.predict(*cfg("C1")), util::InvalidArgument);
}

TEST(ScalingModel, RejectsDegenerateObservations) {
  ScalingPatternModel model;
  const std::array params{HwParam::kFetchWidth};
  std::vector<BlockObservation> obs;
  EXPECT_THROW(model.fit(params, obs), util::InvalidArgument);
  obs.push_back({cfg("C1"), 0, 8, 1});  // non-positive width
  EXPECT_THROW(model.fit(params, obs), util::InvalidArgument);
}

TEST(ScalingModel, LoadRejectsFittedModelWithUnfittedLaws) {
  // An archive that claims `fitted` but carries default-constructed laws
  // (k = 0) would silently predict 1x1x1 blocks everywhere.  fit() always
  // produces positive finite coefficients, so load() must reject this.
  std::stringstream buf;
  {
    util::ArchiveWriter w(buf);
    w.write("scaling.fitted", true);
    for (int law = 0; law < 3; ++law) {
      w.write("law.k", 0.0);
      w.write("law.err", 0.0);
      w.write("law.params", std::span<const std::int64_t>{});
    }
  }
  util::ArchiveReader r(buf);
  ScalingPatternModel model;
  EXPECT_THROW(model.load(r), util::InvalidArgument);

  // A round-trip of a genuinely fitted model still loads.
  ScalingPatternModel fitted;
  const std::array params{HwParam::kFetchWidth};
  const std::vector<BlockObservation> obs{{cfg("C1"), 4, 8, 1},
                                          {cfg("C15"), 8, 8, 1}};
  fitted.fit(params, obs);
  std::stringstream good;
  {
    util::ArchiveWriter w(good);
    fitted.save(w);
  }
  util::ArchiveReader r2(good);
  ScalingPatternModel restored;
  restored.load(r2);
  EXPECT_TRUE(restored.fitted());
  EXPECT_EQ(restored.predict(*cfg("C1")).width,
            fitted.predict(*cfg("C1")).width);
}

// Property sweep: with C1+C15 as training corners, the SRAM positions of
// every component are recovered on every configuration — the paper's
// "nearly 0 MAPE" hardware-model claim (Sec. III-B4).
//
// One documented exception: the two training corners of Table II have
// IntPhyRegister == FpPhyRegister (36/36 and 140/140), so the capacity
// laws of the two Regfile banks cannot be disambiguated from two known
// configurations — their depth may follow the collinear twin parameter.
// Width and count stay exact; depth stays within the spread of the two
// parameters (up to ~25% on this design space, e.g. C5's 80 vs 64).
class FloorplanRecovery : public ::testing::TestWithParam<int> {};

TEST_P(FloorplanRecovery, ExactOnAllConfigs) {
  const auto c = static_cast<ComponentKind>(GetParam());
  const netlist::SynthesisModel synth;
  const auto positions =
      synth.synthesize(arch::boom_config("C1"), c).sram_positions;
  const bool collinear_depth = c == ComponentKind::kRegfile;
  for (std::size_t pi = 0; pi < positions.size(); ++pi) {
    std::vector<BlockObservation> obs;
    for (const char* name : {"C1", "C15"}) {
      const auto& pos =
          synth.synthesize(arch::boom_config(name), c).sram_positions[pi];
      obs.push_back(
          {cfg(name), pos.block_width, pos.block_depth, pos.block_count});
    }
    ScalingPatternModel model;
    model.fit(arch::component_hw_params(c), obs);
    for (const auto& config : arch::boom_design_space()) {
      const auto& actual =
          synth.synthesize(config, c).sram_positions[pi];
      const auto pred = model.predict(config);
      EXPECT_EQ(pred.width, actual.block_width)
          << config.name() << " " << actual.name;
      EXPECT_EQ(pred.count, actual.block_count)
          << config.name() << " " << actual.name;
      if (collinear_depth) {
        EXPECT_NEAR(pred.depth, actual.block_depth,
                    0.30 * actual.block_depth)
            << config.name() << " " << actual.name;
      } else {
        EXPECT_EQ(pred.depth, actual.block_depth)
            << config.name() << " " << actual.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllComponents, FloorplanRecovery,
                         ::testing::Range(0, 22));

}  // namespace
}  // namespace autopower::core
