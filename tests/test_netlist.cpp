// Tests for the synthesis model: determinism, structural plausibility,
// scaling behaviour, and the SRAM floorplan (incl. the paper's Table I
// IFU-meta example).

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/synthesis.hpp"
#include "util/error.hpp"

namespace autopower::netlist {
namespace {

using arch::ComponentKind;
using arch::HwParam;

TEST(Synthesis, Deterministic) {
  const SynthesisModel model;
  const auto& cfg = arch::boom_config("C7");
  const auto a = model.synthesize(cfg, ComponentKind::kRob);
  const auto b = model.synthesize(cfg, ComponentKind::kRob);
  EXPECT_DOUBLE_EQ(a.register_count, b.register_count);
  EXPECT_DOUBLE_EQ(a.gating_rate, b.gating_rate);
  EXPECT_DOUBLE_EQ(a.comb_cell_count, b.comb_cell_count);
}

TEST(Synthesis, AllComponentsProduced) {
  const SynthesisModel model;
  const auto all = model.synthesize_all(arch::boom_config("C3"));
  EXPECT_EQ(all.size(), arch::kNumComponents);
}

TEST(Synthesis, StructuralQuantitiesInRange) {
  const SynthesisModel model;
  for (const auto& cfg : arch::boom_design_space()) {
    for (ComponentKind c : arch::all_components()) {
      const auto nl = model.synthesize(cfg, c);
      EXPECT_GT(nl.register_count, 0.0) << cfg.name();
      EXPECT_GT(nl.comb_cell_count, 0.0) << cfg.name();
      EXPECT_GE(nl.gating_rate, 0.5) << cfg.name();
      EXPECT_LE(nl.gating_rate, 0.99) << cfg.name();
      EXPECT_GT(nl.gating_cell_ratio, 0.0);
      EXPECT_LT(nl.gating_cell_ratio, 0.3);
      EXPECT_GT(nl.avg_clock_pin_energy, 0.0);
      EXPECT_GT(nl.avg_gating_latch_energy, nl.avg_clock_pin_energy);
    }
  }
}

TEST(Synthesis, TotalRegistersPlausibleAndMonotone) {
  const SynthesisModel model;
  const double small = model.total_registers(arch::boom_config("C1"));
  const double mid = model.total_registers(arch::boom_config("C8"));
  const double large = model.total_registers(arch::boom_config("C15"));
  EXPECT_GT(small, 5'000.0);
  EXPECT_LT(large, 200'000.0);
  EXPECT_LT(small, mid);
  EXPECT_LT(mid, large);
}

TEST(Synthesis, RegisterCountGrowsWithComponentParams) {
  // ROB registers grow with RobEntry (C2: 32 entries, C12: 136).
  const SynthesisModel model;
  const auto rob_small =
      model.synthesize(arch::boom_config("C2"), ComponentKind::kRob);
  const auto rob_large =
      model.synthesize(arch::boom_config("C12"), ComponentKind::kRob);
  EXPECT_GT(rob_large.register_count, 2.0 * rob_small.register_count);
}

TEST(Synthesis, NoiseIsSmall) {
  // The synthesis jitter must stay within its configured envelope:
  // compare two options levels.
  const SynthesisModel noisy(SynthesisOptions{.structural_noise = 0.02});
  const SynthesisModel clean(SynthesisOptions{.structural_noise = 0.0});
  for (ComponentKind c : arch::all_components()) {
    const auto a = noisy.synthesize(arch::boom_config("C5"), c);
    const auto b = clean.synthesize(arch::boom_config("C5"), c);
    EXPECT_NEAR(a.register_count / b.register_count, 1.0, 0.021);
    EXPECT_NEAR(a.comb_cell_count / b.comb_cell_count, 1.0, 0.031);
  }
}

TEST(Floorplan, TableIMetaExample) {
  // Paper Table I: IFU meta is width 30*FetchWidth, depth 8*DecodeWidth,
  // count 1 -> C1: 120x8x1, C15: 240x40x1.
  const SynthesisModel model;
  const auto find_meta = [&](const char* name) {
    const auto nl =
        model.synthesize(arch::boom_config(name), ComponentKind::kIfu);
    for (const auto& p : nl.sram_positions) {
      if (p.name == "meta") return p;
    }
    throw util::Error("meta not found");
  };
  const auto c1 = find_meta("C1");
  EXPECT_EQ(c1.block_width, 120);
  EXPECT_EQ(c1.block_depth, 8);
  EXPECT_EQ(c1.block_count, 1);
  const auto c15 = find_meta("C15");
  EXPECT_EQ(c15.block_width, 240);
  EXPECT_EQ(c15.block_depth, 40);
  EXPECT_EQ(c15.block_count, 1);
}

TEST(Floorplan, PositionsStableAcrossConfigs) {
  // Same positions, same order, for every configuration (the SRAM model
  // relies on this to align observations).
  const SynthesisModel model;
  for (ComponentKind c : arch::all_components()) {
    const auto ref = model.synthesize(arch::boom_config("C1"), c);
    for (const auto& cfg : arch::boom_design_space()) {
      const auto nl = model.synthesize(cfg, c);
      ASSERT_EQ(nl.sram_positions.size(), ref.sram_positions.size())
          << arch::component_name(c) << " " << cfg.name();
      for (std::size_t i = 0; i < nl.sram_positions.size(); ++i) {
        EXPECT_EQ(nl.sram_positions[i].name, ref.sram_positions[i].name);
      }
    }
  }
}

TEST(Floorplan, BlockShapesArePositive) {
  const SynthesisModel model;
  for (const auto& cfg : arch::boom_design_space()) {
    for (ComponentKind c : arch::all_components()) {
      for (const auto& p : model.synthesize(cfg, c).sram_positions) {
        EXPECT_GT(p.block_width, 0) << p.name;
        EXPECT_GT(p.block_depth, 0) << p.name;
        EXPECT_GT(p.block_count, 0) << p.name;
        EXPECT_GT(p.total_bits(), 0);
      }
    }
  }
}

TEST(Floorplan, SramComponentsMatchExpectation) {
  // Flop-based components have no SRAM; array components do.
  const SynthesisModel model;
  const auto& cfg = arch::boom_config("C8");
  EXPECT_TRUE(
      model.synthesize(cfg, ComponentKind::kFuPool).sram_positions.empty());
  EXPECT_TRUE(model.synthesize(cfg, ComponentKind::kIntIsu)
                  .sram_positions.empty());
  EXPECT_FALSE(model.synthesize(cfg, ComponentKind::kICacheDataArray)
                   .sram_positions.empty());
  EXPECT_EQ(
      model.synthesize(cfg, ComponentKind::kLsu).sram_positions.size(), 2u);
  EXPECT_EQ(
      model.synthesize(cfg, ComponentKind::kIfu).sram_positions.size(), 3u);
}

TEST(Floorplan, CapacityScalesWithParameters) {
  // ICache data capacity grows with ways; D-TLB with TlbEntry.
  const SynthesisModel model;
  const auto ic_small = model.synthesize(arch::boom_config("C1"),
                                         ComponentKind::kICacheDataArray);
  const auto ic_large = model.synthesize(arch::boom_config("C15"),
                                         ComponentKind::kICacheDataArray);
  EXPECT_GT(ic_large.sram_positions[0].total_bits(),
            ic_small.sram_positions[0].total_bits());
}

// Property sweep: every (config, component) synthesizes identically when
// called through synthesize_all and synthesize.
class SynthesisConsistency : public ::testing::TestWithParam<int> {};

TEST_P(SynthesisConsistency, AllMatchesSingle) {
  const SynthesisModel model;
  const auto& cfg = arch::boom_design_space()[static_cast<std::size_t>(
      GetParam())];
  const auto all = model.synthesize_all(cfg);
  for (ComponentKind c : arch::all_components()) {
    const auto one = model.synthesize(cfg, c);
    EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(c)].register_count,
                     one.register_count);
    EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(c)].gating_rate,
                     one.gating_rate);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, SynthesisConsistency,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace autopower::netlist
