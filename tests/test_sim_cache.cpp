// Tests for the set-associative cache model and synthetic streams.

#include <gtest/gtest.h>

#include <tuple>

#include "sim/cache.hpp"
#include "util/error.hpp"

namespace autopower::sim {
namespace {

TEST(Cache, GeometryValidation) {
  EXPECT_NO_THROW(SetAssocCache(64, 4, 64));
  EXPECT_THROW(SetAssocCache(63, 4, 64), util::InvalidArgument);
  EXPECT_THROW(SetAssocCache(64, 4, 60), util::InvalidArgument);
  EXPECT_THROW(SetAssocCache(64, 0, 64), util::InvalidArgument);
}

TEST(Cache, CapacityBytes) {
  SetAssocCache cache(64, 4, 64);
  EXPECT_EQ(cache.capacity_bytes(), 64u * 4u * 64u);
}

TEST(Cache, HitAfterFill) {
  SetAssocCache cache(16, 2, 64);
  EXPECT_FALSE(cache.access(0x1000));  // compulsory miss
  EXPECT_TRUE(cache.access(0x1000));   // now resident
  EXPECT_TRUE(cache.access(0x1030));   // same line
  EXPECT_FALSE(cache.access(0x1040));  // next line
}

TEST(Cache, LruEvictionOrder) {
  // Direct-mapped x 2 ways, 1 set worth of conflict: three lines mapping
  // to the same set evict the least recently used.
  SetAssocCache cache(1, 2, 64);
  EXPECT_FALSE(cache.access(0x0));    // A miss
  EXPECT_FALSE(cache.access(0x40));   // B miss
  EXPECT_TRUE(cache.access(0x0));     // A hit (B is LRU)
  EXPECT_FALSE(cache.access(0x80));   // C miss, evicts B
  EXPECT_TRUE(cache.access(0x0));     // A still resident
  EXPECT_FALSE(cache.access(0x40));   // B was evicted
}

TEST(Cache, ResetClears) {
  SetAssocCache cache(16, 2, 64);
  cache.access(0x1000);
  EXPECT_TRUE(cache.access(0x1000));
  cache.reset();
  EXPECT_FALSE(cache.access(0x1000));
}

TEST(Cache, SequentialStreamInsideCapacityHasLowMissRate) {
  SetAssocCache cache(64, 4, 64);  // 16 KiB
  StreamProfile s;
  s.footprint_kb = 8.0;  // fits
  s.stride_frac = 1.0;
  s.stride_bytes = 8;
  const double miss = measure_miss_rate(cache, s, 20000);
  // One miss per 8 sequential 8-byte refs in a 64-byte line on the first
  // pass, ~0 afterwards.
  EXPECT_LT(miss, 0.05);
}

TEST(Cache, RandomStreamOverCapacityMissesOften) {
  SetAssocCache cache(16, 2, 64);  // 2 KiB
  StreamProfile s;
  s.footprint_kb = 512.0;
  s.stride_frac = 0.0;
  const double miss = measure_miss_rate(cache, s, 20000);
  EXPECT_GT(miss, 0.9);
}

TEST(Cache, MissRateDeterministic) {
  SetAssocCache a(32, 4, 64);
  SetAssocCache b(32, 4, 64);
  StreamProfile s;
  s.footprint_kb = 64.0;
  s.stride_frac = 0.5;
  s.seed = 99;
  EXPECT_DOUBLE_EQ(measure_miss_rate(a, s, 10000),
                   measure_miss_rate(b, s, 10000));
}

TEST(Cache, RejectsNonPositiveAccessCount) {
  SetAssocCache cache(16, 2, 64);
  StreamProfile s;
  EXPECT_THROW((void)measure_miss_rate(cache, s, 0),
               util::InvalidArgument);
}

// Property: miss rate decreases (weakly) with capacity and associativity.
class CacheScaling
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CacheScaling, BiggerCachesMissLess) {
  const auto [ways, footprint] = GetParam();
  StreamProfile s;
  s.footprint_kb = footprint;
  s.stride_frac = 0.6;
  s.seed = 7;

  SetAssocCache small(32, ways, 64);
  SetAssocCache large(128, ways, 64);
  const double miss_small = measure_miss_rate(small, s, 30000);
  const double miss_large = measure_miss_rate(large, s, 30000);
  EXPECT_LE(miss_large, miss_small + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheScaling,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(4.0, 32.0, 256.0)));

TEST(Cache, AssociativityHelpsUnderConflicts) {
  // Same capacity, different associativity: higher associativity should
  // not be (much) worse on a mixed stream.
  StreamProfile s;
  s.footprint_kb = 24.0;
  s.stride_frac = 0.4;
  s.seed = 17;
  SetAssocCache direct(256, 1, 64);  // 16 KiB
  SetAssocCache assoc(32, 8, 64);    // 16 KiB
  const double miss_direct = measure_miss_rate(direct, s, 30000);
  const double miss_assoc = measure_miss_rate(assoc, s, 30000);
  EXPECT_LE(miss_assoc, miss_direct + 0.02);
}

}  // namespace
}  // namespace autopower::sim
