// Tests for the technology library: cell energies, the SRAM macro
// catalogue, and the block->macro mapping rule (including Eq. 9's N_col).

#include <gtest/gtest.h>

#include <tuple>

#include "techlib/sram_macro.hpp"
#include "techlib/techlib.hpp"
#include "util/error.hpp"

namespace autopower::techlib {
namespace {

TEST(TechLibrary, PlausibleEnergies) {
  const auto& lib = TechLibrary::default_40nm();
  EXPECT_GT(lib.clock_pin_energy, 0.0);
  EXPECT_GT(lib.gating_latch_energy, lib.clock_pin_energy);
  EXPECT_GT(lib.register_toggle_energy, 0.0);
  EXPECT_LT(lib.register_leakage, lib.register_toggle_energy);
  EXPECT_LT(lib.comb_leakage, lib.comb_toggle_energy);
}

TEST(TechLibrary, PowerConversionAtOneGhz) {
  const auto& lib = TechLibrary::default_40nm();
  EXPECT_DOUBLE_EQ(lib.frequency_ghz, 1.0);
  EXPECT_DOUBLE_EQ(lib.power_mw(2.5), 2.5);  // pJ/cycle == mW at 1 GHz
}

TEST(MacroLibrary, CatalogueIsComplete) {
  const auto& lib = SramMacroLibrary::default_40nm();
  EXPECT_EQ(lib.macros().size(), 8u * 7u);
  for (const auto& m : lib.macros()) {
    EXPECT_GT(m.width, 0);
    EXPECT_GT(m.depth, 0);
    EXPECT_GT(m.read_energy, 0.0);
    EXPECT_GT(m.write_energy, m.read_energy);  // writes cost more
    EXPECT_GT(m.leakage, 0.0);
  }
}

TEST(MacroLibrary, EnergiesGrowWithShape) {
  const auto& lib = SramMacroLibrary::default_40nm();
  EXPECT_LT(lib.find(8, 64).read_energy, lib.find(64, 64).read_energy);
  EXPECT_LT(lib.find(32, 64).read_energy, lib.find(32, 1024).read_energy);
}

TEST(MacroLibrary, FindRejectsUnsupportedShape) {
  const auto& lib = SramMacroLibrary::default_40nm();
  EXPECT_THROW((void)lib.find(7, 64), util::InvalidArgument);
  EXPECT_THROW((void)lib.find(8, 100), util::InvalidArgument);
}

TEST(MacroSpec, NameFormat) {
  const auto& lib = SramMacroLibrary::default_40nm();
  EXPECT_EQ(lib.find(32, 128).name(), "sram_32x128");
  EXPECT_EQ(lib.find(32, 128).bits(), 4096);
}

TEST(MacroMapping, ExactShapeUsesOneMacro) {
  const auto& lib = SramMacroLibrary::default_40nm();
  const auto m = map_block_to_macros(lib, 64, 256);
  EXPECT_EQ(m.per_row, 1);
  EXPECT_EQ(m.per_col, 1);
  EXPECT_EQ(m.macro.width, 64);
  EXPECT_EQ(m.macro.depth, 256);
}

TEST(MacroMapping, DeepBlockStacksColumns) {
  const auto& lib = SramMacroLibrary::default_40nm();
  const auto m = map_block_to_macros(lib, 64, 2048);
  EXPECT_EQ(m.per_row, 1);
  EXPECT_EQ(m.per_col, 2);  // 2 x 64x1024: N_col = 2 for Eq. 9
  EXPECT_EQ(m.macro.depth, 1024);
}

TEST(MacroMapping, WideBlockTilesRows) {
  const auto& lib = SramMacroLibrary::default_40nm();
  const auto m = map_block_to_macros(lib, 128, 64);
  EXPECT_GE(m.per_row, 2);
  EXPECT_EQ(m.per_row * m.macro.width >= 128, true);
}

TEST(MacroMapping, RejectsBadShapes) {
  const auto& lib = SramMacroLibrary::default_40nm();
  EXPECT_THROW((void)map_block_to_macros(lib, 0, 64),
               util::InvalidArgument);
  EXPECT_THROW((void)map_block_to_macros(lib, 64, -1),
               util::InvalidArgument);
}

TEST(MacroMapping, Deterministic) {
  const auto& lib = SramMacroLibrary::default_40nm();
  const auto a = map_block_to_macros(lib, 120, 40);
  const auto b = map_block_to_macros(lib, 120, 40);
  EXPECT_EQ(a.macro.width, b.macro.width);
  EXPECT_EQ(a.macro.depth, b.macro.depth);
  EXPECT_EQ(a.per_row, b.per_row);
  EXPECT_EQ(a.per_col, b.per_col);
}

// Property sweep: for any block shape, the macro grid covers the block and
// never wastes more than one macro row/column of bits in each dimension.
class MappingCoverage
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MappingCoverage, GridCoversBlockTightly) {
  const auto [width, depth] = GetParam();
  const auto& lib = SramMacroLibrary::default_40nm();
  const auto m = map_block_to_macros(lib, width, depth);

  // Coverage.
  EXPECT_GE(m.per_row * m.macro.width, width);
  EXPECT_GE(m.per_col * m.macro.depth, depth);
  // Tightness: removing a row or column of macros must not still cover.
  EXPECT_LT((m.per_row - 1) * m.macro.width, width);
  EXPECT_LT((m.per_col - 1) * m.macro.depth, depth);
  // N_col consistency with total.
  EXPECT_EQ(m.total(), m.per_row * m.per_col);
}

INSTANTIATE_TEST_SUITE_P(
    BlockShapes, MappingCoverage,
    ::testing::Combine(
        ::testing::Values(1, 8, 21, 35, 64, 88, 120, 240, 350),
        ::testing::Values(1, 8, 16, 40, 64, 140, 256, 2048)));

}  // namespace
}  // namespace autopower::techlib
