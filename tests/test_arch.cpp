// Tests for the architecture description: Table II configurations,
// Table III component/parameter mapping, and the event schema.

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>

#include "arch/component.hpp"
#include "arch/events.hpp"
#include "arch/params.hpp"
#include "util/error.hpp"

namespace autopower::arch {
namespace {

TEST(Params, FifteenConfigurations) {
  const auto& configs = boom_design_space();
  ASSERT_EQ(configs.size(), 15u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(configs[i].name(), "C" + std::to_string(i + 1));
  }
}

TEST(Params, TableIISpotChecks) {
  // Cross-checked against the paper's Table II.
  const auto& c1 = boom_config("C1");
  EXPECT_EQ(c1.value(HwParam::kFetchWidth), 4);
  EXPECT_EQ(c1.value(HwParam::kDecodeWidth), 1);
  EXPECT_EQ(c1.value(HwParam::kFetchBufferEntry), 5);
  EXPECT_EQ(c1.value(HwParam::kRobEntry), 16);
  EXPECT_EQ(c1.value(HwParam::kIntPhyRegister), 36);
  EXPECT_EQ(c1.value(HwParam::kCacheWay), 2);

  const auto& c9 = boom_config("C9");
  EXPECT_EQ(c9.value(HwParam::kRobEntry), 114);
  EXPECT_EQ(c9.value(HwParam::kMemFpIssueWidth), 2);
  EXPECT_EQ(c9.value(HwParam::kTlbEntry), 32);

  const auto& c15 = boom_config("C15");
  EXPECT_EQ(c15.value(HwParam::kFetchWidth), 8);
  EXPECT_EQ(c15.value(HwParam::kDecodeWidth), 5);
  EXPECT_EQ(c15.value(HwParam::kFetchBufferEntry), 40);
  EXPECT_EQ(c15.value(HwParam::kRobEntry), 140);
  EXPECT_EQ(c15.value(HwParam::kMshrEntry), 8);
  EXPECT_EQ(c15.value(HwParam::kICacheFetchBytes), 4);
}

TEST(Params, MonotoneScaleAcrossDesignSpace) {
  // The design space is ordered small -> large; key capacity parameters
  // never shrink drastically and the corners are the extremes.
  const auto& c1 = boom_config("C1");
  const auto& c15 = boom_config("C15");
  for (HwParam p : all_hw_params()) {
    EXPECT_LE(c1.value(p), c15.value(p))
        << hw_param_name(p) << " should grow from C1 to C15";
  }
}

TEST(Params, RobBankingStaysIntegral) {
  // The ROB SRAM floorplan relies on RobEntry % DecodeWidth == 0; the
  // paper's Table II design space satisfies it everywhere.
  for (const auto& cfg : boom_design_space()) {
    EXPECT_EQ(cfg.value(HwParam::kRobEntry) %
                  cfg.value(HwParam::kDecodeWidth),
              0)
        << cfg.name();
  }
}

TEST(Params, UnknownConfigThrows) {
  EXPECT_THROW(boom_config("C16"), util::InvalidArgument);
  EXPECT_THROW(boom_config(""), util::InvalidArgument);
}

TEST(Params, FeatureExtraction) {
  const auto& c1 = boom_config("C1");
  const auto all = c1.as_features();
  ASSERT_EQ(all.size(), kNumHwParams);
  EXPECT_DOUBLE_EQ(all[0], 4.0);  // FetchWidth

  const std::array params{HwParam::kDecodeWidth, HwParam::kRobEntry};
  const auto sub = c1.features_for(params);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub[0], 1.0);
  EXPECT_DOUBLE_EQ(sub[1], 16.0);
}

TEST(Params, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (HwParam p : all_hw_params()) {
    EXPECT_FALSE(hw_param_name(p).empty());
    names.insert(hw_param_name(p));
  }
  EXPECT_EQ(names.size(), kNumHwParams);
}

TEST(Components, TwentyTwoComponents) {
  EXPECT_EQ(all_components().size(), kNumComponents);
  std::set<std::string_view> names;
  for (ComponentKind c : all_components()) {
    EXPECT_FALSE(component_name(c).empty());
    names.insert(component_name(c));
  }
  EXPECT_EQ(names.size(), kNumComponents);
}

TEST(Components, TableIIIMappingSpotChecks) {
  // IFU: FetchWidth, DecodeWidth, FetchBufferEntry.
  const auto ifu = component_hw_params(ComponentKind::kIfu);
  ASSERT_EQ(ifu.size(), 3u);
  EXPECT_EQ(ifu[0], HwParam::kFetchWidth);
  EXPECT_EQ(ifu[1], HwParam::kDecodeWidth);
  EXPECT_EQ(ifu[2], HwParam::kFetchBufferEntry);

  // ROB: DecodeWidth, RobEntry.
  const auto rob = component_hw_params(ComponentKind::kRob);
  ASSERT_EQ(rob.size(), 2u);
  EXPECT_EQ(rob[0], HwParam::kDecodeWidth);
  EXPECT_EQ(rob[1], HwParam::kRobEntry);

  // DCacheMSHR: MSHREntry only.
  const auto mshr = component_hw_params(ComponentKind::kDCacheMshr);
  ASSERT_EQ(mshr.size(), 1u);
  EXPECT_EQ(mshr[0], HwParam::kMshrEntry);

  // Other Logic: all parameters.
  EXPECT_EQ(component_hw_params(ComponentKind::kOtherLogic).size(),
            kNumHwParams);
}

TEST(Components, EveryComponentHasParamsAndEvents) {
  for (ComponentKind c : all_components()) {
    EXPECT_FALSE(component_hw_params(c).empty())
        << component_name(c);
    EXPECT_FALSE(component_events(c).empty()) << component_name(c);
  }
}

TEST(Events, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    const auto name = event_name(static_cast<EventKind>(i));
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kNumEvents);
}

TEST(Events, RateSemantics) {
  EventVector ev;
  EXPECT_DOUBLE_EQ(ev.rate(EventKind::kInstructions), 0.0);  // 0 cycles
  ev[EventKind::kCycles] = 100.0;
  ev[EventKind::kInstructions] = 150.0;
  EXPECT_DOUBLE_EQ(ev.rate(EventKind::kInstructions), 1.5);
  EXPECT_DOUBLE_EQ(ev.rate(EventKind::kCycles), 1.0);
}

TEST(Events, AccumulationAddsEverything) {
  EventVector a;
  a[EventKind::kCycles] = 50.0;
  a[EventKind::kLoads] = 10.0;
  a[EventKind::kRobOccupancy] = 500.0;  // occupancy integral
  EventVector b;
  b[EventKind::kCycles] = 50.0;
  b[EventKind::kLoads] = 30.0;
  b[EventKind::kRobOccupancy] = 1500.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.cycles(), 100.0);
  EXPECT_DOUBLE_EQ(a[EventKind::kLoads], 40.0);
  // Average occupancy of the union: (500 + 1500) / 100 = 20.
  EXPECT_DOUBLE_EQ(a.rate(EventKind::kRobOccupancy), 20.0);
}

TEST(Events, ComponentEventFeaturesAlign) {
  EventVector ev;
  ev[EventKind::kCycles] = 10.0;
  ev[EventKind::kDispatchedUops] = 20.0;
  const auto features =
      component_event_features(ComponentKind::kRob, ev);
  const auto names = component_event_feature_names(ComponentKind::kRob);
  ASSERT_EQ(features.size(), names.size());
  // kDispatchedUops is the first ROB event.
  EXPECT_EQ(names[0], "E.DispatchedUops");
  EXPECT_DOUBLE_EQ(features[0], 2.0);
}

}  // namespace
}  // namespace autopower::arch
