// Tests for the experiment harness: dataset building, training-set
// selection, accuracy summaries, trace metrics, and the end-to-end
// method comparison (the paper's headline claim as an integration test).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "exp/accuracy.hpp"
#include "exp/harness.hpp"
#include "exp/trace.hpp"
#include "util/error.hpp"

namespace autopower::exp {
namespace {

class ExpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim_ = new sim::PerfSimulator();
    golden_ = new power::GoldenPowerModel();
    data_ = new ExperimentData(ExperimentData::build(*sim_, *golden_));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete golden_;
    delete sim_;
  }

  static sim::PerfSimulator* sim_;
  static power::GoldenPowerModel* golden_;
  static ExperimentData* data_;
};

sim::PerfSimulator* ExpTest::sim_ = nullptr;
power::GoldenPowerModel* ExpTest::golden_ = nullptr;
ExperimentData* ExpTest::data_ = nullptr;

TEST_F(ExpTest, GridIsComplete) {
  // 15 configurations x 8 workloads.
  EXPECT_EQ(data_->samples().size(), 120u);
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& s : data_->samples()) {
    EXPECT_GT(s.golden.total(), 0.0);
    EXPECT_GT(s.ctx.events.cycles(), 0.0);
    seen.insert({s.ctx.cfg->name(), s.ctx.workload});
  }
  EXPECT_EQ(seen.size(), 120u);
}

TEST_F(ExpTest, TrainingConfigSelection) {
  EXPECT_EQ(ExperimentData::training_configs(2),
            (std::vector<std::string>{"C1", "C15"}));
  EXPECT_EQ(ExperimentData::training_configs(3),
            (std::vector<std::string>{"C1", "C8", "C15"}));
  const auto k5 = ExperimentData::training_configs(5);
  EXPECT_EQ(k5.size(), 5u);
  EXPECT_EQ(k5.front(), "C1");
  EXPECT_EQ(k5.back(), "C15");
  // All distinct.
  EXPECT_EQ(std::set<std::string>(k5.begin(), k5.end()).size(), 5u);
  EXPECT_EQ(ExperimentData::training_configs(15).size(), 15u);
  EXPECT_THROW((void)ExperimentData::training_configs(1),
               util::InvalidArgument);
  EXPECT_THROW((void)ExperimentData::training_configs(16),
               util::InvalidArgument);
}

TEST_F(ExpTest, ContextAndExclusionViews) {
  const auto train = ExperimentData::training_configs(2);
  const auto ctx = data_->contexts_of(train);
  EXPECT_EQ(ctx.size(), 16u);  // 2 configs x 8 workloads
  const auto rest = data_->samples_excluding(train);
  EXPECT_EQ(rest.size(), 104u);
  for (const auto* s : rest) {
    EXPECT_NE(s->ctx.cfg->name(), "C1");
    EXPECT_NE(s->ctx.cfg->name(), "C15");
  }
  const std::vector<std::string> unknown{"C99"};
  EXPECT_THROW((void)data_->contexts_of(unknown), util::InvalidArgument);
}

TEST_F(ExpTest, AccuracySummary) {
  const std::vector<double> actual{100.0, 200.0, 300.0};
  const std::vector<double> pred{110.0, 190.0, 310.0};
  const auto acc = compute_accuracy(actual, pred);
  EXPECT_NEAR(acc.mape, (10.0 + 5.0 + 10.0 / 3.0) / 3.0, 1e-9);
  EXPECT_GT(acc.r2, 0.95);
  EXPECT_GT(acc.pearson, 0.99);
  EXPECT_EQ(acc.n, 3u);
  EXPECT_FALSE(acc.to_string().empty());
}

TEST_F(ExpTest, TraceErrorsMetrics) {
  const std::vector<double> golden{10.0, 20.0, 30.0};
  const std::vector<double> pred{11.0, 18.0, 33.0};
  const auto err = trace_errors(golden, pred);
  EXPECT_NEAR(err.max_power_error, 10.0, 1e-9);   // 33 vs 30
  EXPECT_NEAR(err.min_power_error, 10.0, 1e-9);   // 11 vs 10
  EXPECT_NEAR(err.average_error, (10.0 + 10.0 + 10.0) / 3.0, 1e-9);
  EXPECT_THROW((void)trace_errors(golden, {}), util::InvalidArgument);
}

TEST_F(ExpTest, BuildTraceProducesAlignedWindows) {
  const auto& cfg = arch::boom_config("C2");
  const auto trace = build_trace(*sim_, *golden_, cfg,
                                 workload::workload_by_name("towers"));
  ASSERT_FALSE(trace.windows.empty());
  EXPECT_EQ(trace.windows.size(), trace.golden_total.size());
  EXPECT_EQ(trace.window_cycles, 50);
  EXPECT_GT(trace.total_cycles, 0.0);
  for (const auto& w : trace.windows) {
    EXPECT_EQ(w.cfg, &cfg);
    EXPECT_EQ(w.workload, "towers");
  }
}

TEST_F(ExpTest, HeadlineComparisonShape) {
  // The paper's central claim as an integration test: at k=2, AutoPower
  // beats McPAT-Calib on MAPE and R^2, and beats the +Component ablation.
  MethodSelection sel;
  sel.autopower_minus = true;
  const auto results = compare_methods(*data_, *golden_, 2, sel);
  ASSERT_EQ(results.size(), 4u);
  const auto& autopower = results[0];
  const auto& mcpat = results[1];
  const auto& mcpat_comp = results[2];
  const auto& minus = results[3];

  EXPECT_EQ(autopower.method, "AutoPower");
  EXPECT_LT(autopower.accuracy.mape, mcpat.accuracy.mape);
  EXPECT_LT(autopower.accuracy.mape, mcpat_comp.accuracy.mape);
  EXPECT_LT(autopower.accuracy.mape, minus.accuracy.mape);
  EXPECT_GT(autopower.accuracy.r2, mcpat.accuracy.r2);
  // Absolute bands (generous envelopes around the paper's numbers).
  EXPECT_LT(autopower.accuracy.mape, 7.0);
  EXPECT_GT(autopower.accuracy.r2, 0.9);
  EXPECT_GT(mcpat.accuracy.mape, 6.0);
}

TEST_F(ExpTest, EvaluatePredictorAlignsSamples) {
  const auto train = ExperimentData::training_configs(2);
  const auto result = evaluate_predictor(
      *data_, train, "golden-oracle",
      [&](const core::EvalContext& ctx) {
        return golden_->evaluate(*ctx.cfg, ctx.events).total();
      });
  EXPECT_EQ(result.method, "golden-oracle");
  EXPECT_EQ(result.actual.size(), 104u);
  EXPECT_NEAR(result.accuracy.mape, 0.0, 1e-9);
  EXPECT_NEAR(result.accuracy.r2, 1.0, 1e-12);
  EXPECT_EQ(result.sample_names.size(), 104u);
  EXPECT_EQ(result.sample_names[0].substr(0, 3), "C2/");
}

}  // namespace
}  // namespace autopower::exp
