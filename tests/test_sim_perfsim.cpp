// Tests for the out-of-order performance simulator (gem5 stand-in):
// determinism, event-stream consistency invariants, configuration
// sensitivity, and trace/aggregate agreement.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/perfsim.hpp"
#include "util/error.hpp"

namespace autopower::sim {
namespace {

using arch::EventKind;
using arch::HwParam;

const workload::WorkloadProfile& wl(const char* name) {
  return workload::workload_by_name(name);
}

TEST(PerfSim, Deterministic) {
  PerfSimulator a;
  PerfSimulator b;
  const auto& cfg = arch::boom_config("C6");
  const auto ea = a.simulate(cfg, wl("qsort"));
  const auto eb = b.simulate(cfg, wl("qsort"));
  for (std::size_t i = 0; i < arch::kNumEvents; ++i) {
    const auto k = static_cast<EventKind>(i);
    EXPECT_DOUBLE_EQ(ea[k], eb[k]) << arch::event_name(k);
  }
}

TEST(PerfSim, InstructionsMatchWorkload) {
  PerfSimulator sim;
  const auto& w = wl("dhrystone");
  const auto ev = sim.simulate(arch::boom_config("C4"), w);
  EXPECT_NEAR(ev[EventKind::kInstructions],
              static_cast<double>(w.instructions),
              0.01 * static_cast<double>(w.instructions));
}

TEST(PerfSim, IpcWithinStructuralBounds) {
  PerfSimulator sim;
  for (const auto& cfg : arch::boom_design_space()) {
    for (const auto& w : workload::riscv_tests_workloads()) {
      const auto ev = sim.simulate(cfg, w);
      const double ipc = ev.rate(EventKind::kInstructions);
      EXPECT_GT(ipc, 0.0) << cfg.name() << "/" << w.name;
      EXPECT_LE(ipc, cfg.value_d(HwParam::kDecodeWidth) + 1e-9)
          << cfg.name() << "/" << w.name;
    }
  }
}

TEST(PerfSim, EventConsistencyInvariants) {
  PerfSimulator sim;
  for (const char* cname : {"C1", "C8", "C15"}) {
    const auto& cfg = arch::boom_config(cname);
    for (const auto& w : workload::riscv_tests_workloads()) {
      const auto ev = sim.simulate(cfg, w);
      // Speculative streams are supersets of the committed stream.
      EXPECT_GE(ev[EventKind::kDecodedUops],
                ev[EventKind::kCommittedUops] * 0.999);
      // Misses never exceed accesses.
      EXPECT_LE(ev[EventKind::kICacheMisses],
                ev[EventKind::kICacheAccesses] + 1e-9);
      EXPECT_LE(ev[EventKind::kDcacheMisses],
                ev[EventKind::kDcacheAccesses] + 1e-9);
      EXPECT_LE(ev[EventKind::kDtlbMisses],
                ev[EventKind::kDtlbAccesses] + 1e-9);
      // Mispredicts never exceed branches.
      EXPECT_LE(ev[EventKind::kBpMispredicts],
                ev[EventKind::kBranches] + 1e-9);
      // Occupancy averages stay within the structures.
      EXPECT_LE(ev.rate(EventKind::kRobOccupancy),
                cfg.value_d(HwParam::kRobEntry));
      EXPECT_LE(ev.rate(EventKind::kLdqOcc),
                cfg.value_d(HwParam::kLdqStqEntry));
      EXPECT_LE(ev.rate(EventKind::kFetchBufferOcc),
                cfg.value_d(HwParam::kFetchBufferEntry));
      // Instruction classes sum to the committed instructions.
      const double classes =
          ev[EventKind::kBranches] + ev[EventKind::kLoads] +
          ev[EventKind::kStores] + ev[EventKind::kIntAluInstrs] +
          ev[EventKind::kMulDivInstrs] + ev[EventKind::kFpInstrs];
      EXPECT_NEAR(classes, ev[EventKind::kInstructions],
                  0.001 * ev[EventKind::kInstructions]);
    }
  }
}

TEST(PerfSim, WiderMachineIsFaster) {
  PerfSimulator sim;
  // C4 (DecodeWidth 2) vs C13 (DecodeWidth 5), same workload with ILP to
  // exploit.
  const double ipc_narrow =
      sim.simulate(arch::boom_config("C4"), wl("vvadd"))
          .rate(EventKind::kInstructions);
  const double ipc_wide =
      sim.simulate(arch::boom_config("C13"), wl("vvadd"))
          .rate(EventKind::kInstructions);
  EXPECT_GT(ipc_wide, ipc_narrow);
}

TEST(PerfSim, BiggerCachesMissLess) {
  PerfSimulator sim;
  // C1: 2-way caches vs C3: 8-way, same decode width 1.
  const auto small = sim.simulate(arch::boom_config("C1"), wl("qsort"));
  const auto large = sim.simulate(arch::boom_config("C3"), wl("qsort"));
  EXPECT_LT(large[EventKind::kDcacheMisses] /
                large[EventKind::kDcacheAccesses],
            small[EventKind::kDcacheMisses] /
                    small[EventKind::kDcacheAccesses] +
                1e-9);
}

TEST(PerfSim, BranchyWorkloadMispredictsMore) {
  PerfSimulator sim;
  const auto& cfg = arch::boom_config("C8");
  const auto regular = sim.simulate(cfg, wl("vvadd"));
  const auto chaotic = sim.simulate(cfg, wl("qsort"));
  const double miss_regular = regular[EventKind::kBpMispredicts] /
                              regular[EventKind::kBranches];
  const double miss_chaotic = chaotic[EventKind::kBpMispredicts] /
                              chaotic[EventKind::kBranches];
  EXPECT_GT(miss_chaotic, miss_regular);
}

TEST(PerfSim, PhaseRatesExposedAndMemoised) {
  PerfSimulator sim;
  const auto& cfg = arch::boom_config("C5");
  const auto& w = wl("gemm");
  const auto& pr0 = sim.phase_rates(cfg, w, 0);
  EXPECT_GT(pr0.ipc, 0.0);
  const auto& again = sim.phase_rates(cfg, w, 0);
  EXPECT_EQ(&pr0, &again);  // memoised: same object
  EXPECT_THROW((void)sim.phase_rates(cfg, w, 99), util::InvalidArgument);
}

TEST(PerfSim, TraceCoversWholeRun) {
  SimOptions opt;
  opt.window_cycles = 50;
  PerfSimulator sim(opt);
  const auto& cfg = arch::boom_config("C8");
  const auto& w = wl("median");
  const auto aggregate = sim.simulate(cfg, w);
  const auto windows = sim.simulate_trace(cfg, w);
  ASSERT_FALSE(windows.empty());

  double cycles = 0.0;
  double instrs = 0.0;
  for (const auto& win : windows) {
    cycles += win.cycles();
    instrs += win[EventKind::kInstructions];
  }
  EXPECT_NEAR(cycles, aggregate.cycles(), 51.0);  // last partial window
  // Window modulation is zero-mean-ish: totals agree within a few %.
  EXPECT_NEAR(instrs, aggregate[EventKind::kInstructions],
              0.03 * aggregate[EventKind::kInstructions]);
}

TEST(PerfSim, TraceWindowsHaveFixedLength) {
  PerfSimulator sim;
  const auto windows =
      sim.simulate_trace(arch::boom_config("C2"), wl("towers"));
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    EXPECT_NEAR(windows[i].cycles(), 50.0, 1e-6) << "window " << i;
  }
}

TEST(PerfSim, TraceShowsPhaseVariation) {
  // GEMM's pack/compute/writeback phases must leave a visible power-
  // relevant signature (fp activity varies across windows).
  PerfSimulator sim;
  const auto windows =
      sim.simulate_trace(arch::boom_config("C4"), wl("gemm"));
  double min_fp = 1e18;
  double max_fp = -1.0;
  for (const auto& w : windows) {
    min_fp = std::min(min_fp, w[EventKind::kFpInstrs]);
    max_fp = std::max(max_fp, w[EventKind::kFpInstrs]);
  }
  EXPECT_GT(max_fp, 2.0 * (min_fp + 1e-9));
}

TEST(PerfSim, MultiMillionCycleTraces) {
  // Paper Sec. III-B5: GEMM/SPMM run for millions of cycles.
  PerfSimulator sim;
  const auto ev = sim.simulate(arch::boom_config("C3"), wl("gemm"));
  EXPECT_GT(ev.cycles(), 1'000'000.0);
}

}  // namespace
}  // namespace autopower::sim
