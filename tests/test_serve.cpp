// Tests for the batch serving subsystem (src/serve/): thread-pool
// lifecycle and graceful shutdown, model registry snapshots, eval-cache
// hit/miss behaviour and cross-thread consistency, batch-engine
// determinism against the serial predict loop, and the JSONL wire format.
//
// This suite is built as its own binary so tools/check.sh can run it
// under the ThreadSanitizer preset in isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "core/autopower.hpp"
#include "power/golden.hpp"
#include "serve/engine.hpp"
#include "serve/eval_cache.hpp"
#include "serve/jsonl.hpp"
#include "serve/registry.hpp"
#include "sim/perfsim.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

namespace autopower::serve {
namespace {

// --- Shared trained model fixture -------------------------------------------

core::EvalContext make_context(const sim::PerfSimulator& sim,
                               const std::string& config,
                               const std::string& workload) {
  core::EvalContext ctx;
  ctx.cfg = &arch::boom_config(config);
  ctx.workload = workload;
  const auto& profile = workload::workload_by_name(workload);
  ctx.program = workload::program_features(profile);
  ctx.events = sim.simulate(*ctx.cfg, profile);
  return ctx;
}

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::PerfSimulator sim;
    power::GoldenPowerModel golden;
    std::vector<core::EvalContext> train;
    for (const std::string config : {"C1", "C15"}) {
      for (const auto& w : workload::riscv_tests_workloads()) {
        train.push_back(make_context(sim, config, w.name));
      }
    }
    auto model = std::make_shared<core::AutoPowerModel>();
    model->train(train, golden);
    model_ = new std::shared_ptr<const core::AutoPowerModel>(std::move(model));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  static std::shared_ptr<const core::AutoPowerModel> model() {
    return *model_;
  }

  static std::shared_ptr<const core::AutoPowerModel>* model_;
};

std::shared_ptr<const core::AutoPowerModel>* ServeTest::model_ = nullptr;

// --- ThreadPool (now hosted in util/, exercised here alongside its main
// consumer) -------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> counter{0};
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWork) {
  std::atomic<int> counter{0};
  util::ThreadPool pool(2);
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      counter.fetch_add(1);
    });
  }
  // Most tasks are still queued here; a graceful shutdown must run them
  // all before joining rather than dropping the queue.
  pool.shutdown();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  util::ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), util::Error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillWorkers) {
  std::atomic<int> counter{0};
  util::ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("request failed"); });
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

// --- ModelRegistry -----------------------------------------------------------

class RegistryTest : public ServeTest {};

TEST_F(RegistryTest, CachesSnapshotsByPath) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "autopower_registry_test.ap")
                        .string();
  model()->save_to_file(path);

  ModelRegistry registry;
  const auto a = registry.get(path);
  const auto b = registry.get(path);
  EXPECT_EQ(a.get(), b.get());  // one snapshot, shared
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(a->trained());

  // reload publishes a fresh snapshot; the old handle stays valid.
  const auto c = registry.reload(path);
  EXPECT_NE(a.get(), c.get());
  EXPECT_DOUBLE_EQ(a->predict_total(make_context(sim::PerfSimulator{}, "C8",
                                                 "dhrystone")),
                   c->predict_total(make_context(sim::PerfSimulator{}, "C8",
                                                 "dhrystone")));

  registry.erase(path);
  EXPECT_EQ(registry.size(), 0u);
  std::remove(path.c_str());
}

TEST_F(RegistryTest, MissingArchiveThrows) {
  ModelRegistry registry;
  EXPECT_THROW((void)registry.get("/nonexistent/model.ap"), util::Error);
}

// --- EvalCache ---------------------------------------------------------------

TEST(EvalCacheTest, MissThenHitReturnsSameContext) {
  EvalCache cache(4);
  sim::PerfSimulator sim;
  const auto a = cache.get_or_compute("C3", "dhrystone", sim);
  const auto b = cache.get_or_compute("C3", "dhrystone", sim);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);

  (void)cache.get_or_compute("C4", "qsort", sim);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EvalCacheTest, CachedContextMatchesDirectComputation) {
  EvalCache cache;
  sim::PerfSimulator sim;
  const auto cached = cache.get_or_compute("C5", "towers", sim);
  const auto direct = make_context(sim, "C5", "towers");
  EXPECT_EQ(cached->cfg, direct.cfg);
  for (std::size_t i = 0; i < arch::kNumEvents; ++i) {
    const auto kind = static_cast<arch::EventKind>(i);
    EXPECT_EQ(cached->events[kind], direct.events[kind]);
  }
}

TEST(EvalCacheTest, UnknownNamesThrow) {
  EvalCache cache;
  sim::PerfSimulator sim;
  EXPECT_THROW((void)cache.get_or_compute("C99", "dhrystone", sim),
               util::Error);
  EXPECT_THROW((void)cache.get_or_compute("C1", "nonsense", sim),
               util::Error);
}

TEST(EvalCacheTest, CrossThreadLookupsAgree) {
  EvalCache cache(8);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const core::EvalContext>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &seen, t] {
        sim::PerfSimulator sim;  // thread-private, as the contract requires
        seen[t] = cache.get_or_compute("C7", "spmv", sim);
      });
    }
    for (auto& th : threads) th.join();
  }
  // Every thread must observe the one published context, even if several
  // raced on the initial miss.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[0].get(), seen[t].get());
  }
  EXPECT_EQ(cache.size(), 1u);
  const auto stats = cache.stats();
  EXPECT_GE(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads));
}

// --- BatchEngine -------------------------------------------------------------

class EngineTest : public ServeTest {};

std::vector<BatchRequest> grid_requests(PredictMode mode) {
  std::vector<BatchRequest> requests;
  for (const auto& cfg : arch::boom_design_space()) {
    for (const std::string wl : {"dhrystone", "qsort", "towers", "spmv"}) {
      requests.push_back({cfg.name(), wl, mode});
    }
  }
  return requests;
}

TEST_F(EngineTest, ParallelRunMatchesSerialPredictLoopExactly) {
  const auto requests = grid_requests(PredictMode::kTotal);

  // The serial baseline: the plain predict loop the engine replaces.
  sim::PerfSimulator sim;
  std::vector<double> serial;
  serial.reserve(requests.size());
  for (const auto& r : requests) {
    serial.push_back(model()->predict_total(make_context(sim, r.config,
                                                         r.workload)));
  }

  BatchEngine engine(model(), {.threads = 8});
  const auto responses = engine.run(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok) << responses[i].error;
    EXPECT_EQ(responses[i].index, i);
    EXPECT_EQ(responses[i].config, requests[i].config);
    EXPECT_EQ(responses[i].workload, requests[i].workload);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(responses[i].total_mw, serial[i]);
  }
}

TEST_F(EngineTest, ThreadCountDoesNotChangeResults) {
  const auto requests = grid_requests(PredictMode::kTotal);
  BatchEngine serial_engine(model(), {.threads = 1});
  BatchEngine parallel_engine(model(), {.threads = 8});
  const auto a = serial_engine.run(requests);
  const auto b = parallel_engine.run(requests);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].total_mw, b[i].total_mw);
  }
}

TEST_F(EngineTest, PerComponentAndTraceModes) {
  // Trace mode on a riscv-tests workload: same code path as the GEMM/SPMM
  // kernels at a fraction of the window count (keeps the tsan run fast).
  std::vector<BatchRequest> requests = {
      {"C8", "median", PredictMode::kPerComponent},
      {"C3", "qsort", PredictMode::kTrace},
  };
  BatchEngine engine(model(), {.threads = 2});
  const auto responses = engine.run(requests);
  ASSERT_EQ(responses.size(), 2u);

  ASSERT_TRUE(responses[0].ok) << responses[0].error;
  ASSERT_EQ(responses[0].components.size(), arch::kNumComponents);
  sim::PerfSimulator sim;
  const auto direct = model()->predict(make_context(sim, "C8", "median"));
  EXPECT_EQ(responses[0].total_mw, direct.total());
  EXPECT_EQ(responses[0].components[0].clock_mw,
            direct.components[0].groups.clock);

  ASSERT_TRUE(responses[1].ok) << responses[1].error;
  EXPECT_GT(responses[1].trace_mw.size(), 100u);
  for (const double mw : responses[1].trace_mw) EXPECT_GT(mw, 0.0);
}

TEST_F(EngineTest, BadRequestFailsAloneNotTheBatch) {
  std::vector<BatchRequest> requests = {
      {"C1", "dhrystone", PredictMode::kTotal},
      {"C99", "dhrystone", PredictMode::kTotal},
      {"C2", "no_such_workload", PredictMode::kTotal},
      {"C2", "vvadd", PredictMode::kTotal},
  };
  BatchEngine engine(model(), {.threads = 4});
  const auto responses = engine.run(requests);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_FALSE(responses[1].ok);
  EXPECT_NE(responses[1].error.find("C99"), std::string::npos);
  EXPECT_FALSE(responses[2].ok);
  EXPECT_TRUE(responses[3].ok);
}

TEST_F(EngineTest, CachesDeduplicateRepeatedRequests) {
  std::vector<BatchRequest> requests;
  for (int i = 0; i < 40; ++i) {
    requests.push_back({"C6", "rsort", PredictMode::kTotal});
  }
  BatchEngine engine(model(), {.threads = 4});
  const auto responses = engine.run(requests);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok);
    EXPECT_EQ(responses[i].index, i);
    EXPECT_EQ(responses[i].total_mw, responses[0].total_mw);
  }
  // Response memo: at most one transient duplicate computation per worker
  // thread; everything else is a hit.
  const auto rs = engine.response_stats();
  EXPECT_LE(rs.misses, 4u);
  EXPECT_GE(rs.hits, 40u - rs.misses);
  // Eval cache: only the response-memo misses ever reached it.
  EXPECT_EQ(engine.cache().size(), 1u);
  EXPECT_LE(engine.cache().stats().misses, rs.misses);
}

TEST_F(EngineTest, MemoDisabledStillDeterministic) {
  std::vector<BatchRequest> requests(
      20, BatchRequest{"C9", "multiply", PredictMode::kTotal});
  BatchEngine memo_on(model(), {.threads = 4});
  BatchEngine memo_off(model(),
                       {.threads = 4, .memoize_responses = false});
  const auto a = memo_on.run(requests);
  const auto b = memo_off.run(requests);
  EXPECT_EQ(memo_off.response_stats().hits, 0u);
  EXPECT_EQ(memo_off.response_stats().misses, 0u);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(a[i].total_mw, b[i].total_mw);
  }
}

TEST_F(EngineTest, EmptyBatchAndNullModel) {
  BatchEngine engine(model(), {.threads = 2});
  EXPECT_TRUE(engine.run({}).empty());
  EXPECT_THROW(BatchEngine(nullptr, {}), util::Error);
}

// --- JSONL -------------------------------------------------------------------

TEST(JsonlTest, ParsesRequestsWithAndWithoutMode) {
  const auto a = request_from_jsonl(
      R"({"config": "C3", "workload": "dhrystone"})");
  EXPECT_EQ(a.config, "C3");
  EXPECT_EQ(a.workload, "dhrystone");
  EXPECT_EQ(a.mode, PredictMode::kTotal);

  const auto b = request_from_jsonl(
      R"({"mode": "per_component", "workload": "gemm", "config": "C8"})");
  EXPECT_EQ(b.mode, PredictMode::kPerComponent);

  const auto c =
      request_from_jsonl(R"({"config":"C1","workload":"spmv","mode":"trace"})");
  EXPECT_EQ(c.mode, PredictMode::kTrace);
}

TEST(JsonlTest, RejectsMalformedRequests) {
  EXPECT_THROW((void)request_from_jsonl(R"({"workload": "gemm"})"),
               util::Error);  // missing config
  EXPECT_THROW((void)request_from_jsonl(R"({"config": "C1"})"),
               util::Error);  // missing workload
  EXPECT_THROW((void)request_from_jsonl(
                   R"({"config": "C1", "workload": "gemm", "x": 1})"),
               util::Error);  // unknown key
  EXPECT_THROW((void)request_from_jsonl(
                   R"({"config": "C1", "workload": "gemm", "mode": "bogus"})"),
               util::Error);  // unknown mode
  EXPECT_THROW((void)request_from_jsonl(
                   R"({"config": 3, "workload": "gemm"})"),
               util::Error);  // wrong type
  EXPECT_THROW((void)request_from_jsonl(
                   R"({"config": "C1", "config": "C2", "workload": "g"})"),
               util::Error);  // duplicate key
  EXPECT_THROW((void)request_from_jsonl("not json"), util::Error);
  EXPECT_THROW((void)request_from_jsonl(R"({"config": "C1"} trailing)"),
               util::Error);
}

TEST(JsonlTest, ResponseSerialisationRoundTripsExactly) {
  BatchResponse resp;
  resp.index = 7;
  resp.config = "C3";
  resp.workload = "dhry\"stone";  // exercises escaping
  resp.mode = PredictMode::kTrace;
  resp.ok = true;
  resp.total_mw = 71.48132360793859;
  resp.trace_mw = {1.0 / 3.0, 38.088830629505615, 1e-12};

  const std::string line = response_to_jsonl(resp);
  const JsonValue doc = JsonValue::parse(line);
  EXPECT_EQ(doc.find("index")->as_number(), 7.0);
  EXPECT_EQ(doc.find("config")->as_string(), "C3");
  EXPECT_EQ(doc.find("workload")->as_string(), "dhry\"stone");
  EXPECT_EQ(doc.find("mode")->as_string(), "trace");
  EXPECT_TRUE(doc.find("ok")->as_bool());
  // Numbers must survive the wire bit-for-bit.
  EXPECT_EQ(doc.find("total_mw")->as_number(), resp.total_mw);
  const auto& trace = doc.find("trace_mw")->as_array();
  ASSERT_EQ(trace.size(), 3u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].as_number(), resp.trace_mw[i]);
  }
}

TEST(JsonlTest, ErrorResponseCarriesMessage) {
  BatchResponse resp;
  resp.index = 0;
  resp.config = "C99";
  resp.workload = "gemm";
  resp.ok = false;
  resp.error = "unknown BOOM configuration: C99";
  const JsonValue doc = JsonValue::parse(response_to_jsonl(resp));
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->as_string(), resp.error);
  EXPECT_EQ(doc.find("total_mw"), nullptr);
}

TEST(JsonlTest, ReadRequestsSkipsBlankLinesAndReportsLineNumbers) {
  std::istringstream in(
      "{\"config\": \"C1\", \"workload\": \"vvadd\"}\n"
      "\n"
      "   \n"
      "{\"config\": \"C2\", \"workload\": \"median\", \"mode\": \"total\"}\n");
  const auto requests = read_requests(in);
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[1].config, "C2");

  std::istringstream bad("{\"config\": \"C1\", \"workload\": \"vvadd\"}\n"
                         "{broken\n");
  try {
    (void)read_requests(bad);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonlTest, JsonValueParsesNestedStructures) {
  const auto doc = JsonValue::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"c": null, "d": false}, "e": "A"})");
  EXPECT_EQ(doc.find("a")->as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(doc.find("b")->find("c")->is_null());
  EXPECT_FALSE(doc.find("b")->find("d")->as_bool());
  EXPECT_EQ(doc.find("e")->as_string(), "A");
}

}  // namespace
}  // namespace autopower::serve
