// Tests for the batch serving subsystem (src/serve/): thread-pool
// lifecycle and graceful shutdown, model registry snapshots, eval-cache
// hit/miss behaviour and cross-thread consistency, batch-engine
// determinism against the serial predict loop, the design-space sweep
// driver (grid parsing/expansion, ranking, thread-count invariance,
// shared structural memo), and the JSONL wire format.
//
// This suite is built as its own binary so tools/check.sh can run it
// under the ThreadSanitizer preset in isolation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "core/autopower.hpp"
#include "power/golden.hpp"
#include "serve/engine.hpp"
#include "serve/eval_cache.hpp"
#include "serve/jsonl.hpp"
#include "serve/registry.hpp"
#include "serve/sweep.hpp"
#include "sim/perfsim.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/structural_cache.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

namespace autopower::serve {
namespace {

// --- Shared trained model fixture -------------------------------------------

core::EvalContext make_context(const sim::PerfSimulator& sim,
                               const std::string& config,
                               const std::string& workload) {
  core::EvalContext ctx;
  ctx.cfg = &arch::boom_config(config);
  ctx.workload = workload;
  const auto& profile = workload::workload_by_name(workload);
  ctx.program = workload::program_features(profile);
  ctx.events = sim.simulate(*ctx.cfg, profile);
  return ctx;
}

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::PerfSimulator sim;
    power::GoldenPowerModel golden;
    std::vector<core::EvalContext> train;
    for (const std::string config : {"C1", "C15"}) {
      for (const auto& w : workload::riscv_tests_workloads()) {
        train.push_back(make_context(sim, config, w.name));
      }
    }
    auto model = std::make_shared<core::AutoPowerModel>();
    model->train(train, golden);
    model_ = new std::shared_ptr<const core::AutoPowerModel>(std::move(model));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  static std::shared_ptr<const core::AutoPowerModel> model() {
    return *model_;
  }

  static std::shared_ptr<const core::AutoPowerModel>* model_;
};

std::shared_ptr<const core::AutoPowerModel>* ServeTest::model_ = nullptr;

// --- ThreadPool (now hosted in util/, exercised here alongside its main
// consumer) -------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> counter{0};
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWork) {
  std::atomic<int> counter{0};
  util::ThreadPool pool(2);
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      counter.fetch_add(1);
    });
  }
  // Most tasks are still queued here; a graceful shutdown must run them
  // all before joining rather than dropping the queue.
  pool.shutdown();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  util::ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), util::Error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillWorkers) {
  std::atomic<int> counter{0};
  util::ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("request failed"); });
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentSubmittersLoseNoTasks) {
  // The daemon's connection handlers submit from many threads at once;
  // the pool's multi-submitter contract (thread_pool.hpp) promises no
  // task is lost or duplicated under contention.  Submitters join before
  // wait_idle() — the contract's global-barrier caveat.
  std::atomic<int> counter{0};
  util::ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 250;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
  EXPECT_EQ(pool.task_failures().count, 0u);
}

TEST(ThreadPoolTest, ConcurrentSubmittersRacingShutdownNeverLoseAccepted) {
  // Shutdown may begin while other threads are still submitting: every
  // submit must either be accepted (and then RUN, by the graceful-drain
  // guarantee) or throw — never silently dropped.
  std::atomic<int> ran{0};
  std::atomic<int> accepted{0};
  util::ThreadPool pool(2);
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        try {
          pool.submit([&ran] { ran.fetch_add(1); });
          accepted.fetch_add(1);
        } catch (const util::Error&) {
          return;  // shutdown won the race; later submits would throw too
        }
      }
    });
  }
  pool.shutdown();
  for (auto& t : submitters) t.join();
  EXPECT_EQ(ran.load(), accepted.load());
}

// --- ModelRegistry -----------------------------------------------------------

class RegistryTest : public ServeTest {};

TEST_F(RegistryTest, CachesSnapshotsByPath) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "autopower_registry_test.ap")
                        .string();
  model()->save_to_file(path);

  ModelRegistry registry;
  const auto a = registry.get(path);
  const auto b = registry.get(path);
  EXPECT_EQ(a.get(), b.get());  // one snapshot, shared
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(a->trained());

  // reload publishes a fresh snapshot; the old handle stays valid.
  const auto c = registry.reload(path);
  EXPECT_NE(a.get(), c.get());
  EXPECT_DOUBLE_EQ(a->predict_total(make_context(sim::PerfSimulator{}, "C8",
                                                 "dhrystone")),
                   c->predict_total(make_context(sim::PerfSimulator{}, "C8",
                                                 "dhrystone")));

  registry.erase(path);
  EXPECT_EQ(registry.size(), 0u);
  std::remove(path.c_str());
}

TEST_F(RegistryTest, MissingArchiveThrows) {
  ModelRegistry registry;
  EXPECT_THROW((void)registry.get("/nonexistent/model.ap"), util::Error);
}

TEST_F(RegistryTest, NamedSlotsBindReloadAndEnumerate) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "autopower_registry_slot_test.ap")
                        .string();
  model()->save_to_file(path);

  ModelRegistry registry;
  const auto a = registry.open("boom_a", path);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(registry.named("boom_a").get(), a.get());
  EXPECT_EQ(registry.path_of("boom_a"), path);
  EXPECT_EQ(registry.size(), 1u);

  // Re-opening the same binding is idempotent; rebinding to a different
  // archive is a configuration error, not a silent swap.
  EXPECT_EQ(registry.open("boom_a", path).get(), a.get());
  EXPECT_THROW((void)registry.open("boom_a", "/elsewhere/model.ap"),
               util::Error);

  // reload_named publishes a fresh snapshot under the same name; old
  // handles stay valid (RCU by shared_ptr).
  const auto b = registry.reload_named("boom_a");
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(registry.named("boom_a").get(), b.get());
  EXPECT_EQ(a->fingerprint(), b->fingerprint());  // same archive bytes

  EXPECT_EQ(registry.named("nope"), nullptr);
  EXPECT_THROW((void)registry.path_of("nope"), util::Error);
  EXPECT_THROW((void)registry.reload_named("nope"), util::Error);

  const auto names = registry.names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "boom_a");
  std::remove(path.c_str());
}

TEST_F(RegistryTest, PublishedSlotHasNoBackingArchive) {
  ModelRegistry registry;
  const auto handle = registry.publish("inline", model());
  EXPECT_EQ(handle.get(), model().get());
  EXPECT_EQ(registry.named("inline").get(), model().get());
  EXPECT_EQ(registry.path_of("inline"), "");
  EXPECT_EQ(registry.size(), 1u);
  // Nothing on disk to re-read: reload must refuse, and the published
  // snapshot must survive the refusal.
  EXPECT_THROW((void)registry.reload_named("inline"), util::Error);
  EXPECT_EQ(registry.named("inline").get(), model().get());
}

// --- EvalCache ---------------------------------------------------------------

constexpr std::string_view kFpA = "aaaaaaaaaaaaaaaa";
constexpr std::string_view kFpB = "bbbbbbbbbbbbbbbb";

TEST(EvalCacheTest, MissThenHitReturnsSameContext) {
  EvalCache cache(4);
  sim::PerfSimulator sim;
  const auto a = cache.get_or_compute(kFpA, "C3", "dhrystone", sim);
  const auto b = cache.get_or_compute(kFpA, "C3", "dhrystone", sim);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);

  (void)cache.get_or_compute(kFpA, "C4", "qsort", sim);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EvalCacheTest, DistinctModelFingerprintsNeverAlias) {
  // Regression for the stale-model serving bug: before fingerprints were
  // part of the key, two models sharing one cache would serve each
  // other's entries for the same (config, workload).
  EvalCache cache(8);
  sim::PerfSimulator sim;
  const auto a = cache.get_or_compute(kFpA, "C3", "dhrystone", sim);
  const auto b = cache.get_or_compute(kFpB, "C3", "dhrystone", sim);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  // Each fingerprint re-hits its own entry.
  EXPECT_EQ(cache.get_or_compute(kFpA, "C3", "dhrystone", sim).get(), a.get());
  EXPECT_EQ(cache.get_or_compute(kFpB, "C3", "dhrystone", sim).get(), b.get());
}

TEST(EvalCacheTest, CachedContextMatchesDirectComputation) {
  EvalCache cache;
  sim::PerfSimulator sim;
  const auto cached = cache.get_or_compute(kFpA, "C5", "towers", sim);
  const auto direct = make_context(sim, "C5", "towers");
  EXPECT_EQ(cached->cfg, direct.cfg);
  for (std::size_t i = 0; i < arch::kNumEvents; ++i) {
    const auto kind = static_cast<arch::EventKind>(i);
    EXPECT_EQ(cached->events[kind], direct.events[kind]);
  }
}

TEST(EvalCacheTest, UnknownNamesThrow) {
  EvalCache cache;
  sim::PerfSimulator sim;
  EXPECT_THROW((void)cache.get_or_compute(kFpA, "C99", "dhrystone", sim),
               util::Error);
  EXPECT_THROW((void)cache.get_or_compute(kFpA, "C1", "nonsense", sim),
               util::Error);
}

TEST(EvalCacheTest, CrossThreadLookupsAgree) {
  EvalCache cache(8);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const core::EvalContext>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &seen, t] {
        sim::PerfSimulator sim;  // thread-private, as the contract requires
        seen[t] = cache.get_or_compute(kFpA, "C7", "spmv", sim);
      });
    }
    for (auto& th : threads) th.join();
  }
  // Every thread must observe the one published context, even if several
  // raced on the initial miss.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[0].get(), seen[t].get());
  }
  EXPECT_EQ(cache.size(), 1u);
  // Exactly one lookup won the insert and counts as the miss; racing
  // losers adopted the published context and count as hits.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads) - 1u);
}

// --- BatchEngine -------------------------------------------------------------

class EngineTest : public ServeTest {};

std::vector<BatchRequest> grid_requests(PredictMode mode) {
  std::vector<BatchRequest> requests;
  for (const auto& cfg : arch::boom_design_space()) {
    for (const std::string wl : {"dhrystone", "qsort", "towers", "spmv"}) {
      requests.push_back({cfg.name(), wl, mode});
    }
  }
  return requests;
}

TEST_F(EngineTest, ParallelRunMatchesSerialPredictLoopExactly) {
  const auto requests = grid_requests(PredictMode::kTotal);

  // The serial baseline: the plain predict loop the engine replaces.
  sim::PerfSimulator sim;
  std::vector<double> serial;
  serial.reserve(requests.size());
  for (const auto& r : requests) {
    serial.push_back(model()->predict_total(make_context(sim, r.config,
                                                         r.workload)));
  }

  BatchEngine engine(model(), {.threads = 8});
  const auto responses = engine.run(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok) << responses[i].error;
    EXPECT_EQ(responses[i].index, i);
    EXPECT_EQ(responses[i].config, requests[i].config);
    EXPECT_EQ(responses[i].workload, requests[i].workload);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(responses[i].total_mw, serial[i]);
  }
}

TEST_F(EngineTest, ThreadCountDoesNotChangeResults) {
  const auto requests = grid_requests(PredictMode::kTotal);
  BatchEngine serial_engine(model(), {.threads = 1});
  BatchEngine parallel_engine(model(), {.threads = 8});
  const auto a = serial_engine.run(requests);
  const auto b = parallel_engine.run(requests);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].total_mw, b[i].total_mw);
  }
}

TEST_F(EngineTest, ConcurrentRunCallsStayBitIdentical) {
  // The multi-caller contract (engine.hpp): run() from several threads
  // at once — sharing the EvalCache, response memo, and structural cache
  // — must return exactly what a lone serial engine returns for each
  // call.  This is the daemon's world: many submitters, one engine.
  const auto requests = grid_requests(PredictMode::kTotal);
  BatchEngine reference(model(), {.threads = 1});
  const auto expected = reference.run(requests);

  BatchEngine shared(model(), {.threads = 4});
  constexpr int kCallers = 6;
  std::vector<std::vector<BatchResponse>> got(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    // Distinct per-caller orders so concurrent calls interleave cache
    // fills instead of marching in lockstep.
    callers.emplace_back([&, c] {
      auto reqs = requests;
      std::rotate(reqs.begin(), reqs.begin() + (c * 7) % reqs.size(),
                  reqs.end());
      got[c] = shared.run(reqs);
    });
  }
  for (auto& t : callers) t.join();

  for (int c = 0; c < kCallers; ++c) {
    ASSERT_EQ(got[c].size(), expected.size()) << "caller " << c;
    const std::size_t shift = (c * 7) % requests.size();
    for (std::size_t i = 0; i < got[c].size(); ++i) {
      const auto& want = expected[(i + shift) % expected.size()];
      ASSERT_TRUE(got[c][i].ok) << got[c][i].error;
      EXPECT_EQ(got[c][i].config, want.config);
      EXPECT_EQ(got[c][i].total_mw, want.total_mw)
          << "caller " << c << " request " << i;
    }
  }
}

TEST_F(EngineTest, PerComponentAndTraceModes) {
  // Trace mode on a riscv-tests workload: same code path as the GEMM/SPMM
  // kernels at a fraction of the window count (keeps the tsan run fast).
  std::vector<BatchRequest> requests = {
      {"C8", "median", PredictMode::kPerComponent},
      {"C3", "qsort", PredictMode::kTrace},
  };
  BatchEngine engine(model(), {.threads = 2});
  const auto responses = engine.run(requests);
  ASSERT_EQ(responses.size(), 2u);

  ASSERT_TRUE(responses[0].ok) << responses[0].error;
  ASSERT_EQ(responses[0].components.size(), arch::kNumComponents);
  sim::PerfSimulator sim;
  const auto direct = model()->predict(make_context(sim, "C8", "median"));
  EXPECT_EQ(responses[0].total_mw, direct.total());
  EXPECT_EQ(responses[0].components[0].clock_mw,
            direct.components[0].groups.clock);

  ASSERT_TRUE(responses[1].ok) << responses[1].error;
  EXPECT_GT(responses[1].trace_mw.size(), 100u);
  for (const double mw : responses[1].trace_mw) EXPECT_GT(mw, 0.0);
}

TEST_F(EngineTest, BadRequestFailsAloneNotTheBatch) {
  std::vector<BatchRequest> requests = {
      {"C1", "dhrystone", PredictMode::kTotal},
      {"C99", "dhrystone", PredictMode::kTotal},
      {"C2", "no_such_workload", PredictMode::kTotal},
      {"C2", "vvadd", PredictMode::kTotal},
  };
  BatchEngine engine(model(), {.threads = 4});
  const auto responses = engine.run(requests);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_FALSE(responses[1].ok);
  EXPECT_NE(responses[1].error.find("C99"), std::string::npos);
  EXPECT_FALSE(responses[2].ok);
  EXPECT_TRUE(responses[3].ok);
}

#if defined(AUTOPOWER_FAULT_INJECTION)
TEST_F(EngineTest, FaultedDrainKeepsSiblingResultsBitIdentical) {
  // A request lost to an exception mid-drain must not hang run() (the
  // old in-task latch would strand forever), must fail alone, and must
  // leave every sibling response bit-identical to a fault-free run.
  const std::vector<BatchRequest> requests = {
      {"C1", "dhrystone", PredictMode::kTotal},
      {"C3", "qsort", PredictMode::kTotal},
      {"C5", "median", PredictMode::kPerComponent},
      {"C7", "towers", PredictMode::kTotal},
      {"C9", "rsort", PredictMode::kTotal},
      {"C11", "vvadd", PredictMode::kTotal},
  };
  BatchEngine clean_engine(model(), {.threads = 3,
                                     .memoize_responses = false});
  const auto expected = clean_engine.run(requests);

  BatchEngine engine(model(), {.threads = 3, .memoize_responses = false});
  std::vector<BatchResponse> faulted;
  {
    util::fault::ScopedFault armed("serve.engine.handle",
                                   util::fault::Trigger::countdown(1));
    faulted = engine.run(requests);  // must return, not hang
  }
  ASSERT_EQ(faulted.size(), requests.size());
  std::size_t failed = 0;
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    EXPECT_EQ(faulted[i].index, i);
    if (!faulted[i].ok) {
      ++failed;
      EXPECT_NE(faulted[i].error.find("injected fault"), std::string::npos)
          << faulted[i].error;
      continue;
    }
    ASSERT_TRUE(expected[i].ok);
    EXPECT_EQ(faulted[i].total_mw, expected[i].total_mw);
    ASSERT_EQ(faulted[i].components.size(), expected[i].components.size());
    for (std::size_t j = 0; j < faulted[i].components.size(); ++j) {
      EXPECT_EQ(faulted[i].components[j].total_mw,
                expected[i].components[j].total_mw);
    }
  }
  EXPECT_EQ(failed, 1u);

  // Disarmed, the same engine completes the whole batch, bit-identical.
  const auto recovered = engine.run(requests);
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    ASSERT_TRUE(recovered[i].ok) << recovered[i].error;
    EXPECT_EQ(recovered[i].total_mw, expected[i].total_mw);
  }
}
#endif  // AUTOPOWER_FAULT_INJECTION

TEST_F(EngineTest, CachesDeduplicateRepeatedRequests) {
  std::vector<BatchRequest> requests;
  for (int i = 0; i < 40; ++i) {
    requests.push_back({"C6", "rsort", PredictMode::kTotal});
  }
  BatchEngine engine(model(), {.threads = 4});
  const auto responses = engine.run(requests);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok);
    EXPECT_EQ(responses[i].index, i);
    EXPECT_EQ(responses[i].total_mw, responses[0].total_mw);
  }
  // Response memo: one entry was created, so exactly one miss — racing
  // duplicate computations lose the insert and count as hits.
  const auto rs = engine.response_stats();
  EXPECT_EQ(rs.misses, 1u);
  EXPECT_EQ(rs.hits, 39u);
  // Eval cache: one entry, one winning insert, one miss.
  EXPECT_EQ(engine.cache().size(), 1u);
  EXPECT_EQ(engine.cache().stats().misses, 1u);
}

TEST_F(EngineTest, RunPopulatesGlobalMetrics) {
  // The engine records into the process-wide registry; other tests (and
  // the fixture) record too, so assert on deltas, not absolute values.
  auto& registry = util::MetricsRegistry::global();
  const auto requests_before = registry.counter("serve.batch.requests").value();
  const auto latency_before =
      registry.histogram("serve.batch.request_latency_ns").count();
  const auto memo_hits_before =
      registry.counter("serve.batch.response_memo.hits").value();
  const auto memo_misses_before =
      registry.counter("serve.batch.response_memo.misses").value();

  std::vector<BatchRequest> requests(
      12, BatchRequest{"C5", "median", PredictMode::kTotal});
  BatchEngine engine(model(), {.threads = 3});
  const auto responses = engine.run(requests);
  for (const auto& r : responses) ASSERT_TRUE(r.ok);

  EXPECT_EQ(registry.counter("serve.batch.requests").value(),
            requests_before + 12u);
  EXPECT_EQ(registry.histogram("serve.batch.request_latency_ns").count(),
            latency_before + 12u);
  // Registry memo counters mirror the engine's own stats exactly.
  const auto rs = engine.response_stats();
  EXPECT_EQ(registry.counter("serve.batch.response_memo.hits").value(),
            memo_hits_before + rs.hits);
  EXPECT_EQ(registry.counter("serve.batch.response_memo.misses").value(),
            memo_misses_before + rs.misses);
  EXPECT_EQ(rs.hits + rs.misses, 12u);
}

TEST_F(EngineTest, MemoDisabledStillDeterministic) {
  std::vector<BatchRequest> requests(
      20, BatchRequest{"C9", "multiply", PredictMode::kTotal});
  BatchEngine memo_on(model(), {.threads = 4});
  BatchEngine memo_off(model(),
                       {.threads = 4, .memoize_responses = false});
  const auto a = memo_on.run(requests);
  const auto b = memo_off.run(requests);
  EXPECT_EQ(memo_off.response_stats().hits, 0u);
  EXPECT_EQ(memo_off.response_stats().misses, 0u);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(a[i].total_mw, b[i].total_mw);
  }
}

TEST_F(EngineTest, EmptyBatchAndNullModel) {
  BatchEngine engine(model(), {.threads = 2});
  EXPECT_TRUE(engine.run({}).empty());
  EXPECT_THROW(BatchEngine(nullptr, {}), util::Error);
}

/// A deliberately different model (tiny GBT ensembles, narrow training
/// set) whose predictions diverge from ServeTest::model() everywhere.
std::shared_ptr<const core::AutoPowerModel> variant_model() {
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  std::vector<core::EvalContext> train;
  for (const std::string config : {"C1", "C15"}) {
    for (const char* w : {"dhrystone", "qsort"}) {
      train.push_back(make_context(sim, config, w));
    }
  }
  core::AutoPowerOptions options;
  options.clock.gbt.num_rounds = 3;
  options.clock.gbt.tree.max_depth = 2;
  options.sram.gbt.num_rounds = 3;
  options.sram.gbt.tree.max_depth = 2;
  options.logic.gbt.num_rounds = 3;
  options.logic.gbt.tree.max_depth = 2;
  auto variant = std::make_shared<core::AutoPowerModel>(options);
  variant->train(train, golden, 1);
  return variant;
}

TEST_F(EngineTest, HotSwapNeverServesStaleMemoEntries) {
  // THE stale-model regression: every memo key (response memo and
  // EvalCache) carries the model's archive fingerprint, so after
  // swap_model() a repeated request must be recomputed under the new
  // snapshot — under fingerprint-less keys this test fails by serving
  // the OLD model's memoized responses bit-for-bit.
  const auto other = variant_model();
  ASSERT_NE(other->fingerprint(), model()->fingerprint());

  std::vector<BatchRequest> requests = {
      {"C3", "dhrystone", PredictMode::kTotal},
      {"C8", "qsort", PredictMode::kTotal},
      {"C8", "median", PredictMode::kPerComponent},
  };
  BatchEngine original(model(), {.threads = 2});
  BatchEngine fresh_other(other, {.threads = 2});
  const auto before = original.run(requests);   // warms both memo layers
  const auto want_other = fresh_other.run(requests);

  BatchEngine swapped(model(), {.threads = 2});
  EXPECT_EQ(swapped.model_fingerprint(), model()->fingerprint());
  const auto warm = swapped.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(warm[i].ok) << warm[i].error;
    EXPECT_EQ(warm[i].total_mw, before[i].total_mw);
  }

  swapped.swap_model(other);
  EXPECT_EQ(swapped.model(), other);
  EXPECT_EQ(swapped.model_fingerprint(), other->fingerprint());
  const auto after = swapped.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(after[i].ok) << after[i].error;
    EXPECT_EQ(after[i].total_mw, want_other[i].total_mw) << "request " << i;
    EXPECT_NE(after[i].total_mw, before[i].total_mw) << "request " << i;
  }

  // Swapping BACK re-hits the original model's still-keyed entries: the
  // old memo was never invalidated, merely de-routed — so A→B→A serves
  // A's answers again without recomputation.
  const auto hits_before = swapped.response_stats().hits;
  swapped.swap_model(model());
  const auto back = swapped.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(back[i].total_mw, before[i].total_mw);
  }
  EXPECT_EQ(swapped.response_stats().hits, hits_before + requests.size());
}

TEST_F(EngineTest, TraceModeSharesStructuralCacheAcrossWorkers) {
  // C11 and C12 share every structural parameter (branch count, issue
  // width, cache ways, TLB entries, fetch bytes) and differ only in window
  // parameters, so the second config's trace can only avoid re-running the
  // structural simulations through the engine's shared StructuralSimCache
  // — each worker's private instance memo keys on the whole config.
  std::vector<BatchRequest> requests;
  for (const char* w : {"median", "qsort", "towers", "vvadd"}) {
    requests.push_back({"C11", w, PredictMode::kTrace});
    requests.push_back({"C12", w, PredictMode::kTrace});
  }
  BatchEngine parallel_engine(model(), {.threads = 8,
                                        .memoize_responses = false});
  const auto parallel = parallel_engine.run(requests);
  EXPECT_GT(parallel_engine.structural_cache()->stats().hits, 0u);

  BatchEngine serial_engine(model(), {.threads = 1,
                                      .memoize_responses = false});
  const auto serial = serial_engine.run(requests);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    ASSERT_EQ(parallel[i].trace_mw.size(), serial[i].trace_mw.size());
    for (std::size_t t = 0; t < parallel[i].trace_mw.size(); ++t) {
      EXPECT_EQ(parallel[i].trace_mw[t], serial[i].trace_mw[t]);
    }
  }
}

// --- Design-space sweep ------------------------------------------------------

TEST(SweepGridTest, ParseGridReadsAxesInOrder) {
  const auto axes = parse_grid("RobEntry=64,96,128;FetchWidth=4,8");
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].param, arch::HwParam::kRobEntry);
  EXPECT_EQ(axes[0].values, (std::vector<int>{64, 96, 128}));
  EXPECT_EQ(axes[1].param, arch::HwParam::kFetchWidth);
  EXPECT_EQ(axes[1].values, (std::vector<int>{4, 8}));
}

TEST(SweepGridTest, ParseGridRejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_grid(""), util::Error);
  EXPECT_THROW((void)parse_grid("RobEntry"), util::Error);          // no '='
  EXPECT_THROW((void)parse_grid("NoSuchParam=1"), util::Error);
  EXPECT_THROW((void)parse_grid("RobEntry=64;RobEntry=96"),
               util::Error);                                        // duplicate
  EXPECT_THROW((void)parse_grid("RobEntry="), util::Error);         // no values
  EXPECT_THROW((void)parse_grid("RobEntry=64,-2"), util::Error);
  EXPECT_THROW((void)parse_grid("RobEntry=sixty"), util::Error);
  EXPECT_THROW((void)parse_grid("RobEntry=0"), util::Error);        // < 1
}

TEST(SweepGridTest, ExpandGridEnumeratesCartesianProduct) {
  const auto& base = arch::boom_config("C8");
  const auto axes = parse_grid("RobEntry=64,96;MshrEntry=2,4,8");
  const auto configs = expand_grid(base, axes);
  ASSERT_EQ(configs.size(), 6u);
  // First axis slowest, so the first three share RobEntry=64.
  EXPECT_EQ(configs[0].name(), base.name() + "+RobEntry=64+MshrEntry=2");
  EXPECT_EQ(configs[1].value(arch::HwParam::kMshrEntry), 4);
  EXPECT_EQ(configs[3].value(arch::HwParam::kRobEntry), 96);
  for (const auto& cfg : configs) {
    // Off-axis parameters are inherited from the base untouched.
    EXPECT_EQ(cfg.value(arch::HwParam::kFetchWidth),
              base.value(arch::HwParam::kFetchWidth));
    EXPECT_EQ(cfg.value(arch::HwParam::kCacheWay),
              base.value(arch::HwParam::kCacheWay));
  }
  // No axes: the grid is just the base configuration.
  EXPECT_EQ(expand_grid(base, {}).size(), 1u);
}

class SweepTest : public ServeTest {};

TEST_F(SweepTest, RanksRowsByMetricAndAggregatesCells) {
  SweepSpec spec;
  spec.base = "C8";
  spec.axes = parse_grid("RobEntry=64,96,128");
  spec.workloads = {"dhrystone", "qsort"};
  const auto report = run_sweep(*model(), spec);
  ASSERT_EQ(report.rows.size(), 3u);
  EXPECT_EQ(report.configs, 3u);
  EXPECT_EQ(report.evaluations, 6u);
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const auto& row = report.rows[i];
    EXPECT_EQ(row.rank, i + 1);
    ASSERT_EQ(row.cells.size(), 2u);
    for (const auto& cell : row.cells) {
      ASSERT_TRUE(cell.ok) << cell.error;
      EXPECT_GT(cell.total_mw, 0.0);
      EXPECT_GT(cell.ipc, 0.0);
    }
    EXPECT_EQ(row.mean_total_mw,
              (row.cells[0].total_mw + row.cells[1].total_mw) / 2.0);
    if (i > 0) {
      EXPECT_GE(report.rows[i - 1].ipc_per_watt, row.ipc_per_watt);
    }
  }
  // The sweep reuses every structural measurement after the first config.
  EXPECT_EQ(report.structural.misses, 10u);  // 2 workloads x 5 sub-sims
  EXPECT_EQ(report.structural.hits, 20u);
}

TEST_F(SweepTest, ThreadCountDoesNotChangeReport) {
  SweepSpec spec;
  spec.base = "C4";
  spec.axes = parse_grid("RobEntry=64,96;FetchBufferEntry=16,32;"
                         "LdqStqEntry=16,24");
  spec.workloads = {"dhrystone", "towers"};

  spec.threads = 1;
  const auto serial = run_sweep(*model(), spec);
  spec.threads = 8;
  const auto parallel = run_sweep(*model(), spec);

  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].config, parallel.rows[i].config);
    EXPECT_EQ(serial.rows[i].mean_total_mw, parallel.rows[i].mean_total_mw);
    EXPECT_EQ(serial.rows[i].ipc_per_watt, parallel.rows[i].ipc_per_watt);
  }
  // The serialised reports are byte-identical.
  std::ostringstream a, b;
  write_sweep_report(a, serial);
  write_sweep_report(b, parallel);
  EXPECT_EQ(a.str(), b.str());
}

TEST_F(SweepTest, BadGridPointFailsAloneAndRanksLast) {
  SweepSpec spec;
  spec.base = "C8";
  // ICacheFetchBytes=3 breaks the power-of-two cache-set constraint for
  // that one configuration; the other grid points must be unaffected.
  spec.axes = parse_grid("ICacheFetchBytes=2,3,4");
  spec.workloads = {"dhrystone"};
  const auto report = run_sweep(*model(), spec);
  ASSERT_EQ(report.rows.size(), 3u);
  std::size_t failed = 0;
  for (const auto& row : report.rows) {
    for (const auto& cell : row.cells) {
      if (!cell.ok) {
        ++failed;
        EXPECT_FALSE(cell.error.empty());
      }
    }
  }
  EXPECT_EQ(failed, 1u);
  // The all-failed row carries no score and sorts last.
  const auto& last = report.rows.back();
  EXPECT_FALSE(last.cells[0].ok);
  EXPECT_EQ(last.config.value(arch::HwParam::kICacheFetchBytes), 3);

  // The metric and top knobs survive the round trip through strings.
  EXPECT_EQ(sweep_metric_from_string("power"), SweepMetric::kPower);
  EXPECT_THROW((void)sweep_metric_from_string("bogus"), util::Error);
  spec.top = 1;
  spec.metric = SweepMetric::kPower;
  EXPECT_EQ(run_sweep(*model(), spec).rows.size(), 1u);
}

TEST_F(SweepTest, ConcurrentSweepsShareOneStructuralCache) {
  // Two sweeps over overlapping grids run concurrently against ONE shared
  // structural cache — the arrangement tools/check.sh exercises under
  // ThreadSanitizer.  Each sweep itself is multi-threaded, so cache fills
  // race with lookups both within and across the sweeps.
  auto shared = std::make_shared<util::StructuralSimCache>();
  SweepSpec spec;
  spec.base = "C8";
  spec.axes = parse_grid("RobEntry=64,96,128;MshrEntry=2,4");
  spec.workloads = {"dhrystone", "qsort"};
  spec.threads = 4;

  SweepReport first, second;
  std::thread a([&] { first = run_sweep(*model(), spec, shared); });
  std::thread b([&] { second = run_sweep(*model(), spec, shared); });
  a.join();
  b.join();

  std::ostringstream sa, sb;
  write_sweep_report(sa, first);
  write_sweep_report(sb, second);
  EXPECT_EQ(sa.str(), sb.str());
  // Every simulate() makes exactly 5 structural lookups (one per sub-sim),
  // and the grid varies only non-structural parameters, so the 2 sweeps
  // x 12 evaluations make 120 lookups over 10 distinct keys.  Only the
  // winning insert per key counts as a miss — racing first-fills lose the
  // insert and count as hits — so the stats are exact: misses == entries.
  const auto stats = shared->stats();
  EXPECT_EQ(stats.hits + stats.misses, 120u);
  EXPECT_EQ(stats.misses, 10u);
  EXPECT_EQ(stats.hits, 110u);
  EXPECT_EQ(shared->size(), 10u);
}

TEST_F(SweepTest, SweepPopulatesGlobalMetrics) {
  auto& registry = util::MetricsRegistry::global();
  const auto cells_before = registry.counter("serve.sweep.cells").value();
  const auto latency_before =
      registry.histogram("serve.sweep.cell_latency_ns").count();

  SweepSpec spec;
  spec.base = "C8";
  spec.axes = parse_grid("RobEntry=64,96");
  spec.workloads = {"dhrystone", "qsort"};
  spec.threads = 2;
  const auto report = run_sweep(*model(), spec);

  EXPECT_EQ(report.evaluations, 4u);
  EXPECT_EQ(registry.counter("serve.sweep.cells").value(), cells_before + 4u);
  EXPECT_EQ(registry.histogram("serve.sweep.cell_latency_ns").count(),
            latency_before + 4u);
  EXPECT_GT(registry.gauge("serve.sweep.cells_per_sec").value(), 0.0);
}

// --- JSONL -------------------------------------------------------------------

TEST(JsonlTest, ParsesRequestsWithAndWithoutMode) {
  const auto a = request_from_jsonl(
      R"({"config": "C3", "workload": "dhrystone"})");
  EXPECT_EQ(a.config, "C3");
  EXPECT_EQ(a.workload, "dhrystone");
  EXPECT_EQ(a.mode, PredictMode::kTotal);

  const auto b = request_from_jsonl(
      R"({"mode": "per_component", "workload": "gemm", "config": "C8"})");
  EXPECT_EQ(b.mode, PredictMode::kPerComponent);

  const auto c =
      request_from_jsonl(R"({"config":"C1","workload":"spmv","mode":"trace"})");
  EXPECT_EQ(c.mode, PredictMode::kTrace);
}

TEST(JsonlTest, RejectsMalformedRequests) {
  EXPECT_THROW((void)request_from_jsonl(R"({"workload": "gemm"})"),
               util::Error);  // missing config
  EXPECT_THROW((void)request_from_jsonl(R"({"config": "C1"})"),
               util::Error);  // missing workload
  EXPECT_THROW((void)request_from_jsonl(
                   R"({"config": "C1", "workload": "gemm", "x": 1})"),
               util::Error);  // unknown key
  EXPECT_THROW((void)request_from_jsonl(
                   R"({"config": "C1", "workload": "gemm", "mode": "bogus"})"),
               util::Error);  // unknown mode
  EXPECT_THROW((void)request_from_jsonl(
                   R"({"config": 3, "workload": "gemm"})"),
               util::Error);  // wrong type
  EXPECT_THROW((void)request_from_jsonl(
                   R"({"config": "C1", "config": "C2", "workload": "g"})"),
               util::Error);  // duplicate key
  EXPECT_THROW((void)request_from_jsonl("not json"), util::Error);
  EXPECT_THROW((void)request_from_jsonl(R"({"config": "C1"} trailing)"),
               util::Error);
}

TEST(JsonlTest, ResponseSerialisationRoundTripsExactly) {
  BatchResponse resp;
  resp.index = 7;
  resp.config = "C3";
  resp.workload = "dhry\"stone";  // exercises escaping
  resp.mode = PredictMode::kTrace;
  resp.ok = true;
  resp.total_mw = 71.48132360793859;
  resp.trace_mw = {1.0 / 3.0, 38.088830629505615, 1e-12};

  const std::string line = response_to_jsonl(resp);
  const JsonValue doc = JsonValue::parse(line);
  EXPECT_EQ(doc.find("index")->as_number(), 7.0);
  EXPECT_EQ(doc.find("config")->as_string(), "C3");
  EXPECT_EQ(doc.find("workload")->as_string(), "dhry\"stone");
  EXPECT_EQ(doc.find("mode")->as_string(), "trace");
  EXPECT_TRUE(doc.find("ok")->as_bool());
  // Numbers must survive the wire bit-for-bit.
  EXPECT_EQ(doc.find("total_mw")->as_number(), resp.total_mw);
  const auto& trace = doc.find("trace_mw")->as_array();
  ASSERT_EQ(trace.size(), 3u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].as_number(), resp.trace_mw[i]);
  }
}

TEST(JsonlTest, ErrorResponseCarriesMessage) {
  BatchResponse resp;
  resp.index = 0;
  resp.config = "C99";
  resp.workload = "gemm";
  resp.ok = false;
  resp.error = "unknown BOOM configuration: C99";
  const JsonValue doc = JsonValue::parse(response_to_jsonl(resp));
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->as_string(), resp.error);
  EXPECT_EQ(doc.find("total_mw"), nullptr);
}

TEST(JsonlTest, ReadRequestsSkipsBlankLinesAndReportsLineNumbers) {
  std::istringstream in(
      "{\"config\": \"C1\", \"workload\": \"vvadd\"}\n"
      "\n"
      "   \n"
      "{\"config\": \"C2\", \"workload\": \"median\", \"mode\": \"total\"}\n");
  const auto requests = read_requests(in);
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[1].config, "C2");

  std::istringstream bad("{\"config\": \"C1\", \"workload\": \"vvadd\"}\n"
                         "{broken\n");
  try {
    (void)read_requests(bad);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonlTest, JsonValueParsesNestedStructures) {
  const auto doc = JsonValue::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"c": null, "d": false}, "e": "A"})");
  EXPECT_EQ(doc.find("a")->as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(doc.find("b")->find("c")->is_null());
  EXPECT_FALSE(doc.find("b")->find("d")->as_bool());
  EXPECT_EQ(doc.find("e")->as_string(), "A");
}

}  // namespace
}  // namespace autopower::serve
