// Fault-injection coverage: every registered fault site must surface an
// injected failure as a clean error — a thrown util::Error (exit 1 at
// the CLI), a failed-but-complete batch response, or a latched stream
// state the flush check catches.  Never a crash, hang, torn report, or
// poisoned cache.
//
// Two flavours:
//   * in-process: arm a site with util::fault::ScopedFault, drive the
//     real code path, assert the failure mode AND the recovery (disarm,
//     retry, verify caches were not left with partial entries);
//   * subprocess: arm via AUTOPOWER_FAULT=... in the CLI's environment
//     and assert the process exits with code 1 (a real exit, not a
//     signal) — proving the end-to-end error path from fault point to
//     process exit code.
//
// The canonical site list lives in DESIGN.md ("fault-site registry");
// FaultSiteRegistryMatchesDesign below cross-checks that every site this
// suite exercised is one of the documented ones.  Accepts --seed=N (the
// shared proptest flag) for symmetry with test_differential.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "core/autopower.hpp"
#include "explore/explore.hpp"
#include "ml/gbt.hpp"
#include "power/golden.hpp"
#include "serve/daemon.hpp"
#include "serve/engine.hpp"
#include "serve/eval_cache.hpp"
#include "serve/jsonl.hpp"
#include "serve/net.hpp"
#include "serve/sweep.hpp"
#include "sim/perfsim.hpp"
#include "testcore/generators.hpp"
#include "testcore/proptest.hpp"
#include "util/archive.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"
#include "util/structural_cache.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

#ifndef AUTOPOWER_CLI_PATH
#define AUTOPOWER_CLI_PATH "autopower"
#endif

namespace autopower {
namespace {

namespace fault = util::fault;

// ---------------------------------------------------------------------
// Shared fixtures and helpers.

core::AutoPowerOptions tiny_options() {
  core::AutoPowerOptions opt;
  opt.clock.gbt.num_rounds = 3;
  opt.clock.gbt.tree.max_depth = 2;
  opt.sram.gbt.num_rounds = 3;
  opt.sram.gbt.tree.max_depth = 2;
  opt.logic.gbt.num_rounds = 3;
  opt.logic.gbt.tree.max_depth = 2;
  return opt;
}

std::shared_ptr<const core::AutoPowerModel> tiny_model() {
  static const auto* model = [] {
    sim::SimOptions opt;
    opt.sample_accesses = 400;
    opt.sample_branches = 400;
    sim::PerfSimulator sim(opt);
    const power::GoldenPowerModel golden;
    std::vector<core::EvalContext> ctxs;
    for (const char* cfg_name : {"C1", "C15"}) {
      const auto& cfg = arch::boom_config(cfg_name);
      for (const char* wl_name : {"dhrystone", "qsort"}) {
        const auto& wl = workload::workload_by_name(wl_name);
        core::EvalContext ctx;
        ctx.cfg = &cfg;
        ctx.workload = wl.name;
        ctx.program = workload::program_features(wl);
        ctx.events = sim.simulate(cfg, wl);
        ctxs.push_back(std::move(ctx));
      }
    }
    auto m = std::make_shared<core::AutoPowerModel>(tiny_options());
    m->train(ctxs, golden, 1);
    return new std::shared_ptr<const core::AutoPowerModel>(std::move(m));
  }();
  return *model;
}

std::vector<serve::BatchRequest> valid_requests(std::size_t n) {
  std::vector<serve::BatchRequest> reqs;
  const char* configs[] = {"C2", "C5", "C9", "C13"};
  const char* workloads[] = {"dhrystone", "qsort", "median", "towers"};
  for (std::size_t i = 0; i < n; ++i) {
    reqs.push_back({configs[i % 4], workloads[(i / 4 + i) % 4],
                    serve::PredictMode::kTotal});
  }
  return reqs;
}

/// Runs the CLI with AUTOPOWER_FAULT set; returns the raw wait() status
/// and captures combined stdout+stderr.
int run_cli_with_fault(const std::string& fault_spec,
                       const std::string& args, std::string* output) {
  std::string cmd = "AUTOPOWER_FAULT='" + fault_spec + "' '" +
                    AUTOPOWER_CLI_PATH "' " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return -1;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) text.append(buf, n);
  if (output != nullptr) *output = std::move(text);
  return pclose(pipe);
}

/// Asserts the status is a clean exit with code 1 (error path, not a
/// crash/signal, not a silent success).
void expect_clean_error_exit(int status, const std::string& output) {
  ASSERT_TRUE(WIFEXITED(status))
      << "CLI died on a signal instead of exiting cleanly; output:\n"
      << output;
  EXPECT_EQ(WEXITSTATUS(status), 1) << "output:\n" << output;
}

class FaultCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("autopower_fault_test_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
    // A real model file written by the unfaulted CLI, reused by every
    // subprocess case.
    std::string output;
    const int status = run_cli_with_fault(
        "", "train --known C1,C15 --out '" + model_path() + "'", &output);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << output;
    std::ofstream reqs(requests_path());
    reqs << R"({"config": "C3", "workload": "dhrystone"})" << "\n"
         << R"({"config": "C7", "workload": "qsort", "mode": "total"})"
         << "\n";
  }
  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(*dir_, ec);
    delete dir_;
    dir_ = nullptr;
  }

  static std::string model_path() { return (*dir_ / "model.ap").string(); }
  static std::string requests_path() {
    return (*dir_ / "requests.jsonl").string();
  }
  static std::string out_path(const char* name) {
    return (*dir_ / name).string();
  }

  static std::filesystem::path* dir_;
};

std::filesystem::path* FaultCliTest::dir_ = nullptr;

// ---------------------------------------------------------------------
// util.thread_pool.submit / util.thread_pool.run_task

TEST(FaultThreadPool, SubmitFaultThrowsAndPoolSurvives) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  const auto task = [&ran] { ran.fetch_add(1); };
  {
    fault::ScopedFault armed("util.thread_pool.submit",
                             fault::Trigger::countdown(2));
    pool.submit(task);
    EXPECT_THROW(pool.submit(task), fault::FaultInjected);
    pool.submit(task);  // pool still accepts work after the failure
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(pool.task_failures().count, 0u);
  EXPECT_GT(fault::hit_count("util.thread_pool.submit"), 0u);
}

TEST(FaultThreadPool, LostTaskNeverHangsDrainAndSiblingsComplete) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    fault::ScopedFault armed("util.thread_pool.run_task",
                             fault::Trigger::countdown(2));
    for (int i = 0; i < 6; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    pool.wait_idle();  // the regression: this must return, not hang
  }
  EXPECT_EQ(ran.load(), 5);  // exactly the faulted task is lost
  const auto failures = pool.task_failures();
  EXPECT_EQ(failures.count, 1u);
  EXPECT_NE(failures.first_error.find("injected fault"), std::string::npos)
      << failures.first_error;
  // The pool keeps draining and accepting after the failure.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.shutdown();
  EXPECT_EQ(ran.load(), 6);
}

// ---------------------------------------------------------------------
// serve.engine.handle

TEST(FaultEngine, ThreadedBatchFailsOneRequestCleanly) {
  serve::BatchEngine engine(tiny_model(),
                            {.threads = 3, .memoize_responses = false});
  const auto requests = valid_requests(6);
  std::vector<serve::BatchResponse> responses;
  {
    fault::ScopedFault armed("serve.engine.handle",
                             fault::Trigger::countdown(1));
    responses = engine.run(requests);  // must return, not hang or throw
  }
  ASSERT_EQ(responses.size(), requests.size());
  std::size_t failed = 0;
  for (const auto& r : responses) {
    if (!r.ok) {
      ++failed;
      EXPECT_NE(r.error.find("injected fault"), std::string::npos)
          << r.error;
    } else {
      EXPECT_GT(r.total_mw, 0.0);
    }
  }
  EXPECT_EQ(failed, 1u);
  // Recovery: the same batch succeeds completely once disarmed.
  for (const auto& r : engine.run(requests)) {
    EXPECT_TRUE(r.ok) << r.error;
  }
}

TEST(FaultEngine, SerialBatchPropagatesThrowCleanly) {
  serve::BatchEngine engine(tiny_model(), {.threads = 1});
  const auto requests = valid_requests(2);
  {
    fault::ScopedFault armed("serve.engine.handle",
                             fault::Trigger::countdown(1));
    EXPECT_THROW((void)engine.run(requests), fault::FaultInjected);
  }
  for (const auto& r : engine.run(requests)) {
    EXPECT_TRUE(r.ok) << r.error;
  }
}

TEST(FaultEngine, FailedResponseIsNeverMemoized) {
  // A transient fault must not poison the response memo: the failed
  // response is returned but NOT cached, so the retry recomputes.
  serve::BatchEngine engine(tiny_model(),
                            {.threads = 1, .memoize_responses = true});
  const std::vector<serve::BatchRequest> one = {
      {"C4", "dhrystone", serve::PredictMode::kTotal}};
  {
    // Fault below handle()'s memo layer: compute() folds the eval-cache
    // failure into an ok == false response, which then reaches the
    // memoisation decision.
    fault::ScopedFault armed("serve.eval_cache.compute",
                             fault::Trigger::countdown(1));
    const auto first = engine.run(one);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_FALSE(first[0].ok);
    EXPECT_NE(first[0].error.find("injected fault"), std::string::npos);
  }
  const auto stats_after_failure = engine.response_stats();
  EXPECT_EQ(stats_after_failure.hits, 0u);
  EXPECT_EQ(stats_after_failure.misses, 1u);  // failed compute counts a miss
  // Disarmed retry must recompute and succeed — a poisoned memo would
  // replay the failure forever.
  const auto second = engine.run(one);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].ok) << second[0].error;
  // And the success IS memoised: a third run answers from the memo.
  const auto third = engine.run(one);
  EXPECT_TRUE(third[0].ok);
  EXPECT_EQ(third[0].total_mw, second[0].total_mw);
  EXPECT_EQ(engine.response_stats().hits, 1u);
}

// ---------------------------------------------------------------------
// serve.eval_cache.compute / serve.eval_cache.insert (satellite: the
// first-insert-wins fill must never publish a partial entry)

TEST(FaultEvalCache, ThrowingComputeLeavesNoPartialEntry) {
  serve::EvalCache cache(4);
  const sim::PerfSimulator sim;
  {
    fault::ScopedFault armed("serve.eval_cache.compute",
                             fault::Trigger::countdown(1));
    EXPECT_THROW((void)cache.get_or_compute("feedfacefeedface", "C3", "dhrystone", sim),
                 fault::FaultInjected);
  }
  EXPECT_EQ(cache.size(), 0u);  // nothing published
  // Recovery: the same key computes fine afterwards and is cached.
  const auto ctx = cache.get_or_compute("feedfacefeedface", "C3", "dhrystone", sim);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  const auto again = cache.get_or_compute("feedfacefeedface", "C3", "dhrystone", sim);
  EXPECT_EQ(ctx.get(), again.get());  // served from cache
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(FaultEvalCache, ThrowingInsertLeavesNoPartialEntry) {
  serve::EvalCache cache(4);
  const sim::PerfSimulator sim;
  {
    fault::ScopedFault armed("serve.eval_cache.insert",
                             fault::Trigger::countdown(1));
    EXPECT_THROW((void)cache.get_or_compute("feedfacefeedface", "C5", "qsort", sim),
                 fault::FaultInjected);
  }
  EXPECT_EQ(cache.size(), 0u);
  const auto ctx = cache.get_or_compute("feedfacefeedface", "C5", "qsort", sim);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------
// util.structural_cache.fill / util.structural_cache.insert

TEST(FaultStructuralCache, ThrowingFillLeavesNoPartialEntry) {
  util::StructuralSimCache cache(2);
  const auto compute = [] { return 1.5; };
  {
    fault::ScopedFault armed("util.structural_cache.fill",
                             fault::Trigger::countdown(1));
    EXPECT_THROW((void)cache.get_or_compute(
                     util::StructuralSimCache::SubSim::kICache, 42, compute),
                 fault::FaultInjected);
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get_or_compute(util::StructuralSimCache::SubSim::kICache,
                                 42, compute),
            1.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FaultStructuralCache, ThrowingInsertLeavesNoPartialEntry) {
  util::StructuralSimCache cache(2);
  const auto compute = [] { return 2.5; };
  {
    fault::ScopedFault armed("util.structural_cache.insert",
                             fault::Trigger::countdown(1));
    EXPECT_THROW((void)cache.get_or_compute(
                     util::StructuralSimCache::SubSim::kBranch, 7, compute),
                 fault::FaultInjected);
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get_or_compute(util::StructuralSimCache::SubSim::kBranch,
                                 7, compute),
            2.5);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // only the successful insert counted
}

// ---------------------------------------------------------------------
// serve.jsonl.read_line / serve.jsonl.write_response

TEST(FaultJsonl, ReadFaultSurfacesWithLineNumber) {
  std::istringstream in(
      "{\"config\": \"C1\", \"workload\": \"dhrystone\"}\n"
      "{\"config\": \"C2\", \"workload\": \"qsort\"}\n"
      "{\"config\": \"C3\", \"workload\": \"median\"}\n");
  fault::ScopedFault armed("serve.jsonl.read_line",
                           fault::Trigger::countdown(2));
  try {
    (void)serve::read_requests(in);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("injected fault"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultJsonl, WriteFaultLatchesStreamForFlushCheck) {
  std::vector<serve::BatchResponse> responses(2);
  responses[0].index = 0;
  responses[0].config = "C1";
  responses[0].workload = "dhrystone";
  responses[0].ok = true;
  responses[0].total_mw = 10.0;
  responses[1] = responses[0];
  responses[1].index = 1;
  std::ostringstream out;
  fault::ScopedFault armed("serve.jsonl.write_response",
                           fault::Trigger::countdown(2));
  serve::write_responses(out, responses);  // must not throw or crash
  EXPECT_TRUE(out.bad());  // latched exactly like a full disk
  EXPECT_THROW(util::flush_and_check(out, "responses"), util::Error);
}

// ---------------------------------------------------------------------
// serve.report.write_row

TEST(FaultSweepReport, RowWriteFaultLatchesStream) {
  serve::SweepSpec spec;
  spec.base = "C8";
  spec.workloads = {"dhrystone"};
  const auto report = serve::run_sweep(*tiny_model(), spec);
  std::ostringstream out;
  fault::ScopedFault armed("serve.report.write_row",
                           fault::Trigger::countdown(1));
  serve::write_sweep_report(out, report);
  EXPECT_TRUE(out.bad());
  EXPECT_THROW(util::flush_and_check(out, "sweep report"), util::Error);
}

// ---------------------------------------------------------------------
// serve.checkpoint.write / serve.checkpoint.load

class FaultCheckpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("autopower_ckpt_fault_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  serve::SweepSpec spec() const {
    serve::SweepSpec s;
    s.base = "C8";
    s.workloads = {"dhrystone"};
    s.checkpoint = (dir_ / "sweep.ckpt").string();
    return s;
  }
  std::filesystem::path dir_;
};

TEST_F(FaultCheckpoint, WriteFaultFailsTheSweepNotSilently) {
  // countdown(1) fires on the header flush, countdown(2) on the final
  // row-batch flush — both must surface as util::Error, never as a sweep
  // that "succeeded" without crash safety.
  for (const int nth : {1, 2}) {
    auto s = spec();
    fault::ScopedFault armed("serve.checkpoint.write",
                             fault::Trigger::countdown(nth));
    EXPECT_THROW((void)serve::run_sweep(*tiny_model(), s), util::Error)
        << "countdown " << nth;
  }
}

TEST_F(FaultCheckpoint, LoadFaultFailsTheResume) {
  auto s = spec();
  (void)serve::run_sweep(*tiny_model(), s);  // write a valid checkpoint
  s.resume = true;
  fault::ScopedFault armed("serve.checkpoint.load",
                           fault::Trigger::countdown(1));
  EXPECT_THROW((void)serve::run_sweep(*tiny_model(), s), util::Error);
  // Disarmed, the same resume replays cleanly.
  const auto report = serve::run_sweep(*tiny_model(), s);
  EXPECT_EQ(report.resumed, 1u);
}

// ---------------------------------------------------------------------
// serve.explore.generation

TEST_F(FaultCheckpoint, ExploreGenerationFaultLeavesResumableCheckpoint) {
  explore::ExploreSpec spec;
  spec.base = "C8";
  spec.axes = serve::parse_grid("RobEntry=48,64,96;FetchBufferEntry=8,16");
  spec.workloads = {"dhrystone"};
  spec.seed = 11;
  spec.population = 4;
  spec.generations = 3;
  spec.verify_top = 2;
  // Uninterrupted reference run (no checkpoint).
  const auto reference = explore::run_explore(*tiny_model(), spec);
  std::ostringstream ref_bytes;
  explore::write_frontier(ref_bytes, reference);

  // Fault at the top of the second generation: run_explore must throw
  // (never return a torn frontier) and leave the first generation's
  // verified rows behind in an intact checkpoint.
  spec.checkpoint = (dir_ / "explore.ckpt").string();
  {
    fault::ScopedFault armed("serve.explore.generation",
                             fault::Trigger::countdown(2));
    EXPECT_THROW((void)explore::run_explore(*tiny_model(), spec),
                 fault::FaultInjected);
  }
  ASSERT_TRUE(std::filesystem::exists(spec.checkpoint));
  // Disarmed, the resume replays those rows and converges to the exact
  // frontier bytes of the uninterrupted run.
  spec.resume = true;
  const auto resumed = explore::run_explore(*tiny_model(), spec);
  EXPECT_GT(resumed.resumed, 0u);
  std::ostringstream res_bytes;
  explore::write_frontier(res_bytes, resumed);
  EXPECT_EQ(res_bytes.str(), ref_bytes.str());
}

// ---------------------------------------------------------------------
// util.io.flush

TEST(FaultIo, FlushFaultBecomesWriteError) {
  std::ostringstream out;
  out << "report body\n";
  fault::ScopedFault armed("util.io.flush", fault::Trigger::countdown(1));
  try {
    util::flush_and_check(out, "the report");
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("the report"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("failed state"), std::string::npos);
  }
}

// ---------------------------------------------------------------------
// util.archive.write / util.archive.read

TEST(FaultArchive, WriteFaultThrowsCleanly) {
  ml::GbtOptions opt;
  opt.num_rounds = 2;
  ml::GBTRegressor model(opt);
  ml::Dataset data({"x"});
  data.add_sample(std::vector<double>{1.0}, 2.0);
  data.add_sample(std::vector<double>{2.0}, 3.0);
  data.add_sample(std::vector<double>{3.0}, 5.0);
  model.fit(data);

  std::ostringstream out;
  util::ArchiveWriter writer(out);
  fault::ScopedFault armed("util.archive.write",
                           fault::Trigger::countdown(3));
  EXPECT_THROW(model.save(writer), fault::FaultInjected);
}

TEST(FaultArchive, ReadFaultThrowsCleanlyMidLoad) {
  ml::GbtOptions opt;
  opt.num_rounds = 2;
  ml::GBTRegressor model(opt);
  ml::Dataset data({"x"});
  data.add_sample(std::vector<double>{1.0}, 2.0);
  data.add_sample(std::vector<double>{2.0}, 3.0);
  data.add_sample(std::vector<double>{3.0}, 5.0);
  model.fit(data);
  std::ostringstream out;
  util::ArchiveWriter writer(out);
  model.save(writer);

  std::istringstream in(out.str());
  util::ArchiveReader reader(in);
  ml::GBTRegressor loaded;
  fault::ScopedFault armed("util.archive.read",
                           fault::Trigger::countdown(4));
  EXPECT_THROW(loaded.load(reader), fault::FaultInjected);
}

// The registry's first-insert-wins publication contract: a load that
// throws (here: an injected archive-read failure) must never publish a
// named slot — no half-loaded model may become routable, and the slot
// name stays free for a later, successful open.  Reuses the existing
// util.archive.read site; no registry-private fault point is needed.
TEST_F(FaultCliTest, RegistryThrowingLoadNeverPublishesSlot) {
  serve::ModelRegistry registry;
  {
    fault::ScopedFault armed("util.archive.read",
                             fault::Trigger::countdown(1));
    EXPECT_THROW((void)registry.open("boom", model_path()),
                 fault::FaultInjected);
  }
  EXPECT_EQ(registry.named("boom"), nullptr);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_TRUE(registry.names().empty());

  // Recovery: the same name binds fine once the fault clears, and a
  // subsequent armed reload_named keeps the published snapshot.
  const auto model = registry.open("boom", model_path());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(registry.size(), 1u);
  {
    fault::ScopedFault armed("util.archive.read",
                             fault::Trigger::countdown(1));
    EXPECT_THROW((void)registry.reload_named("boom"),
                 fault::FaultInjected);
  }
  EXPECT_EQ(registry.named("boom").get(), model.get());
  EXPECT_EQ(registry.named("boom")->fingerprint(), model->fingerprint());
}

// ---------------------------------------------------------------------
// Subprocess: AUTOPOWER_FAULT environment arming, CLI must exit 1.

TEST_F(FaultCliTest, BatchReadFaultExitsOne) {
  std::string output;
  const int status = run_cli_with_fault(
      "serve.jsonl.read_line=countdown:1",
      "batch --model '" + model_path() + "' --requests '" +
          requests_path() + "'",
      &output);
  expect_clean_error_exit(status, output);
  EXPECT_NE(output.find("injected fault"), std::string::npos) << output;
}

TEST_F(FaultCliTest, BatchOutputFlushFaultExitsOne) {
  const std::string out_file = out_path("batch_out.jsonl");
  std::string output;
  const int status = run_cli_with_fault(
      "util.io.flush=countdown:1",
      "batch --model '" + model_path() + "' --requests '" +
          requests_path() + "' --out '" + out_file + "'",
      &output);
  expect_clean_error_exit(status, output);
  EXPECT_NE(output.find("write failed"), std::string::npos) << output;
}

TEST_F(FaultCliTest, ModelLoadFaultExitsOne) {
  std::string output;
  const int status = run_cli_with_fault(
      "util.archive.read=countdown:5",
      "predict --model '" + model_path() +
          "' --config C8 --workload dhrystone",
      &output);
  expect_clean_error_exit(status, output);
}

TEST_F(FaultCliTest, TrainArchiveWriteFaultExitsOne) {
  std::string output;
  const int status = run_cli_with_fault(
      "util.archive.write=countdown:10",
      "train --known C1,C15 --out '" + out_path("faulted_model.ap") + "'",
      &output);
  expect_clean_error_exit(status, output);
}

TEST_F(FaultCliTest, SweepReportWriteFaultExitsOne) {
  std::string output;
  const int status = run_cli_with_fault(
      "serve.report.write_row=countdown:1",
      "sweep --model '" + model_path() +
          "' --workloads dhrystone --base C8 --out '" +
          out_path("sweep_out.jsonl") + "'",
      &output);
  expect_clean_error_exit(status, output);
}

TEST_F(FaultCliTest, SweepCheckpointWriteFaultExitsOne) {
  std::string output;
  const int status = run_cli_with_fault(
      "serve.checkpoint.write=countdown:1",
      "sweep --model '" + model_path() +
          "' --workloads dhrystone --base C8 --grid RobEntry=64,96 "
          "--checkpoint '" +
          out_path("faulted.ckpt") + "' --out '" +
          out_path("sweep_ckpt_out.jsonl") + "'",
      &output);
  expect_clean_error_exit(status, output);
  EXPECT_NE(output.find("checkpoint"), std::string::npos) << output;
}

TEST_F(FaultCliTest, SweepResumeLoadFaultExitsOne) {
  const std::string ckpt = out_path("resume_fault.ckpt");
  std::string output;
  int status = run_cli_with_fault(
      "",
      "sweep --model '" + model_path() +
          "' --workloads dhrystone --base C8 --grid RobEntry=64,96 "
          "--checkpoint '" + ckpt + "' --out '" +
          out_path("resume_fault_out.jsonl") + "'",
      &output);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << output;

  status = run_cli_with_fault(
      "serve.checkpoint.load=countdown:1",
      "sweep --model '" + model_path() +
          "' --workloads dhrystone --base C8 --grid RobEntry=64,96 "
          "--checkpoint '" + ckpt + "' --resume --out '" +
          out_path("resume_fault_out.jsonl") + "'",
      &output);
  expect_clean_error_exit(status, output);
}

TEST_F(FaultCliTest, ExploreGenerationFaultExitsOneThenResumesByteIdentical) {
  const auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };
  const std::string common =
      "explore --model '" + model_path() +
      "' --workloads dhrystone --base C8 --grid RobEntry=48,64,96 "
      "--seed 5 --population 4 --generations 3 --verify-top 2 --threads 1 ";
  const std::string out_clean = out_path("explore_clean.jsonl");
  std::string output;
  int status =
      run_cli_with_fault("", common + "--out '" + out_clean + "'", &output);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << output;

  // Mid-generation fault: clean exit 1 (not a signal), no frontier
  // written, checkpoint left behind for the resume.
  const std::string ckpt = out_path("explore_fault.ckpt");
  const std::string out_resumed = out_path("explore_resumed.jsonl");
  status = run_cli_with_fault(
      "serve.explore.generation=countdown:2",
      common + "--checkpoint '" + ckpt + "' --out '" + out_resumed + "'",
      &output);
  expect_clean_error_exit(status, output);
  EXPECT_NE(output.find("injected fault"), std::string::npos) << output;
  EXPECT_TRUE(std::filesystem::exists(ckpt));
  EXPECT_FALSE(std::filesystem::exists(out_resumed));

  // Disarmed resume: exit 0 and a frontier byte-identical to the
  // uninterrupted run's.
  status = run_cli_with_fault(
      "",
      common + "--checkpoint '" + ckpt + "' --resume --out '" + out_resumed +
          "'",
      &output);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << output;
  EXPECT_EQ(read_file(out_resumed), read_file(out_clean));
}

TEST_F(FaultCliTest, MalformedFaultSpecExitsOne) {
  std::string output;
  const int status = run_cli_with_fault(
      "serve.jsonl.read_line=bogus:x",
      "batch --model '" + model_path() + "' --requests '" +
          requests_path() + "'",
      &output);
  expect_clean_error_exit(status, output);
  EXPECT_NE(output.find("fault"), std::string::npos) << output;
}

// ---------------------------------------------------------------------
// Concurrent faulting (the TSan target): probabilistic faults on the
// structural-cache fill while a threaded engine runs.  Nothing may
// crash, hang, or leave a cache entry that poisons the recovery run.

TEST(FaultConcurrent, ProbabilisticStructuralFaultsUnderThreadedBatch) {
  serve::BatchEngine engine(tiny_model(),
                            {.threads = 3, .memoize_responses = false});
  const auto requests = valid_requests(8);
  {
    fault::ScopedFault armed(
        "util.structural_cache.fill",
        fault::Trigger::probability(0.3, /*seed=*/testcore::Pcg32(1)
                                             .next_u64()));
    const auto responses = engine.run(requests);  // must complete
    ASSERT_EQ(responses.size(), requests.size());
    for (const auto& r : responses) {
      if (!r.ok) {
        EXPECT_NE(r.error.find("injected fault"), std::string::npos)
            << r.error;
      }
    }
  }
  // Recovery run: every request succeeds; no cache slot was poisoned.
  for (const auto& r : engine.run(requests)) {
    EXPECT_TRUE(r.ok) << r.error;
  }
}

TEST(FaultConcurrent, ThreadPoolSurvivesProbabilisticTaskFaults) {
  util::ThreadPool pool(3);
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  {
    fault::ScopedFault armed("util.thread_pool.run_task",
                             fault::Trigger::probability(0.25, 99));
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    pool.wait_idle();  // never hangs, whatever subset of tasks died
  }
  const auto failures = pool.task_failures();
  EXPECT_EQ(ran.load() + static_cast<int>(failures.count), kTasks);
  EXPECT_GT(failures.count, 0u);  // p=0.25 over 64 tasks fires
}

// ---------------------------------------------------------------------
// Serving-daemon fault sites: a live loopback daemon, faults injected at
// each socket seam and at the admission decision.  The client side below
// uses raw send/recv ONLY — net::write_line / net::LineReader carry the
// very sites being armed, and the trigger is process-global.

/// Daemon on an ephemeral port; destructor drains gracefully.
struct FaultDaemon {
  explicit FaultDaemon(serve::DaemonOptions options = {})
      : daemon(tiny_model(), options), server([this] { daemon.serve(); }) {}
  ~FaultDaemon() {
    daemon.notify_stop();
    server.join();
  }
  serve::Daemon daemon;
  std::thread server;
};

/// Sends `blob`, half-closes, returns all response lines (raw recv).
std::vector<std::string> daemon_roundtrip(std::uint16_t port,
                                          const std::string& blob) {
  const serve::net::Socket sock = serve::net::connect_loopback(port);
  std::size_t sent = 0;
  while (sent < blob.size()) {
    const ssize_t n = ::send(sock.fd(), blob.data() + sent,
                             blob.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(sock.fd(), SHUT_WR);
  std::string data;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  std::vector<std::string> lines;
  std::istringstream in(data);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

constexpr const char* kDaemonRequest =
    "{\"config\": \"C2\", \"workload\": \"qsort\"}\n";

TEST(FaultDaemonSites, AcceptFailureRetriesAndServes) {
  FaultDaemon fd;
  {
    // The accept attempt dies before accept(2) runs; the pending
    // connection stays in the listen backlog, so the retry (next poll
    // iteration) serves the same client.  One fault, zero user impact.
    fault::ScopedFault armed("serve.net.accept",
                             fault::Trigger::countdown(1));
    const auto lines = daemon_roundtrip(fd.daemon.port(), kDaemonRequest);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos) << lines[0];
  }
  EXPECT_GE(fd.daemon.stats().net_errors, 1u);
}

TEST(FaultDaemonSites, ReadFailureClosesOnlyThatConnection) {
  FaultDaemon fd;
  {
    fault::ScopedFault armed("serve.net.read", fault::Trigger::countdown(1));
    // The victim's first recv in the daemon dies mid-line: clean close
    // (EOF, no response), never a crash or hang.
    EXPECT_TRUE(daemon_roundtrip(fd.daemon.port(), kDaemonRequest).empty());
  }
  EXPECT_GE(fd.daemon.stats().net_errors, 1u);
  // Disarmed: the daemon serves the next client in full.
  const auto lines = daemon_roundtrip(fd.daemon.port(), kDaemonRequest);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos) << lines[0];
}

TEST(FaultDaemonSites, WriteFailureTearsDownOnlyThatConnection) {
  FaultDaemon fd;
  {
    fault::ScopedFault armed("serve.net.write",
                             fault::Trigger::countdown(1));
    // The response write dies: the victim sees EOF (no torn half-line),
    // and only that connection is affected.
    EXPECT_TRUE(daemon_roundtrip(fd.daemon.port(), kDaemonRequest).empty());
  }
  EXPECT_GE(fd.daemon.stats().net_errors, 1u);
  const auto lines = daemon_roundtrip(fd.daemon.port(), kDaemonRequest);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos) << lines[0];
}

TEST(FaultDaemonSites, AdmitFaultShedsWithStructuredError) {
  FaultDaemon fd;
  {
    // Forces the admission decision to "queue full" for the first
    // compute request: the deterministic handle on the shed path.
    fault::ScopedFault armed("serve.daemon.admit",
                             fault::Trigger::countdown(1));
    const auto lines = daemon_roundtrip(
        fd.daemon.port(), std::string(kDaemonRequest) + kDaemonRequest);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"error\": \"overloaded\""), std::string::npos)
        << lines[0];
    EXPECT_NE(lines[1].find("\"ok\": true"), std::string::npos) << lines[1];
  }
  EXPECT_EQ(fd.daemon.stats().shed, 1u);
}

// ---------------------------------------------------------------------
// Registry coverage: every site this binary exercised is a documented
// one, and every documented site was exercised (keeps DESIGN.md's
// fault-site registry honest).

TEST(FaultRegistry, AllDocumentedSitesExercised) {
  const std::vector<std::string> documented = {
      "serve.checkpoint.load",
      "serve.checkpoint.write",
      "serve.daemon.admit",
      "serve.engine.handle",
      "serve.eval_cache.compute",
      "serve.eval_cache.insert",
      "serve.explore.generation",
      "serve.jsonl.read_line",
      "serve.jsonl.write_response",
      "serve.net.accept",
      "serve.net.read",
      "serve.net.write",
      "serve.report.write_row",
      "util.archive.read",
      "util.archive.write",
      "util.io.flush",
      "util.structural_cache.fill",
      "util.structural_cache.insert",
      "util.thread_pool.run_task",
      "util.thread_pool.submit",
  };
  const auto seen = fault::sites_seen();
  for (const auto& site : documented) {
    EXPECT_NE(std::find(seen.begin(), seen.end(), site), seen.end())
        << "documented fault site never evaluated in-process: " << site;
  }
  for (const auto& site : seen) {
    EXPECT_NE(std::find(documented.begin(), documented.end(), site),
              documented.end())
        << "fault site not in DESIGN.md registry: " << site;
  }
}

}  // namespace
}  // namespace autopower

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  autopower::testcore::apply_cli_flags(&argc, argv);
  return RUN_ALL_TESTS();
}
