// Property tests over the explore optimizer core (src/explore) plus the
// randomized differential oracle against the exhaustive sweep:
//
//   (a) non_dominated_rank vs a naive O(n^2)-per-front peeling oracle,
//   (b) crowding-distance invariants (size, determinism, n<=2 => all
//       infinite, boundary members infinite, permutation consistency on
//       tie-free fronts),
//   (c) grid-coordinate operators: digits<->index round trips, mutate /
//       crossover always in-grid, counter-based Rng determinism,
//   (d) run_explore determinism: byte-identical frontier JSONL for the
//       same seed, for threads 1 vs 3, and across a SIGKILL-style
//       checkpoint truncation + --resume replay,
//   (e) differential oracle: with verify_top=0 and enough generations to
//       cover a tiny grid, the explore frontier must EQUAL the Pareto
//       set of the exhaustive run_sweep report — same grid indices, and
//       byte-identical row JSON for every member.
//
// On failure the proptest runner prints the base seed and the exact
// AUTOPOWER_PROPTEST_SEED line that reproduces the case; this binary
// also accepts --seed=N and --cases=N (see main() at the bottom).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/params.hpp"
#include "core/autopower.hpp"
#include "explore/explore.hpp"
#include "power/golden.hpp"
#include "serve/sweep.hpp"
#include "sim/perfsim.hpp"
#include "testcore/proptest.hpp"
#include "util/rng.hpp"
#include "util/structural_cache.hpp"
#include "workload/workload.hpp"

namespace autopower {
namespace {

using testcore::Pcg32;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------
// Shared helpers.

// Independent restatement of Pareto dominance (the oracle must not call
// the code under test).
bool naive_dominates(const explore::Objectives& a,
                     const explore::Objectives& b) {
  const bool no_worse = a.ipc_per_watt >= b.ipc_per_watt &&
                        a.total_mw <= b.total_mw && a.area <= b.area;
  const bool better = a.ipc_per_watt > b.ipc_per_watt ||
                      a.total_mw < b.total_mw || a.area < b.area;
  return no_worse && better;
}

// Peeling oracle: rank r = the non-dominated members after removing
// every rank < r.  O(fronts * n^2), tiny n only.
std::vector<std::size_t> naive_rank(
    const std::vector<explore::Objectives>& objs) {
  const std::size_t n = objs.size();
  constexpr auto kUnranked = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> ranks(n, kUnranked);
  std::size_t assigned = 0;
  for (std::size_t rank = 0; assigned < n; ++rank) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < n; ++i) {
      if (ranks[i] != kUnranked) continue;
      bool dominated = false;
      for (std::size_t j = 0; j < n && !dominated; ++j) {
        dominated = j != i && ranks[j] == kUnranked &&
                    naive_dominates(objs[j], objs[i]);
      }
      if (!dominated) front.push_back(i);
    }
    for (const std::size_t i : front) ranks[i] = rank;
    assigned += front.size();
  }
  return ranks;
}

std::string describe_objectives(const std::vector<explore::Objectives>& objs) {
  std::ostringstream out;
  out << objs.size() << " points:";
  for (const auto& o : objs) {
    out << " (" << o.ipc_per_watt << "," << o.total_mw << "," << o.area
        << ")";
  }
  return out.str();
}

std::string describe_axes(const std::vector<serve::SweepAxis>& axes) {
  std::ostringstream out;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    if (i != 0) out << ";";
    out << arch::hw_param_name(axes[i].param) << "=";
    for (std::size_t j = 0; j < axes[i].values.size(); ++j) {
      if (j != 0) out << ",";
      out << axes[i].values[j];
    }
  }
  return out.str();
}

std::size_t grid_size(const std::vector<serve::SweepAxis>& axes) {
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.values.size();
  return n;
}

std::string frontier_bytes(const explore::ExploreReport& report) {
  std::ostringstream out;
  explore::write_frontier(out, report);
  return out.str();
}

std::filesystem::path temp_path(const std::string& tag) {
  static std::atomic<unsigned> counter{0};
  std::ostringstream name;
  name << "autopower_explore_test_" << ::getpid() << "_" << counter++ << "_"
       << tag;
  return std::filesystem::temp_directory_path() / name.str();
}

// ---------------------------------------------------------------------
// Oracle (a): fast non-dominated sort vs the peeling oracle.

// Mostly-discrete draws force heavy tie/duplicate structure (the hard
// cases for domination counting); occasional continuous draws cover the
// generic position.
explore::Objectives random_point(Pcg32& rng, bool discrete) {
  if (discrete) {
    return {static_cast<double>(rng.next_int(0, 3)),
            static_cast<double>(rng.next_int(1, 3)),
            0.5 + static_cast<double>(rng.next_int(0, 2))};
  }
  return {rng.next_range(0.0, 4.0), rng.next_range(0.5, 4.0),
          rng.next_range(0.1, 3.0)};
}

TEST(ExploreProps, NonDominatedRankMatchesPeelingOracle) {
  const auto result = testcore::run_property<std::vector<explore::Objectives>>(
      {.name = "explore.rank_vs_peeling", .cases = 200},
      [](Pcg32& rng) {
        const int n = rng.next_int(0, 40);
        const bool discrete = rng.next_bool(0.6);
        std::vector<explore::Objectives> objs;
        objs.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) objs.push_back(random_point(rng, discrete));
        return objs;
      },
      [](const std::vector<explore::Objectives>& objs)
          -> std::optional<std::string> {
        const auto fast = explore::non_dominated_rank(objs);
        const auto oracle = naive_rank(objs);
        if (fast.size() != oracle.size()) return "rank count differs";
        for (std::size_t i = 0; i < fast.size(); ++i) {
          if (fast[i] != oracle[i]) {
            std::ostringstream msg;
            msg << "point " << i << ": fast rank " << fast[i]
                << " vs oracle rank " << oracle[i];
            return msg.str();
          }
        }
        return std::nullopt;
      },
      describe_objectives);
  ASSERT_TRUE(result.passed) << result.report;
}

// ---------------------------------------------------------------------
// Oracle (b): crowding-distance invariants.

struct CrowdCase {
  std::vector<explore::Objectives> objs;
  std::vector<std::size_t> front;  ///< unique indices into objs
};

std::string describe_crowd(const CrowdCase& c) {
  std::ostringstream out;
  out << describe_objectives(c.objs) << "; front:";
  for (const std::size_t i : c.front) out << " " << i;
  return out.str();
}

TEST(ExploreProps, CrowdingDistanceInvariants) {
  const auto result = testcore::run_property<CrowdCase>(
      {.name = "explore.crowding_invariants", .cases = 200},
      [](Pcg32& rng) {
        CrowdCase c;
        const int n = rng.next_int(1, 12);
        const bool discrete = rng.next_bool(0.4);
        for (int i = 0; i < n; ++i)
          c.objs.push_back(random_point(rng, discrete));
        // Random non-empty subset, in random order.
        std::vector<std::size_t> all(c.objs.size());
        for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
        for (std::size_t i = all.size(); i > 1; --i)
          std::swap(all[i - 1], all[rng.index(i)]);
        const std::size_t take =
            1 + rng.index(all.size());  // 1..n members
        c.front.assign(all.begin(),
                       all.begin() + static_cast<std::ptrdiff_t>(take));
        return c;
      },
      [](const CrowdCase& c) -> std::optional<std::string> {
        const auto dist = explore::crowding_distance(c.objs, c.front);
        if (dist.size() != c.front.size()) return "distance count differs";
        if (explore::crowding_distance(c.objs, c.front) != dist) {
          return "two identical calls disagree (non-deterministic)";
        }
        if (c.front.size() <= 2) {
          for (std::size_t i = 0; i < dist.size(); ++i) {
            if (dist[i] != kInf) {
              return "front of <=2 members must be all infinite";
            }
          }
          return std::nullopt;
        }
        for (std::size_t i = 0; i < dist.size(); ++i) {
          if (!(dist[i] >= 0.0)) {
            std::ostringstream msg;
            msg << "member " << i << " has negative/NaN distance " << dist[i];
            return msg.str();
          }
        }
        // A member that is the UNIQUE minimum or maximum of any
        // objective is a boundary member and must be infinite.
        const auto value = [&](std::size_t member, int obj) {
          const auto& o = c.objs[c.front[member]];
          return obj == 0 ? o.ipc_per_watt : obj == 1 ? o.total_mw : o.area;
        };
        for (int obj = 0; obj < 3; ++obj) {
          for (std::size_t i = 0; i < c.front.size(); ++i) {
            bool unique_min = true;
            bool unique_max = true;
            for (std::size_t j = 0; j < c.front.size(); ++j) {
              if (j == i) continue;
              if (value(j, obj) <= value(i, obj)) unique_min = false;
              if (value(j, obj) >= value(i, obj)) unique_max = false;
            }
            if ((unique_min || unique_max) && dist[i] != kInf) {
              std::ostringstream msg;
              msg << "member " << i << " is the unique "
                  << (unique_min ? "min" : "max") << " of objective " << obj
                  << " but got finite distance " << dist[i];
              return msg.str();
            }
          }
        }
        // Permutation consistency: when every objective is tie-free
        // within the front, each member's distance is independent of
        // the front's order.
        bool tie_free = true;
        for (int obj = 0; obj < 3 && tie_free; ++obj) {
          for (std::size_t i = 0; i < c.front.size() && tie_free; ++i) {
            for (std::size_t j = i + 1; j < c.front.size(); ++j) {
              if (value(i, obj) == value(j, obj)) {
                tie_free = false;
                break;
              }
            }
          }
        }
        if (tie_free) {
          std::vector<std::size_t> rotated(c.front.begin() + 1,
                                           c.front.end());
          rotated.push_back(c.front.front());
          const auto rotated_dist =
              explore::crowding_distance(c.objs, rotated);
          for (std::size_t i = 0; i < c.front.size(); ++i) {
            // c.front[i] sits at rotated position (i + n - 1) % n.
            const std::size_t at =
                (i + c.front.size() - 1) % c.front.size();
            if (dist[i] != rotated_dist[at]) {
              std::ostringstream msg;
              msg << "member " << c.front[i]
                  << " distance depends on front order: " << dist[i]
                  << " vs " << rotated_dist[at];
              return msg.str();
            }
          }
        }
        return std::nullopt;
      },
      describe_crowd);
  ASSERT_TRUE(result.passed) << result.report;
}

// ---------------------------------------------------------------------
// Oracle (c): grid-coordinate operators.

struct GridOpCase {
  std::vector<serve::SweepAxis> axes;
  std::vector<std::size_t> digits_a;
  std::vector<std::size_t> digits_b;
  std::uint64_t seed = 0;
};

std::string describe_grid_op(const GridOpCase& c) {
  std::ostringstream out;
  out << describe_axes(c.axes) << "; a:";
  for (const std::size_t d : c.digits_a) out << " " << d;
  out << "; b:";
  for (const std::size_t d : c.digits_b) out << " " << d;
  out << "; seed=" << c.seed;
  return out.str();
}

TEST(ExploreProps, GridOperatorsStayInGridAndRoundTrip) {
  const auto result = testcore::run_property<GridOpCase>(
      {.name = "explore.grid_operators", .cases = 200},
      [](Pcg32& rng) {
        GridOpCase c;
        const int n_axes = rng.next_int(1, 5);
        std::vector<std::size_t> params(arch::kNumHwParams);
        for (std::size_t i = 0; i < params.size(); ++i) params[i] = i;
        for (std::size_t i = params.size(); i > 1; --i)
          std::swap(params[i - 1], params[rng.index(i)]);
        for (int a = 0; a < n_axes; ++a) {
          serve::SweepAxis axis;
          axis.param =
              static_cast<arch::HwParam>(params[static_cast<std::size_t>(a)]);
          const int n_values = rng.next_int(1, 6);
          for (int v = 0; v < n_values; ++v)
            axis.values.push_back(rng.next_int(1, 256));
          c.axes.push_back(std::move(axis));
        }
        for (const auto& axis : c.axes) {
          c.digits_a.push_back(rng.index(axis.values.size()));
          c.digits_b.push_back(rng.index(axis.values.size()));
        }
        c.seed = rng.next_u64();
        return c;
      },
      [](const GridOpCase& c) -> std::optional<std::string> {
        const std::size_t total = grid_size(c.axes);
        const auto in_grid =
            [&](const std::vector<std::size_t>& digits) -> bool {
          if (digits.size() != c.axes.size()) return false;
          for (std::size_t i = 0; i < digits.size(); ++i) {
            if (digits[i] >= c.axes[i].values.size()) return false;
          }
          return true;
        };
        // digits -> index -> digits round trip, and index in range.
        const std::size_t index_a =
            explore::digits_to_index(c.digits_a, c.axes);
        if (index_a >= total) return "digits_to_index out of range";
        if (explore::index_to_digits(index_a, c.axes) != c.digits_a) {
          return "digits -> index -> digits round trip failed";
        }
        // index -> digits -> index round trip from a random index.
        const std::size_t probe = index_a / 2 + total / 3;
        const auto probe_digits =
            explore::index_to_digits(probe % total, c.axes);
        if (!in_grid(probe_digits)) return "index_to_digits left the grid";
        if (explore::digits_to_index(probe_digits, c.axes) != probe % total) {
          return "index -> digits -> index round trip failed";
        }
        // Mutation: in-grid, at most 2 axes changed, Rng-deterministic.
        util::Rng mut_rng(c.seed);
        const auto mutated = explore::mutate(c.digits_a, c.axes, mut_rng);
        if (!in_grid(mutated)) return "mutate left the grid";
        std::size_t changed = 0;
        for (std::size_t i = 0; i < mutated.size(); ++i) {
          if (mutated[i] != c.digits_a[i]) ++changed;
        }
        if (changed > 2) {
          std::ostringstream msg;
          msg << "mutate changed " << changed << " axes (max 2)";
          return msg.str();
        }
        util::Rng mut_rng2(c.seed);
        if (explore::mutate(c.digits_a, c.axes, mut_rng2) != mutated) {
          return "mutate is not deterministic for a fixed Rng seed";
        }
        // Crossover: in-grid, every digit inherited from a parent,
        // Rng-deterministic.
        util::Rng cross_rng(c.seed ^ 0x9e3779b97f4a7c15ULL);
        const auto child =
            explore::crossover(c.digits_a, c.digits_b, c.axes, cross_rng);
        if (!in_grid(child)) return "crossover left the grid";
        for (std::size_t i = 0; i < child.size(); ++i) {
          if (child[i] != c.digits_a[i] && child[i] != c.digits_b[i]) {
            std::ostringstream msg;
            msg << "crossover invented digit " << child[i] << " at axis "
                << i;
            return msg.str();
          }
        }
        util::Rng cross_rng2(c.seed ^ 0x9e3779b97f4a7c15ULL);
        if (explore::crossover(c.digits_a, c.digits_b, c.axes, cross_rng2) !=
            child) {
          return "crossover is not deterministic for a fixed Rng seed";
        }
        return std::nullopt;
      },
      describe_grid_op);
  ASSERT_TRUE(result.passed) << result.report;
}

// ---------------------------------------------------------------------
// Search-level oracles need a trained model.  Small hyper-parameters
// (the claims are determinism and frontier correctness, not accuracy)
// and one shared structural cache — the determinism contract explicitly
// covers pre-warmed caches, so cross-case reuse is part of what these
// oracles check.

core::AutoPowerOptions tiny_autopower_options() {
  core::AutoPowerOptions opt;
  opt.clock.gbt.num_rounds = 3;
  opt.clock.gbt.tree.max_depth = 2;
  opt.sram.gbt.num_rounds = 3;
  opt.sram.gbt.tree.max_depth = 2;
  opt.logic.gbt.num_rounds = 3;
  opt.logic.gbt.tree.max_depth = 2;
  return opt;
}

class ExploreSearch : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SimOptions opt;
    opt.sample_accesses = 500;
    opt.sample_branches = 500;
    sim::PerfSimulator sim(opt);
    std::vector<core::EvalContext> ctxs;
    for (const char* cfg_name : {"C1", "C15"}) {
      const auto& cfg = arch::boom_config(cfg_name);
      for (const char* wl_name : {"dhrystone", "qsort"}) {
        const auto& wl = workload::workload_by_name(wl_name);
        core::EvalContext ctx;
        ctx.cfg = &cfg;
        ctx.workload = wl.name;
        ctx.program = workload::program_features(wl);
        ctx.events = sim.simulate(cfg, wl);
        ctxs.push_back(std::move(ctx));
      }
    }
    static const power::GoldenPowerModel golden;
    auto model =
        std::make_shared<core::AutoPowerModel>(tiny_autopower_options());
    model->train(ctxs, golden, 1);
    model_ = new std::shared_ptr<const core::AutoPowerModel>(model);
    structural_ = new std::shared_ptr<util::StructuralSimCache>(
        std::make_shared<util::StructuralSimCache>());
  }
  static void TearDownTestSuite() {
    delete structural_;
    delete model_;
  }

  static std::shared_ptr<const core::AutoPowerModel>* model_;
  static std::shared_ptr<util::StructuralSimCache>* structural_;
};

std::shared_ptr<const core::AutoPowerModel>* ExploreSearch::model_ = nullptr;
std::shared_ptr<util::StructuralSimCache>* ExploreSearch::structural_ =
    nullptr;

// Random tiny grids over parameters/values that BOOM configs accept.
// Failed cells are legitimate (the frontier-eligibility filter handles
// them), but the pools keep most cells simulable so the oracles bite.
std::vector<serve::SweepAxis> random_tiny_axes(Pcg32& rng,
                                               std::size_t max_cells) {
  struct Pool {
    arch::HwParam param;
    std::vector<int> values;
  };
  static const std::vector<Pool> pools = {
      {arch::HwParam::kRobEntry, {32, 48, 64, 96, 112, 128}},
      {arch::HwParam::kFetchBufferEntry, {8, 16, 24, 32}},
      {arch::HwParam::kLdqStqEntry, {8, 12, 16, 24, 32}},
      {arch::HwParam::kIntPhyRegister, {64, 80, 96, 112, 128}},
      {arch::HwParam::kBranchCount, {8, 12, 16, 20, 32}},
      {arch::HwParam::kMshrEntry, {2, 4, 8}},
      {arch::HwParam::kTlbEntry, {8, 16, 32}},
  };
  std::vector<std::size_t> order(pools.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.index(i)]);
  const int n_axes = rng.next_int(1, 3);
  std::vector<serve::SweepAxis> axes;
  std::size_t cells = 1;
  for (int a = 0; a < n_axes; ++a) {
    const Pool& pool = pools[order[static_cast<std::size_t>(a)]];
    std::size_t max_take = pool.values.size();
    while (max_take > 1 && cells * max_take > max_cells) --max_take;
    const std::size_t take = 1 + rng.index(max_take);
    // Random distinct subset of the pool, kept in pool order so the
    // axis reads naturally in failure reports.
    std::vector<std::size_t> picks(pool.values.size());
    for (std::size_t i = 0; i < picks.size(); ++i) picks[i] = i;
    for (std::size_t i = picks.size(); i > 1; --i)
      std::swap(picks[i - 1], picks[rng.index(i)]);
    picks.resize(take);
    std::sort(picks.begin(), picks.end());
    serve::SweepAxis axis;
    axis.param = pool.param;
    for (const std::size_t p : picks) axis.values.push_back(pool.values[p]);
    cells *= take;
    axes.push_back(std::move(axis));
  }
  // A 1-cell grid makes every oracle vacuous; widen the first axis that
  // has room.
  if (cells == 1) {
    for (auto& axis : axes) {
      for (const Pool& pool : pools) {
        if (pool.param == axis.param && pool.values.size() > 1) {
          axis.values = {pool.values[0], pool.values[1]};
          return axes;
        }
      }
    }
  }
  return axes;
}

struct SearchCase {
  std::vector<serve::SweepAxis> axes;
  std::uint64_t seed = 0;
  std::size_t population = 0;
  std::size_t generations = 0;
  std::size_t verify_top = 0;
};

std::string describe_search(const SearchCase& c) {
  std::ostringstream out;
  out << describe_axes(c.axes) << "; seed=" << c.seed
      << " pop=" << c.population << " gens=" << c.generations
      << " verify_top=" << c.verify_top;
  return out.str();
}

explore::ExploreSpec spec_for(const SearchCase& c) {
  explore::ExploreSpec spec;
  spec.base = "C8";
  spec.axes = c.axes;
  spec.workloads = {"dhrystone", "qsort"};
  spec.threads = 1;
  spec.seed = c.seed;
  spec.population = c.population;
  spec.generations = c.generations;
  spec.verify_top = c.verify_top;
  return spec;
}

SearchCase random_search_case(Pcg32& rng) {
  SearchCase c;
  c.axes = random_tiny_axes(rng, 24);
  c.seed = rng.next_u64();
  c.population = static_cast<std::size_t>(rng.next_int(4, 10));
  c.generations = static_cast<std::size_t>(rng.next_int(2, 4));
  c.verify_top = static_cast<std::size_t>(rng.next_int(0, 4));
  return c;
}

// Oracle (d): the frontier JSONL is byte-identical for the same seed
// and for threads 1 vs 3, and elite errors / counters agree.
TEST_F(ExploreSearch, SeedAndThreadCountInvariance) {
  const auto result = testcore::run_property<SearchCase>(
      {.name = "explore.seed_thread_invariance", .cases = 40},
      random_search_case,
      [](const SearchCase& c) -> std::optional<std::string> {
        auto spec = spec_for(c);
        const auto first = explore::run_explore(**model_, spec, *structural_);
        const auto again = explore::run_explore(**model_, spec, *structural_);
        spec.threads = 3;
        const auto threaded =
            explore::run_explore(**model_, spec, *structural_);
        const std::string bytes = frontier_bytes(first);
        if (frontier_bytes(again) != bytes) {
          return "same seed, same threads: frontier bytes differ";
        }
        if (frontier_bytes(threaded) != bytes) {
          return "threads=1 vs threads=3: frontier bytes differ";
        }
        if (again.elite_err != first.elite_err ||
            threaded.elite_err != first.elite_err) {
          return "per-generation elite errors differ across reruns";
        }
        if (again.candidates_scored != first.candidates_scored ||
            threaded.candidates_scored != first.candidates_scored) {
          return "candidates_scored differs across reruns";
        }
        if (again.verified != first.verified ||
            threaded.verified != first.verified) {
          return "verified count differs across reruns";
        }
        return std::nullopt;
      },
      describe_search);
  ASSERT_TRUE(result.passed) << result.report;
}

// Oracle (d, resume half): truncating the checkpoint at ANY byte (the
// torn tail a SIGKILL leaves) and resuming converges to the identical
// frontier bytes.
TEST_F(ExploreSearch, CheckpointTruncationResumeByteIdentical) {
  const auto result = testcore::run_property<SearchCase>(
      {.name = "explore.checkpoint_resume", .cases = 30},
      random_search_case,
      [](const SearchCase& c) -> std::optional<std::string> {
        const auto ckpt = temp_path("resume.ckpt");
        struct Cleanup {
          std::filesystem::path path;
          ~Cleanup() {
            std::error_code ec;
            std::filesystem::remove(path, ec);
          }
        } cleanup{ckpt};
        auto spec = spec_for(c);
        spec.checkpoint = ckpt.string();
        const auto full = explore::run_explore(**model_, spec, *structural_);
        const std::string expected = frontier_bytes(full);
        std::error_code ec;
        const auto size = std::filesystem::file_size(ckpt, ec);
        if (ec) return "checkpoint file missing after full run";
        // Derive the cut deterministically from the case seed so the
        // failure report reproduces it.
        util::Rng cut_rng(c.seed ^ 0x5bf03635ULL);
        const auto keep = cut_rng.next_below(size + 1);
        std::filesystem::resize_file(ckpt, keep, ec);
        if (ec) return "failed to truncate checkpoint";
        spec.resume = true;
        const auto resumed =
            explore::run_explore(**model_, spec, *structural_);
        if (frontier_bytes(resumed) != expected) {
          std::ostringstream msg;
          msg << "resume after truncating checkpoint to " << keep << "/"
              << size << " bytes changed the frontier";
          return msg.str();
        }
        return std::nullopt;
      },
      describe_search);
  ASSERT_TRUE(result.passed) << result.report;
}

// ---------------------------------------------------------------------
// Oracle (e): differential against the exhaustive sweep.  verify_top=0
// verifies every scored candidate and the generation budget covers the
// whole grid, so every cell is simulator-verified — the frontier must
// EQUAL the Pareto set of the exhaustive run_sweep report, member for
// member and byte for byte.

TEST_F(ExploreSearch, DifferentialFrontierEqualsExhaustivePareto) {
  const auto result = testcore::run_property<SearchCase>(
      {.name = "explore.differential_vs_sweep", .cases = 60},
      [](Pcg32& rng) {
        SearchCase c;
        c.axes = random_tiny_axes(rng, 18);
        c.seed = rng.next_u64();
        c.population = static_cast<std::size_t>(rng.next_int(4, 8));
        c.generations =
            (grid_size(c.axes) + c.population - 1) / c.population + 2;
        c.verify_top = 0;
        return c;
      },
      [](const SearchCase& c) -> std::optional<std::string> {
        const auto report =
            explore::run_explore(**model_, spec_for(c), *structural_);
        serve::SweepSpec sweep_spec;
        sweep_spec.base = "C8";
        sweep_spec.axes = c.axes;
        sweep_spec.workloads = {"dhrystone", "qsort"};
        sweep_spec.threads = 1;
        const auto sweep = serve::run_sweep(**model_, sweep_spec, *structural_);
        // Exhaustive Pareto set over the eligible sweep rows, via the
        // naive peeling oracle.
        std::vector<explore::Objectives> objs;
        std::vector<const serve::SweepRow*> rows;
        for (const auto& row : sweep.rows) {
          if (row.failed != 0 || row.mean_total_mw <= 0.0) continue;
          objs.push_back({row.ipc_per_watt, row.mean_total_mw,
                          explore::area_proxy(row.config)});
          rows.push_back(&row);
        }
        const auto ranks = naive_rank(objs);
        std::set<std::size_t> oracle_front;
        std::unordered_map<std::size_t, const serve::SweepRow*> by_index;
        for (std::size_t i = 0; i < rows.size(); ++i) {
          by_index.emplace(rows[i]->index, rows[i]);
          if (ranks[i] == 0) oracle_front.insert(rows[i]->index);
        }
        std::set<std::size_t> explore_front;
        for (const auto& member : report.frontier) {
          explore_front.insert(member.row.index);
        }
        if (explore_front != oracle_front) {
          std::ostringstream msg;
          msg << "frontier grid indices differ; explore:";
          for (const std::size_t i : explore_front) msg << " " << i;
          msg << "; exhaustive oracle:";
          for (const std::size_t i : oracle_front) msg << " " << i;
          msg << "; grid=" << report.grid_configs
              << " verified=" << report.verified
              << " resumed=" << report.resumed;
          return msg.str();
        }
        // Every frontier member's row JSON must be byte-identical to
        // the exhaustive sweep's row for the same grid index
        // (evaluate_configs' bit-identity contract, end to end).
        for (const auto& member : report.frontier) {
          const auto it = by_index.find(member.row.index);
          if (it == by_index.end()) return "frontier index missing from sweep";
          std::string from_explore;
          std::string from_sweep;
          serve::append_row_json(from_explore, member.row);
          serve::append_row_json(from_sweep, *it->second);
          if (from_explore != from_sweep) {
            std::ostringstream msg;
            msg << "row JSON for grid index " << member.row.index
                << " differs:\n  explore: " << from_explore
                << "\n  sweep:   " << from_sweep;
            return msg.str();
          }
          if (member.area != explore::area_proxy(member.row.config)) {
            return "frontier area does not match area_proxy(config)";
          }
        }
        // Frontier ordering contract: ipc_per_watt descending, grid
        // index ascending on ties, ranks 1..N.
        for (std::size_t i = 0; i < report.frontier.size(); ++i) {
          if (report.frontier[i].row.rank != i + 1) {
            return "frontier ranks are not 1..N";
          }
          if (i == 0) continue;
          const auto& prev = report.frontier[i - 1].row;
          const auto& cur = report.frontier[i].row;
          if (prev.ipc_per_watt < cur.ipc_per_watt ||
              (prev.ipc_per_watt == cur.ipc_per_watt &&
               prev.index >= cur.index)) {
            return "frontier is not sorted by ipc_per_watt desc, index asc";
          }
        }
        return std::nullopt;
      },
      describe_search);
  ASSERT_TRUE(result.passed) << result.report;
}

}  // namespace
}  // namespace autopower

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  autopower::testcore::apply_cli_flags(&argc, argv);
  return RUN_ALL_TESTS();
}
