// Cross-module property sweeps: invariants of the full golden pipeline and
// the trained AutoPower model over the entire design space.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "ml/metrics.hpp"

namespace autopower {
namespace {

/// Shared heavyweight fixture.
struct Pipeline {
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  exp::ExperimentData data;
  core::AutoPowerModel model;

  Pipeline() : data(exp::ExperimentData::build(sim, golden)) {
    model.train(
        data.contexts_of(exp::ExperimentData::training_configs(2)),
        golden);
  }
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

// Property: golden power is strictly positive and finitely bounded for
// every (configuration, workload) grid point, and groups always sum.
class GoldenGridProperty : public ::testing::TestWithParam<int> {};

TEST_P(GoldenGridProperty, GoldenInvariantsHoldPerConfig) {
  auto& p = pipeline();
  const auto& cfg =
      arch::boom_design_space()[static_cast<std::size_t>(GetParam())];
  for (const auto& s : p.data.samples()) {
    if (s.ctx.cfg != &cfg) continue;
    const auto t = s.golden.totals();
    EXPECT_GT(t.clock, 0.0);
    EXPECT_GT(t.sram, 0.0);
    EXPECT_GT(t.logic(), 0.0);
    EXPECT_LT(t.total(), 500.0);
    EXPECT_NEAR(t.total(), t.clock + t.sram + t.logic(), 1e-9);
    // Clock + SRAM dominance (Observation 1) holds pointwise, loosely.
    EXPECT_GT((t.clock + t.sram) / t.total(), 0.5)
        << cfg.name() << "/" << s.ctx.workload;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, GoldenGridProperty,
                         ::testing::Range(0, 15));

// Property: the trained model's per-config MAPE is bounded on every
// held-out configuration (no catastrophic configuration).
class ModelPerConfigProperty : public ::testing::TestWithParam<int> {};

TEST_P(ModelPerConfigProperty, HeldOutConfigErrorBounded) {
  auto& p = pipeline();
  const auto& cfg =
      arch::boom_design_space()[static_cast<std::size_t>(GetParam())];
  if (cfg.name() == "C1" || cfg.name() == "C15") {
    GTEST_SKIP() << "training configuration";
  }
  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto& s : p.data.samples()) {
    if (s.ctx.cfg != &cfg) continue;
    actual.push_back(s.golden.total());
    pred.push_back(p.model.predict_total(s.ctx));
  }
  ASSERT_EQ(actual.size(), 8u);
  EXPECT_LT(ml::mape(actual, pred), 18.0) << cfg.name();
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ModelPerConfigProperty,
                         ::testing::Range(0, 15));

// Property: per-workload accuracy is bounded too (no pathological
// workload).
class ModelPerWorkloadProperty
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelPerWorkloadProperty, HeldOutWorkloadErrorBounded) {
  auto& p = pipeline();
  const std::string workload = GetParam();
  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto& s : p.data.samples()) {
    if (s.ctx.workload != workload) continue;
    if (s.ctx.cfg->name() == "C1" || s.ctx.cfg->name() == "C15") continue;
    actual.push_back(s.golden.total());
    pred.push_back(p.model.predict_total(s.ctx));
  }
  ASSERT_EQ(actual.size(), 13u);
  EXPECT_LT(ml::mape(actual, pred), 15.0) << workload;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ModelPerWorkloadProperty,
                         ::testing::Values("dhrystone", "median", "multiply",
                                           "qsort", "rsort", "towers",
                                           "spmv", "vvadd"));

// Property: the event vector of every grid point satisfies the pipeline's
// conservation laws (committed <= decoded, misses <= accesses, occupancy
// within capacity) — the whole grid, not just spot checks.
TEST(GridConsistency, EventInvariantsAcrossGrid) {
  auto& p = pipeline();
  using E = arch::EventKind;
  for (const auto& s : p.data.samples()) {
    const auto& ev = s.ctx.events;
    EXPECT_LE(ev[E::kCommittedUops], ev[E::kDecodedUops] * 1.001);
    EXPECT_LE(ev[E::kICacheMisses], ev[E::kICacheAccesses] + 1e-9);
    EXPECT_LE(ev[E::kDcacheMisses], ev[E::kDcacheAccesses] + 1e-9);
    EXPECT_LE(ev[E::kBpMispredicts], ev[E::kBranches] + 1e-9);
    EXPECT_LE(ev.rate(E::kRobOccupancy),
              s.ctx.cfg->value_d(arch::HwParam::kRobEntry));
  }
}

// Property: scaling the evaluation window does not change predicted power
// (rates are window-invariant): duplicate the events and compare.
TEST(GridConsistency, PredictionIsWindowScaleInvariant) {
  auto& p = pipeline();
  const auto& s = p.data.samples().front();
  core::EvalContext doubled = s.ctx;
  arch::EventVector twice = s.ctx.events;
  twice += s.ctx.events;
  doubled.events = twice;
  EXPECT_NEAR(p.model.predict_total(s.ctx),
              p.model.predict_total(doubled),
              1e-9 * p.model.predict_total(s.ctx));
}

// Property: the golden flow is scale-consistent as well (power depends on
// rates, not on window length).
TEST(GridConsistency, GoldenIsWindowScaleInvariant) {
  auto& p = pipeline();
  const auto& s = p.data.samples().back();
  arch::EventVector twice = s.ctx.events;
  twice += s.ctx.events;
  // Same rates but different jitter key: allow the waveform-noise band.
  const double a = p.golden.evaluate(*s.ctx.cfg, s.ctx.events).total();
  const double b = p.golden.evaluate(*s.ctx.cfg, twice).total();
  EXPECT_NEAR(a, b, 0.05 * a);
}

}  // namespace
}  // namespace autopower
