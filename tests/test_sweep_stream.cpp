// Tests for the streaming sweep machinery (src/serve/sweep.*,
// src/serve/checkpoint.*): lazy mixed-radix grid enumeration past the
// materialisation cap, crc-guarded checkpoint round-trips, the torn-tail
// vs corruption resume policy, byte-identity of resumed and
// memory-bounded runs, bounded top-k ranking, and the thread clamp.
//
// Compiled into the test_serve binary so tools/check.sh's TSan preset
// covers the work-stealing invariance tests.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "core/autopower.hpp"
#include "power/golden.hpp"
#include "serve/checkpoint.hpp"
#include "serve/sweep.hpp"
#include "sim/perfsim.hpp"
#include "util/error.hpp"
#include "workload/workload.hpp"

namespace autopower::serve {
namespace {

// --- Grid cursor -------------------------------------------------------------

TEST(GridCursorTest, MatchesMaterialisedExpansion) {
  const auto& base = arch::boom_config("C8");
  const auto axes = parse_grid(
      "RobEntry=64,96;FetchBufferEntry=16,24,32;LdqStqEntry=16,24");
  const auto materialised = expand_grid(base, axes);
  const GridCursor cursor(base, axes);
  ASSERT_EQ(cursor.size(), materialised.size());

  std::string name;
  std::array<int, arch::kNumHwParams> values{};
  for (std::size_t i = 0; i < cursor.size(); ++i) {
    EXPECT_EQ(cursor.config_at(i), materialised[i]) << "index " << i;
    cursor.format_name(i, name);
    EXPECT_EQ(name, materialised[i].name()) << "index " << i;
    cursor.values_at(i, values);
    for (const arch::HwParam p : arch::all_hw_params()) {
      EXPECT_EQ(values[static_cast<std::size_t>(p)],
                materialised[i].value(p))
          << "index " << i << " param " << arch::hw_param_name(p);
    }
  }
}

TEST(GridCursorTest, EmptyGridIsTheBasePoint) {
  const auto& base = arch::boom_config("C4");
  const GridCursor cursor(base, {});
  ASSERT_EQ(cursor.size(), 1u);
  EXPECT_EQ(cursor.config_at(0), base);
  std::string name;
  cursor.format_name(0, name);
  EXPECT_EQ(name, base.name());
}

TEST(GridCursorTest, StreamsPastTheMaterialisationCap) {
  // 7 axes x 10 values = 1e7 points: expand_grid refuses, the cursor
  // addresses every index without materialising anything.
  const auto& base = arch::boom_config("C8");
  std::vector<SweepAxis> axes;
  const arch::HwParam params[] = {
      arch::HwParam::kRobEntry,       arch::HwParam::kFetchBufferEntry,
      arch::HwParam::kLdqStqEntry,    arch::HwParam::kIntPhyRegister,
      arch::HwParam::kFpPhyRegister,  arch::HwParam::kBranchCount,
      arch::HwParam::kMshrEntry,
  };
  for (const arch::HwParam p : params) {
    SweepAxis axis{p, {}};
    for (int v = 1; v <= 10; ++v) axis.values.push_back(v * 8);
    axes.push_back(std::move(axis));
  }
  EXPECT_THROW((void)expand_grid(base, axes), util::Error);

  const GridCursor cursor(base, axes);
  ASSERT_EQ(cursor.size(), 10'000'000u);
  // Index 0 is the all-first-values point, the last index the
  // all-last-values point; a middle index decodes mixed-radix
  // (first axis slowest).
  EXPECT_EQ(cursor.config_at(0).value(arch::HwParam::kRobEntry), 8);
  const auto last = cursor.config_at(cursor.size() - 1);
  for (const arch::HwParam p : params) EXPECT_EQ(last.value(p), 80);
  const auto mid = cursor.config_at(3'456'789);
  EXPECT_EQ(mid.value(arch::HwParam::kRobEntry), (3 + 1) * 8);
  EXPECT_EQ(mid.value(arch::HwParam::kMshrEntry), (9 + 1) * 8);
  std::string name;
  cursor.format_name(3'456'789, name);
  EXPECT_EQ(name, mid.name());
}

// --- Checkpoint primitives ---------------------------------------------------

TEST(CheckpointTest, Crc32MatchesTheStandardCheckValue) {
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);  // IEEE CRC-32 check value
}

TEST(CheckpointTest, FingerprintCoversIdentityNotRankingKnobs) {
  const auto axes = parse_grid("RobEntry=64,96");
  const std::vector<std::string> workloads = {"dhrystone"};
  const std::string model_fp = "00112233aabbccdd";
  const auto fp = sweep_fingerprint("C8", axes, workloads, model_fp);
  EXPECT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp, sweep_fingerprint("C8", axes, workloads, model_fp));
  EXPECT_NE(fp, sweep_fingerprint("C4", axes, workloads, model_fp));
  EXPECT_NE(fp, sweep_fingerprint("C8", parse_grid("RobEntry=64,128"),
                                  workloads, model_fp));
  const std::vector<std::string> two = {"dhrystone", "qsort"};
  EXPECT_NE(fp, sweep_fingerprint("C8", axes, two, model_fp));
  // The model's archive fingerprint is part of the sweep identity: a
  // checkpoint written by one model refuses to resume under another.
  EXPECT_NE(fp, sweep_fingerprint("C8", axes, workloads, "ffeeddccbbaa9988"));
}

TEST(CheckpointTest, MissingFileIsAFreshStart) {
  const auto replay =
      load_checkpoint("/nonexistent/autopower.ckpt", "0123456789abcdef",
                      4, 1);
  EXPECT_FALSE(replay.found);
  EXPECT_TRUE(replay.rows.empty());
}

// --- Streaming sweep fixture -------------------------------------------------

core::AutoPowerOptions tiny_options() {
  core::AutoPowerOptions opt;
  opt.clock.gbt.num_rounds = 3;
  opt.clock.gbt.tree.max_depth = 2;
  opt.sram.gbt.num_rounds = 3;
  opt.sram.gbt.tree.max_depth = 2;
  opt.logic.gbt.num_rounds = 3;
  opt.logic.gbt.tree.max_depth = 2;
  return opt;
}

class StreamSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::PerfSimulator sim;
    power::GoldenPowerModel golden;
    std::vector<core::EvalContext> train;
    for (const std::string config : {"C1", "C15"}) {
      for (const char* w : {"dhrystone", "qsort"}) {
        core::EvalContext ctx;
        ctx.cfg = &arch::boom_config(config);
        ctx.workload = w;
        const auto& profile = workload::workload_by_name(w);
        ctx.program = workload::program_features(profile);
        ctx.events = sim.simulate(*ctx.cfg, profile);
        train.push_back(std::move(ctx));
      }
    }
    auto model = std::make_shared<core::AutoPowerModel>(tiny_options());
    model->train(train, golden, 1);
    model_ = new std::shared_ptr<const core::AutoPowerModel>(std::move(model));
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("autopower_stream_test_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
  }
  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(*dir_, ec);
    delete dir_;
    delete model_;
    dir_ = nullptr;
    model_ = nullptr;
  }

  static const core::AutoPowerModel& model() { return **model_; }
  static std::string path(const char* name) { return (*dir_ / name).string(); }

  static SweepSpec base_spec() {
    SweepSpec spec;
    spec.base = "C8";
    spec.axes = parse_grid("RobEntry=64,96;MshrEntry=2,4;CacheWay=2,4");
    spec.workloads = {"dhrystone"};
    spec.threads = 2;
    return spec;
  }

  static std::string report_bytes(const SweepReport& report) {
    std::ostringstream out;
    write_sweep_report(out, report);
    return out.str();
  }

  static std::string read_file(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  static void write_file(const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  static std::vector<std::string> lines_of(const std::string& bytes) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < bytes.size()) {
      const std::size_t nl = bytes.find('\n', start);
      if (nl == std::string::npos) break;
      lines.push_back(bytes.substr(start, nl - start));
      start = nl + 1;
    }
    return lines;
  }

  static std::shared_ptr<const core::AutoPowerModel>* model_;
  static std::filesystem::path* dir_;
};

std::shared_ptr<const core::AutoPowerModel>* StreamSweepTest::model_ = nullptr;
std::filesystem::path* StreamSweepTest::dir_ = nullptr;

// --- Checkpoint round trip and resume ---------------------------------------

TEST_F(StreamSweepTest, CheckpointedRunMatchesPlainRunAndRoundTrips) {
  auto spec = base_spec();
  const auto plain = run_sweep(model(), spec);

  spec.checkpoint = path("roundtrip.ckpt");
  const auto checkpointed = run_sweep(model(), spec);
  EXPECT_EQ(report_bytes(plain), report_bytes(checkpointed));
  EXPECT_EQ(checkpointed.resumed, 0u);

  // The finished checkpoint replays every row, and each replayed row
  // re-encodes to its original bytes (that is what the crc certifies).
  const auto fp = sweep_fingerprint(spec.base, spec.axes, spec.workloads,
                                    model().fingerprint());
  const auto replay = load_checkpoint(spec.checkpoint, fp, plain.configs,
                                      spec.workloads.size());
  ASSERT_TRUE(replay.found);
  ASSERT_EQ(replay.rows.size(), plain.configs);
  const GridCursor cursor(arch::boom_config(spec.base), spec.axes);
  std::string name;
  for (const auto& row : replay.rows) {
    ASSERT_LT(row.index, cursor.size());
    cursor.format_name(row.index, name);
    EXPECT_EQ(row.config.name(), name);
    ASSERT_EQ(row.cells.size(), spec.workloads.size());
  }
  EXPECT_EQ(replay.valid_bytes, read_file(spec.checkpoint).size());
}

TEST_F(StreamSweepTest, ResumeAfterTornTailIsByteIdentical) {
  auto spec = base_spec();
  spec.checkpoint = path("resume.ckpt");
  const auto full = run_sweep(model(), spec);
  const auto full_bytes = report_bytes(full);
  const auto complete = read_file(spec.checkpoint);
  const auto lines = lines_of(complete);
  ASSERT_EQ(lines.size(), 1u + full.configs);  // header + one per config

  // A SIGKILL mid-write leaves an intact prefix plus a torn (newline-less)
  // tail.  Resume must drop the tail, replay the prefix, re-evaluate the
  // rest, and reproduce the uninterrupted report byte for byte.
  std::string truncated;
  for (std::size_t i = 0; i < 4; ++i) truncated += lines[i] + "\n";
  truncated += R"({"i":7,"crc":"dead)";  // torn tail, no newline
  write_file(spec.checkpoint, truncated);

  spec.resume = true;
  const auto resumed = run_sweep(model(), spec);
  EXPECT_EQ(resumed.resumed, 3u);
  EXPECT_EQ(report_bytes(resumed), full_bytes);

  // The repaired checkpoint is complete again: header + every config,
  // newline-terminated.
  const auto repaired = read_file(spec.checkpoint);
  EXPECT_EQ(lines_of(repaired).size(), 1u + full.configs);
  EXPECT_EQ(repaired.back(), '\n');

  // Resuming a FINISHED checkpoint replays everything and evaluates
  // nothing new; still byte-identical, including under a different
  // ranking metric (the fingerprint deliberately excludes it).
  const auto replayed = run_sweep(model(), spec);
  EXPECT_EQ(replayed.resumed, full.configs);
  EXPECT_EQ(report_bytes(replayed), full_bytes);

  auto reranked = spec;
  reranked.metric = SweepMetric::kPower;
  auto reranked_fresh = base_spec();
  reranked_fresh.metric = SweepMetric::kPower;
  EXPECT_EQ(report_bytes(run_sweep(model(), reranked)),
            report_bytes(run_sweep(model(), reranked_fresh)));
}

TEST_F(StreamSweepTest, CorruptCheckpointLineRefusesResume) {
  auto spec = base_spec();
  spec.checkpoint = path("corrupt.ckpt");
  (void)run_sweep(model(), spec);
  const auto complete = read_file(spec.checkpoint);

  // Flip one payload byte of a newline-TERMINATED row: that is
  // corruption, not a torn tail, and resume must refuse rather than
  // silently skip completed work.
  auto corrupted = complete;
  const auto pos = corrupted.find("\"mean_total_mw\":");
  ASSERT_NE(pos, std::string::npos);
  corrupted[pos + 17] = corrupted[pos + 17] == '9' ? '8' : '9';
  write_file(spec.checkpoint, corrupted);

  spec.resume = true;
  try {
    (void)run_sweep(model(), spec);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("crc mismatch"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("refusing to resume"),
              std::string::npos)
        << e.what();
  }

  // A checkpoint written by a DIFFERENT sweep (other grid) is rejected by
  // fingerprint before any row is considered.
  write_file(spec.checkpoint, complete);
  auto other = spec;
  other.axes = parse_grid("RobEntry=64,96;MshrEntry=2,4");
  try {
    (void)run_sweep(model(), other);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos)
        << e.what();
  }

  // A missing checkpoint file is a fresh start, not corruption.
  auto missing = spec;
  missing.checkpoint = path("never_written.ckpt");
  EXPECT_FALSE(
      load_checkpoint(missing.checkpoint, "x", 1, 1).found);
}

TEST_F(StreamSweepTest, RetrainedModelRefusesStaleCheckpoint) {
  auto spec = base_spec();
  spec.checkpoint = path("retrained.ckpt");
  (void)run_sweep(model(), spec);

  // Same grid, same workloads — but a retrained model.  Its rows would
  // differ from the checkpointed ones, so replaying them would splice
  // stale predictions into the new model's report; the model fingerprint
  // inside the sweep identity makes the resume refuse instead.
  auto opts = tiny_options();
  opts.clock.gbt.num_rounds = 4;
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  std::vector<core::EvalContext> train;
  for (const std::string config : {"C1", "C15"}) {
    core::EvalContext ctx;
    ctx.cfg = &arch::boom_config(config);
    ctx.workload = "dhrystone";
    const auto& profile = workload::workload_by_name("dhrystone");
    ctx.program = workload::program_features(profile);
    ctx.events = sim.simulate(*ctx.cfg, profile);
    train.push_back(std::move(ctx));
  }
  core::AutoPowerModel retrained(opts);
  retrained.train(train, golden, 1);
  ASSERT_NE(retrained.fingerprint(), model().fingerprint());

  spec.resume = true;
  try {
    (void)run_sweep(retrained, spec);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos)
        << e.what();
  }
}

// --- Top-k, budget, clamp, failed rows ---------------------------------------

TEST_F(StreamSweepTest, TopKEqualsTheFullSortPrefix) {
  auto spec = base_spec();
  spec.workloads = {"dhrystone", "qsort"};
  const auto full = run_sweep(model(), spec);
  const auto full_lines = lines_of(report_bytes(full));

  for (const std::size_t k : {std::size_t{1}, std::size_t{3},
                              std::size_t{100}}) {
    auto top_spec = spec;
    top_spec.top = k;
    const auto top = run_sweep(model(), top_spec);
    const auto top_lines = lines_of(report_bytes(top));
    ASSERT_EQ(top_lines.size(), std::min(k, full_lines.size())) << "k=" << k;
    for (std::size_t i = 0; i < top_lines.size(); ++i) {
      EXPECT_EQ(top_lines[i], full_lines[i]) << "k=" << k << " row " << i;
    }
  }
}

TEST_F(StreamSweepTest, MemoryBudgetedRunIsByteIdentical) {
  auto spec = base_spec();
  const auto unbounded = run_sweep(model(), spec);
  // The smallest accepted budget still answers identically — eviction
  // only ever costs recomputation, never a different value.
  auto bounded_spec = spec;
  bounded_spec.memory_budget = 1;  // floor-clamped to the minimum capacity
  const auto bounded = run_sweep(model(), bounded_spec);
  EXPECT_EQ(report_bytes(unbounded), report_bytes(bounded));
}

TEST_F(StreamSweepTest, OversubscribedThreadRequestIsClampedNotHonoured) {
  auto spec = base_spec();
  spec.threads = 1;
  const auto serial = run_sweep(model(), spec);
  // A thread request far past hardware_concurrency must neither crash nor
  // change the report (the pool is clamped, not oversubscribed).
  spec.threads = 100'000;
  const auto clamped = run_sweep(model(), spec);
  EXPECT_EQ(report_bytes(serial), report_bytes(clamped));
}

TEST_F(StreamSweepTest, FailedCellCountsRankLastAndSerialise) {
  SweepSpec spec;
  spec.base = "C8";
  // ICacheFetchBytes=3 breaks the power-of-two cache-set constraint for
  // exactly one grid point.
  spec.axes = parse_grid("ICacheFetchBytes=2,3,4");
  spec.workloads = {"dhrystone"};
  const auto report = run_sweep(model(), spec);
  ASSERT_EQ(report.rows.size(), 3u);
  const auto& last = report.rows.back();
  EXPECT_EQ(last.failed, last.cells.size());  // all-failed row sorts last
  EXPECT_EQ(report.rows.front().failed, 0u);

  const auto lines = lines_of(report_bytes(report));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"failed\":0"), std::string::npos) << lines[0];
  EXPECT_NE(lines[2].find("\"failed\":1"), std::string::npos) << lines[2];
}

TEST_F(StreamSweepTest, ResumePlusTopKStillMatches) {
  auto spec = base_spec();
  spec.top = 3;
  const auto full = run_sweep(model(), spec);

  spec.checkpoint = path("topk.ckpt");
  (void)run_sweep(model(), spec);
  const auto lines = lines_of(read_file(spec.checkpoint));
  std::string prefix;
  for (std::size_t i = 0; i < 3; ++i) prefix += lines[i] + "\n";
  write_file(spec.checkpoint, prefix);

  spec.resume = true;
  const auto resumed = run_sweep(model(), spec);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(report_bytes(resumed), report_bytes(full));
}

}  // namespace
}  // namespace autopower::serve
