// Tests for the per-group power models: clock (Eq. 7), SRAM (hierarchy +
// Eq. 9/10) and logic (Eq. 11/12).

#include <gtest/gtest.h>

#include <vector>

#include "core/clock_model.hpp"
#include "core/logic_model.hpp"
#include "core/sram_model.hpp"
#include "exp/dataset.hpp"
#include "ml/metrics.hpp"
#include "util/error.hpp"

namespace autopower::core {
namespace {

using arch::ComponentKind;

/// Shared fixture: the experiment grid plus a k=2 training split.
class GroupModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim_ = new sim::PerfSimulator();
    golden_ = new power::GoldenPowerModel();
    data_ = new exp::ExperimentData(
        exp::ExperimentData::build(*sim_, *golden_));
    train_configs_ =
        new std::vector<std::string>(exp::ExperimentData::training_configs(2));
    train_ctx_ = new std::vector<EvalContext>(
        data_->contexts_of(*train_configs_));
  }
  static void TearDownTestSuite() {
    delete train_ctx_;
    delete train_configs_;
    delete data_;
    delete golden_;
    delete sim_;
  }

  static sim::PerfSimulator* sim_;
  static power::GoldenPowerModel* golden_;
  static exp::ExperimentData* data_;
  static std::vector<std::string>* train_configs_;
  static std::vector<EvalContext>* train_ctx_;
};

sim::PerfSimulator* GroupModelTest::sim_ = nullptr;
power::GoldenPowerModel* GroupModelTest::golden_ = nullptr;
exp::ExperimentData* GroupModelTest::data_ = nullptr;
std::vector<std::string>* GroupModelTest::train_configs_ = nullptr;
std::vector<EvalContext>* GroupModelTest::train_ctx_ = nullptr;

TEST_F(GroupModelTest, ClockModelTrainsAndPredicts) {
  ClockPowerModel model;
  EXPECT_FALSE(model.trained());
  model.train(ComponentKind::kRob, *train_ctx_, *golden_);
  EXPECT_TRUE(model.trained());

  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    actual.push_back(s->golden.of(ComponentKind::kRob).clock);
    pred.push_back(model.predict(s->ctx));
  }
  EXPECT_LT(ml::mape(actual, pred), 15.0);
  // A single component's clock model at k=2 is noisier than the
  // aggregate (the Fig. 7 bench reports the per-component spread).
  EXPECT_GT(ml::pearson_r(actual, pred), 0.75);
}

TEST_F(GroupModelTest, ClockSubModelsAreAccurate) {
  // Sec. III-B3: R and g predictions are accurate (paper ~6.93% MAPE).
  ClockPowerModel model;
  model.train(ComponentKind::kIfu, *train_ctx_, *golden_);
  std::vector<double> r_actual;
  std::vector<double> r_pred;
  std::vector<double> g_actual;
  std::vector<double> g_pred;
  for (const auto& cfg : arch::boom_design_space()) {
    const auto& nl = golden_->netlist_of(
        cfg)[static_cast<std::size_t>(ComponentKind::kIfu)];
    r_actual.push_back(nl.register_count);
    r_pred.push_back(model.predict_register_count(cfg));
    g_actual.push_back(nl.gating_rate);
    g_pred.push_back(model.predict_gating_rate(cfg));
  }
  EXPECT_LT(ml::mape(r_actual, r_pred), 8.0);
  EXPECT_LT(ml::mape(g_actual, g_pred), 3.0);
}

TEST_F(GroupModelTest, ClockGatingRateStaysInRange) {
  ClockPowerModel model;
  model.train(ComponentKind::kFuPool, *train_ctx_, *golden_);
  for (const auto& cfg : arch::boom_design_space()) {
    const double g = model.predict_gating_rate(cfg);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 0.99);
  }
}

TEST_F(GroupModelTest, ClockAlphaNonNegative) {
  ClockPowerModel model;
  model.train(ComponentKind::kLsu, *train_ctx_, *golden_);
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    EXPECT_GE(model.predict_effective_active_rate(s->ctx), 0.0);
    EXPECT_GE(model.predict(s->ctx), 0.0);
  }
}

TEST_F(GroupModelTest, ClockLinearAlphaVariantWorks) {
  ClockModelOptions options;
  options.linear_alpha = true;
  ClockPowerModel model(options);
  model.train(ComponentKind::kRob, *train_ctx_, *golden_);
  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    actual.push_back(s->golden.of(ComponentKind::kRob).clock);
    pred.push_back(model.predict(s->ctx));
  }
  EXPECT_LT(ml::mape(actual, pred), 20.0);
}

TEST_F(GroupModelTest, ClockErrorsBeforeTraining) {
  ClockPowerModel model;
  EXPECT_THROW((void)model.predict_register_count(arch::boom_config("C1")),
               util::NotFitted);
}

TEST_F(GroupModelTest, SramModelTrainsAndPredicts) {
  SramPowerModel model;
  model.train(ComponentKind::kICacheDataArray, *train_ctx_, *golden_);
  EXPECT_TRUE(model.trained());
  EXPECT_EQ(model.position_names().size(), 1u);

  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    actual.push_back(s->golden.of(ComponentKind::kICacheDataArray).sram);
    pred.push_back(model.predict(s->ctx));
  }
  EXPECT_LT(ml::mape(actual, pred), 20.0);
  EXPECT_GT(ml::pearson_r(actual, pred), 0.85);
}

TEST_F(GroupModelTest, SramFlopOnlyComponentPredictsZero) {
  SramPowerModel model;
  model.train(ComponentKind::kFuPool, *train_ctx_, *golden_);
  EXPECT_TRUE(model.position_names().empty());
  EXPECT_DOUBLE_EQ(model.predict(train_ctx_->front()), 0.0);
}

TEST_F(GroupModelTest, SramBlockPredictionMatchesFloorplan) {
  SramPowerModel model;
  model.train(ComponentKind::kLsu, *train_ctx_, *golden_);
  for (const auto& cfg : arch::boom_design_space()) {
    const auto& nl =
        golden_->netlist_of(cfg)[static_cast<std::size_t>(
            ComponentKind::kLsu)];
    for (const auto& pos : nl.sram_positions) {
      const auto pred = model.predict_block(cfg, pos.name);
      EXPECT_EQ(pred.width, pos.block_width) << pos.name;
      EXPECT_EQ(pred.depth, pos.block_depth) << pos.name;
      EXPECT_EQ(pred.count, pos.block_count) << pos.name;
    }
  }
  EXPECT_THROW((void)model.predict_block(arch::boom_config("C1"), "nope"),
               util::InvalidArgument);
}

TEST_F(GroupModelTest, SramWithoutProgramFeaturesStillWorks) {
  SramModelOptions options;
  options.program_features = false;
  SramPowerModel model(options);
  model.train(ComponentKind::kDTlb, *train_ctx_, *golden_);
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    EXPECT_GE(model.predict(s->ctx), 0.0);
  }
}

TEST_F(GroupModelTest, LogicModelTrainsAndPredicts) {
  LogicPowerModel model;
  model.train(ComponentKind::kFuPool, *train_ctx_, *golden_);
  EXPECT_TRUE(model.trained());
  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    actual.push_back(s->golden.of(ComponentKind::kFuPool).logic());
    pred.push_back(model.predict(s->ctx));
  }
  EXPECT_LT(ml::mape(actual, pred), 25.0);
  EXPECT_GT(ml::pearson_r(actual, pred), 0.8);
}

TEST_F(GroupModelTest, LogicSplitsIntoRegisterAndComb) {
  LogicPowerModel model;
  model.train(ComponentKind::kRob, *train_ctx_, *golden_);
  const auto& ctx = data_->samples_excluding(*train_configs_)[0]->ctx;
  const double reg = model.predict_register_power(ctx);
  const double comb = model.predict_comb_power(ctx);
  EXPECT_GT(reg, 0.0);
  EXPECT_GT(comb, 0.0);
  EXPECT_NEAR(model.predict(ctx), reg + comb, 1e-12);
}

TEST_F(GroupModelTest, TrainingSamplesAreNearlyInterpolated) {
  // On training configurations the models must be very accurate (they saw
  // the golden labels).
  ClockPowerModel clock;
  clock.train(ComponentKind::kIfu, *train_ctx_, *golden_);
  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto& ctx : *train_ctx_) {
    actual.push_back(
        golden_->evaluate(*ctx.cfg, ctx.events).of(ComponentKind::kIfu)
            .clock);
    pred.push_back(clock.predict(ctx));
  }
  EXPECT_LT(ml::mape(actual, pred), 3.0);
}

TEST_F(GroupModelTest, ModelsRejectEmptyTraining) {
  std::vector<EvalContext> empty;
  ClockPowerModel clock;
  EXPECT_THROW(clock.train(ComponentKind::kRob, empty, *golden_),
               util::InvalidArgument);
  SramPowerModel sram;
  EXPECT_THROW(sram.train(ComponentKind::kRob, empty, *golden_),
               util::InvalidArgument);
  LogicPowerModel logic;
  EXPECT_THROW(logic.train(ComponentKind::kRob, empty, *golden_),
               util::InvalidArgument);
}

}  // namespace
}  // namespace autopower::core
