// Golden-snapshot tests for the CLI report formats: train/evaluate
// stdout, batch and sweep JSONL reports, and the --stats JSON schema.
//
// Each snapshot lives in tests/golden/*.golden (the .golden extension
// keeps them out of the repo's *.jsonl/*.csv gitignore rules).  A test
// drives the real CLI binary end-to-end in a temp directory, normalises
// volatile content (temp paths, timing numbers), and compares byte for
// byte.  To refresh after an intentional format change:
//
//   ./build/tests/test_golden --update-golden
//
// which rewrites every snapshot in the source tree from the current
// binary's output.  Review the diff like any other code change.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>

#include "serve/net.hpp"
#include "util/error.hpp"

namespace {

namespace fs = std::filesystem;

bool g_update_golden = false;

struct CliResult {
  int exit_code = -1;
  std::string out;
};

/// Run the CLI with `args`, capturing stdout.  stderr is dropped: it
/// carries progress chatter ("metrics snapshot written to ...") that is
/// not part of the report contract.
CliResult run_cli(const std::string& args) {
  const std::string cmd =
      std::string("'") + AUTOPOWER_CLI_PATH + "' " + args + " 2>/dev/null";
  CliResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.out.append(buffer, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Replace every occurrence of the per-run temp directory with a stable
/// token so snapshots do not embed a PID.
std::string normalize_paths(std::string text, const std::string& tmp_dir) {
  std::size_t pos = 0;
  while ((pos = text.find(tmp_dir, pos)) != std::string::npos) {
    text.replace(pos, tmp_dir.size(), "<TMP>");
  }
  return text;
}

/// Replace every numeric literal with '#'.  Used for the --stats JSON:
/// the key schema (counter/gauge/histogram names, bucket counts) is the
/// contract; the values include wall-clock timings that change per run.
std::string normalize_numbers(const std::string& text) {
  static const std::regex number(R"(([:,\[\s])-?\d+(\.\d+)?([eE][+-]?\d+)?)");
  return std::regex_replace(text, number, "$1#");
}

/// Replace model-archive fingerprints (16 hex chars) with a stable
/// token: the fingerprint is a content hash of the trained archive, and
/// training embeds nothing volatile, but pinning the exact hash would
/// make every intentional model-format change ripple into this golden.
std::string normalize_fingerprints(const std::string& text) {
  static const std::regex fp(R"("fingerprint": "[0-9a-f]{16}")");
  return std::regex_replace(text, fp, R"("fingerprint": "<FP>")");
}

/// Compare `actual` against tests/golden/<name>, or rewrite the
/// snapshot when --update-golden was passed.
void check_golden(const std::string& name, const std::string& actual) {
  const fs::path path = fs::path(AUTOPOWER_GOLDEN_DIR) / name;
  if (g_update_golden) {
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
    out << actual;
    ASSERT_TRUE(out.good());
    return;
  }
  ASSERT_TRUE(fs::exists(path))
      << "missing golden file " << path
      << "\ncreate it with: test_golden --update-golden";
  const std::string expected = read_file(path);
  EXPECT_EQ(actual, expected)
      << "output diverged from " << path
      << "\nif the format change is intentional, refresh with:"
      << " test_golden --update-golden";
}

/// One shared temp workspace: train a model once, reuse it for every
/// snapshot.  Training is deterministic, so the snapshots are too.
class GoldenCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tmp_dir_ = new std::string("/tmp/autopower_golden_test_" +
                               std::to_string(::getpid()));
    fs::create_directories(*tmp_dir_);
    train_ = new CliResult(
        run_cli("train --known C1,C15 --out " + *tmp_dir_ +
                "/m.ap --stats " + *tmp_dir_ + "/train_stats.json"));
    ASSERT_EQ(train_->exit_code, 0) << train_->out;
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*tmp_dir_, ec);
    delete tmp_dir_;
    tmp_dir_ = nullptr;
    delete train_;
    train_ = nullptr;
  }

  static std::string model() { return *tmp_dir_ + "/m.ap"; }
  static const std::string& tmp_dir() { return *tmp_dir_; }
  static const CliResult& train_result() { return *train_; }

 private:
  static std::string* tmp_dir_;
  static CliResult* train_;
};

std::string* GoldenCliTest::tmp_dir_ = nullptr;
CliResult* GoldenCliTest::train_ = nullptr;

TEST_F(GoldenCliTest, TrainStdout) {
  check_golden("train_stdout.golden",
               normalize_paths(train_result().out, tmp_dir()));
}

TEST_F(GoldenCliTest, TrainStatsSchema) {
  check_golden(
      "train_stats_schema.golden",
      normalize_numbers(read_file(tmp_dir() + "/train_stats.json")));
}

TEST_F(GoldenCliTest, EvaluateStdout) {
  const auto r = run_cli("evaluate --model " + model() + " --known C1,C15");
  ASSERT_EQ(r.exit_code, 0) << r.out;
  check_golden("evaluate_stdout.golden", r.out);
}

TEST_F(GoldenCliTest, BatchJsonlReport) {
  // A fixed batch covering both report shapes (total, per_component)
  // plus a failing request, so the error row format is pinned too.
  const std::string reqs = tmp_dir() + "/reqs.jsonl";
  {
    std::ofstream out(reqs);
    out << R"({"config": "C2", "workload": "dhrystone"})" << "\n"
        << R"({"config": "C5", "workload": "qsort", "mode": "per_component"})"
        << "\n"
        << R"({"config": "C99", "workload": "median"})" << "\n";
  }
  const std::string results = tmp_dir() + "/results.jsonl";
  const auto r = run_cli("batch --model " + model() + " --requests " + reqs +
                         " --out " + results + " --stats " + tmp_dir() +
                         "/batch_stats.json");
  ASSERT_EQ(r.exit_code, 0) << r.out;
  check_golden("batch_results.golden", read_file(results));
  check_golden(
      "batch_stats_schema.golden",
      normalize_numbers(read_file(tmp_dir() + "/batch_stats.json")));
}

TEST_F(GoldenCliTest, DaemonControlSchema) {
  namespace net = autopower::serve::net;
  // Probe an ephemeral port, release it, and hand it to the daemon
  // (SO_REUSEADDR lets the daemon rebind straight through TIME_WAIT).
  std::uint16_t port = 0;
  {
    net::Listener probe(0);
    port = probe.port();
  }

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Two named slots backed by the same archive: the golden pins the
    // multi-model wire schema, not any per-model numeric difference.
    const std::string main_spec = "main=" + model();
    const std::string alt_spec = "alt=" + model();
    const std::string port_str = std::to_string(port);
    ::execl(AUTOPOWER_CLI_PATH, "autopower", "serve", "--model",
            main_spec.c_str(), "--model", alt_spec.c_str(), "--port",
            port_str.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }

  // The daemon loads the models before it binds; retry-connect until the
  // listener is up.
  net::Socket sock;
  for (int attempt = 0; attempt < 200 && !sock.valid(); ++attempt) {
    try {
      sock = net::connect_loopback(port);
    } catch (const autopower::util::Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_TRUE(sock.valid()) << "daemon never started listening";

  // health, a routed compute, an unknown-model compute, and a reload —
  // all READ before asking for metrics: the metrics snapshot is taken
  // when its line is parsed, so the earlier requests must have fully
  // finished for the instrument key set (the schema under test) to be
  // deterministic.
  net::LineReader reader(sock.fd());
  std::string health;
  std::string compute;
  std::string unknown;
  std::string reload;
  std::string metrics;
  net::write_line(sock.fd(), R"({"cmd": "health"})");
  net::write_line(
      sock.fd(), R"({"config": "C2", "workload": "dhrystone", "model": "alt"})");
  net::write_line(
      sock.fd(), R"({"config": "C2", "workload": "dhrystone", "model": "xx"})");
  net::write_line(sock.fd(), R"({"cmd": "reload", "model": "alt"})");
  ASSERT_TRUE(reader.next_line(health));
  ASSERT_TRUE(reader.next_line(compute));
  ASSERT_TRUE(reader.next_line(unknown));
  ASSERT_TRUE(reader.next_line(reload));
  net::write_line(sock.fd(), R"({"cmd": "metrics"})");
  ASSERT_TRUE(reader.next_line(metrics));

  // Draining health: queue enough uncached trace simulations to hold
  // the drain's phase 1 open, SIGTERM, wait until the listener is
  // provably closed (a fresh connect refuses — the drain flag is set
  // before the close), then ask for health on the surviving connection.
  int queued = 0;
  for (const char* config :
       {"C3", "C4", "C5", "C6", "C7", "C8", "C9", "C10", "C11", "C12"}) {
    for (const char* workload : {"multiply", "median"}) {
      net::write_line(sock.fd(),
                      std::string("{\"config\": \"") + config +
                          "\", \"workload\": \"" + workload +
                          "\", \"mode\": \"trace\"}");
      ++queued;
    }
  }

  // The hold is only deterministic if the traces are ADMITTED before the
  // drain flag flips (a drain that wins the race answers them all
  // "draining" inline and phase 1 finishes with nothing queued).  The
  // daemon.requests counter ticks at parse time, so polling metrics on a
  // second connection until it reaches 2 + queued proves every trace
  // line is past admission.  From there the window is compute-bound:
  // the queued simulations take hundreds of milliseconds, the refused-
  // connect probe and health write microseconds.
  {
    net::Socket meter = net::connect_loopback(port);
    net::LineReader meter_reader(meter.fd());
    const std::string want =
        "\"daemon.requests\":" + std::to_string(2 + queued) + ",";
    std::string snapshot;
    for (int attempt = 0; attempt < 2000; ++attempt) {
      net::write_line(meter.fd(), R"({"cmd": "metrics"})");
      ASSERT_TRUE(meter_reader.next_line(snapshot));
      if (snapshot.find(want) != std::string::npos) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_NE(snapshot.find(want), std::string::npos)
        << "traces never fully admitted: " << snapshot;
  }

  ::kill(pid, SIGTERM);
  for (int attempt = 0; attempt < 200; ++attempt) {
    try {
      net::Socket probe2 = net::connect_loopback(port);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    } catch (const autopower::util::Error&) {
      break;  // refused: the drain has started
    }
  }
  net::write_line(sock.fd(), R"({"cmd": "health"})");
  std::string line;
  for (int i = 0; i < queued; ++i) {
    ASSERT_TRUE(reader.next_line(line)) << "compute response " << i;
  }
  std::string draining_health;
  ASSERT_TRUE(reader.next_line(draining_health));
  sock.close();

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "daemon did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0);  // graceful SIGTERM drain exits 0

  check_golden("daemon_control_schema.golden",
               normalize_fingerprints(normalize_numbers(
                   health + "\n" + compute + "\n" + unknown + "\n" + reload +
                   "\n" + metrics + "\n" + draining_health + "\n")));
}

TEST_F(GoldenCliTest, SweepJsonlReport) {
  const std::string out_path = tmp_dir() + "/sweep.jsonl";
  const auto r = run_cli("sweep --model " + model() +
                         " --grid RobEntry=64,96 --workloads dhrystone,qsort"
                         " --base C8 --out " + out_path);
  ASSERT_EQ(r.exit_code, 0) << r.out;
  check_golden("sweep_report.golden", read_file(out_path));
}

TEST_F(GoldenCliTest, ExploreFrontierReport) {
  // Numbers are normalised: the frontier membership, row schema and
  // field order are the contract; the power/IPC values re-derive from
  // the model and shift with any intentional retrain.
  const std::string out_path = tmp_dir() + "/explore.jsonl";
  const auto r = run_cli(
      "explore --model " + model() +
      " --grid 'RobEntry=48,64,96;FetchBufferEntry=8,16'"
      " --workloads dhrystone,qsort --base C8 --seed 7 --population 6"
      " --generations 3 --verify-top 3 --threads 1 --out " + out_path +
      " --stats " + tmp_dir() + "/explore_stats.json");
  ASSERT_EQ(r.exit_code, 0) << r.out;
  check_golden("explore_frontier.golden",
               normalize_numbers(read_file(out_path)));
  check_golden(
      "explore_stats_schema.golden",
      normalize_numbers(read_file(tmp_dir() + "/explore_stats.json")));
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  return RUN_ALL_TESTS();
}
