// Tests for the tagged text archive and ML-model serialization.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <sstream>

#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "util/archive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace autopower {
namespace {

TEST(Archive, RoundTripsScalars) {
  std::stringstream buf;
  util::ArchiveWriter w(buf);
  w.write("a", 3.14159);
  w.write("b", std::int64_t{-42});
  w.write("c", true);
  w.write("d", std::string_view("token-value"));

  util::ArchiveReader r(buf);
  EXPECT_DOUBLE_EQ(r.read_double("a"), 3.14159);
  EXPECT_EQ(r.read_int("b"), -42);
  EXPECT_TRUE(r.read_bool("c"));
  EXPECT_EQ(r.read_token("d"), "token-value");
}

TEST(Archive, RoundTripsDoublesExactly) {
  // Hex-float round-trip must be bit exact, including awkward values.
  const std::array values{0.1, 1.0 / 3.0, 1e-300, 1e300, -0.0,
                          6.02214076e23, 0x1.fffffffffffffp+1};
  std::stringstream buf;
  util::ArchiveWriter w(buf);
  w.write("v", std::span<const double>(values));
  util::ArchiveReader r(buf);
  const auto loaded = r.read_doubles("v");
  ASSERT_EQ(loaded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded[i]),
              std::bit_cast<std::uint64_t>(values[i]))
        << "index " << i;
  }
}

TEST(Archive, RoundTripsIntVectors) {
  const std::array<std::int64_t, 4> values{-1, 0, 1, 1'000'000'000'000LL};
  std::stringstream buf;
  util::ArchiveWriter w(buf);
  w.write("ints", std::span<const std::int64_t>(values));
  util::ArchiveReader r(buf);
  const auto loaded = r.read_ints("ints");
  EXPECT_EQ(std::vector<std::int64_t>(values.begin(), values.end()), loaded);
}

TEST(Archive, TagMismatchThrows) {
  std::stringstream buf;
  util::ArchiveWriter w(buf);
  w.write("expected", 1.0);
  util::ArchiveReader r(buf);
  EXPECT_THROW((void)r.read_double("different"), util::InvalidArgument);
}

TEST(Archive, TruncationThrows) {
  std::stringstream buf;
  buf << "vec 5 0x1p+0 0x1p+1";  // claims 5, provides 2
  util::ArchiveReader r(buf);
  EXPECT_THROW((void)r.read_doubles("vec"), util::InvalidArgument);
}

TEST(Archive, RejectsBadTagsAndTokens) {
  std::stringstream buf;
  util::ArchiveWriter w(buf);
  EXPECT_THROW(w.write("has space", 1.0), util::InvalidArgument);
  EXPECT_THROW(w.write("tag", std::string_view("two words")),
               util::InvalidArgument);
  EXPECT_THROW(w.write("tag", std::string_view("")),
               util::InvalidArgument);
}

TEST(Archive, EndOfStreamThrows) {
  std::stringstream buf;
  util::ArchiveReader r(buf);
  EXPECT_THROW((void)r.read_double("missing"), util::InvalidArgument);
}

ml::Dataset make_dataset(std::size_t n) {
  ml::Dataset data({"a", "b", "c"});
  util::Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    const std::array f{rng.next_range(0.0, 4.0), rng.next_range(0.0, 2.0),
                       rng.next_range(-1.0, 1.0)};
    data.add_sample(f, 2.0 * f[0] - f[1] + (f[2] > 0.0 ? 3.0 : 0.0));
  }
  return data;
}

TEST(Serialization, RidgeRoundTrip) {
  const auto data = make_dataset(40);
  ml::RidgeRegression original(
      ml::RidgeOptions{.lambda = 1e-5, .nonnegative_prediction = true});
  original.fit(data);

  std::stringstream buf;
  util::ArchiveWriter w(buf);
  original.save(w);
  ml::RidgeRegression restored;
  util::ArchiveReader r(buf);
  restored.load(r);

  EXPECT_TRUE(restored.fitted());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(original.predict(data.features(i)),
                     restored.predict(data.features(i)));
  }
}

TEST(Serialization, GbtRoundTripIsBitExact) {
  const auto data = make_dataset(120);
  ml::GBTRegressor original;
  original.fit(data);
  ASSERT_GT(original.num_trees(), 0u);

  std::stringstream buf;
  util::ArchiveWriter w(buf);
  original.save(w);
  ml::GBTRegressor restored;
  util::ArchiveReader r(buf);
  restored.load(r);

  EXPECT_EQ(restored.num_trees(), original.num_trees());
  EXPECT_DOUBLE_EQ(restored.base_score(), original.base_score());
  util::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const std::array f{rng.next_range(-1.0, 5.0), rng.next_range(-1.0, 3.0),
                       rng.next_range(-2.0, 2.0)};
    EXPECT_DOUBLE_EQ(original.predict(f), restored.predict(f));
  }
}

TEST(Serialization, GbtRejectsCorruptArchive) {
  std::stringstream buf;
  buf << "gbt.rounds 120\n";  // then garbage
  ml::GBTRegressor model;
  util::ArchiveReader r(buf);
  EXPECT_THROW(model.load(r), util::InvalidArgument);
}

}  // namespace
}  // namespace autopower
