// Unit and property tests for ridge regression.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "ml/linear.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace autopower::ml {
namespace {

Dataset linear_dataset(std::size_t n, double slope, double intercept,
                       double noise_amp = 0.0, std::uint64_t seed = 1) {
  Dataset data({"x"});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    const double y =
        slope * x + intercept + noise_amp * rng.next_range(-1.0, 1.0);
    data.add_sample(std::array{x}, y);
  }
  return data;
}

TEST(Ridge, RecoversExactLine) {
  RidgeRegression model(RidgeOptions{.lambda = 1e-8});
  model.fit(linear_dataset(10, 3.0, -2.0));
  EXPECT_NEAR(model.coefficients()[0], 3.0, 1e-5);
  EXPECT_NEAR(model.intercept(), -2.0, 1e-4);
  EXPECT_NEAR(model.predict(std::array{100.0}), 298.0, 1e-2);
}

TEST(Ridge, TwoPointFitIsExact) {
  // The paper's few-shot regime: two configurations, one feature.
  Dataset data({"DecodeWidth"});
  data.add_sample(std::array{1.0}, 1100.0);
  data.add_sample(std::array{5.0}, 3900.0);
  RidgeRegression model(RidgeOptions{.lambda = 1e-8});
  model.fit(data);
  EXPECT_NEAR(model.predict(std::array{3.0}), 2500.0, 1.0);
}

TEST(Ridge, MultiFeatureRecovery) {
  Dataset data({"a", "b", "c"});
  util::Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    const double a = rng.next_range(0.0, 8.0);
    const double b = rng.next_range(0.0, 4.0);
    const double c = rng.next_range(0.0, 2.0);
    data.add_sample(std::array{a, b, c}, 2.0 * a - 1.0 * b + 5.0 * c + 7.0);
  }
  RidgeRegression model(RidgeOptions{.lambda = 1e-8});
  model.fit(data);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.coefficients()[1], -1.0, 1e-6);
  EXPECT_NEAR(model.coefficients()[2], 5.0, 1e-6);
  EXPECT_NEAR(model.intercept(), 7.0, 1e-6);
}

TEST(Ridge, UnderdeterminedStillPredicts) {
  // 2 samples, 3 features: the L2 penalty makes the problem well-posed.
  Dataset data({"a", "b", "c"});
  data.add_sample(std::array{1.0, 2.0, 3.0}, 10.0);
  data.add_sample(std::array{2.0, 4.0, 5.0}, 18.0);
  RidgeRegression model;
  model.fit(data);
  // Must interpolate the training points reasonably well.
  EXPECT_NEAR(model.predict(std::array{1.0, 2.0, 3.0}), 10.0, 0.5);
  EXPECT_NEAR(model.predict(std::array{2.0, 4.0, 5.0}), 18.0, 0.5);
}

TEST(Ridge, ConstantTargetGivesConstantModel) {
  Dataset data({"x"});
  for (int i = 0; i < 5; ++i) {
    data.add_sample(std::array{static_cast<double>(i)}, 42.0);
  }
  RidgeRegression model;
  model.fit(data);
  EXPECT_NEAR(model.predict(std::array{-100.0}), 42.0, 1e-6);
  EXPECT_NEAR(model.predict(std::array{100.0}), 42.0, 1e-6);
}

TEST(Ridge, ConstantFeatureIsIgnoredGracefully) {
  Dataset data({"x", "const"});
  for (int i = 0; i < 8; ++i) {
    data.add_sample(std::array{static_cast<double>(i), 3.0},
                    2.0 * i + 1.0);
  }
  RidgeRegression model(RidgeOptions{.lambda = 1e-8});
  model.fit(data);
  EXPECT_NEAR(model.predict(std::array{10.0, 3.0}), 21.0, 1e-4);
}

TEST(Ridge, LargerLambdaShrinksCoefficients) {
  const auto data = linear_dataset(20, 4.0, 0.0, 0.5, 3);
  RidgeRegression weak(RidgeOptions{.lambda = 1e-6});
  RidgeRegression strong(RidgeOptions{.lambda = 1e4});
  weak.fit(data);
  strong.fit(data);
  EXPECT_LT(std::abs(strong.coefficients()[0]),
            std::abs(weak.coefficients()[0]));
}

TEST(Ridge, NonnegativeClampApplies) {
  Dataset data({"x"});
  data.add_sample(std::array{0.0}, 1.0);
  data.add_sample(std::array{1.0}, 0.2);
  RidgeRegression model(
      RidgeOptions{.lambda = 1e-8, .nonnegative_prediction = true});
  model.fit(data);
  EXPECT_GE(model.predict(std::array{100.0}), 0.0);
}

TEST(Ridge, SingleSampleFit) {
  Dataset data({"x"});
  data.add_sample(std::array{2.0}, 5.0);
  RidgeRegression model;
  model.fit(data);
  EXPECT_NEAR(model.predict(std::array{2.0}), 5.0, 1e-9);
}

TEST(Ridge, ErrorsOnMisuse) {
  RidgeRegression model;
  EXPECT_FALSE(model.fitted());
  EXPECT_THROW((void)model.predict(std::array{1.0}), util::NotFitted);
  Dataset empty({"x"});
  EXPECT_THROW(model.fit(empty), util::InvalidArgument);

  model.fit(linear_dataset(4, 1.0, 0.0));
  EXPECT_TRUE(model.fitted());
  EXPECT_THROW((void)model.predict(std::array{1.0, 2.0}), util::InvalidArgument);
}

TEST(Ridge, PredictAllMatchesPredict) {
  const auto data = linear_dataset(12, 2.0, 1.0, 0.1, 5);
  RidgeRegression model;
  model.fit(data);
  const auto all = model.predict_all(data);
  ASSERT_EQ(all.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(all[i], model.predict(data.features(i)));
  }
}

// Property sweep: exact recovery holds for a grid of slopes/intercepts.
class RidgeRecovery
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RidgeRecovery, RecoversParams) {
  const auto [slope, intercept] = GetParam();
  RidgeRegression model(RidgeOptions{.lambda = 1e-9});
  model.fit(linear_dataset(16, slope, intercept));
  EXPECT_NEAR(model.coefficients()[0], slope, 1e-4 + 1e-6 * std::abs(slope));
  EXPECT_NEAR(model.intercept(), intercept,
              1e-3 + 1e-6 * std::abs(intercept));
}

INSTANTIATE_TEST_SUITE_P(
    SlopesAndIntercepts, RidgeRecovery,
    ::testing::Combine(::testing::Values(-100.0, -1.0, 0.0, 0.5, 42.0),
                       ::testing::Values(-7.0, 0.0, 1234.5)));

}  // namespace
}  // namespace autopower::ml
