// Unit tests for util: deterministic hashing/PRNG, noise envelopes,
// error types, and the table printer.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace autopower::util {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_EQ(mix64(0xdeadbeef), mix64(0xdeadbeef));
}

TEST(Mix64, SmallInputChangesPropagate) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0), mix64(1));
  // Flipping any single bit should change the output.
  for (int bit = 0; bit < 64; ++bit) {
    EXPECT_NE(mix64(0x1234567890abcdefULL),
              mix64(0x1234567890abcdefULL ^ (1ULL << bit)))
        << "bit " << bit;
  }
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashStr, DistinguishesStrings) {
  EXPECT_NE(hash_str("alpha"), hash_str("beta"));
  EXPECT_EQ(hash_str("alpha"), hash_str("alpha"));
  EXPECT_NE(hash_str(""), hash_str("a"));
}

TEST(HashUnit, InUnitInterval) {
  for (std::uint64_t k = 0; k < 2000; ++k) {
    const double v = hash_unit(k);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(HashUnit, RoughlyUniform) {
  int buckets[10] = {};
  const int n = 20000;
  for (int k = 0; k < n; ++k) {
    ++buckets[static_cast<int>(hash_unit(static_cast<std::uint64_t>(k)) *
                               10.0)];
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], n / 10, n / 50) << "bucket " << b;
  }
}

TEST(HashSym, InSymmetricInterval) {
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 5000; ++k) {
    const double v = hash_sym(k);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 5000.0, 0.0, 0.05);
}

TEST(NoiseFactor, WithinEnvelope) {
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double f = noise_factor(k, 0.05);
    EXPECT_GE(f, 0.95);
    EXPECT_LT(f, 1.05);
  }
}

TEST(NoiseFactor, ZeroAmplitudeIsIdentity) {
  EXPECT_DOUBLE_EQ(noise_factor(123, 0.0), 1.0);
}

TEST(Rng, DeterministicStreams) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_range(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, GaussHasUnitishVariance) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gauss();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.07);
}

TEST(LognormalFactor, AlwaysPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(lognormal_factor(rng, 0.3), 0.0);
  }
}

TEST(Error, HierarchyAndMessages) {
  EXPECT_THROW(throw InvalidArgument("bad"), Error);
  EXPECT_THROW(throw NotFitted("model"), Error);
  try {
    throw InvalidArgument("specific message");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST(Assert, ThrowsWithLocation) {
  try {
    AP_ASSERT_MSG(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

TEST(Require, ThrowsInvalidArgument) {
  EXPECT_THROW(AP_REQUIRE(false, "nope"), InvalidArgument);
  EXPECT_NO_THROW(AP_REQUIRE(true, "fine"));
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"a", "long-header"});
  t.add_row({"xxxxxx", "1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("xxxxxx"), std::string::npos);
  // Every line has the same length (aligned).
  std::istringstream in(s);
  std::string line;
  std::set<std::size_t> lengths;
  while (std::getline(in, line)) lengths.insert(line.size());
  EXPECT_EQ(lengths.size(), 1u);
}

TEST(TablePrinter, RejectsBadArity) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(TablePrinter({}), InvalidArgument);
}

TEST(Fmt, FormatsNumbers) {
  EXPECT_EQ(fmt(4.356, 2), "4.36");
  EXPECT_EQ(fmt(4.0, 0), "4");
  EXPECT_EQ(fmt_pct(9.291, 2), "9.29%");
}

}  // namespace
}  // namespace autopower::util
