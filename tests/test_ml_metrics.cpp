// Unit tests for the regression metrics and the Dataset container.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/metrics.hpp"
#include "util/error.hpp"

namespace autopower::ml {
namespace {

TEST(Mape, PerfectPredictionIsZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mape(a, a), 0.0);
}

TEST(Mape, KnownValue) {
  const std::vector<double> actual{100.0, 200.0};
  const std::vector<double> pred{110.0, 180.0};
  // (10% + 10%) / 2 = 10%.
  EXPECT_NEAR(mape(actual, pred), 10.0, 1e-12);
}

TEST(Mape, SkipsNearZeroActuals) {
  const std::vector<double> actual{0.0, 100.0};
  const std::vector<double> pred{50.0, 110.0};
  EXPECT_NEAR(mape(actual, pred), 10.0, 1e-12);
}

TEST(Mape, AllZeroActualsThrow) {
  const std::vector<double> actual{0.0, 0.0};
  const std::vector<double> pred{1.0, 2.0};
  EXPECT_THROW((void)mape(actual, pred), util::InvalidArgument);
}

TEST(R2, PerfectIsOne) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r2_score(a, a), 1.0);
}

TEST(R2, MeanPredictorIsZero) {
  const std::vector<double> actual{1.0, 2.0, 3.0};
  const std::vector<double> pred{2.0, 2.0, 2.0};
  EXPECT_NEAR(r2_score(actual, pred), 0.0, 1e-12);
}

TEST(R2, WorseThanMeanIsNegative) {
  const std::vector<double> actual{1.0, 2.0, 3.0};
  const std::vector<double> pred{3.0, 2.0, 1.0};
  EXPECT_LT(r2_score(actual, pred), 0.0);
}

TEST(R2, ConstantActuals) {
  const std::vector<double> actual{2.0, 2.0};
  EXPECT_DOUBLE_EQ(r2_score(actual, actual), 1.0);
  const std::vector<double> off{2.5, 1.5};
  EXPECT_DOUBLE_EQ(r2_score(actual, off), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 20.0, 30.0};
  EXPECT_NEAR(pearson_r(a, b), 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson_r(a, b), -1.0, 1e-12);
}

TEST(Pearson, ScaleAndShiftInvariant) {
  const std::vector<double> a{1.0, 5.0, 2.0, 8.0};
  std::vector<double> b;
  for (double v : a) b.push_back(3.0 * v - 7.0);
  EXPECT_NEAR(pearson_r(a, b), 1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero) {
  const std::vector<double> a{2.0, 2.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson_r(a, b), 0.0);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> p{3.0, 4.0};
  EXPECT_NEAR(rmse(a, p), std::sqrt(12.5), 1e-12);
}

TEST(Mae, KnownValue) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> p{3.0, -4.0};
  EXPECT_DOUBLE_EQ(mae(a, p), 3.5);
}

TEST(Metrics, RejectMismatchedSizes) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)mape(a, b), util::InvalidArgument);
  EXPECT_THROW((void)r2_score(a, b), util::InvalidArgument);
  EXPECT_THROW((void)pearson_r(a, b), util::InvalidArgument);
  EXPECT_THROW((void)rmse(a, b), util::InvalidArgument);
  EXPECT_THROW((void)mae(a, b), util::InvalidArgument);
}

TEST(Dataset, SchemaAndSamples) {
  Dataset data({"a", "b"});
  EXPECT_TRUE(data.empty());
  data.add_sample(std::array{1.0, 2.0}, 3.0);
  data.add_sample(std::array{4.0, 5.0}, 6.0);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_DOUBLE_EQ(data.target(1), 6.0);
  EXPECT_DOUBLE_EQ(data.features(0)[1], 2.0);
}

TEST(Dataset, ColumnGather) {
  Dataset data({"a", "b"});
  data.add_sample(std::array{1.0, 2.0}, 0.0);
  data.add_sample(std::array{3.0, 4.0}, 0.0);
  const auto col = data.column(1);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col[0], 2.0);
  EXPECT_DOUBLE_EQ(col[1], 4.0);
}

TEST(Dataset, FeatureIndexLookup) {
  Dataset data({"alpha", "beta"});
  EXPECT_EQ(data.feature_index("beta"), 1u);
  EXPECT_THROW((void)data.feature_index("gamma"), util::InvalidArgument);
}

TEST(Dataset, RejectsBadInputs) {
  EXPECT_THROW(Dataset(std::vector<std::string>{}), util::InvalidArgument);
  Dataset data({"a"});
  EXPECT_THROW(data.add_sample(std::array{1.0, 2.0}, 0.0),
               util::InvalidArgument);
  EXPECT_THROW((void)data.features(0), util::InvalidArgument);
  EXPECT_THROW((void)data.column(5), util::InvalidArgument);
}

}  // namespace
}  // namespace autopower::ml
