// Tests for the workload profiles and program-level features.

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "workload/workload.hpp"

namespace autopower::workload {
namespace {

TEST(Workloads, EightRiscvTests) {
  const auto& ws = riscv_tests_workloads();
  ASSERT_EQ(ws.size(), 8u);
  const std::set<std::string> expected{"dhrystone", "median", "multiply",
                                       "qsort",     "rsort",  "towers",
                                       "spmv",      "vvadd"};
  std::set<std::string> actual;
  for (const auto& w : ws) actual.insert(w.name);
  EXPECT_EQ(actual, expected);
}

TEST(Workloads, TwoTraceWorkloads) {
  const auto& ws = trace_workloads();
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].name, "gemm");
  EXPECT_EQ(ws[1].name, "spmm");
  // Large workloads: millions of dynamic instructions (paper: millions of
  // cycles).
  EXPECT_GE(ws[0].instructions, 1'000'000u);
  EXPECT_GE(ws[1].instructions, 1'000'000u);
  // Phased kernels.
  EXPECT_GE(ws[0].phases.size(), 2u);
  EXPECT_GE(ws[1].phases.size(), 2u);
}

TEST(Workloads, MixFractionsAreSane) {
  auto check = [](const WorkloadProfile& w) {
    for (const auto& ph : w.phases) {
      const double sum = ph.branch_frac + ph.load_frac + ph.store_frac +
                         ph.fp_frac + ph.muldiv_frac;
      EXPECT_GT(ph.weight, 0.0) << w.name << "/" << ph.name;
      EXPECT_LT(sum, 1.0) << w.name << "/" << ph.name;
      EXPECT_GE(ph.ilp, 1.0) << w.name;
      EXPECT_GE(ph.branch_entropy, 0.0);
      EXPECT_LE(ph.branch_entropy, 1.0);
      EXPECT_GT(ph.dcache_footprint_kb, 0.0);
      EXPECT_GT(ph.icache_footprint_kb, 0.0);
      EXPECT_GE(ph.dcache_stride_frac, 0.0);
      EXPECT_LE(ph.dcache_stride_frac, 1.0);
    }
  };
  for (const auto& w : riscv_tests_workloads()) check(w);
  for (const auto& w : trace_workloads()) check(w);
}

TEST(Workloads, CharacteristicSignatures) {
  // Workload identities follow their classical characterisation.
  const auto& vvadd = workload_by_name("vvadd");
  const auto& qsort = workload_by_name("qsort");
  const auto& spmv = workload_by_name("spmv");
  // vvadd streams: lowest branch entropy, highest ILP.
  EXPECT_LT(vvadd.average(&WorkloadPhase::branch_entropy),
            qsort.average(&WorkloadPhase::branch_entropy));
  EXPECT_GT(vvadd.average(&WorkloadPhase::ilp),
            qsort.average(&WorkloadPhase::ilp));
  // spmv gathers: irregular (low stride fraction), fp-heavy.
  EXPECT_LT(spmv.average(&WorkloadPhase::dcache_stride_frac), 0.5);
  EXPECT_GT(spmv.average(&WorkloadPhase::fp_frac), 0.1);
  EXPECT_DOUBLE_EQ(qsort.average(&WorkloadPhase::fp_frac), 0.0);
}

TEST(Workloads, AverageIsWeighted) {
  WorkloadProfile w;
  w.name = "synthetic";
  WorkloadPhase a;
  a.weight = 3.0;
  a.ilp = 1.0;
  WorkloadPhase b;
  b.weight = 1.0;
  b.ilp = 5.0;
  w.phases = {a, b};
  EXPECT_DOUBLE_EQ(w.average(&WorkloadPhase::ilp), 2.0);
}

TEST(Workloads, AverageOnEmptyThrows) {
  WorkloadProfile w;
  w.name = "empty";
  EXPECT_THROW((void)w.average(&WorkloadPhase::ilp), util::InvalidArgument);
}

TEST(Workloads, LookupByName) {
  EXPECT_EQ(workload_by_name("gemm").name, "gemm");
  EXPECT_EQ(workload_by_name("towers").name, "towers");
  EXPECT_THROW((void)workload_by_name("doom"), util::InvalidArgument);
}

TEST(ProgramFeatures, VectorMatchesNames) {
  const auto f = program_features(workload_by_name("dhrystone"));
  EXPECT_EQ(f.as_vector().size(), ProgramFeatures::names().size());
}

TEST(ProgramFeatures, MicroarchitectureIndependent) {
  // Derived from the profile only — identical regardless of when/where
  // it's computed, and log-scaled instruction counts are finite.
  const auto a = program_features(workload_by_name("spmv"));
  const auto b = program_features(workload_by_name("spmv"));
  EXPECT_EQ(a.as_vector(), b.as_vector());
  EXPECT_GT(a.log_instructions, 3.0);
  EXPECT_LT(a.log_instructions, 8.0);
}

TEST(ProgramFeatures, ReflectWorkloadMix) {
  const auto vvadd = program_features(workload_by_name("vvadd"));
  const auto towers = program_features(workload_by_name("towers"));
  EXPECT_GT(vvadd.load_frac, towers.load_frac);
  EXPECT_LT(vvadd.branch_frac, towers.branch_frac);
}

}  // namespace
}  // namespace autopower::workload
