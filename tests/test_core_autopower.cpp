// End-to-end tests for the AutoPowerModel orchestrator: few-shot accuracy,
// determinism, per-group structure, and time-based trace prediction.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "exp/trace.hpp"
#include "ml/metrics.hpp"
#include "util/error.hpp"

namespace autopower::core {
namespace {

class AutoPowerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim_ = new sim::PerfSimulator();
    golden_ = new power::GoldenPowerModel();
    data_ = new exp::ExperimentData(
        exp::ExperimentData::build(*sim_, *golden_));
    train_configs_ = new std::vector<std::string>(
        exp::ExperimentData::training_configs(2));
    model_ = new AutoPowerModel();
    model_->train(data_->contexts_of(*train_configs_), *golden_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete train_configs_;
    delete data_;
    delete golden_;
    delete sim_;
  }

  static sim::PerfSimulator* sim_;
  static power::GoldenPowerModel* golden_;
  static exp::ExperimentData* data_;
  static std::vector<std::string>* train_configs_;
  static AutoPowerModel* model_;
};

sim::PerfSimulator* AutoPowerTest::sim_ = nullptr;
power::GoldenPowerModel* AutoPowerTest::golden_ = nullptr;
exp::ExperimentData* AutoPowerTest::data_ = nullptr;
std::vector<std::string>* AutoPowerTest::train_configs_ = nullptr;
AutoPowerModel* AutoPowerTest::model_ = nullptr;

TEST_F(AutoPowerTest, FewShotAccuracyMatchesPaperShape) {
  // Paper: MAPE 4.36%, R^2 0.96 with two known configurations.
  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    actual.push_back(s->golden.total());
    pred.push_back(model_->predict_total(s->ctx));
  }
  EXPECT_LT(ml::mape(actual, pred), 7.0);
  EXPECT_GT(ml::r2_score(actual, pred), 0.90);
  EXPECT_GT(ml::pearson_r(actual, pred), 0.95);
}

TEST_F(AutoPowerTest, PredictionIsDeterministic) {
  const auto& ctx = data_->samples().back().ctx;
  EXPECT_DOUBLE_EQ(model_->predict_total(ctx), model_->predict_total(ctx));

  AutoPowerModel retrained;
  retrained.train(data_->contexts_of(*train_configs_), *golden_);
  EXPECT_DOUBLE_EQ(model_->predict_total(ctx),
                   retrained.predict_total(ctx));
}

TEST_F(AutoPowerTest, PerComponentResultIsComplete) {
  const auto& ctx = data_->samples().front().ctx;
  const auto result = model_->predict(ctx);
  ASSERT_EQ(result.components.size(), arch::kNumComponents);
  double sum = 0.0;
  for (const auto& cp : result.components) {
    EXPECT_GE(cp.groups.clock, 0.0);
    EXPECT_GE(cp.groups.sram, 0.0);
    EXPECT_GE(cp.groups.logic_register, 0.0);
    EXPECT_GE(cp.groups.logic_comb, 0.0);
    sum += cp.groups.total();
  }
  EXPECT_NEAR(sum, result.total(), 1e-9);
  EXPECT_NEAR(result.total(), model_->predict_total(ctx), 1e-9);
}

TEST_F(AutoPowerTest, GroupBreakdownIsPlausible) {
  // The predicted group shares should reproduce Observation 1.
  power::PowerGroups acc;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    acc += model_->predict(s->ctx).totals();
  }
  const double total = acc.total();
  EXPECT_GT((acc.clock + acc.sram) / total, 0.55);
  EXPECT_GT(acc.clock / total, 0.2);
  EXPECT_GT(acc.sram / total, 0.2);
}

TEST_F(AutoPowerTest, PerGroupAccuracy) {
  std::vector<double> clk_a, clk_p, sram_a, sram_p, logic_a, logic_p;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    const auto pred = model_->predict(s->ctx);
    clk_a.push_back(s->golden.totals().clock);
    clk_p.push_back(pred.totals().clock);
    sram_a.push_back(s->golden.totals().sram);
    sram_p.push_back(pred.totals().sram);
    logic_a.push_back(s->golden.totals().logic());
    logic_p.push_back(pred.totals().logic());
  }
  // Paper Sec. III-B3/B4: clock MAPE 11.37%, SRAM MAPE 7.60% at k=2.
  EXPECT_LT(ml::mape(clk_a, clk_p), 12.0);
  EXPECT_LT(ml::mape(sram_a, sram_p), 12.0);
  EXPECT_LT(ml::mape(logic_a, logic_p), 20.0);
  EXPECT_GT(ml::pearson_r(clk_a, clk_p), 0.9);
  EXPECT_GT(ml::pearson_r(sram_a, sram_p), 0.9);
}

TEST_F(AutoPowerTest, MoreTrainingConfigsHelp) {
  AutoPowerModel k4;
  const auto cfgs4 = exp::ExperimentData::training_configs(4);
  k4.train(data_->contexts_of(cfgs4), *golden_);

  auto mape_of = [&](const AutoPowerModel& m,
                     std::span<const std::string> train) {
    std::vector<double> actual;
    std::vector<double> pred;
    for (const auto* s : data_->samples_excluding(train)) {
      actual.push_back(s->golden.total());
      pred.push_back(m.predict_total(s->ctx));
    }
    return ml::mape(actual, pred);
  };
  EXPECT_LT(mape_of(k4, cfgs4), mape_of(*model_, *train_configs_) + 0.5);
}

TEST_F(AutoPowerTest, TracePredictionFollowsGolden) {
  const auto& cfg = arch::boom_config("C3");
  const auto trace = exp::build_trace(
      *sim_, *golden_, cfg, workload::workload_by_name("gemm"));
  const auto predicted = model_->predict_trace(trace.windows);
  ASSERT_EQ(predicted.size(), trace.golden_total.size());

  const auto err = exp::trace_errors(trace.golden_total, predicted);
  // Paper Table IV: single-digit to low-double-digit percent errors.
  EXPECT_LT(err.average_error, 20.0);
  EXPECT_LT(err.max_power_error, 25.0);
  EXPECT_LT(err.min_power_error, 25.0);
  // The predicted trace must track the golden trace's shape.
  EXPECT_GT(ml::pearson_r(trace.golden_total, predicted), 0.6);
}

TEST_F(AutoPowerTest, ParallelTrainArchiveByteIdentical) {
  // The fits run on a worker pool but land in fixed per-component slots:
  // scheduling must not leak into the trained model.  Byte-compare the
  // archives against the fixture's serially-trained model.
  std::ostringstream serial;
  model_->save(serial);

  for (const std::size_t threads : {2u, 4u}) {
    AutoPowerModel parallel;
    parallel.train(data_->contexts_of(*train_configs_), *golden_, threads);
    std::ostringstream out;
    parallel.save(out);
    EXPECT_EQ(out.str(), serial.str()) << "threads=" << threads;
  }
}

TEST_F(AutoPowerTest, BatchPredictionMatchesPerSample) {
  std::vector<EvalContext> ctxs;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    ctxs.push_back(s->ctx);
    if (ctxs.size() == 10) break;
  }
  const auto batch = model_->predict_batch(ctxs);
  ASSERT_EQ(batch.size(), ctxs.size());
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    const auto single = model_->predict(ctxs[i]);
    ASSERT_EQ(batch[i].components.size(), single.components.size());
    for (std::size_t c = 0; c < single.components.size(); ++c) {
      EXPECT_EQ(batch[i].components[c].component,
                single.components[c].component);
      EXPECT_EQ(batch[i].components[c].groups.clock,
                single.components[c].groups.clock);
      EXPECT_EQ(batch[i].components[c].groups.sram,
                single.components[c].groups.sram);
      EXPECT_EQ(batch[i].components[c].groups.logic_register,
                single.components[c].groups.logic_register);
      EXPECT_EQ(batch[i].components[c].groups.logic_comb,
                single.components[c].groups.logic_comb);
    }
    EXPECT_EQ(batch[i].total(), model_->predict_total(ctxs[i]));
  }
  // predict_trace is the batched path's main consumer.
  const auto trace = model_->predict_trace(ctxs);
  ASSERT_EQ(trace.size(), ctxs.size());
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    EXPECT_EQ(trace[i], batch[i].total());
  }
}

TEST_F(AutoPowerTest, AccessorsAndErrors) {
  EXPECT_TRUE(model_->trained());
  EXPECT_TRUE(model_->clock_model(arch::ComponentKind::kRob).trained());
  EXPECT_TRUE(model_->sram_model(arch::ComponentKind::kLsu).trained());
  EXPECT_TRUE(model_->logic_model(arch::ComponentKind::kIfu).trained());

  AutoPowerModel fresh;
  EXPECT_FALSE(fresh.trained());
  EXPECT_THROW((void)fresh.predict(data_->samples().front().ctx),
               util::InvalidArgument);
  std::vector<EvalContext> empty;
  EXPECT_THROW(fresh.train(empty, *golden_), util::InvalidArgument);
}

}  // namespace
}  // namespace autopower::core
