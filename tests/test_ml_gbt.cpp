// Unit and property tests for the regression tree and GBT ensemble.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "ml/gbt.hpp"
#include "ml/metrics.hpp"
#include "ml/tree.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace autopower::ml {
namespace {

Dataset step_dataset() {
  // y = 1 for x < 0.5, y = 5 for x >= 0.5 — one split suffices.
  Dataset data({"x"});
  for (int i = 0; i < 10; ++i) {
    const double x = i / 10.0;
    data.add_sample(std::array{x}, x < 0.5 ? 1.0 : 5.0);
  }
  return data;
}

Dataset nonlinear_dataset(std::size_t n, std::uint64_t seed = 7) {
  Dataset data({"a", "b"});
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_range(0.0, 1.0);
    const double b = rng.next_range(0.0, 1.0);
    // Interaction + threshold: linear models cannot represent this.
    const double y = (a > 0.5 ? 3.0 : 1.0) * b + (a * b > 0.4 ? 2.0 : 0.0);
    data.add_sample(std::array{a, b}, y);
  }
  return data;
}

TEST(RegressionTree, FindsObviousSplit) {
  const auto data = step_dataset();
  std::vector<double> grad(data.size());
  std::vector<double> hess(data.size(), 1.0);
  // Gradient of squared loss from prediction 0: grad = -y.
  for (std::size_t i = 0; i < data.size(); ++i) grad[i] = -data.target(i);

  RegressionTree tree;
  tree.fit(data, grad, hess, TreeOptions{.max_depth = 1, .lambda = 0.0});
  EXPECT_GT(tree.node_count(), 1u);
  EXPECT_NEAR(tree.predict(std::array{0.1}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::array{0.9}), 5.0, 1e-9);
}

TEST(RegressionTree, LeafOnlyWhenNoGain) {
  Dataset data({"x"});
  for (int i = 0; i < 6; ++i) {
    data.add_sample(std::array{static_cast<double>(i)}, 2.0);
  }
  std::vector<double> grad(data.size(), -2.0);
  std::vector<double> hess(data.size(), 1.0);
  RegressionTree tree;
  tree.fit(data, grad, hess, TreeOptions{.max_depth = 4, .lambda = 0.0});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_NEAR(tree.predict(std::array{3.0}), 2.0, 1e-12);
}

TEST(RegressionTree, RespectsMaxDepth) {
  const auto data = nonlinear_dataset(200);
  std::vector<double> grad(data.size());
  std::vector<double> hess(data.size(), 1.0);
  for (std::size_t i = 0; i < data.size(); ++i) grad[i] = -data.target(i);
  RegressionTree tree;
  tree.fit(data, grad, hess, TreeOptions{.max_depth = 2, .lambda = 1.0});
  EXPECT_LE(tree.depth(), 2);
  EXPECT_LE(tree.node_count(), 7u);  // at most 2^(d+1)-1 nodes
}

TEST(RegressionTree, MinChildWeightBlocksTinyLeaves) {
  const auto data = step_dataset();
  std::vector<double> grad(data.size());
  std::vector<double> hess(data.size(), 1.0);
  for (std::size_t i = 0; i < data.size(); ++i) grad[i] = -data.target(i);
  RegressionTree tree;
  tree.fit(data, grad, hess,
           TreeOptions{.max_depth = 3, .lambda = 0.0,
                       .min_child_weight = 100.0});
  EXPECT_EQ(tree.node_count(), 1u);  // no split satisfies the constraint
}

TEST(RegressionTree, GammaPenaltyPrunesWeakSplits) {
  const auto data = nonlinear_dataset(100);
  std::vector<double> grad(data.size());
  std::vector<double> hess(data.size(), 1.0);
  for (std::size_t i = 0; i < data.size(); ++i) grad[i] = -data.target(i);
  RegressionTree free_tree;
  free_tree.fit(data, grad, hess, TreeOptions{.max_depth = 4, .gamma = 0.0});
  RegressionTree taxed_tree;
  taxed_tree.fit(data, grad, hess,
                 TreeOptions{.max_depth = 4, .gamma = 1000.0});
  EXPECT_LT(taxed_tree.node_count(), free_tree.node_count());
}

TEST(Gbt, FitsStepFunction) {
  GBTRegressor model;
  model.fit(step_dataset());
  EXPECT_NEAR(model.predict(std::array{0.2}), 1.0, 0.05);
  EXPECT_NEAR(model.predict(std::array{0.8}), 5.0, 0.05);
}

TEST(Gbt, FitsNonlinearInteraction) {
  const auto train = nonlinear_dataset(400, 21);
  const auto test = nonlinear_dataset(100, 22);
  GBTRegressor model(GbtOptions{.num_rounds = 200, .learning_rate = 0.15,
                                .tree = {.max_depth = 4}});
  model.fit(train);
  const auto pred = model.predict_all(test);
  EXPECT_GT(r2_score(test.targets(), pred), 0.95);
}

TEST(Gbt, BaseScoreIsMean) {
  Dataset data({"x"});
  data.add_sample(std::array{0.0}, 2.0);
  data.add_sample(std::array{1.0}, 4.0);
  GBTRegressor model;
  model.fit(data);
  EXPECT_DOUBLE_EQ(model.base_score(), 3.0);
}

TEST(Gbt, ConstantTargetNeedsNoTrees) {
  Dataset data({"x"});
  for (int i = 0; i < 8; ++i) {
    data.add_sample(std::array{static_cast<double>(i)}, 3.14);
  }
  GBTRegressor model;
  model.fit(data);
  EXPECT_EQ(model.num_trees(), 0u);
  EXPECT_DOUBLE_EQ(model.predict(std::array{42.0}), 3.14);
}

TEST(Gbt, DeterministicAcrossRuns) {
  const auto data = nonlinear_dataset(200, 33);
  GBTRegressor a;
  GBTRegressor b;
  a.fit(data);
  b.fit(data);
  for (int i = 0; i < 20; ++i) {
    const std::array x{i / 20.0, 1.0 - i / 20.0};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(Gbt, CannotExtrapolateBeyondTrainingRange) {
  // The structural reason the paper uses ridge, not XGBoost, for register
  // counts: trees predict constants outside the training hull.
  Dataset data({"x"});
  for (int i = 0; i <= 10; ++i) {
    data.add_sample(std::array{static_cast<double>(i)}, 10.0 * i);
  }
  GBTRegressor model;
  model.fit(data);
  const double at_edge = model.predict(std::array{10.0});
  const double beyond = model.predict(std::array{100.0});
  EXPECT_NEAR(beyond, at_edge, 1.0);  // flat outside the range
}

TEST(Gbt, NonnegativeClamp) {
  Dataset data({"x"});
  data.add_sample(std::array{0.0}, -5.0);
  data.add_sample(std::array{1.0}, -3.0);
  GBTRegressor clamped(GbtOptions{.nonnegative_prediction = true});
  clamped.fit(data);
  EXPECT_GE(clamped.predict(std::array{0.5}), 0.0);
}

TEST(Gbt, ErrorsOnMisuse) {
  GBTRegressor model;
  EXPECT_FALSE(model.fitted());
  EXPECT_THROW((void)model.predict(std::array{1.0}), util::NotFitted);
  Dataset empty({"x"});
  EXPECT_THROW(model.fit(empty), util::InvalidArgument);
}

// Property sweep: training error decreases (weakly) with more rounds.
class GbtRounds : public ::testing::TestWithParam<int> {};

TEST_P(GbtRounds, TrainingErrorShrinksWithRounds) {
  const auto data = nonlinear_dataset(150, 55);
  GBTRegressor few(GbtOptions{.num_rounds = GetParam()});
  GBTRegressor many(GbtOptions{.num_rounds = GetParam() * 4});
  few.fit(data);
  many.fit(data);
  const double rmse_few = rmse(data.targets(), few.predict_all(data));
  const double rmse_many = rmse(data.targets(), many.predict_all(data));
  EXPECT_LE(rmse_many, rmse_few + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RoundCounts, GbtRounds,
                         ::testing::Values(5, 15, 40));

// Property sweep: deeper trees fit the training data at least as well.
class GbtDepth : public ::testing::TestWithParam<int> {};

TEST_P(GbtDepth, DeeperFitsTrainingBetter) {
  const auto data = nonlinear_dataset(150, 77);
  GbtOptions shallow_opt;
  shallow_opt.tree.max_depth = 1;
  GbtOptions deep_opt;
  deep_opt.tree.max_depth = GetParam();
  GBTRegressor shallow(shallow_opt);
  GBTRegressor deep(deep_opt);
  shallow.fit(data);
  deep.fit(data);
  EXPECT_LE(rmse(data.targets(), deep.predict_all(data)),
            rmse(data.targets(), shallow.predict_all(data)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Depths, GbtDepth, ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace autopower::ml
