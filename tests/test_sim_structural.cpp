// Tests for the decoupled structural memoisation of the performance
// simulator: StructuralSimCache semantics, bit-identity of memoized /
// shared-memo / fresh-simulator runs, and the cross-configuration reuse
// the decomposition exists for (sweeps over window parameters must not
// re-run any cache or branch sub-simulation).

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/perfsim.hpp"
#include "util/rng.hpp"
#include "util/structural_cache.hpp"

namespace autopower::sim {
namespace {

using arch::HwParam;
using util::StructuralSimCache;
using SubSim = StructuralSimCache::SubSim;

const workload::WorkloadProfile& wl(const char* name) {
  return workload::workload_by_name(name);
}

void expect_identical(const arch::EventVector& a, const arch::EventVector& b,
                      const char* what) {
  for (std::size_t i = 0; i < arch::kNumEvents; ++i) {
    const auto k = static_cast<arch::EventKind>(i);
    ASSERT_EQ(a[k], b[k]) << what << ": " << arch::event_name(k);
  }
}

void expect_identical(const std::vector<arch::EventVector>& a,
                      const std::vector<arch::EventVector>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t w = 0; w < a.size(); ++w) {
    expect_identical(a[w], b[w], what);
  }
}

/// A random configuration whose every parameter value is drawn from that
/// parameter's pool of Table II values — so structural constraints (e.g.
/// power-of-two cache sets) hold by construction.
arch::HardwareConfig random_config(util::Rng& rng, int id) {
  const auto& space = arch::boom_design_space();
  std::array<int, arch::kNumHwParams> values{};
  for (arch::HwParam p : arch::all_hw_params()) {
    const auto& donor = space[rng.next_below(space.size())];
    values[static_cast<std::size_t>(p)] = donor.value(p);
  }
  return arch::HardwareConfig("rand" + std::to_string(id), values);
}

arch::HardwareConfig with_param(const arch::HardwareConfig& base,
                                HwParam param, int value) {
  std::array<int, arch::kNumHwParams> values{};
  for (arch::HwParam p : arch::all_hw_params()) {
    values[static_cast<std::size_t>(p)] = base.value(p);
  }
  values[static_cast<std::size_t>(param)] = value;
  return arch::HardwareConfig(base.name() + "'", values);
}

TEST(StructuralSimCache, ComputesOnceThenHits) {
  StructuralSimCache cache;
  int calls = 0;
  const auto compute = [&] {
    ++calls;
    return 0.25;
  };
  EXPECT_EQ(cache.get_or_compute(SubSim::kICache, 42, compute), 0.25);
  EXPECT_EQ(cache.get_or_compute(SubSim::kICache, 42, compute), 0.25);
  EXPECT_EQ(calls, 1);
  const auto stats = cache.stats(SubSim::kICache);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(StructuralSimCache, LanesAreIndependent) {
  StructuralSimCache cache;
  // The same key means different things in different lanes.
  EXPECT_EQ(cache.get_or_compute(SubSim::kICache, 7, [] { return 1.0; }), 1.0);
  EXPECT_EQ(cache.get_or_compute(SubSim::kBranch, 7, [] { return 2.0; }), 2.0);
  EXPECT_EQ(cache.get_or_compute(SubSim::kBranch, 7, [] { return 3.0; }), 2.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats(SubSim::kICache).misses, 1u);
  EXPECT_EQ(cache.stats(SubSim::kBranch).misses, 1u);
  EXPECT_EQ(cache.stats(SubSim::kBranch).hits, 1u);
}

TEST(StructuralSimCache, ClearResetsEntriesAndStats) {
  StructuralSimCache cache;
  for (std::uint64_t k = 0; k < 16; ++k) {
    cache.get_or_compute(SubSim::kDtlb, k, [k] { return double(k); });
  }
  EXPECT_EQ(cache.size(), 16u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  // Entries really are gone: the value is recomputed.
  EXPECT_EQ(cache.get_or_compute(SubSim::kDtlb, 3, [] { return -1.0; }), -1.0);
}

// Property: for randomized configurations, a simulator that shares a
// pre-warmed structural cache produces results bit-identical to a fresh
// un-memoized simulator — for both entry points.
TEST(StructuralMemoProperty, SharedWarmedMatchesFreshSimulator) {
  util::Rng rng(0xC0FFEE);
  auto shared = std::make_shared<StructuralSimCache>();
  for (int i = 0; i < 12; ++i) {
    const auto cfg = random_config(rng, i);
    const auto& w = wl(i % 2 == 0 ? "qsort" : "towers");

    PerfSimulator fresh;  // private cache, nothing memoised
    PerfSimulator warmer(SimOptions{}, shared);
    (void)warmer.simulate(cfg, w);  // warm the shared cache
    PerfSimulator warmed(SimOptions{}, shared);

    expect_identical(fresh.simulate(cfg, w), warmed.simulate(cfg, w),
                     cfg.name().c_str());
    expect_identical(fresh.simulate_trace(cfg, w),
                     warmed.simulate_trace(cfg, w), cfg.name().c_str());
    // Re-running on the same instance (instance memo hit) is stable too.
    expect_identical(warmed.simulate(cfg, w), fresh.simulate(cfg, w),
                     cfg.name().c_str());
  }
  // The warmed runs actually exercised the shared cache.
  EXPECT_GT(shared->stats().hits, 0u);
}

// The reuse the decomposition exists for: changing only window parameters
// (ROB, fetch buffer, issue width, ...) must not re-run ANY structural
// sub-simulation.
TEST(StructuralMemoProperty, WindowParamsReuseAllStructuralWork) {
  auto shared = std::make_shared<StructuralSimCache>();
  const auto& base = arch::boom_config("C8");
  const auto& w = wl("dhrystone");
  {
    PerfSimulator sim(SimOptions{}, shared);
    (void)sim.simulate(base, w);
  }
  const auto warm = shared->stats();
  EXPECT_GT(warm.misses, 0u);

  for (const auto& [param, value] :
       std::vector<std::pair<HwParam, int>>{{HwParam::kRobEntry, 64},
                                            {HwParam::kFetchBufferEntry, 40},
                                            {HwParam::kLdqStqEntry, 36},
                                            {HwParam::kIntIssueWidth, 2},
                                            {HwParam::kMshrEntry, 8}}) {
    PerfSimulator sim(SimOptions{}, shared);
    (void)sim.simulate(with_param(base, param, value), w);
    EXPECT_EQ(shared->stats().misses, warm.misses)
        << "changing " << arch::hw_param_name(param)
        << " re-ran a structural sub-simulation";
  }
  EXPECT_GT(shared->stats().hits, warm.hits);
}

// Changing a structural parameter invalidates exactly the lanes that read
// it: CacheWay feeds the I- and D-cache simulations, while the TLBs and
// the branch predictor never look at it.
TEST(StructuralMemoProperty, CacheWayMissesOnlyCacheLanes) {
  auto shared = std::make_shared<StructuralSimCache>();
  const auto& base = arch::boom_config("C8");
  const auto& w = wl("dhrystone");
  {
    PerfSimulator sim(SimOptions{}, shared);
    (void)sim.simulate(base, w);
  }
  const auto icache0 = shared->stats(SubSim::kICache);
  const auto dcache0 = shared->stats(SubSim::kDCache);
  const auto itlb0 = shared->stats(SubSim::kItlb);
  const auto dtlb0 = shared->stats(SubSim::kDtlb);
  const auto branch0 = shared->stats(SubSim::kBranch);

  const int other_way = base.value(HwParam::kCacheWay) == 4 ? 8 : 4;
  PerfSimulator sim(SimOptions{}, shared);
  (void)sim.simulate(with_param(base, HwParam::kCacheWay, other_way), w);

  EXPECT_EQ(shared->stats(SubSim::kICache).misses, icache0.misses + 1);
  EXPECT_EQ(shared->stats(SubSim::kDCache).misses, dcache0.misses + 1);
  EXPECT_EQ(shared->stats(SubSim::kItlb).misses, itlb0.misses);
  EXPECT_EQ(shared->stats(SubSim::kDtlb).misses, dtlb0.misses);
  EXPECT_EQ(shared->stats(SubSim::kBranch).misses, branch0.misses);
  EXPECT_EQ(shared->stats(SubSim::kItlb).hits, itlb0.hits + 1);
  EXPECT_EQ(shared->stats(SubSim::kDtlb).hits, dtlb0.hits + 1);
  EXPECT_EQ(shared->stats(SubSim::kBranch).hits, branch0.hits + 1);
}

// --- Bounded L2 (CLOCK eviction) and the private L1 --------------------------

// The pure-function value a lane would memoise; any deterministic mix of
// (lane, key) works for the identity properties below.
double lane_value(SubSim sub, std::uint64_t key) {
  return static_cast<double>(util::hash_combine(
             static_cast<std::uint64_t>(sub) + 1, key)) *
         0x1.0p-64;
}

// Property: a bounded cache answers every lookup with exactly the value
// an unbounded cache answers — eviction only ever costs recomputation —
// while never holding more than its capacity.
TEST(StructuralCacheEviction, BoundedMatchesUnboundedOverRandomStreams) {
  util::Rng rng(0xB0DE);
  for (int round = 0; round < 8; ++round) {
    // 1 shard/lane, 40 entries total -> 8 slots per lane: small enough
    // that a 64-key working set evicts constantly.
    StructuralSimCache bounded(1, 40);
    StructuralSimCache unbounded(1, 0);
    ASSERT_EQ(bounded.capacity(), 40u);
    for (int op = 0; op < 4000; ++op) {
      const auto sub = static_cast<SubSim>(
          rng.next_below(StructuralSimCache::kNumSubSims));
      // Hot working set with an occasional cold key, so the stream has
      // both CLOCK second-chance hits and forced evictions.
      const std::uint64_t key = rng.next_below(10) == 0
                                    ? rng.next_below(1u << 20)
                                    : rng.next_below(64);
      const double want = lane_value(sub, key);
      const auto compute = [&] { return lane_value(sub, key); };
      ASSERT_EQ(bounded.get_or_compute(sub, key, compute), want)
          << "round " << round << " op " << op;
      ASSERT_EQ(unbounded.get_or_compute(sub, key, compute), want);
      ASSERT_LE(bounded.size(), bounded.capacity());
    }
    EXPECT_GT(bounded.stats().evictions, 0u);
    EXPECT_EQ(unbounded.stats().evictions, 0u);
    // Eviction costs show up as extra misses (recomputes), never as
    // different answers.
    EXPECT_GE(bounded.stats().misses, unbounded.stats().misses);
  }
}

TEST(StructuralCacheEviction, ClockKeepsTheHotKeyResident) {
  // One lane, one shard, 5-entry budget -> 1 slot in that shard.  A key
  // that is re-referenced between inserts keeps its second-chance bit
  // set... with a single slot every insert evicts, but the re-reference
  // pattern must still always return the right value.
  StructuralSimCache cache(1, 5);
  int computes = 0;
  for (std::uint64_t k = 0; k < 10; ++k) {
    const double v = cache.get_or_compute(SubSim::kBranch, k, [&] {
      ++computes;
      return double(k);
    });
    EXPECT_EQ(v, double(k));
    // The just-inserted key hits until the next insert displaces it.
    EXPECT_EQ(cache.get_or_compute(SubSim::kBranch, k,
                                   [] { return -1.0; }),
              double(k));
  }
  EXPECT_EQ(computes, 10);
  EXPECT_EQ(cache.stats(SubSim::kBranch).hits, 10u);
  EXPECT_EQ(cache.stats().evictions, 9u);
}

TEST(StructuralL1Cache, HitsNeverTouchTheSharedTier) {
  auto l2 = std::make_shared<StructuralSimCache>();
  util::StructuralL1 l1(l2);
  EXPECT_EQ(l1.get_or_compute(SubSim::kICache, 42, [] { return 0.5; }), 0.5);
  const auto after_fill = l2->stats(SubSim::kICache);
  EXPECT_EQ(after_fill.misses, 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(l1.get_or_compute(SubSim::kICache, 42, [] { return -1.0; }),
              0.5);
  }
  // The repeats were answered privately: the L2 lane counters are frozen.
  EXPECT_EQ(l2->stats(SubSim::kICache).hits, after_fill.hits);
  EXPECT_EQ(l2->stats(SubSim::kICache).misses, 1u);
  EXPECT_EQ(l1.hits(), 100u);
  EXPECT_EQ(l1.misses(), 1u);

  // flush_stats folds the private counters into the combined aggregate
  // (and zeroes the local ones), keeping end-to-end hit+miss == lookups.
  l1.flush_stats();
  EXPECT_EQ(l1.hits(), 0u);
  const auto combined = l2->stats();
  EXPECT_EQ(combined.hits + combined.misses, 101u);
  EXPECT_EQ(combined.misses, 1u);
}

TEST(StructuralL1Cache, BoundedL2BehindL1StaysBitIdentical) {
  // Simulators sharing a tiny bounded L2 (evicting constantly) must stay
  // bit-identical to a fresh unshared simulator.
  auto tiny = std::make_shared<StructuralSimCache>(2, 16);
  util::Rng rng(0x11FA2);
  for (int i = 0; i < 6; ++i) {
    const auto cfg = random_config(rng, 100 + i);
    const auto& w = wl(i % 2 == 0 ? "dhrystone" : "median");
    PerfSimulator fresh;
    PerfSimulator shared_sim(SimOptions{}, tiny);
    expect_identical(fresh.simulate(cfg, w), shared_sim.simulate(cfg, w),
                     cfg.name().c_str());
  }
  EXPECT_LE(tiny->size(), tiny->capacity());
}

}  // namespace
}  // namespace autopower::sim
