// Tests for the golden power model (PrimePower stand-in).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "power/golden.hpp"
#include "sim/perfsim.hpp"

namespace autopower::power {
namespace {

using arch::ComponentKind;
using arch::EventKind;

class GoldenPowerTest : public ::testing::Test {
 protected:
  sim::PerfSimulator sim_;
  GoldenPowerModel golden_;

  arch::EventVector events(const char* cfg, const char* wl) {
    return sim_.simulate(arch::boom_config(cfg),
                         workload::workload_by_name(wl));
  }
};

TEST_F(GoldenPowerTest, AllPowersPositive) {
  for (const char* cname : {"C1", "C8", "C15"}) {
    const auto& cfg = arch::boom_config(cname);
    const auto result = golden_.evaluate(cfg, events(cname, "dhrystone"));
    ASSERT_EQ(result.components.size(), arch::kNumComponents);
    for (const auto& cp : result.components) {
      EXPECT_GT(cp.groups.clock, 0.0)
          << arch::component_name(cp.component);
      EXPECT_GE(cp.groups.sram, 0.0);
      EXPECT_GT(cp.groups.logic_register, 0.0);
      EXPECT_GT(cp.groups.logic_comb, 0.0);
    }
    EXPECT_GT(result.total(), 10.0);
    EXPECT_LT(result.total(), 1000.0);  // a 40nm core, not a server chip
  }
}

TEST_F(GoldenPowerTest, GroupsSumToTotal) {
  const auto& cfg = arch::boom_config("C5");
  const auto result = golden_.evaluate(cfg, events("C5", "median"));
  const auto t = result.totals();
  EXPECT_NEAR(t.total(),
              t.clock + t.sram + t.logic_register + t.logic_comb, 1e-9);
  double sum = 0.0;
  for (const auto& cp : result.components) sum += cp.groups.total();
  EXPECT_NEAR(sum, result.total(), 1e-9);
}

TEST_F(GoldenPowerTest, ObservationOneHolds) {
  // Paper Fig. 1: clock + SRAM dominate.
  double clock_sram = 0.0;
  double total = 0.0;
  for (const char* cname : {"C1", "C4", "C8", "C11", "C15"}) {
    const auto& cfg = arch::boom_config(cname);
    for (const auto& w : workload::riscv_tests_workloads()) {
      const auto t =
          golden_.evaluate(cfg, sim_.simulate(cfg, w)).totals();
      clock_sram += t.clock + t.sram;
      total += t.total();
    }
  }
  EXPECT_GT(clock_sram / total, 0.60);
}

TEST_F(GoldenPowerTest, ClockPowerFollowsEqSevenStructure) {
  // Reconstruct clock power from the netlist + activity and compare.
  const auto& cfg = arch::boom_config("C7");
  const auto ev = events("C7", "rsort");
  const auto result = golden_.evaluate(cfg, ev);
  const auto& netlists = golden_.netlist_of(cfg);
  for (ComponentKind c : arch::all_components()) {
    const auto& nl = netlists[static_cast<std::size_t>(c)];
    const auto act = golden_.activity().component_activity(cfg, c, ev);
    const double expected =
        nl.register_count * (1.0 - nl.gating_rate) *
            nl.avg_clock_pin_energy +
        act.gated_active_rate * nl.register_count * nl.gating_rate *
            nl.avg_clock_pin_energy +
        nl.gating_cell_ratio * nl.register_count * nl.gating_rate *
            nl.avg_gating_latch_energy;
    EXPECT_NEAR(result.of(c).clock, expected, 1e-9)
        << arch::component_name(c);
  }
}

TEST_F(GoldenPowerTest, SramPositionPowersSumToComponent) {
  const auto& cfg = arch::boom_config("C9");
  const auto ev = events("C9", "spmv");
  const auto result = golden_.evaluate(cfg, ev);
  const auto& netlists = golden_.netlist_of(cfg);
  for (ComponentKind c : arch::all_components()) {
    const auto& nl = netlists[static_cast<std::size_t>(c)];
    double sum = 0.0;
    for (const auto& pos : nl.sram_positions) {
      sum += golden_.sram_position_power(cfg, c, pos, ev);
    }
    EXPECT_NEAR(result.of(c).sram, sum, 1e-9)
        << arch::component_name(c);
  }
}

TEST_F(GoldenPowerTest, FlopOnlyComponentsHaveZeroSramPower) {
  const auto& cfg = arch::boom_config("C2");
  const auto result = golden_.evaluate(cfg, events("C2", "towers"));
  EXPECT_DOUBLE_EQ(result.of(ComponentKind::kFuPool).sram, 0.0);
  EXPECT_DOUBLE_EQ(result.of(ComponentKind::kIntIsu).sram, 0.0);
  EXPECT_DOUBLE_EQ(result.of(ComponentKind::kOtherLogic).sram, 0.0);
  EXPECT_GT(result.of(ComponentKind::kICacheDataArray).sram, 0.0);
}

TEST_F(GoldenPowerTest, BiggerCoreBurnsMore) {
  const auto p1 =
      golden_.evaluate(arch::boom_config("C1"), events("C1", "dhrystone"))
          .total();
  const auto p15 =
      golden_.evaluate(arch::boom_config("C15"), events("C15", "dhrystone"))
          .total();
  EXPECT_GT(p15, 1.5 * p1);
}

TEST_F(GoldenPowerTest, WorkloadMatters) {
  // Different workloads on the same configuration differ in power.
  const auto& cfg = arch::boom_config("C8");
  const double busy =
      golden_.evaluate(cfg, events("C8", "dhrystone")).total();
  const double memory_bound =
      golden_.evaluate(cfg, events("C8", "spmv")).total();
  EXPECT_GT(std::abs(busy - memory_bound), 0.05 * busy);
}

TEST_F(GoldenPowerTest, NetlistMemoised) {
  const auto& cfg = arch::boom_config("C6");
  const auto& a = golden_.netlist_of(cfg);
  const auto& b = golden_.netlist_of(cfg);
  EXPECT_EQ(&a, &b);
}

TEST_F(GoldenPowerTest, TraceEvaluationMatchesPerWindow) {
  const auto& cfg = arch::boom_config("C4");
  const auto windows =
      sim_.simulate_trace(cfg, workload::workload_by_name("median"));
  const auto trace = golden_.evaluate_trace(cfg, windows);
  ASSERT_EQ(trace.size(), windows.size());
  for (std::size_t i = 0; i < 5 && i < windows.size(); ++i) {
    EXPECT_NEAR(trace[i].total(),
                golden_.evaluate(cfg, windows[i]).total(), 1e-9);
  }
}

TEST_F(GoldenPowerTest, TraceHasDynamicRange) {
  // Golden power traces must show max/min structure for Table IV to be
  // meaningful.
  const auto& cfg = arch::boom_config("C3");
  const auto windows =
      sim_.simulate_trace(cfg, workload::workload_by_name("gemm"));
  double lo = 1e18;
  double hi = -1e18;
  for (const auto& w : windows) {
    const double p = golden_.evaluate(cfg, w).total();
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi, 1.1 * lo);
}

}  // namespace
}  // namespace autopower::power
