// Tests for the branch predictor model.

#include <gtest/gtest.h>

#include "sim/branch.hpp"
#include "util/error.hpp"

namespace autopower::sim {
namespace {

TEST(BranchPredictor, TableSizeMustBePow2) {
  EXPECT_NO_THROW(BranchPredictorModel(1024));
  EXPECT_THROW(BranchPredictorModel(1000), util::InvalidArgument);
  EXPECT_THROW(BranchPredictorModel(0), util::InvalidArgument);
}

TEST(BranchPredictor, LearnsAlwaysTakenBranch) {
  BranchPredictorModel bp(256);
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    correct += bp.predict_and_update(0x400, true);
  }
  EXPECT_GT(correct, 95);  // warms up within a few iterations
}

TEST(BranchPredictor, LearnsAlternatingWithHistory) {
  // T/NT alternation is captured by global history indexing.
  BranchPredictorModel bp(1024, 8);
  int correct_late = 0;
  for (int i = 0; i < 400; ++i) {
    const bool taken = (i % 2) == 0;
    const bool ok = bp.predict_and_update(0x400, taken);
    if (i >= 200) correct_late += ok;
  }
  EXPECT_GT(correct_late, 180);
}

TEST(BranchPredictor, ResetForgets) {
  BranchPredictorModel bp(256);
  for (int i = 0; i < 50; ++i) bp.predict_and_update(0x400, false);
  bp.reset();
  // After reset, counters are weakly-taken again: predicts taken.
  int correct = bp.predict_and_update(0x400, false) ? 1 : 0;
  EXPECT_EQ(correct, 0);
}

TEST(BranchStream, MispredictRateDeterministic) {
  BranchPredictorModel a(512);
  BranchPredictorModel b(512);
  BranchStreamProfile s;
  s.entropy = 0.4;
  s.seed = 5;
  EXPECT_DOUBLE_EQ(measure_mispredict_rate(a, s, 5000),
                   measure_mispredict_rate(b, s, 5000));
}

TEST(BranchStream, EntropyRaisesMispredicts) {
  BranchStreamProfile easy;
  easy.entropy = 0.05;
  easy.seed = 11;
  BranchStreamProfile hard;
  hard.entropy = 0.9;
  hard.seed = 11;
  BranchPredictorModel bp1(1024);
  BranchPredictorModel bp2(1024);
  const double miss_easy = measure_mispredict_rate(bp1, easy, 8000);
  const double miss_hard = measure_mispredict_rate(bp2, hard, 8000);
  EXPECT_LT(miss_easy, 0.12);
  EXPECT_GT(miss_hard, 2.0 * miss_easy);
}

TEST(BranchStream, BiggerTablePredictsNoWorse) {
  BranchStreamProfile s;
  s.entropy = 0.3;
  s.static_branches = 400;  // enough to stress a small table
  s.seed = 23;
  BranchPredictorModel small(128);
  BranchPredictorModel large(8192);
  const double miss_small = measure_mispredict_rate(small, s, 20000);
  const double miss_large = measure_mispredict_rate(large, s, 20000);
  EXPECT_LE(miss_large, miss_small + 0.01);
}

TEST(BranchStream, RejectsNonPositiveCount) {
  BranchPredictorModel bp(256);
  BranchStreamProfile s;
  EXPECT_THROW((void)measure_mispredict_rate(bp, s, 0),
               util::InvalidArgument);
}

}  // namespace
}  // namespace autopower::sim
