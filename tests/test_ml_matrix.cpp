// Unit tests for the dense matrix and the Cholesky solver.

#include <gtest/gtest.h>

#include "ml/matrix.hpp"
#include "util/error.hpp"

namespace autopower::ml {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -4.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -4.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), util::InvalidArgument);
}

TEST(Matrix, TransposeTimesMatrix) {
  // A = [[1,2],[3,4]]; A^T A = [[10,14],[14,20]].
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix g = a.transpose_times(a);
  EXPECT_DOUBLE_EQ(g(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 14.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 14.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 20.0);
}

TEST(Matrix, TimesVector) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const auto y = a.times({1.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, TransposeTimesVector) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const auto y = a.transpose_times(std::vector<double>{1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, DimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  EXPECT_THROW(a.transpose_times(b), util::InvalidArgument);
  EXPECT_THROW(a.times({1.0}), util::InvalidArgument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(CholeskySolve, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [6,5] -> x = [1,1].
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto x = cholesky_solve(a, {6.0, 5.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(CholeskySolve, SolvesLargerSystem) {
  // Build A = B^T B + I (SPD) and verify A x = b round-trips.
  const std::size_t n = 6;
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      b(r, c) = static_cast<double>((r * 7 + c * 3) % 5) - 2.0;
    }
  }
  Matrix a = b.transpose_times(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;

  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = static_cast<double>(i) - 2.5;
  const auto rhs = a.times(x_true);
  const auto x = cholesky_solve(a, rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-9) << "index " << i;
  }
}

TEST(CholeskySolve, RejectsNonSpd) {
  Matrix a{{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_THROW(cholesky_solve(a, {1.0, 1.0}), util::Error);
  Matrix indefinite{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky_solve(indefinite, {1.0, 1.0}), util::Error);
}

TEST(CholeskySolve, RejectsBadShapes) {
  Matrix a(2, 3);
  EXPECT_THROW(cholesky_solve(a, {1.0, 1.0}), util::InvalidArgument);
  Matrix b(2, 2, 1.0);
  EXPECT_THROW(cholesky_solve(b, {1.0}), util::InvalidArgument);
}

}  // namespace
}  // namespace autopower::ml
