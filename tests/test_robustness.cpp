// Robustness and failure-injection tests: corrupt archives, hostile
// stream content, and degenerate model inputs must throw typed errors —
// never crash, hang, or silently mis-load.

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>

#include "core/autopower.hpp"
#include "core/scaling_model.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "ml/tree.hpp"
#include "util/archive.hpp"
#include "util/error.hpp"

namespace autopower {
namespace {

TEST(Robustness, ArchiveRejectsGarbageInputs) {
  const std::array<const char*, 7> payloads = {
      "",
      "wrong-tag 1.0",
      "ridge.lambda not-a-number",
      "ridge.lambda",                       // missing value
      "ridge.coef 3 0x1p+0",                // truncated vector
      "ridge.coef 99999999 0x1p+0",         // implausible length
      "ridge.lambda 0x1p+0 trailing-junk",  // reader stops; next tag fails
  };
  for (const char* payload : payloads) {
    std::stringstream buf(payload);
    ml::RidgeRegression model;
    util::ArchiveReader r(buf);
    EXPECT_THROW(model.load(r), util::Error) << "payload: " << payload;
  }
}

TEST(Robustness, TreeArchiveWithBadIndicesRejected) {
  // A tree whose child indices point outside the node array must be
  // rejected at load time (otherwise predict would read out of bounds).
  std::stringstream buf;
  buf << "tree.depth 1\n"
      << "tree.structure 3 0 5 7\n"   // left=5, right=7 but only 1 node
      << "tree.values 2 0x1p+0 0x1p+0\n";
  ml::RegressionTree tree;
  util::ArchiveReader r(buf);
  EXPECT_THROW(tree.load(r), util::InvalidArgument);
}

TEST(Robustness, TreeArchiveWithMismatchedArraysRejected) {
  std::stringstream buf;
  buf << "tree.depth 0\n"
      << "tree.structure 3 -1 -1 -1\n"
      << "tree.values 4 0x0p+0 0x0p+0 0x0p+0 0x0p+0\n";  // 4 != 2
  ml::RegressionTree tree;
  util::ArchiveReader r(buf);
  EXPECT_THROW(tree.load(r), util::InvalidArgument);
}

TEST(Robustness, GbtArchiveWithNegativeTreeCountRejected) {
  std::stringstream buf;
  buf << "gbt.rounds 10\ngbt.lr 0x1p-3\ngbt.max_depth 3\n"
      << "gbt.lambda 0x1p+0\ngbt.gamma 0x0p+0\ngbt.min_child_weight 0x1p+0\n"
      << "gbt.nonneg 0\ngbt.fitted 1\ngbt.base_score 0x0p+0\n"
      << "gbt.num_trees -5\n";
  ml::GBTRegressor model;
  util::ArchiveReader r(buf);
  EXPECT_THROW(model.load(r), util::InvalidArgument);
}

TEST(Robustness, AutoPowerArchiveFormatVersionChecked) {
  std::stringstream buf;
  buf << "autopower.format 99\n";
  core::AutoPowerModel model;
  EXPECT_THROW(model.load(buf), util::InvalidArgument);
}

TEST(Robustness, AutoPowerArchiveComponentCountChecked) {
  std::stringstream buf;
  buf << "autopower.format 1\nautopower.components 7\n";
  core::AutoPowerModel model;
  EXPECT_THROW(model.load(buf), util::InvalidArgument);
}

TEST(Robustness, ScalingLawArchiveWithBadParamIdRejected) {
  std::stringstream buf;
  buf << "scaling.fitted 1\n"
      << "law.k 0x1p+0\nlaw.err 0x0p+0\nlaw.params 1 99\n";  // id 99 > 13
  core::ScalingPatternModel model;
  util::ArchiveReader r(buf);
  EXPECT_THROW(model.load(r), util::InvalidArgument);
}

TEST(Robustness, RidgeHandlesExtremeFeatureScales) {
  // Features spanning 12 orders of magnitude: standardisation must keep
  // the normal equations solvable.
  ml::Dataset data({"tiny", "huge"});
  for (int i = 0; i < 10; ++i) {
    const double t = 1e-9 * i;
    const double h = 1e6 * i;
    data.add_sample(std::array{t, h}, 2e9 * t + 3e-6 * h + 1.0);
  }
  ml::RidgeRegression model(ml::RidgeOptions{.lambda = 1e-8});
  model.fit(data);
  EXPECT_NEAR(model.predict(std::array{5e-9, 5e6}), 26.0, 0.5);
}

TEST(Robustness, GbtHandlesDuplicateFeatureRows) {
  // Identical feature vectors with different targets: no split possible;
  // the model must settle on the mean without infinite-looping.
  ml::Dataset data({"x"});
  for (int i = 0; i < 8; ++i) {
    data.add_sample(std::array{1.0}, i % 2 == 0 ? 0.0 : 10.0);
  }
  ml::GBTRegressor model;
  model.fit(data);
  EXPECT_NEAR(model.predict(std::array{1.0}), 5.0, 1e-9);
}

TEST(Robustness, GbtHandlesSingleSample) {
  ml::Dataset data({"x"});
  data.add_sample(std::array{1.0}, 7.5);
  ml::GBTRegressor model;
  model.fit(data);
  EXPECT_DOUBLE_EQ(model.predict(std::array{123.0}), 7.5);
}

TEST(Robustness, TreeRejectsMismatchedGradients) {
  ml::Dataset data({"x"});
  data.add_sample(std::array{1.0}, 1.0);
  data.add_sample(std::array{2.0}, 2.0);
  std::array<double, 1> short_grad{0.0};
  std::array<double, 2> hess{1.0, 1.0};
  ml::RegressionTree tree;
  EXPECT_THROW(tree.fit(data, short_grad, hess, ml::TreeOptions{}),
               util::InvalidArgument);
}

TEST(Robustness, PredictAfterFailedLoadStillThrowsNotFitted) {
  // A failed load must not leave the model half-initialised and usable.
  core::AutoPowerModel model;
  std::stringstream buf("autopower.format 1\nautopower.components 7\n");
  EXPECT_THROW(model.load(buf), util::InvalidArgument);
  EXPECT_FALSE(model.trained());
  core::EvalContext ctx;
  ctx.cfg = &arch::boom_config("C1");
  EXPECT_THROW((void)model.predict_total(ctx), util::InvalidArgument);
}

}  // namespace
}  // namespace autopower
