// Robustness and failure-injection tests: corrupt archives, hostile
// stream content, and degenerate model inputs must throw typed errors —
// never crash, hang, or silently mis-load.

#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <sstream>
#include <string>

#include "arch/params.hpp"
#include "core/autopower.hpp"
#include "core/scaling_model.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "ml/tree.hpp"
#include "power/golden.hpp"
#include "sim/perfsim.hpp"
#include "testcore/proptest.hpp"
#include "util/archive.hpp"
#include "util/error.hpp"
#include "workload/workload.hpp"

namespace autopower {
namespace {

TEST(Robustness, ArchiveRejectsGarbageInputs) {
  const std::array<const char*, 7> payloads = {
      "",
      "wrong-tag 1.0",
      "ridge.lambda not-a-number",
      "ridge.lambda",                       // missing value
      "ridge.coef 3 0x1p+0",                // truncated vector
      "ridge.coef 99999999 0x1p+0",         // implausible length
      "ridge.lambda 0x1p+0 trailing-junk",  // reader stops; next tag fails
  };
  for (const char* payload : payloads) {
    std::stringstream buf(payload);
    ml::RidgeRegression model;
    util::ArchiveReader r(buf);
    EXPECT_THROW(model.load(r), util::Error) << "payload: " << payload;
  }
}

TEST(Robustness, TreeArchiveWithBadIndicesRejected) {
  // A tree whose child indices point outside the node array must be
  // rejected at load time (otherwise predict would read out of bounds).
  std::stringstream buf;
  buf << "tree.depth 1\n"
      << "tree.structure 3 0 5 7\n"   // left=5, right=7 but only 1 node
      << "tree.values 2 0x1p+0 0x1p+0\n";
  ml::RegressionTree tree;
  util::ArchiveReader r(buf);
  EXPECT_THROW(tree.load(r), util::InvalidArgument);
}

TEST(Robustness, TreeArchiveWithMismatchedArraysRejected) {
  std::stringstream buf;
  buf << "tree.depth 0\n"
      << "tree.structure 3 -1 -1 -1\n"
      << "tree.values 4 0x0p+0 0x0p+0 0x0p+0 0x0p+0\n";  // 4 != 2
  ml::RegressionTree tree;
  util::ArchiveReader r(buf);
  EXPECT_THROW(tree.load(r), util::InvalidArgument);
}

TEST(Robustness, GbtArchiveWithNegativeTreeCountRejected) {
  std::stringstream buf;
  buf << "gbt.rounds 10\ngbt.lr 0x1p-3\ngbt.max_depth 3\n"
      << "gbt.lambda 0x1p+0\ngbt.gamma 0x0p+0\ngbt.min_child_weight 0x1p+0\n"
      << "gbt.nonneg 0\ngbt.fitted 1\ngbt.base_score 0x0p+0\n"
      << "gbt.num_trees -5\n";
  ml::GBTRegressor model;
  util::ArchiveReader r(buf);
  EXPECT_THROW(model.load(r), util::InvalidArgument);
}

TEST(Robustness, AutoPowerArchiveFormatVersionChecked) {
  std::stringstream buf;
  buf << "autopower.format 99\n";
  core::AutoPowerModel model;
  EXPECT_THROW(model.load(buf), util::InvalidArgument);
}

TEST(Robustness, AutoPowerArchiveComponentCountChecked) {
  std::stringstream buf;
  buf << "autopower.format 1\nautopower.components 7\n";
  core::AutoPowerModel model;
  EXPECT_THROW(model.load(buf), util::InvalidArgument);
}

TEST(Robustness, ScalingLawArchiveWithBadParamIdRejected) {
  std::stringstream buf;
  buf << "scaling.fitted 1\n"
      << "law.k 0x1p+0\nlaw.err 0x0p+0\nlaw.params 1 99\n";  // id 99 > 13
  core::ScalingPatternModel model;
  util::ArchiveReader r(buf);
  EXPECT_THROW(model.load(r), util::InvalidArgument);
}

TEST(Robustness, RidgeHandlesExtremeFeatureScales) {
  // Features spanning 12 orders of magnitude: standardisation must keep
  // the normal equations solvable.
  ml::Dataset data({"tiny", "huge"});
  for (int i = 0; i < 10; ++i) {
    const double t = 1e-9 * i;
    const double h = 1e6 * i;
    data.add_sample(std::array{t, h}, 2e9 * t + 3e-6 * h + 1.0);
  }
  ml::RidgeRegression model(ml::RidgeOptions{.lambda = 1e-8});
  model.fit(data);
  EXPECT_NEAR(model.predict(std::array{5e-9, 5e6}), 26.0, 0.5);
}

TEST(Robustness, GbtHandlesDuplicateFeatureRows) {
  // Identical feature vectors with different targets: no split possible;
  // the model must settle on the mean without infinite-looping.
  ml::Dataset data({"x"});
  for (int i = 0; i < 8; ++i) {
    data.add_sample(std::array{1.0}, i % 2 == 0 ? 0.0 : 10.0);
  }
  ml::GBTRegressor model;
  model.fit(data);
  EXPECT_NEAR(model.predict(std::array{1.0}), 5.0, 1e-9);
}

TEST(Robustness, GbtHandlesSingleSample) {
  ml::Dataset data({"x"});
  data.add_sample(std::array{1.0}, 7.5);
  ml::GBTRegressor model;
  model.fit(data);
  EXPECT_DOUBLE_EQ(model.predict(std::array{123.0}), 7.5);
}

TEST(Robustness, TreeRejectsMismatchedGradients) {
  ml::Dataset data({"x"});
  data.add_sample(std::array{1.0}, 1.0);
  data.add_sample(std::array{2.0}, 2.0);
  std::array<double, 1> short_grad{0.0};
  std::array<double, 2> hess{1.0, 1.0};
  ml::RegressionTree tree;
  EXPECT_THROW(tree.fit(data, short_grad, hess, ml::TreeOptions{}),
               util::InvalidArgument);
}

// --- archive fuzz ------------------------------------------------------------
//
// Seeded fuzz over a real trained-model archive: truncate it at a random
// point, or flip one random byte, then load.  The contract is "clean
// util::Error or a successful load" -- never a crash, hang, or
// out-of-bounds read (the ASan leg of tools/check.sh backs the latter).

/// One tiny trained model, archived once and reused by every fuzz case.
const std::string& fuzz_archive() {
  static const std::string* archive = [] {
    const auto& space = arch::boom_design_space();
    const auto& workloads = workload::riscv_tests_workloads();
    sim::SimOptions sim_opt;
    sim_opt.window_cycles = 50;
    sim_opt.sample_accesses = 300;
    sim_opt.sample_branches = 300;
    sim_opt.phase_repeats = 2;
    sim::PerfSimulator sim(sim_opt);
    const power::GoldenPowerModel golden;

    std::vector<core::EvalContext> ctxs;
    for (std::size_t c = 0; c < 2; ++c) {
      for (std::size_t w = 0; w < 2; ++w) {
        core::EvalContext ctx;
        ctx.cfg = &space[c];
        ctx.workload = workloads[w].name;
        ctx.program = workload::program_features(workloads[w]);
        ctx.events = sim.simulate(space[c], workloads[w]);
        ctxs.push_back(std::move(ctx));
      }
    }

    core::AutoPowerOptions opt;
    opt.clock.gbt.num_rounds = 3;
    opt.clock.gbt.tree.max_depth = 2;
    opt.sram.gbt.num_rounds = 3;
    opt.sram.gbt.tree.max_depth = 2;
    opt.logic.gbt.num_rounds = 3;
    opt.logic.gbt.tree.max_depth = 2;
    core::AutoPowerModel model(opt);
    model.train(ctxs, golden, 1);

    std::ostringstream out;
    model.save(out);
    return new std::string(out.str());
  }();
  return *archive;
}

TEST(Robustness, TruncatedModelArchiveAlwaysRejected) {
  const std::string& archive = fuzz_archive();
  // Truncating inside the significant content (not just trailing
  // whitespace) must always surface as a load error.
  std::size_t last_significant = archive.find_last_not_of(" \n\t");
  ASSERT_NE(last_significant, std::string::npos);
  const auto result = testcore::run_property<std::size_t>(
      {.name = "robustness.truncated_archive", .cases = 150},
      [&](testcore::Pcg32& rng) { return rng.index(last_significant + 1); },
      [&](const std::size_t& cut) -> std::optional<std::string> {
        std::istringstream in(archive.substr(0, cut));
        core::AutoPowerModel model;
        try {
          model.load(in);
        } catch (const util::Error&) {
          return std::nullopt;  // clean rejection: the contract
        }
        return "truncated archive loaded without error";
      },
      [&](const std::size_t& cut) {
        return "cut at byte " + std::to_string(cut) + " of " +
               std::to_string(archive.size());
      });
  ASSERT_TRUE(result.passed) << result.report;
}

TEST(Robustness, BitFlippedModelArchiveNeverCrashes) {
  const std::string& archive = fuzz_archive();
  struct Flip {
    std::size_t pos;
    unsigned char mask;
  };
  const auto result = testcore::run_property<Flip>(
      {.name = "robustness.bitflipped_archive", .cases = 200},
      [&](testcore::Pcg32& rng) {
        return Flip{rng.index(archive.size()),
                    static_cast<unsigned char>(rng.next_int(1, 255))};
      },
      [&](const Flip& flip) -> std::optional<std::string> {
        std::string corrupted = archive;
        corrupted[flip.pos] =
            static_cast<char>(static_cast<unsigned char>(corrupted[flip.pos]) ^
                              flip.mask);
        std::istringstream in(corrupted);
        core::AutoPowerModel model;
        try {
          model.load(in);
        } catch (const util::Error&) {
          return std::nullopt;  // clean rejection
        }
        // Some flips land in float payloads and still parse; a model
        // that claims to have loaded must then predict without UB.
        const auto& space = arch::boom_design_space();
        const auto& wl = workload::riscv_tests_workloads()[0];
        sim::PerfSimulator sim;
        core::EvalContext ctx;
        ctx.cfg = &space[0];
        ctx.workload = wl.name;
        ctx.program = workload::program_features(wl);
        ctx.events = sim.simulate(space[0], wl);
        try {
          (void)model.predict_total(ctx);
        } catch (const util::Error&) {
          // e.g. a flipped `fitted` flag: predict may refuse, cleanly.
        }
        return std::nullopt;
      },
      [](const Flip& flip) {
        return "flip byte " + std::to_string(flip.pos) + " with mask 0x" +
               std::to_string(static_cast<int>(flip.mask));
      });
  ASSERT_TRUE(result.passed) << result.report;
}

TEST(Robustness, PredictAfterFailedLoadStillThrowsNotFitted) {
  // A failed load must not leave the model half-initialised and usable.
  core::AutoPowerModel model;
  std::stringstream buf("autopower.format 1\nautopower.components 7\n");
  EXPECT_THROW(model.load(buf), util::InvalidArgument);
  EXPECT_FALSE(model.trained());
  core::EvalContext ctx;
  ctx.cfg = &arch::boom_config("C1");
  EXPECT_THROW((void)model.predict_total(ctx), util::InvalidArgument);
}

}  // namespace
}  // namespace autopower
