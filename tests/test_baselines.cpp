// Tests for the baseline power models: McPAT analytical stand-in,
// McPAT-Calib (+Component), and AutoPower-.

#include <gtest/gtest.h>

#include <vector>

#include "baselines/autopower_minus.hpp"
#include "baselines/mcpat_calib.hpp"
#include "exp/dataset.hpp"
#include "ml/metrics.hpp"
#include "util/error.hpp"

namespace autopower::baselines {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim_ = new sim::PerfSimulator();
    golden_ = new power::GoldenPowerModel();
    data_ = new exp::ExperimentData(
        exp::ExperimentData::build(*sim_, *golden_));
    train_configs_ = new std::vector<std::string>(
        exp::ExperimentData::training_configs(2));
    train_ctx_ = new std::vector<core::EvalContext>(
        data_->contexts_of(*train_configs_));
  }
  static void TearDownTestSuite() {
    delete train_ctx_;
    delete train_configs_;
    delete data_;
    delete golden_;
    delete sim_;
  }

  static sim::PerfSimulator* sim_;
  static power::GoldenPowerModel* golden_;
  static exp::ExperimentData* data_;
  static std::vector<std::string>* train_configs_;
  static std::vector<core::EvalContext>* train_ctx_;
};

sim::PerfSimulator* BaselineTest::sim_ = nullptr;
power::GoldenPowerModel* BaselineTest::golden_ = nullptr;
exp::ExperimentData* BaselineTest::data_ = nullptr;
std::vector<std::string>* BaselineTest::train_configs_ = nullptr;
std::vector<core::EvalContext>* BaselineTest::train_ctx_ = nullptr;

TEST_F(BaselineTest, McPatAnalyticalIsPositiveAndMonotone) {
  const McPatAnalytical mcpat;
  const auto& small = data_->samples().front();   // C1 workloads first
  const auto& large = data_->samples().back();    // C15 workloads last
  const double p_small =
      mcpat.total_power(*small.ctx.cfg, small.ctx.events);
  const double p_large =
      mcpat.total_power(*large.ctx.cfg, large.ctx.events);
  EXPECT_GT(p_small, 0.0);
  EXPECT_GT(p_large, p_small);  // bigger cores estimated bigger
}

TEST_F(BaselineTest, McPatAnalyticalIsBiased) {
  // Untrained analytical model: correlated with golden but with large
  // absolute error (the motivation for calibration; paper Sec. I).
  const McPatAnalytical mcpat;
  std::vector<double> actual;
  std::vector<double> estimate;
  for (const auto& s : data_->samples()) {
    actual.push_back(s.golden.total());
    estimate.push_back(mcpat.total_power(*s.ctx.cfg, s.ctx.events));
  }
  EXPECT_GT(ml::pearson_r(actual, estimate), 0.5);  // carries signal
  EXPECT_GT(ml::mape(actual, estimate), 15.0);      // but badly biased
}

TEST_F(BaselineTest, McPatCalibLearnsTrainingSet) {
  McPatCalib model;
  model.train(*train_ctx_, *golden_);
  EXPECT_TRUE(model.trained());
  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto& ctx : *train_ctx_) {
    actual.push_back(golden_->evaluate(*ctx.cfg, ctx.events).total());
    pred.push_back(model.predict_total(ctx));
  }
  EXPECT_LT(ml::mape(actual, pred), 3.0);
}

TEST_F(BaselineTest, McPatCalibGeneralisesWorseThanTraining) {
  McPatCalib model;
  model.train(*train_ctx_, *golden_);
  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    actual.push_back(s->golden.total());
    pred.push_back(model.predict_total(s->ctx));
  }
  const double test_mape = ml::mape(actual, pred);
  EXPECT_GT(test_mape, 3.0);   // few-shot generalisation gap exists
  EXPECT_LT(test_mape, 30.0);  // but the model is not useless
  EXPECT_GT(ml::pearson_r(actual, pred), 0.7);
}

TEST_F(BaselineTest, McPatCalibComponentSumsComponents) {
  McPatCalibComponent model;
  model.train(*train_ctx_, *golden_);
  EXPECT_TRUE(model.trained());
  const auto& ctx = data_->samples_excluding(*train_configs_)[0]->ctx;
  double sum = 0.0;
  for (arch::ComponentKind c : arch::all_components()) {
    const double p = model.predict_component(c, ctx);
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, model.predict_total(ctx), 1e-9);
}

TEST_F(BaselineTest, AutoPowerMinusPredictsGroups) {
  AutoPowerMinus model;
  model.train(*train_ctx_, *golden_);
  EXPECT_TRUE(model.trained());
  const auto& ctx = data_->samples_excluding(*train_configs_)[0]->ctx;
  const auto result = model.predict(ctx);
  ASSERT_EQ(result.components.size(), arch::kNumComponents);
  EXPECT_NEAR(result.total(), model.predict_total(ctx), 1e-9);
  for (arch::ComponentKind c : arch::all_components()) {
    EXPECT_GE(model.predict_group(c, PowerGroup::kClock, ctx), 0.0);
    EXPECT_GE(model.predict_group(c, PowerGroup::kSram, ctx), 0.0);
    EXPECT_GE(model.predict_group(c, PowerGroup::kLogic, ctx), 0.0);
  }
}

TEST_F(BaselineTest, AutoPowerMinusReasonableEndToEnd) {
  AutoPowerMinus model;
  model.train(*train_ctx_, *golden_);
  std::vector<double> actual;
  std::vector<double> pred;
  for (const auto* s : data_->samples_excluding(*train_configs_)) {
    actual.push_back(s->golden.total());
    pred.push_back(model.predict_total(s->ctx));
  }
  EXPECT_LT(ml::mape(actual, pred), 15.0);
  EXPECT_GT(ml::pearson_r(actual, pred), 0.9);
}

TEST_F(BaselineTest, BaselinesRejectEmptyTraining) {
  std::vector<core::EvalContext> empty;
  McPatCalib a;
  EXPECT_THROW(a.train(empty, *golden_), util::InvalidArgument);
  McPatCalibComponent b;
  EXPECT_THROW(b.train(empty, *golden_), util::InvalidArgument);
  AutoPowerMinus c;
  EXPECT_THROW(c.train(empty, *golden_), util::InvalidArgument);
}

TEST_F(BaselineTest, UntrainedModelsThrow) {
  const auto& ctx = data_->samples().front().ctx;
  McPatCalib a;
  EXPECT_THROW((void)a.predict_total(ctx), util::NotFitted);
  McPatCalibComponent b;
  EXPECT_THROW((void)b.predict_total(ctx), util::InvalidArgument);
  AutoPowerMinus c;
  EXPECT_THROW((void)c.predict_total(ctx), util::InvalidArgument);
}

}  // namespace
}  // namespace autopower::baselines
