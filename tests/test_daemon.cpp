// Tests for the serving daemon (src/serve/daemon, src/serve/net): every
// test drives a REAL loopback TCP socket against a live Daemon instance
// — no mocked transport — so the admission queue, the per-connection
// reorder buffer, the deadline gate, and the drain path are exercised
// exactly as a production client would hit them.
//
// Built as its own binary so tools/check.sh can run DaemonTest.* under
// the ThreadSanitizer preset: concurrent client connections sharing one
// BatchEngine (and thus one EvalCache) are the interesting interleaving.
//
// Subprocess tests at the bottom cover the CLI flag-validation contract
// (`--port 0` and friends must exit 1 before the model is even loaded);
// they need AUTOPOWER_CLI_PATH baked in at compile time.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/params.hpp"
#include "core/autopower.hpp"
#include "power/golden.hpp"
#include "serve/daemon.hpp"
#include "serve/engine.hpp"
#include "serve/jsonl.hpp"
#include "serve/net.hpp"
#include "sim/perfsim.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "workload/workload.hpp"

#ifndef AUTOPOWER_CLI_PATH
#define AUTOPOWER_CLI_PATH "autopower"
#endif

namespace autopower::serve {
namespace {

namespace fault = util::fault;

// --- Shared tiny model (cheap to train, identical across tests) -------------

core::AutoPowerOptions tiny_options() {
  core::AutoPowerOptions opt;
  opt.clock.gbt.num_rounds = 3;
  opt.clock.gbt.tree.max_depth = 2;
  opt.sram.gbt.num_rounds = 3;
  opt.sram.gbt.tree.max_depth = 2;
  opt.logic.gbt.num_rounds = 3;
  opt.logic.gbt.tree.max_depth = 2;
  return opt;
}

std::shared_ptr<const core::AutoPowerModel> train_tiny(
    core::AutoPowerOptions opt) {
  sim::SimOptions sopt;
  sopt.sample_accesses = 400;
  sopt.sample_branches = 400;
  sim::PerfSimulator sim(sopt);
  const power::GoldenPowerModel golden;
  std::vector<core::EvalContext> ctxs;
  for (const char* cfg_name : {"C1", "C15"}) {
    const auto& cfg = arch::boom_config(cfg_name);
    for (const char* wl_name : {"dhrystone", "qsort"}) {
      const auto& wl = workload::workload_by_name(wl_name);
      core::EvalContext ctx;
      ctx.cfg = &cfg;
      ctx.workload = wl.name;
      ctx.program = workload::program_features(wl);
      ctx.events = sim.simulate(cfg, wl);
      ctxs.push_back(std::move(ctx));
    }
  }
  auto m = std::make_shared<core::AutoPowerModel>(opt);
  m->train(ctxs, golden, 1);
  return m;
}

std::shared_ptr<const core::AutoPowerModel> tiny_model() {
  static const auto* model = new std::shared_ptr<const core::AutoPowerModel>(
      train_tiny(tiny_options()));
  return *model;
}

/// Same training data, different hyper-parameters: a distinct archive
/// fingerprint AND distinct predictions, so a response served by the
/// wrong model can never accidentally equal the right one.
std::shared_ptr<const core::AutoPowerModel> variant_model() {
  static const auto* model = new std::shared_ptr<const core::AutoPowerModel>(
      [] {
        auto opt = tiny_options();
        opt.clock.gbt.num_rounds = 5;
        opt.sram.gbt.num_rounds = 5;
        opt.logic.gbt.num_rounds = 5;
        return train_tiny(opt);
      }());
  return *model;
}

/// Writes a model's archive to a per-process temp path (overwriting any
/// previous contents) and returns the path.
std::string write_archive(const core::AutoPowerModel& model,
                          const std::string& filename) {
  const std::string path = ::testing::TempDir() + "autopower_daemon_" +
                           std::to_string(::getpid()) + "_" + filename;
  model.save_to_file(path);
  return path;
}

// --- Daemon + client plumbing ------------------------------------------------

/// Runs a Daemon's accept loop on a background thread; the destructor
/// (or stop()) requests a graceful drain and joins.
struct DaemonRunner {
  explicit DaemonRunner(DaemonOptions options = {})
      : daemon(tiny_model(), options),
        server([this] { daemon.serve(); }) {}
  DaemonRunner(const std::vector<ModelSpec>& specs,
               DaemonOptions options = {})
      : daemon(specs, options), server([this] { daemon.serve(); }) {}
  ~DaemonRunner() { stop(); }

  void stop() {
    if (server.joinable()) {
      daemon.notify_stop();
      server.join();
    }
  }

  Daemon daemon;
  std::thread server;
};

/// send(2) loop that does NOT route through net::write_line — fault
/// tests arm serve.net.write and must only trip the daemon's writes.
void raw_send(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "client send failed";
    sent += static_cast<std::size_t>(n);
  }
}

/// recv(2) loop until EOF that does NOT route through net::LineReader —
/// fault tests arm serve.net.read and must only trip the daemon's reads.
std::string raw_recv_all(int fd) {
  std::string data;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return data;
    data.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Reads response lines until EOF.
std::vector<std::string> read_all_lines(int fd) {
  std::vector<std::string> lines;
  net::LineReader reader(fd);
  std::string line;
  while (reader.next_line(line)) lines.push_back(line);
  return lines;
}

/// One-shot client: sends every line, half-closes the write side, and
/// collects the full response stream.
std::vector<std::string> roundtrip(std::uint16_t port,
                                   const std::vector<std::string>& lines) {
  net::Socket sock = net::connect_loopback(port);
  std::string blob;
  for (const auto& l : lines) {
    blob += l;
    blob += '\n';
  }
  raw_send(sock.fd(), blob);
  ::shutdown(sock.fd(), SHUT_WR);
  return read_all_lines(sock.fd());
}

std::string request_line(const BatchRequest& request) {
  return std::string("{\"config\": \"") + request.config +
         "\", \"workload\": \"" + request.workload + "\", \"mode\": \"" +
         std::string(to_string(request.mode)) + "\"}";
}

/// Request line routed to a named model slot.
std::string request_line(const BatchRequest& request,
                         const std::string& model) {
  return std::string("{\"model\": \"") + model + "\", \"config\": \"" +
         request.config + "\", \"workload\": \"" + request.workload +
         "\", \"mode\": \"" + std::string(to_string(request.mode)) + "\"}";
}

/// Rewrites an oracle line's leading {"index": N, ...} to the request's
/// position on its daemon connection (control lines and interleaving
/// shift compute indices relative to the offline batch).
std::string with_index(const std::string& line, std::size_t index) {
  const auto comma = line.find(',');
  return "{\"index\": " + std::to_string(index) + line.substr(comma);
}

std::vector<BatchRequest> sample_requests(std::size_t n) {
  std::vector<BatchRequest> reqs;
  const char* configs[] = {"C2", "C5", "C9", "C13"};
  const char* workloads[] = {"dhrystone", "qsort", "median", "towers"};
  for (std::size_t i = 0; i < n; ++i) {
    reqs.push_back({configs[i % 4], workloads[(i / 4 + i) % 4],
                    i % 3 == 0 ? PredictMode::kPerComponent
                               : PredictMode::kTotal});
  }
  return reqs;
}

/// What `autopower batch` would print for this request stream under the
/// given model: the bit-identity oracle for every daemon response test.
/// (Archive doubles round-trip exactly via hex-float, so a daemon that
/// loaded the model from disk matches an in-memory oracle bit for bit.)
std::vector<std::string> batch_oracle(
    std::shared_ptr<const core::AutoPowerModel> model,
    const std::vector<BatchRequest>& reqs) {
  BatchEngine engine(std::move(model), {});
  const auto responses = engine.run(reqs);
  std::vector<std::string> lines;
  for (const auto& r : responses) lines.push_back(response_to_jsonl(r));
  return lines;
}

std::vector<std::string> batch_oracle(const std::vector<BatchRequest>& reqs) {
  return batch_oracle(tiny_model(), reqs);
}

bool response_ok(const std::string& line) {
  const auto doc = JsonValue::parse(line);
  const auto* ok = doc.find("ok");
  return ok != nullptr && ok->as_bool();
}

std::string response_error(const std::string& line) {
  const auto doc = JsonValue::parse(line);
  const auto* err = doc.find("error");
  return err == nullptr ? "" : err->as_string();
}

class DaemonTest : public ::testing::Test {};

// --- Core protocol: bit-identity with `batch` --------------------------------

TEST_F(DaemonTest, SingleClientBitIdenticalToBatch) {
  DaemonRunner runner;
  const auto requests = sample_requests(24);
  std::vector<std::string> lines;
  for (const auto& r : requests) lines.push_back(request_line(r));
  // Blank and whitespace-only lines must be skipped without consuming an
  // index, exactly like serve::read_requests does for `batch`.
  lines.insert(lines.begin() + 3, "");
  lines.insert(lines.begin() + 9, "   \t");

  const auto got = roundtrip(runner.daemon.port(), lines);
  EXPECT_EQ(got, batch_oracle(requests));
}

TEST_F(DaemonTest, ConcurrentClientsEachBitIdenticalToBatch) {
  DaemonOptions options;
  options.engine.threads = 4;
  DaemonRunner runner(options);

  constexpr int kClients = 8;
  std::vector<std::vector<BatchRequest>> streams;
  for (int c = 0; c < kClients; ++c) {
    // Shifted streams: heavy overlap (shared EvalCache under TSan) but
    // different per-connection orders.
    auto reqs = sample_requests(16);
    std::rotate(reqs.begin(), reqs.begin() + c % reqs.size(), reqs.end());
    streams.push_back(std::move(reqs));
  }

  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::string> lines;
      for (const auto& r : streams[c]) lines.push_back(request_line(r));
      got[c] = roundtrip(runner.daemon.port(), lines);
    });
  }
  for (auto& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], batch_oracle(streams[c])) << "client " << c;
  }
  EXPECT_EQ(runner.daemon.stats().accepted, static_cast<std::uint64_t>(kClients));
}

// --- Admission control -------------------------------------------------------

TEST_F(DaemonTest, TinyQueueShedsWithStructuredError) {
  DaemonOptions options;
  options.queue_depth = 1;
  options.max_batch = 1;
  options.engine.threads = 1;
  DaemonRunner runner(options);

  // Flood: the client dumps 300 requests in one burst, orders of
  // magnitude faster than the engine can simulate them, so the depth-1
  // queue must overflow.  Every line still gets exactly one response —
  // shed requests answer {"error": "overloaded"}, never a dropped
  // connection.
  const auto requests = sample_requests(300);
  std::vector<std::string> lines;
  for (const auto& r : requests) lines.push_back(request_line(r));
  const auto got = roundtrip(runner.daemon.port(), lines);

  ASSERT_EQ(got.size(), lines.size());
  const auto oracle = batch_oracle(requests);
  std::uint64_t shed = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (response_ok(got[i])) {
      EXPECT_EQ(got[i], oracle[i]) << "line " << i;
    } else {
      EXPECT_EQ(response_error(got[i]), "overloaded") << "line " << i;
      ++shed;
    }
  }
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(runner.daemon.stats().shed, shed);
  EXPECT_EQ(runner.daemon.stats().requests, lines.size());
}

TEST_F(DaemonTest, AdmitFaultSheds) {
  DaemonRunner runner;
  const auto requests = sample_requests(4);
  std::vector<std::string> lines;
  for (const auto& r : requests) lines.push_back(request_line(r));

  {
    // Deterministic shed: force the admission decision for the 2nd
    // compute request regardless of actual queue occupancy.
    fault::ScopedFault armed("serve.daemon.admit", fault::Trigger::countdown(2));
    const auto got = roundtrip(runner.daemon.port(), lines);
    ASSERT_EQ(got.size(), 4u);
    EXPECT_TRUE(response_ok(got[0]));
    EXPECT_EQ(response_error(got[1]), "overloaded");
    EXPECT_TRUE(response_ok(got[2]));
    EXPECT_TRUE(response_ok(got[3]));
  }
  EXPECT_EQ(runner.daemon.stats().shed, 1u);

  // Disarmed: the same stream is served in full and bit-identical.
  EXPECT_EQ(roundtrip(runner.daemon.port(), lines), batch_oracle(requests));
}

TEST_F(DaemonTest, ExcessConnectionRefusedWithStructuredError) {
  DaemonOptions options;
  options.max_connections = 1;
  DaemonRunner runner(options);

  // First client occupies the only slot; reading its health response
  // proves the acceptor registered it before the second connect.
  net::Socket first = net::connect_loopback(runner.daemon.port());
  raw_send(first.fd(), "{\"cmd\": \"health\"}\n");
  net::LineReader first_reader(first.fd());
  std::string line;
  ASSERT_TRUE(first_reader.next_line(line));
  EXPECT_TRUE(response_ok(line));

  // Second client: one refusal line, then EOF — never a silent drop.
  net::Socket second = net::connect_loopback(runner.daemon.port());
  const auto refused = read_all_lines(second.fd());
  ASSERT_EQ(refused.size(), 1u);
  EXPECT_EQ(response_error(refused[0]), "too_many_connections");

  // The first connection is still perfectly usable.
  raw_send(first.fd(), request_line(sample_requests(1)[0]) + "\n");
  ASSERT_TRUE(first_reader.next_line(line));
  EXPECT_TRUE(response_ok(line));
}

// --- Deadlines ---------------------------------------------------------------

TEST_F(DaemonTest, DeadlineExpiryIsStructuredAndDeterministic) {
  DaemonRunner runner;
  const auto req = sample_requests(1)[0];
  // deadline_ms 0 expires deterministically (now >= arrival + 0); a
  // generous deadline must not trip.
  const std::vector<std::string> lines = {
      "{\"config\": \"" + req.config + "\", \"workload\": \"" + req.workload +
          "\", \"deadline_ms\": 0}",
      "{\"config\": \"" + req.config + "\", \"workload\": \"" + req.workload +
          "\", \"deadline_ms\": 60000}",
  };
  const auto got = roundtrip(runner.daemon.port(), lines);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(response_error(got[0]), "deadline exceeded");
  EXPECT_TRUE(response_ok(got[1]));
  EXPECT_EQ(runner.daemon.stats().deadline_expired, 1u);
}

// --- Control requests and error lines ----------------------------------------

TEST_F(DaemonTest, ControlAndComputeInterleaveInRequestOrder) {
  DaemonRunner runner;
  const auto req = sample_requests(1)[0];
  const std::vector<std::string> lines = {
      "{\"cmd\": \"health\"}",
      request_line(req),
      "{\"cmd\": \"metrics\"}",
      request_line(req),
  };
  const auto got = roundtrip(runner.daemon.port(), lines);
  ASSERT_EQ(got.size(), 4u);
  // Responses carry the per-connection request index, in order.
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto doc = JsonValue::parse(got[i]);
    ASSERT_NE(doc.find("index"), nullptr) << got[i];
    EXPECT_EQ(doc.find("index")->as_number(), static_cast<double>(i));
  }
  EXPECT_NE(got[0].find("\"status\": \"serving\""), std::string::npos);
  EXPECT_NE(got[0].find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(got[2].find("daemon.requests"), std::string::npos);
  EXPECT_NE(got[2].find("daemon.request_latency_ns"), std::string::npos);
  EXPECT_TRUE(response_ok(got[1]));
  EXPECT_TRUE(response_ok(got[3]));
}

TEST_F(DaemonTest, MalformedLineKeepsConnectionServing) {
  DaemonRunner runner;
  const auto req = sample_requests(1)[0];
  const std::vector<std::string> lines = {
      "{\"bogus\": 1}",
      "not json at all",
      request_line(req),
  };
  const auto got = roundtrip(runner.daemon.port(), lines);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_FALSE(response_ok(got[0]));
  EXPECT_FALSE(response_ok(got[1]));
  EXPECT_TRUE(response_ok(got[2]));
  // Same payload as `batch` modulo the index: the malformed lines DID
  // consume sequence numbers, so the good request is index 2 here.
  std::string expected = batch_oracle({req})[0];
  const std::string old_prefix = "{\"index\": 0,";
  ASSERT_EQ(expected.rfind(old_prefix, 0), 0u);
  expected.replace(0, old_prefix.size(), "{\"index\": 2,");
  EXPECT_EQ(got[2], expected);
}

TEST_F(DaemonTest, ParserRejectsBadDeadlinesAndCommands) {
  EXPECT_THROW(daemon_request_from_jsonl(
                   "{\"config\": \"C2\", \"workload\": \"qsort\", "
                   "\"deadline_ms\": -5}"),
               util::Error);
  EXPECT_THROW(daemon_request_from_jsonl(
                   "{\"config\": \"C2\", \"workload\": \"qsort\", "
                   "\"deadline_ms\": 1.5}"),
               util::Error);
  EXPECT_THROW(daemon_request_from_jsonl("{\"cmd\": \"reboot\"}"),
               util::Error);
  EXPECT_THROW(daemon_request_from_jsonl(
                   "{\"cmd\": \"health\", \"config\": \"C2\"}"),
               util::Error);
  EXPECT_THROW(daemon_request_from_jsonl("{\"workload\": \"qsort\"}"),
               util::Error);

  const auto parsed = daemon_request_from_jsonl(
      "{\"config\": \"C2\", \"workload\": \"qsort\", \"deadline_ms\": 250}");
  EXPECT_EQ(parsed.kind, DaemonRequest::Kind::kCompute);
  EXPECT_TRUE(parsed.has_deadline);
  EXPECT_EQ(parsed.deadline_ms, 250u);

  const auto control = daemon_request_from_jsonl("{\"cmd\": \"metrics\"}");
  EXPECT_EQ(control.kind, DaemonRequest::Kind::kControl);
  EXPECT_EQ(control.cmd, "metrics");
}

// --- Fault injection on the wire ---------------------------------------------

TEST_F(DaemonTest, WriteFaultTearsDownOnlyThatConnection) {
  DaemonRunner runner;
  const auto req = sample_requests(1)[0];

  {
    fault::ScopedFault armed("serve.net.write", fault::Trigger::countdown(1));
    // The daemon's first write dies; this client sees EOF with no
    // response instead of a hang or a daemon crash.  (raw_send keeps the
    // client off the armed site.)
    net::Socket victim = net::connect_loopback(runner.daemon.port());
    raw_send(victim.fd(), request_line(req) + "\n");
    ::shutdown(victim.fd(), SHUT_WR);
    EXPECT_TRUE(raw_recv_all(victim.fd()).empty());
  }
  EXPECT_GE(runner.daemon.stats().net_errors, 1u);

  // Only the victim died: the daemon still serves, bit-identically.
  EXPECT_EQ(roundtrip(runner.daemon.port(), {request_line(req)}),
            batch_oracle({req}));
}

TEST_F(DaemonTest, ReadFaultClosesConnectionDaemonSurvives) {
  DaemonRunner runner;
  const auto req = sample_requests(1)[0];

  {
    fault::ScopedFault armed("serve.net.read", fault::Trigger::countdown(1));
    net::Socket victim = net::connect_loopback(runner.daemon.port());
    // The daemon's first recv on this connection dies before any request
    // is parsed; the connection closes cleanly (EOF to us).  raw_recv_all
    // keeps this client off the armed site.
    EXPECT_TRUE(raw_recv_all(victim.fd()).empty());
  }
  EXPECT_GE(runner.daemon.stats().net_errors, 1u);
  EXPECT_EQ(roundtrip(runner.daemon.port(), {request_line(req)}),
            batch_oracle({req}));
}

// --- Graceful drain ----------------------------------------------------------

TEST_F(DaemonTest, DrainDeliversInFlightResponsesThenCloses) {
  DaemonOptions options;
  options.max_batch = 2;
  options.engine.threads = 1;
  DaemonRunner runner(options);

  // Queue up work, then request a drain while it is still in flight.
  // The contract: every admitted request's response arrives, then EOF.
  const auto requests = sample_requests(32);
  std::string blob;
  for (const auto& r : requests) blob += request_line(r) + "\n";
  net::Socket sock = net::connect_loopback(runner.daemon.port());
  raw_send(sock.fd(), blob);

  // Wait until every request is admitted (they parse far faster than
  // they compute), so the drain below has real in-flight work to finish.
  while (runner.daemon.stats().requests < requests.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  runner.stop();  // notify_stop + join: serve() has fully drained here

  const auto got = read_all_lines(sock.fd());
  EXPECT_EQ(got, batch_oracle(requests));
  EXPECT_EQ(runner.daemon.stats().active, 0u);
}

TEST_F(DaemonTest, StopIsIdempotentAndStatsSettle) {
  DaemonRunner runner;
  const auto requests = sample_requests(6);
  std::vector<std::string> lines;
  for (const auto& r : requests) lines.push_back(request_line(r));
  EXPECT_EQ(roundtrip(runner.daemon.port(), lines), batch_oracle(requests));

  runner.daemon.notify_stop();
  runner.daemon.notify_stop();  // repeated signals must be harmless
  runner.stop();

  const auto stats = runner.daemon.stats();
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(stats.shed, 0u);
}

// --- Deadline re-check after queue wait --------------------------------------

TEST_F(DaemonTest, DeadlineIsRecheckedAfterQueueWait) {
  DaemonOptions options;
  options.engine.threads = 1;
  options.max_batch = 1;
  DaemonRunner runner(options);

  // Three uncached trace simulations occupy the single engine thread for
  // far longer than the 50 ms deadline, and max_batch 1 keeps the
  // deadlined request out of their batches.  It is admitted immediately
  // (50 ms have NOT passed at the admission-time check), so the only
  // place it can expire is the dispatcher's re-check after the queue
  // wait — the regression this test pins: a request must never burn an
  // engine worker after its caller already gave up on it.
  const std::vector<std::string> lines = {
      "{\"config\": \"C2\", \"workload\": \"multiply\", \"mode\": \"trace\"}",
      "{\"config\": \"C5\", \"workload\": \"median\", \"mode\": \"trace\"}",
      "{\"config\": \"C9\", \"workload\": \"multiply\", \"mode\": \"trace\"}",
      "{\"config\": \"C13\", \"workload\": \"qsort\", \"deadline_ms\": 50}",
  };
  const auto got = roundtrip(runner.daemon.port(), lines);
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(response_ok(got[i])) << got[i];
  EXPECT_EQ(response_error(got[3]), "deadline exceeded");
  EXPECT_EQ(runner.daemon.stats().deadline_expired, 1u);
}

// --- Two-phase drain: health keeps answering ---------------------------------

TEST_F(DaemonTest, HealthDuringDrainReportsDraining) {
  DaemonOptions options;
  options.engine.threads = 1;
  options.max_batch = 1;
  DaemonRunner runner(options);

  // Park slow traces in the queue, then start the drain while they are
  // still in flight.  Phase 1 keeps reading from live connections: a
  // health probe must still be answered — reporting "draining", the
  // signal a load balancer keys off — while a NEW compute line is
  // refused with a structured error instead of being admitted.
  const std::vector<std::string> lines = {
      "{\"config\": \"C2\", \"workload\": \"multiply\", \"mode\": \"trace\"}",
      "{\"config\": \"C5\", \"workload\": \"median\", \"mode\": \"trace\"}",
      "{\"config\": \"C9\", \"workload\": \"multiply\", \"mode\": \"trace\"}",
  };
  net::Socket sock = net::connect_loopback(runner.daemon.port());
  std::string blob;
  for (const auto& l : lines) blob += l + "\n";
  raw_send(sock.fd(), blob);
  while (runner.daemon.stats().requests < lines.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  runner.daemon.notify_stop();
  raw_send(sock.fd(), "{\"cmd\": \"health\"}\n");
  raw_send(sock.fd(), request_line(sample_requests(1)[0]) + "\n");
  ::shutdown(sock.fd(), SHUT_WR);
  const auto got = read_all_lines(sock.fd());
  runner.stop();

  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(response_ok(got[i])) << got[i];
  EXPECT_NE(got[3].find("\"status\": \"draining\""), std::string::npos)
      << got[3];
  EXPECT_EQ(response_error(got[4]), "draining");
}

// --- Multi-model routing and hot-swap ----------------------------------------

TEST_F(DaemonTest, UnknownModelAnswersStructuredErrorAndKeepsServing) {
  const std::string path = write_archive(*tiny_model(), "unknown.ap");
  DaemonRunner runner(std::vector<ModelSpec>{{"main", path}});
  const auto req = sample_requests(1)[0];
  const std::vector<std::string> lines = {
      request_line(req, "nope"),   // unknown slot
      request_line(req, "main"),   // explicit route
      request_line(req),           // default route (first spec)
  };
  const auto got = roundtrip(runner.daemon.port(), lines);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(response_error(got[0]), "unknown_model");
  const auto oracle = batch_oracle({req});
  EXPECT_EQ(got[1], with_index(oracle[0], 1));
  EXPECT_EQ(got[2], with_index(oracle[0], 2));
  std::remove(path.c_str());
}

TEST_F(DaemonTest, TwoModelRoutingNeverAliasesSharedCaches) {
  ASSERT_NE(tiny_model()->fingerprint(), variant_model()->fingerprint());
  const std::string path_a = write_archive(*tiny_model(), "route_a.ap");
  const std::string path_b = write_archive(*variant_model(), "route_b.ap");
  DaemonOptions options;
  options.engine.threads = 2;
  DaemonRunner runner({{"a", path_a}, {"b", path_b}}, options);

  // The SAME (config, workload, mode) stream routed to both slots,
  // interleaved on one connection.  Every response must match its own
  // model's offline batch output: under pre-fingerprint memo keying the
  // second slot would replay the first slot's cached numbers.
  const auto requests = sample_requests(8);
  std::vector<std::string> lines;
  for (const auto& r : requests) {
    lines.push_back(request_line(r, "a"));
    lines.push_back(request_line(r, "b"));
  }
  const auto got = roundtrip(runner.daemon.port(), lines);
  ASSERT_EQ(got.size(), 2 * requests.size());
  const auto oracle_a = batch_oracle(tiny_model(), requests);
  const auto oracle_b = batch_oracle(variant_model(), requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(got[2 * i], with_index(oracle_a[i], 2 * i)) << "slot a, " << i;
    EXPECT_EQ(got[2 * i + 1], with_index(oracle_b[i], 2 * i + 1))
        << "slot b, " << i;
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST_F(DaemonTest, ReloadMidStreamHalvesBitIdenticalToEachModel) {
  const std::string live = write_archive(*tiny_model(), "live.ap");
  DaemonRunner runner(std::vector<ModelSpec>{{"m", live}});
  // Overwrite the backing archive while the daemon serves the old
  // snapshot: nothing may change until the reload lands.
  variant_model()->save_to_file(live);

  // [old-model half | reload | new-model half] on ONE connection: the
  // swap linearizes with admission, so the halves must be bit-identical
  // to each model's offline batch — no response computed by a half-
  // swapped zoo, no stale memo entry crossing the boundary.
  const auto requests = sample_requests(8);
  std::vector<std::string> lines;
  for (const auto& r : requests) lines.push_back(request_line(r));
  lines.push_back("{\"cmd\": \"reload\"}");
  for (const auto& r : requests) lines.push_back(request_line(r));

  const auto got = roundtrip(runner.daemon.port(), lines);
  ASSERT_EQ(got.size(), 2 * requests.size() + 1);
  const auto before = batch_oracle(tiny_model(), requests);
  const auto after = batch_oracle(variant_model(), requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(got[i], before[i]) << "pre-reload line " << i;
    EXPECT_EQ(got[requests.size() + 1 + i],
              with_index(after[i], requests.size() + 1 + i))
        << "post-reload line " << i;
  }
  const auto reload = JsonValue::parse(got[requests.size()]);
  ASSERT_NE(reload.find("ok"), nullptr) << got[requests.size()];
  EXPECT_TRUE(reload.find("ok")->as_bool()) << got[requests.size()];
  ASSERT_NE(reload.find("fingerprint"), nullptr);
  EXPECT_EQ(reload.find("fingerprint")->as_string(),
            variant_model()->fingerprint());
  std::remove(live.c_str());
}

TEST_F(DaemonTest, ConcurrentClientDuringReloadSeesOnlyWholeModels) {
  const std::string live = write_archive(*tiny_model(), "churn.ap");
  DaemonOptions options;
  options.engine.threads = 2;
  DaemonRunner runner({{"m", live}}, options);

  // A churner flips the backing archive between the two models and
  // reloads in a tight loop while a probe client streams requests.  The
  // interesting interleavings (swap vs. batch formation vs. memo fills,
  // under TSan in check.sh) are exercised by construction; the observable
  // contract is that EVERY response equals one model's oracle line in
  // full — a batch torn across the swap or an aliased memo entry would
  // produce a line matching neither.
  std::atomic<bool> done{false};
  std::thread churner([&] {
    bool use_variant = true;
    while (!done.load(std::memory_order_relaxed)) {
      (use_variant ? variant_model() : tiny_model())->save_to_file(live);
      use_variant = !use_variant;
      const auto resp =
          roundtrip(runner.daemon.port(), {"{\"cmd\": \"reload\"}"});
      EXPECT_EQ(resp.size(), 1u);  // ok or a clean torn-read error line
    }
  });

  const auto requests = sample_requests(24);
  std::vector<std::string> lines;
  for (const auto& r : requests) lines.push_back(request_line(r));
  const auto oracle_a = batch_oracle(tiny_model(), requests);
  const auto oracle_b = batch_oracle(variant_model(), requests);
  const auto got = roundtrip(runner.daemon.port(), lines);
  done.store(true, std::memory_order_relaxed);
  churner.join();

  ASSERT_EQ(got.size(), requests.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i] == oracle_a[i] || got[i] == oracle_b[i])
        << "line " << i << " matches neither model: " << got[i];
  }
  std::remove(live.c_str());
}

TEST_F(DaemonTest, NotifyReloadSwapsEveryDiskBackedSlot) {
  const std::string path_a = write_archive(*tiny_model(), "hup_a.ap");
  const std::string path_b = write_archive(*tiny_model(), "hup_b.ap");
  DaemonRunner runner({{"a", path_a}, {"b", path_b}});

  const auto req = sample_requests(1)[0];
  const std::vector<std::string> lines = {request_line(req, "a"),
                                          request_line(req, "b")};
  const auto old_oracle = batch_oracle(tiny_model(), {req});
  EXPECT_EQ(roundtrip(runner.daemon.port(), lines),
            (std::vector<std::string>{with_index(old_oracle[0], 0),
                                      with_index(old_oracle[0], 1)}));

  // SIGHUP path: notify_reload() re-reads EVERY disk-backed slot.  The
  // acceptor thread applies it asynchronously, so poll until both slots
  // serve the new snapshot.
  variant_model()->save_to_file(path_a);
  variant_model()->save_to_file(path_b);
  runner.daemon.notify_reload();

  const auto new_oracle = batch_oracle(variant_model(), {req});
  const std::vector<std::string> want = {with_index(new_oracle[0], 0),
                                         with_index(new_oracle[0], 1)};
  std::vector<std::string> got;
  for (int i = 0; i < 5000; ++i) {
    got = roundtrip(runner.daemon.port(), lines);
    if (got == want) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(got, want);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// --- CLI flag validation (subprocess; exits before model load) ---------------

int cli_exit_code(const std::string& args) {
  const std::string cmd =
      std::string("'") + AUTOPOWER_CLI_PATH + "' " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(DaemonCliTest, RejectsBadFlagValuesWithExitOne) {
  // No model file needed: flag validation must run (and fail) first.
  const char* bad[] = {
      "serve --model /nonexistent.ap --port 0",
      "serve --model /nonexistent.ap --port -1",
      "serve --model /nonexistent.ap --port 65536",
      "serve --model /nonexistent.ap --port 80x",
      "serve --model /nonexistent.ap --port 8080 --queue-depth 0",
      "serve --model /nonexistent.ap --port 8080 --max-connections -3",
      "serve --model /nonexistent.ap --port 8080 --max-batch 0",
      "serve --port 8080",  // missing --model
  };
  for (const char* args : bad) {
    EXPECT_EQ(cli_exit_code(args), 1) << args;
  }
}

}  // namespace
}  // namespace autopower::serve
