#include "baselines/autopower_minus.hpp"

#include "core/features.hpp"
#include "util/error.hpp"

namespace autopower::baselines {

namespace {

double group_power(const power::PowerGroups& g, PowerGroup group) {
  switch (group) {
    case PowerGroup::kClock:
      return g.clock;
    case PowerGroup::kSram:
      return g.sram;
    case PowerGroup::kLogic:
      return g.logic();
  }
  return 0.0;
}

}  // namespace

void AutoPowerMinus::train(std::span<const core::EvalContext> samples,
                           const power::GoldenPowerModel& golden) {
  AP_REQUIRE(!samples.empty(), "AutoPower- needs training samples");
  const auto spec = core::FeatureSpec::he();
  for (arch::ComponentKind c : arch::all_components()) {
    const auto names = core::feature_names(c, spec);
    for (int gi = 0; gi < 3; ++gi) {
      const auto group = static_cast<PowerGroup>(gi);
      ml::Dataset data(names);
      for (const auto& s : samples) {
        data.add_sample(
            core::feature_vector(c, spec, *s.cfg, s.events, s.program),
            group_power(golden.evaluate(*s.cfg, s.events).of(c), group));
      }
      auto& model = models_[static_cast<std::size_t>(c)]
                           [static_cast<std::size_t>(gi)];
      model = ml::GBTRegressor(options_.gbt);
      model.fit(data);
    }
  }
  trained_ = true;
}

double AutoPowerMinus::predict_group(arch::ComponentKind c, PowerGroup group,
                                     const core::EvalContext& ctx) const {
  AP_REQUIRE(trained_, "AutoPower- not trained");
  const auto spec = core::FeatureSpec::he();
  return models_[static_cast<std::size_t>(c)]
                [static_cast<std::size_t>(group)]
                    .predict(core::feature_vector(c, spec, *ctx.cfg,
                                                  ctx.events, ctx.program));
}

power::PowerResult AutoPowerMinus::predict(
    const core::EvalContext& ctx) const {
  power::PowerResult out;
  out.components.reserve(arch::kNumComponents);
  for (arch::ComponentKind c : arch::all_components()) {
    power::ComponentPower cp;
    cp.component = c;
    cp.groups.clock = predict_group(c, PowerGroup::kClock, ctx);
    cp.groups.sram = predict_group(c, PowerGroup::kSram, ctx);
    cp.groups.logic_comb = predict_group(c, PowerGroup::kLogic, ctx);
    out.components.push_back(cp);
  }
  return out;
}

double AutoPowerMinus::predict_total(const core::EvalContext& ctx) const {
  return predict(ctx).total();
}

}  // namespace autopower::baselines
