#include "baselines/panda.hpp"

#include <algorithm>

#include "core/features.hpp"
#include "util/error.hpp"

namespace autopower::baselines {

namespace {
using arch::ComponentKind;
using arch::HwParam;
}  // namespace

double PandaBaseline::resource_function(ComponentKind c,
                                        const arch::HardwareConfig& cfg) {
  const double fw = cfg.value_d(HwParam::kFetchWidth);
  const double dw = cfg.value_d(HwParam::kDecodeWidth);
  const double fbe = cfg.value_d(HwParam::kFetchBufferEntry);
  const double rob = cfg.value_d(HwParam::kRobEntry);
  const double ipr = cfg.value_d(HwParam::kIntPhyRegister);
  const double fpr = cfg.value_d(HwParam::kFpPhyRegister);
  const double lq = cfg.value_d(HwParam::kLdqStqEntry);
  const double bc = cfg.value_d(HwParam::kBranchCount);
  const double mfw = cfg.value_d(HwParam::kMemFpIssueWidth);
  const double iw = cfg.value_d(HwParam::kIntIssueWidth);
  const double way = cfg.value_d(HwParam::kCacheWay);
  const double tlb = cfg.value_d(HwParam::kTlbEntry);
  const double mshr = cfg.value_d(HwParam::kMshrEntry);
  const double ifb = cfg.value_d(HwParam::kICacheFetchBytes);

  // Hand-written first-order sizing: the kind of resource function a BOOM
  // architect would write down (rounded coefficients, dominant term only).
  switch (c) {
    case ComponentKind::kBpTage:
    case ComponentKind::kBpBtb:
    case ComponentKind::kBpOthers:
      return fw * (10.0 + bc);
    case ComponentKind::kICacheTagArray:
      return way * 20.0;
    case ComponentKind::kICacheDataArray:
      return way * ifb * 8.0;
    case ComponentKind::kICacheOthers:
      return way * 5.0 + ifb * 8.0;
    case ComponentKind::kRnu:
      return dw * 100.0;
    case ComponentKind::kRob:
      return rob * 4.0 + dw * 20.0;
    case ComponentKind::kRegfile:
      return (ipr + fpr) * dw;
    case ComponentKind::kDCacheTagArray:
      return way * mfw * 20.0;
    case ComponentKind::kDCacheDataArray:
      return way * mfw * 32.0;
    case ComponentKind::kDCacheOthers:
      return way * 6.0 + mfw * 18.0 + tlb;
    case ComponentKind::kFpIsu:
      return dw * 50.0 + mfw * 36.0;
    case ComponentKind::kIntIsu:
      return dw * 55.0 + iw * 45.0;
    case ComponentKind::kMemIsu:
      return dw * 45.0 + mfw * 32.0;
    case ComponentKind::kITlb:
    case ComponentKind::kDTlb:
      return 20.0 + tlb * 2.0;
    case ComponentKind::kFuPool:
      return iw * 130.0 + mfw * 200.0;
    case ComponentKind::kOtherLogic:
      return 200.0 + fw * 25.0 + dw * 70.0 + rob * 0.5;
    case ComponentKind::kDCacheMshr:
      return 15.0 + mshr * 15.0;
    case ComponentKind::kLsu:
      return lq * 10.0 + mfw * 28.0;
    case ComponentKind::kIfu:
      return fw * 16.0 + fbe * 3.5 + dw * 12.0;
  }
  return 1.0;
}

void PandaBaseline::train(std::span<const core::EvalContext> samples,
                          const power::GoldenPowerModel& golden) {
  AP_REQUIRE(!samples.empty(), "PANDA needs training samples");
  const auto spec = core::FeatureSpec::he();
  for (ComponentKind c : arch::all_components()) {
    ml::Dataset data(core::feature_names(c, spec));
    for (const auto& s : samples) {
      const double resource = resource_function(c, *s.cfg);
      const double label =
          golden.evaluate(*s.cfg, s.events).of(c).total() /
          std::max(resource, 1e-9);
      data.add_sample(
          core::feature_vector(c, spec, *s.cfg, s.events, s.program),
          label);
    }
    auto& model = activity_models_[static_cast<std::size_t>(c)];
    model = ml::GBTRegressor(options_.gbt);
    model.fit(data);
  }
  trained_ = true;
}

double PandaBaseline::predict_component(ComponentKind c,
                                        const core::EvalContext& ctx) const {
  AP_REQUIRE(trained_, "PANDA not trained");
  const auto spec = core::FeatureSpec::he();
  const double activity =
      activity_models_[static_cast<std::size_t>(c)].predict(
          core::feature_vector(c, spec, *ctx.cfg, ctx.events, ctx.program));
  return std::max(0.0, resource_function(c, *ctx.cfg) * activity);
}

double PandaBaseline::predict_total(const core::EvalContext& ctx) const {
  double acc = 0.0;
  for (ComponentKind c : arch::all_components()) {
    acc += predict_component(c, ctx);
  }
  return acc;
}

}  // namespace autopower::baselines
