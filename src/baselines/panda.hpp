// PANDA-style baseline (paper reference [4]: "PANDA: architecture-level
// power evaluation by unifying analytical and machine learning solutions").
//
// PANDA multiplies an engineer-written per-component *resource function*
// (capturing how the component's size scales with hardware parameters)
// with an ML model of the activity: P_c = Resource_c(H) * ML_c(H, E).
// The resource functions embody design-specific expertise — exactly the
// dependence AutoPower's automation removes (paper Sec. I: "[4] relies on
// analytical resource functions, which are design-dependent and heavily
// based on architect expertise").
//
// Our stand-in gives PANDA credible hand-written resource functions:
// roughly the right parameter dependencies with rounded coefficients, but
// none of the synthesis noise or secondary terms of the golden netlist.
#pragma once

#include <array>
#include <span>

#include "arch/component.hpp"
#include "core/sample.hpp"
#include "ml/gbt.hpp"
#include "power/golden.hpp"

namespace autopower::baselines {

/// Hyper-parameters for the PANDA baseline.
struct PandaOptions {
  ml::GbtOptions gbt{
      .num_rounds = 120,
      .learning_rate = 0.15,
      .tree = {.max_depth = 3, .lambda = 1.0, .gamma = 0.0,
               .min_child_weight = 1.0},
      .nonnegative_prediction = true};
};

/// PANDA-style per-component resource x activity model.
class PandaBaseline {
 public:
  PandaBaseline() = default;
  explicit PandaBaseline(PandaOptions options) : options_(options) {}

  /// The engineer-written resource function of one component (unitless,
  /// proportional to the component's expected size).
  [[nodiscard]] static double resource_function(
      arch::ComponentKind c, const arch::HardwareConfig& cfg);

  void train(std::span<const core::EvalContext> samples,
             const power::GoldenPowerModel& golden);

  [[nodiscard]] double predict_component(arch::ComponentKind c,
                                         const core::EvalContext& ctx) const;
  [[nodiscard]] double predict_total(const core::EvalContext& ctx) const;

  [[nodiscard]] bool trained() const noexcept { return trained_; }

 private:
  PandaOptions options_;
  std::array<ml::GBTRegressor, arch::kNumComponents> activity_models_;
  bool trained_ = false;
};

}  // namespace autopower::baselines
