// McPAT-Calib baselines (paper Sec. III-B1).
//
// McPAT-Calib [Zhai et al., TCAD'22] calibrates an analytical McPAT
// estimate with an ML regressor (XGBoost, the best model it reports):
// features are the hardware parameters, the event parameters, and the
// McPAT output; the target is the golden total power.
//
// Two variants, matching the paper's comparison:
//   * McPatCalib          — one monolithic model for total core power;
//   * McPatCalibComponent — the paper's extra ablation baseline: one
//     McPAT-Calib model per component (trained on golden per-component
//     power), summed for the core total.
#pragma once

#include <array>
#include <span>

#include "arch/component.hpp"
#include "baselines/mcpat.hpp"
#include "core/sample.hpp"
#include "ml/gbt.hpp"
#include "power/golden.hpp"

namespace autopower::baselines {

/// Hyper-parameters (shared by both variants).
struct McPatCalibOptions {
  ml::GbtOptions gbt{
      .num_rounds = 150,
      .learning_rate = 0.12,
      .tree = {.max_depth = 4, .lambda = 1.0, .gamma = 0.0,
               .min_child_weight = 1.0},
      .nonnegative_prediction = true};
};

/// Monolithic McPAT-Calib: XGBoost over (H, E, McPAT) -> total power.
class McPatCalib {
 public:
  McPatCalib() = default;
  explicit McPatCalib(McPatCalibOptions options) : options_(options) {}

  void train(std::span<const core::EvalContext> samples,
             const power::GoldenPowerModel& golden);

  /// Predicted total core power (mW).
  [[nodiscard]] double predict_total(const core::EvalContext& ctx) const;

  [[nodiscard]] bool trained() const noexcept { return model_.fitted(); }

 private:
  McPatCalibOptions options_;
  McPatAnalytical mcpat_;
  ml::GBTRegressor model_;
};

/// Per-component McPAT-Calib ("McPAT-Calib + Component" in Fig. 6).
class McPatCalibComponent {
 public:
  McPatCalibComponent() = default;
  explicit McPatCalibComponent(McPatCalibOptions options)
      : options_(options) {}

  void train(std::span<const core::EvalContext> samples,
             const power::GoldenPowerModel& golden);

  /// Predicted power of one component (mW).
  [[nodiscard]] double predict_component(arch::ComponentKind c,
                                         const core::EvalContext& ctx) const;

  /// Predicted total core power (sum over components, mW).
  [[nodiscard]] double predict_total(const core::EvalContext& ctx) const;

  [[nodiscard]] bool trained() const noexcept { return trained_; }

 private:
  McPatCalibOptions options_;
  McPatAnalytical mcpat_;
  std::array<ml::GBTRegressor, arch::kNumComponents> models_;
  bool trained_ = false;
};

}  // namespace autopower::baselines
