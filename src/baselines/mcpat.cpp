#include "baselines/mcpat.hpp"

#include <algorithm>
#include <cmath>

namespace autopower::baselines {

namespace {

using arch::ComponentKind;
using arch::EventKind;
using arch::EventVector;
using arch::HardwareConfig;
using arch::HwParam;

/// Area proxy in "kilo gate equivalents" — a uniform linear model over the
/// component's hardware parameters (the kind of first-order sizing a
/// reference-core analytical model applies everywhere).
double area_proxy(ComponentKind c, const HardwareConfig& cfg) {
  double acc = 1.0;
  for (HwParam p : arch::component_hw_params(c)) {
    acc += 0.45 * cfg.value_d(p);
  }
  return acc;
}

/// Activity proxy in [0, 1]: the model assumes power tracks IPC plus the
/// memory traffic, with a fixed 40% idle floor.
double activity_proxy(ComponentKind c, const HardwareConfig& cfg,
                      const EventVector& ev) {
  const double ipc_util = std::clamp(
      ev.rate(EventKind::kInstructions) / cfg.value_d(HwParam::kDecodeWidth),
      0.0, 1.0);
  double extra = 0.0;
  switch (c) {
    case ComponentKind::kDCacheTagArray:
    case ComponentKind::kDCacheDataArray:
    case ComponentKind::kDCacheOthers:
    case ComponentKind::kDCacheMshr:
    case ComponentKind::kLsu:
      extra = std::min(1.0, ev.rate(EventKind::kDcacheAccesses));
      break;
    case ComponentKind::kICacheTagArray:
    case ComponentKind::kICacheDataArray:
    case ComponentKind::kICacheOthers:
    case ComponentKind::kIfu:
      extra = std::min(1.0, ev.rate(EventKind::kICacheAccesses));
      break;
    case ComponentKind::kFpIsu:
    case ComponentKind::kFuPool:
      extra = std::min(1.0, ev.rate(EventKind::kFpuOps) * 2.0);
      break;
    default:
      break;
  }
  return std::clamp(0.4 + 0.45 * ipc_util + 0.15 * extra, 0.0, 1.0);
}

/// Per-component energy coefficient (mW per area-proxy unit at full
/// activity), "calibrated" on the fictional reference core.
double energy_coefficient(ComponentKind c) {
  switch (c) {
    case ComponentKind::kICacheDataArray:
    case ComponentKind::kDCacheDataArray:
      return 3.0;  // arrays assumed expensive
    case ComponentKind::kRegfile:
      return 0.28;
    case ComponentKind::kFuPool:
      return 1.3;
    case ComponentKind::kRob:
      return 0.045;
    case ComponentKind::kOtherLogic:
      return 0.035;
    case ComponentKind::kIfu:
      return 0.16;
    case ComponentKind::kLsu:
      return 0.22;
    default:
      return 0.5;
  }
}

}  // namespace

double McPatAnalytical::component_power(ComponentKind c,
                                        const HardwareConfig& cfg,
                                        const EventVector& events) const {
  // The reference-core model: power = coefficient x area x activity, plus
  // a 12% leakage floor on area.  No clock-gating modeling (classic
  // analytical-model blind spot the paper calls out).
  const double area = area_proxy(c, cfg);
  const double act = activity_proxy(c, cfg, events);
  const double k = energy_coefficient(c);
  return k * area * (0.12 + 0.88 * act);
}

double McPatAnalytical::total_power(const HardwareConfig& cfg,
                                    const EventVector& events) const {
  double acc = 0.0;
  for (ComponentKind c : arch::all_components()) {
    acc += component_power(c, cfg, events);
  }
  return acc;
}

}  // namespace autopower::baselines
