// Analytical architecture-level power model — the McPAT stand-in.
//
// McPAT-style models are hand-built for a reference processor and applied
// to new designs without re-characterisation; the literature (and this
// paper's introduction) documents the resulting large systematic error.
// This stand-in reproduces that situation: a plausible hand-written
// area/activity energy model whose coefficients were "tuned for an older
// reference core" — structurally different from the golden flow, so its
// absolute numbers are biased, but its trends carry information.  It is
// used as a *feature generator* for McPAT-Calib, exactly how the
// McPAT-Calib baseline consumes McPAT.
#pragma once

#include "arch/component.hpp"
#include "arch/events.hpp"
#include "arch/params.hpp"
#include "power/report.hpp"

namespace autopower::baselines {

/// Hand-written analytical power model (not trained, no golden access).
class McPatAnalytical {
 public:
  /// Analytical per-component power estimate (mW).
  [[nodiscard]] double component_power(arch::ComponentKind c,
                                       const arch::HardwareConfig& cfg,
                                       const arch::EventVector& events) const;

  /// Analytical whole-core estimate (mW).
  [[nodiscard]] double total_power(const arch::HardwareConfig& cfg,
                                   const arch::EventVector& events) const;
};

}  // namespace autopower::baselines
