// AutoPower− ablation baseline (paper Sec. III-B3/B4, Figs. 7-8).
//
// Decouples across power groups only: for every (component, power group)
// it trains one direct XGBoost regressor on (H, E) with the golden group
// power as target — no structural sub-models, no scaling-pattern hardware
// model, no macro mapping.  Comparing it against AutoPower isolates the
// value of the *within-group* decoupling.
#pragma once

#include <array>
#include <span>

#include "arch/component.hpp"
#include "core/sample.hpp"
#include "ml/gbt.hpp"
#include "power/golden.hpp"
#include "power/report.hpp"

namespace autopower::baselines {

/// Which power group a direct model predicts.
enum class PowerGroup { kClock, kSram, kLogic };

/// Hyper-parameters for AutoPower−.
struct AutoPowerMinusOptions {
  ml::GbtOptions gbt{
      .num_rounds = 120,
      .learning_rate = 0.15,
      .tree = {.max_depth = 3, .lambda = 1.0, .gamma = 0.0,
               .min_child_weight = 1.0},
      .nonnegative_prediction = true};
};

/// Group-decoupled direct-ML power model.
class AutoPowerMinus {
 public:
  AutoPowerMinus() = default;
  explicit AutoPowerMinus(AutoPowerMinusOptions options)
      : options_(options) {}

  void train(std::span<const core::EvalContext> samples,
             const power::GoldenPowerModel& golden);

  /// Predicted group power of one component (mW).
  [[nodiscard]] double predict_group(arch::ComponentKind c, PowerGroup group,
                                     const core::EvalContext& ctx) const;

  /// Predicted per-component, per-group power.
  [[nodiscard]] power::PowerResult predict(
      const core::EvalContext& ctx) const;

  /// Predicted total core power (mW).
  [[nodiscard]] double predict_total(const core::EvalContext& ctx) const;

  [[nodiscard]] bool trained() const noexcept { return trained_; }

 private:
  AutoPowerMinusOptions options_;
  // [component][group]
  std::array<std::array<ml::GBTRegressor, 3>, arch::kNumComponents> models_;
  bool trained_ = false;
};

}  // namespace autopower::baselines
