#include "baselines/mcpat_calib.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace autopower::baselines {

namespace {

using arch::EventKind;
using core::EvalContext;

/// Monolithic feature schema: all 14 hardware parameters, every event rate,
/// and the McPAT analytical estimate.
std::vector<std::string> monolithic_feature_names() {
  std::vector<std::string> names;
  for (arch::HwParam p : arch::all_hw_params()) {
    names.push_back("H." + std::string(arch::hw_param_name(p)));
  }
  for (std::size_t i = 0; i < arch::kNumEvents; ++i) {
    names.push_back(
        "E." + std::string(arch::event_name(static_cast<EventKind>(i))));
  }
  names.emplace_back("McPAT.Total");
  return names;
}

std::vector<double> monolithic_features(const McPatAnalytical& mcpat,
                                        const EvalContext& ctx) {
  std::vector<double> f = ctx.cfg->as_features();
  for (std::size_t i = 0; i < arch::kNumEvents; ++i) {
    f.push_back(ctx.events.rate(static_cast<EventKind>(i)));
  }
  f.push_back(mcpat.total_power(*ctx.cfg, ctx.events));
  return f;
}

/// Per-component schema: the component's H and E features plus its McPAT
/// estimate.
std::vector<std::string> component_feature_names(arch::ComponentKind c) {
  std::vector<std::string> names;
  for (arch::HwParam p : arch::component_hw_params(c)) {
    names.push_back("H." + std::string(arch::hw_param_name(p)));
  }
  auto e = arch::component_event_feature_names(c);
  names.insert(names.end(), e.begin(), e.end());
  names.emplace_back("McPAT.Component");
  return names;
}

std::vector<double> component_features(const McPatAnalytical& mcpat,
                                       arch::ComponentKind c,
                                       const EvalContext& ctx) {
  std::vector<double> f =
      ctx.cfg->features_for(arch::component_hw_params(c));
  auto e = arch::component_event_features(c, ctx.events);
  f.insert(f.end(), e.begin(), e.end());
  f.push_back(mcpat.component_power(c, *ctx.cfg, ctx.events));
  return f;
}

}  // namespace

void McPatCalib::train(std::span<const EvalContext> samples,
                       const power::GoldenPowerModel& golden) {
  AP_REQUIRE(!samples.empty(), "McPAT-Calib needs training samples");
  model_ = ml::GBTRegressor(options_.gbt);
  ml::Dataset data(monolithic_feature_names());
  // Calibration formulation: the regressor learns the correction ratio
  // golden / McPAT, so the analytical model carries the configuration
  // scaling and the ML model fixes its systematic bias (this is what
  // makes McPAT-Calib usable at all in the few-shot regime).
  for (const auto& s : samples) {
    const double mcpat = mcpat_.total_power(*s.cfg, s.events);
    data.add_sample(monolithic_features(mcpat_, s),
                    golden.evaluate(*s.cfg, s.events).total() /
                        std::max(mcpat, 1e-9));
  }
  model_.fit(data);
}

double McPatCalib::predict_total(const EvalContext& ctx) const {
  if (!model_.fitted()) throw util::NotFitted("McPAT-Calib not trained");
  return model_.predict(monolithic_features(mcpat_, ctx)) *
         mcpat_.total_power(*ctx.cfg, ctx.events);
}

void McPatCalibComponent::train(std::span<const EvalContext> samples,
                                const power::GoldenPowerModel& golden) {
  AP_REQUIRE(!samples.empty(),
             "McPAT-Calib+Component needs training samples");
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    models_[i] = ml::GBTRegressor(options_.gbt);
    ml::Dataset data(component_feature_names(c));
    // Per-component power is regressed directly (the McPAT estimate stays
    // a feature): at component granularity the analytical proxy is too
    // erratic to carry the scaling as a calibration base.
    for (const auto& s : samples) {
      data.add_sample(component_features(mcpat_, c, s),
                      golden.evaluate(*s.cfg, s.events).of(c).total());
    }
    models_[i].fit(data);
  }
  trained_ = true;
}

double McPatCalibComponent::predict_component(arch::ComponentKind c,
                                              const EvalContext& ctx) const {
  AP_REQUIRE(trained_, "McPAT-Calib+Component not trained");
  return models_[static_cast<std::size_t>(c)].predict(
      component_features(mcpat_, c, ctx));
}

double McPatCalibComponent::predict_total(const EvalContext& ctx) const {
  double acc = 0.0;
  for (arch::ComponentKind c : arch::all_components()) {
    acc += predict_component(c, ctx);
  }
  return acc;
}

}  // namespace autopower::baselines
