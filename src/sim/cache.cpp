#include "sim/cache.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace autopower::sim {

namespace {
bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }
int log2i(int v) {
  int s = 0;
  while ((1 << s) < v) ++s;
  return s;
}
}  // namespace

SetAssocCache::SetAssocCache(int sets, int ways, int line_bytes)
    : sets_(sets), ways_(ways), line_bytes_(line_bytes) {
  AP_REQUIRE(is_pow2(sets), "cache sets must be a power of two");
  AP_REQUIRE(is_pow2(line_bytes), "cache line size must be a power of two");
  AP_REQUIRE(ways >= 1, "cache needs at least one way");
  line_shift_ = log2i(line_bytes);
  sets_shift_ = log2i(sets);
  ways_storage_.resize(static_cast<std::size_t>(sets_) * ways_);
}

bool SetAssocCache::access(std::uint64_t address) {
  const std::uint64_t line = address >> line_shift_;
  const auto set = static_cast<std::size_t>(line & (sets_ - 1));
  const std::uint64_t tag = line >> sets_shift_;
  Way* base = &ways_storage_[set * static_cast<std::size_t>(ways_)];
  ++stamp_;

  Way* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = stamp_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  return false;
}

void SetAssocCache::reset() {
  for (auto& way : ways_storage_) way = Way{};
  stamp_ = 0;
}

double measure_miss_rate(SetAssocCache& cache, const StreamProfile& profile,
                         int accesses) {
  AP_REQUIRE(accesses > 0, "need a positive access count");
  cache.reset();
  // BufferedRng draws the identical stream through the SIMD batch-fill
  // kernel; results match the plain Rng bit for bit even though the
  // per-access draw count (1 or 2) is data-dependent.
  util::BufferedRng rng(util::hash_combine(profile.seed, 0xcafef00dULL));

  const auto footprint_bytes = static_cast<std::uint64_t>(
      std::max(1.0, profile.footprint_kb * 1024.0));
  std::uint64_t seq_cursor = 0;
  int misses = 0;
  for (int i = 0; i < accesses; ++i) {
    std::uint64_t addr;
    if (rng.next_unit() < profile.stride_frac) {
      seq_cursor =
          (seq_cursor + static_cast<std::uint64_t>(profile.stride_bytes)) %
          footprint_bytes;
      addr = seq_cursor;
    } else {
      addr = rng.next_below(footprint_bytes);
    }
    if (!cache.access(addr)) ++misses;
  }
  return static_cast<double>(misses) / accesses;
}

}  // namespace autopower::sim
