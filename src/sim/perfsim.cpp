#include "sim/perfsim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "sim/branch.hpp"
#include "sim/cache.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace autopower::sim {

namespace {

using arch::EventKind;
using arch::EventVector;
using arch::HardwareConfig;
using arch::HwParam;
using workload::WorkloadPhase;
using workload::WorkloadProfile;

int next_pow2(int v) {
  int p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t hash_double(std::uint64_t h, double v) {
  return util::hash_combine(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t phase_key(const HardwareConfig& cfg, const WorkloadPhase& ph,
                        const SimOptions& opt) {
  std::uint64_t h = util::hash_str("phase-rates");
  for (HwParam p : arch::all_hw_params()) {
    h = util::hash_combine(h, static_cast<std::uint64_t>(cfg.value(p)));
  }
  h = util::hash_combine(h, util::hash_str(ph.name));
  h = hash_double(h, ph.ilp);
  h = hash_double(h, ph.branch_frac);
  h = hash_double(h, ph.load_frac);
  h = hash_double(h, ph.store_frac);
  h = hash_double(h, ph.fp_frac);
  h = hash_double(h, ph.muldiv_frac);
  h = hash_double(h, ph.branch_entropy);
  h = hash_double(h, ph.dcache_footprint_kb);
  h = hash_double(h, ph.dcache_stride_frac);
  h = hash_double(h, ph.icache_footprint_kb);
  h = hash_double(h, ph.mem_serialisation);
  h = util::hash_combine(h, static_cast<std::uint64_t>(opt.sample_accesses));
  h = util::hash_combine(h, static_cast<std::uint64_t>(opt.sample_branches));
  return h;
}

/// Measured memory-system behaviour of one phase on one configuration.
struct MemoryBehaviour {
  double icache_miss = 0.0;
  double dcache_miss = 0.0;
  double itlb_miss = 0.0;
  double dtlb_miss = 0.0;
  double bp_miss = 0.0;
};

using SubSim = util::StructuralSimCache::SubSim;

// Each structural sub-simulation is memoised in its own StructuralSimCache
// lane, keyed ONLY on what it reads (DESIGN.md "Structural-memo
// decomposition" lists the mapping):
//   icache: CacheWay, ICacheFetchBytes | icache_footprint_kb, phase seed
//   dcache: CacheWay, MemFpIssueWidth  | dcache footprint/stride, seed
//   itlb:   TlbEntry                   | icache_footprint_kb, seed
//   dtlb:   TlbEntry                   | dcache footprint/stride, seed
//   branch: BranchCount                | branch_entropy, icache footprint,
//                                        seed
// plus the sample count from SimOptions.  The phase-name-derived stream
// seed is part of every key because it selects the synthetic reference
// stream; two phases with equal profiles and names would replay the same
// stream and may legitimately share an entry.
MemoryBehaviour measure_memory(util::StructuralL1& cache,
                               const HardwareConfig& cfg,
                               const WorkloadPhase& ph,
                               const SimOptions& opt) {
  MemoryBehaviour mb;
  const int way = cfg.value(HwParam::kCacheWay);
  const int mfw = cfg.value(HwParam::kMemFpIssueWidth);
  const int ifb = cfg.value(HwParam::kICacheFetchBytes);
  const int tlb = cfg.value(HwParam::kTlbEntry);
  const std::uint64_t seed = util::hash_str(ph.name) ^
                             util::hash_str("memsys");

  {  // I-cache: geometry matches the SRAM floorplan (1 KiB * IFB * Way).
    std::uint64_t key = util::hash_combine(seed, way);
    key = util::hash_combine(key, static_cast<std::uint64_t>(ifb));
    key = hash_double(key, ph.icache_footprint_kb);
    key = util::hash_combine(key,
                             static_cast<std::uint64_t>(opt.sample_accesses));
    mb.icache_miss = cache.get_or_compute(SubSim::kICache, key, [&] {
      SetAssocCache icache(/*sets=*/16 * ifb, /*ways=*/way,
                           /*line_bytes=*/64);
      StreamProfile s;
      s.footprint_kb = ph.icache_footprint_kb;
      s.stride_frac = 0.92;  // instruction fetch is mostly sequential
      s.stride_bytes = 8 * ifb;
      s.seed = util::hash_combine(seed, 1);
      return measure_miss_rate(icache, s, opt.sample_accesses);
    });
  }
  {  // D-cache: 2 KiB * Way * MemIssueWidth.
    std::uint64_t key = util::hash_combine(seed, way);
    key = util::hash_combine(key, static_cast<std::uint64_t>(mfw));
    key = hash_double(key, ph.dcache_footprint_kb);
    key = hash_double(key, ph.dcache_stride_frac);
    key = util::hash_combine(key,
                             static_cast<std::uint64_t>(opt.sample_accesses));
    mb.dcache_miss = cache.get_or_compute(SubSim::kDCache, key, [&] {
      SetAssocCache dcache(/*sets=*/32 * mfw, /*ways=*/way,
                           /*line_bytes=*/64);
      StreamProfile s;
      s.footprint_kb = ph.dcache_footprint_kb;
      s.stride_frac = ph.dcache_stride_frac;
      s.stride_bytes = 8;
      s.seed = util::hash_combine(seed, 2);
      return measure_miss_rate(dcache, s, opt.sample_accesses);
    });
  }
  {  // I-TLB (fully associative over 4 KiB pages).
    std::uint64_t key = util::hash_combine(seed, tlb);
    key = hash_double(key, ph.icache_footprint_kb);
    key = util::hash_combine(key,
                             static_cast<std::uint64_t>(opt.sample_accesses));
    mb.itlb_miss = cache.get_or_compute(SubSim::kItlb, key, [&] {
      SetAssocCache itlb(/*sets=*/1, /*ways=*/tlb, /*line_bytes=*/4096);
      StreamProfile s;
      s.footprint_kb = ph.icache_footprint_kb;
      s.stride_frac = 0.95;
      s.stride_bytes = 64;
      s.seed = util::hash_combine(seed, 3);
      return measure_miss_rate(itlb, s, opt.sample_accesses / 4);
    });
  }
  {  // D-TLB.
    std::uint64_t key = util::hash_combine(seed, tlb);
    key = hash_double(key, ph.dcache_footprint_kb);
    key = hash_double(key, ph.dcache_stride_frac);
    key = util::hash_combine(key,
                             static_cast<std::uint64_t>(opt.sample_accesses));
    mb.dtlb_miss = cache.get_or_compute(SubSim::kDtlb, key, [&] {
      SetAssocCache dtlb(/*sets=*/1, /*ways=*/tlb, /*line_bytes=*/4096);
      StreamProfile s;
      s.footprint_kb = ph.dcache_footprint_kb;
      s.stride_frac = ph.dcache_stride_frac;
      s.stride_bytes = 64;
      s.seed = util::hash_combine(seed, 4);
      return measure_miss_rate(dtlb, s, opt.sample_accesses / 4);
    });
  }
  {  // Branch predictor: table scales with BranchCount.
    const int bc = cfg.value(HwParam::kBranchCount);
    std::uint64_t key = util::hash_combine(seed, bc);
    key = hash_double(key, ph.branch_entropy);
    key = hash_double(key, ph.icache_footprint_kb);
    key = util::hash_combine(key,
                             static_cast<std::uint64_t>(opt.sample_branches));
    mb.bp_miss = cache.get_or_compute(SubSim::kBranch, key, [&] {
      BranchPredictorModel bp(next_pow2(64 * bc));
      BranchStreamProfile s;
      s.entropy = ph.branch_entropy;
      s.static_branches =
          16 + static_cast<int>(ph.icache_footprint_kb * 12.0);
      s.seed = util::hash_combine(seed, 5);
      return measure_mispredict_rate(bp, s, opt.sample_branches);
    });
  }
  return mb;
}

PhaseRates compute_phase(util::StructuralL1& cache,
                         const HardwareConfig& cfg, const WorkloadPhase& ph,
                         const SimOptions& opt) {
  const MemoryBehaviour mb = measure_memory(cache, cfg, ph, opt);

  const double fw = cfg.value_d(HwParam::kFetchWidth);
  const double dw = cfg.value_d(HwParam::kDecodeWidth);
  const double rob = cfg.value_d(HwParam::kRobEntry);
  const double lq = cfg.value_d(HwParam::kLdqStqEntry);
  const double mfw = cfg.value_d(HwParam::kMemFpIssueWidth);
  const double iw = cfg.value_d(HwParam::kIntIssueWidth);
  const double mshr = cfg.value_d(HwParam::kMshrEntry);
  const double fbe = cfg.value_d(HwParam::kFetchBufferEntry);

  // --- Interval IPC model -------------------------------------------------
  // Base throughput: limited by decode width and inherent ILP.
  const double ipc0 = std::min(dw, ph.ilp);

  // Average fetch-packet length: sequential run length between taken
  // branches, capped by the fetch width.
  const double taken_frac = 0.45 * ph.branch_frac + 1e-4;
  const double instr_per_packet = std::min(fw, 1.0 / taken_frac);
  const double ic_access_per_instr = 1.0 / instr_per_packet;

  // Per-instruction stall cycles.
  const double flush_penalty = 9.0 + 0.8 * dw;  // refill grows with width
  const double stall_branch = ph.branch_frac * mb.bp_miss * flush_penalty;
  const double stall_icache = ic_access_per_instr * mb.icache_miss * 16.0;
  const double stall_itlb = ic_access_per_instr * mb.itlb_miss * 20.0;
  // MSHRs overlap independent misses; serial (pointer-chasing) code cannot
  // exploit them.
  const double overlap =
      (1.0 - ph.mem_serialisation) * (mshr / (mshr + 3.0));
  const double miss_latency = 38.0;
  const double stall_dcache =
      ph.load_frac * mb.dcache_miss * miss_latency * (1.0 - overlap) +
      ph.store_frac * mb.dcache_miss * miss_latency * 0.15;
  const double stall_dtlb =
      (ph.load_frac + ph.store_frac) * mb.dtlb_miss * 22.0;

  double cpi = 1.0 / ipc0 + stall_branch + stall_icache + stall_itlb +
               stall_dcache + stall_dtlb;
  double ipc = 1.0 / cpi;

  // Structural caps: issue bandwidth per class and queue capacities.
  const double int_demand = 1.0 - ph.load_frac - ph.store_frac - ph.fp_frac;
  if (int_demand > 1e-9) ipc = std::min(ipc, iw / std::max(int_demand, 0.05));
  const double mem_demand = ph.load_frac + ph.store_frac;
  if (mem_demand > 1e-9) ipc = std::min(ipc, mfw / mem_demand);
  if (ph.fp_frac > 1e-9) ipc = std::min(ipc, mfw / ph.fp_frac);

  // ROB-limited: instructions live ~lifetime cycles from dispatch to
  // commit; occupancy cannot exceed the ROB.
  const double lifetime =
      11.0 + ph.load_frac * mb.dcache_miss * miss_latency * 0.8 +
      ph.branch_frac * mb.bp_miss * flush_penalty * 0.4;
  ipc = std::min(ipc, 0.95 * rob / lifetime);

  // LDQ-limited.
  const double load_residence = 7.0 + mb.dcache_miss * miss_latency * 0.9;
  if (ph.load_frac > 1e-9) {
    ipc = std::min(ipc, 0.95 * lq / (ph.load_frac * load_residence));
  }
  ipc = std::max(ipc, 0.05);

  // --- Event rates (per cycle) --------------------------------------------
  PhaseRates out;
  out.ipc = ipc;
  out.bp_mispredict_rate = mb.bp_miss;
  out.icache_miss_rate = mb.icache_miss;
  out.dcache_miss_rate = mb.dcache_miss;
  EventVector& r = out.rates;
  r[EventKind::kCycles] = 1.0;

  // Committed stream.
  r[EventKind::kInstructions] = ipc;
  r[EventKind::kBranches] = ipc * ph.branch_frac;
  r[EventKind::kLoads] = ipc * ph.load_frac;
  r[EventKind::kStores] = ipc * ph.store_frac;
  r[EventKind::kFpInstrs] = ipc * ph.fp_frac;
  r[EventKind::kMulDivInstrs] = ipc * ph.muldiv_frac;
  r[EventKind::kIntAluInstrs] =
      ipc * std::max(0.0, 1.0 - ph.branch_frac - ph.load_frac -
                              ph.store_frac - ph.fp_frac - ph.muldiv_frac);

  // Speculative inflation: wrong-path uops fetched/renamed then squashed.
  const double waste =
      1.0 + ph.branch_frac * mb.bp_miss * (3.0 + 0.5 * dw);
  const double frontend_uops = ipc * waste;

  // Front end.
  r[EventKind::kFetchPackets] = frontend_uops * ic_access_per_instr;
  r[EventKind::kFetchBubbles] =
      std::clamp(1.0 - ipc / dw, 0.0, 1.0);
  r[EventKind::kFetchBufferOcc] =
      std::min(fbe, 2.0 + 0.35 * fbe * (ipc / dw));
  r[EventKind::kBpLookups] = r[EventKind::kFetchPackets];
  r[EventKind::kBpMispredicts] = ipc * ph.branch_frac * mb.bp_miss;
  r[EventKind::kBtbHits] =
      r[EventKind::kBpLookups] * (0.55 + 0.4 * (1.0 - ph.branch_entropy));
  r[EventKind::kICacheAccesses] = r[EventKind::kFetchPackets];
  r[EventKind::kICacheMisses] =
      r[EventKind::kICacheAccesses] * mb.icache_miss;
  r[EventKind::kItlbAccesses] = r[EventKind::kICacheAccesses];
  r[EventKind::kItlbMisses] = r[EventKind::kItlbAccesses] * mb.itlb_miss;

  // Decode / rename / ROB.
  r[EventKind::kDecodedUops] = frontend_uops;
  r[EventKind::kRenameUops] = frontend_uops;
  r[EventKind::kRenameStalls] = std::clamp(1.0 - ipc / dw, 0.0, 1.0) * 0.6;
  r[EventKind::kDispatchedUops] = frontend_uops;
  r[EventKind::kCommittedUops] = ipc;
  r[EventKind::kRobOccupancy] = std::min(0.97 * rob, ipc * lifetime);
  r[EventKind::kPipelineFlushes] =
      r[EventKind::kBpMispredicts] + 1e-5 * ipc;  // plus rare exceptions

  // Issue / execute.
  const double spec = waste;  // executed ops include some wrong-path work
  r[EventKind::kIntIssued] =
      ipc * spec * (r[EventKind::kIntAluInstrs] / std::max(ipc, 1e-9) +
                    ph.branch_frac + ph.muldiv_frac);
  r[EventKind::kMemIssued] = ipc * spec * mem_demand * 1.08;  // replays
  r[EventKind::kFpIssued] = ipc * spec * ph.fp_frac;
  const double iq_wait = 2.5 + 0.5 * lifetime * ph.mem_serialisation;
  r[EventKind::kIntIqOcc] =
      std::min(0.9 * (8.0 + 4.0 * dw), r[EventKind::kIntIssued] * iq_wait);
  r[EventKind::kMemIqOcc] =
      std::min(0.9 * (8.0 + 4.0 * dw), r[EventKind::kMemIssued] * iq_wait);
  r[EventKind::kFpIqOcc] =
      std::min(0.9 * (8.0 + 4.0 * dw), r[EventKind::kFpIssued] * iq_wait);
  r[EventKind::kRegfileReads] =
      1.65 * (r[EventKind::kIntIssued] + r[EventKind::kMemIssued] +
              r[EventKind::kFpIssued]);
  r[EventKind::kRegfileWrites] =
      0.82 * (r[EventKind::kIntIssued] + r[EventKind::kMemIssued] +
              r[EventKind::kFpIssued]);
  r[EventKind::kAluOps] =
      ipc * spec * (r[EventKind::kIntAluInstrs] / std::max(ipc, 1e-9) +
                    ph.branch_frac);
  r[EventKind::kMulOps] = ipc * spec * ph.muldiv_frac * 0.8;
  r[EventKind::kDivOps] = ipc * spec * ph.muldiv_frac * 0.2;
  r[EventKind::kFpuOps] = r[EventKind::kFpIssued];

  // LSU / D-side.
  r[EventKind::kLoadsExecuted] = ipc * spec * ph.load_frac * 1.08;
  r[EventKind::kStoresExecuted] = ipc * ph.store_frac;
  r[EventKind::kStoreForwards] =
      r[EventKind::kLoadsExecuted] * 0.06 *
      std::min(1.0, ph.store_frac * 8.0);
  r[EventKind::kLdqOcc] =
      std::min(0.97 * lq, r[EventKind::kLoadsExecuted] * load_residence);
  r[EventKind::kStqOcc] =
      std::min(0.97 * lq,
               r[EventKind::kStoresExecuted] * (6.0 + 0.3 * load_residence));
  r[EventKind::kDcacheAccesses] =
      r[EventKind::kLoadsExecuted] + r[EventKind::kStoresExecuted];
  r[EventKind::kDcacheMisses] =
      r[EventKind::kDcacheAccesses] * mb.dcache_miss;
  r[EventKind::kDcacheWritebacks] =
      r[EventKind::kDcacheMisses] *
      std::min(0.9, 0.25 + 1.2 * ph.store_frac);
  r[EventKind::kMshrAllocs] = r[EventKind::kDcacheMisses];
  r[EventKind::kMshrFullStalls] = std::max(
      0.0, r[EventKind::kDcacheMisses] * miss_latency - mshr) /
      miss_latency * 0.5;
  r[EventKind::kDtlbAccesses] = r[EventKind::kDcacheAccesses];
  r[EventKind::kDtlbMisses] = r[EventKind::kDtlbAccesses] * mb.dtlb_miss;

  return out;
}

/// Adds `cycles` worth of a phase's rates into an aggregate.  Occupancy
/// integrals scale exactly like counters (rate * cycles).
void accumulate(EventVector& acc, const EventVector& rates, double cycles,
                double activity_scale = 1.0) {
  for (std::size_t i = 0; i < arch::kNumEvents; ++i) {
    const auto kind = static_cast<EventKind>(i);
    const double scale = kind == EventKind::kCycles ? 1.0 : activity_scale;
    acc[kind] += rates[kind] * cycles * scale;
  }
}

}  // namespace

PerfSimulator::PerfSimulator() : PerfSimulator(SimOptions{}) {}

PerfSimulator::PerfSimulator(SimOptions options)
    : PerfSimulator(options, std::make_shared<util::StructuralSimCache>()) {}

namespace {
std::shared_ptr<util::StructuralSimCache> require_structural(
    std::shared_ptr<util::StructuralSimCache> structural) {
  AP_REQUIRE(structural != nullptr,
             "PerfSimulator needs a structural cache (pass none for a "
             "private one)");
  return structural;
}
}  // namespace

PerfSimulator::PerfSimulator(
    SimOptions options, std::shared_ptr<util::StructuralSimCache> structural)
    : options_(options),
      structural_(require_structural(std::move(structural))),
      l1_(structural_) {}

const PhaseRates& PerfSimulator::phase_rates(
    const HardwareConfig& cfg, const WorkloadProfile& profile,
    std::size_t phase_index) const {
  AP_REQUIRE(phase_index < profile.phases.size(),
             "phase index out of range for workload " + profile.name);
  const WorkloadPhase& ph = profile.phases[phase_index];
  const std::uint64_t key = phase_key(cfg, ph, options_);
  auto it = memo_.find(key);
  if (it == memo_.end()) {
    // Bounded memo: flush wholesale before the insert that would exceed
    // the cap.  Entries are pure functions of their key, so a flush only
    // costs recomputation; this keeps streaming sweeps over millions of
    // configurations at O(phase_memo_max) instance memory.
    if (options_.phase_memo_max > 0 &&
        memo_.size() >= static_cast<std::size_t>(options_.phase_memo_max)) {
      memo_.clear();
    }
    it = memo_.emplace(key, compute_phase(l1_, cfg, ph, options_)).first;
  }
  return it->second;
}

arch::EventVector PerfSimulator::simulate(
    const HardwareConfig& cfg, const WorkloadProfile& profile) const {
  AP_REQUIRE(!profile.phases.empty(),
             "workload has no phases: " + profile.name);
  EventVector acc;
  double weight_sum = 0.0;
  for (const auto& ph : profile.phases) weight_sum += ph.weight;

  for (std::size_t i = 0; i < profile.phases.size(); ++i) {
    const WorkloadPhase& ph = profile.phases[i];
    const PhaseRates& pr = phase_rates(cfg, profile, i);
    const double instr = static_cast<double>(profile.instructions) *
                         ph.weight / weight_sum;
    const double cycles = instr / pr.ipc;
    accumulate(acc, pr.rates, cycles);
  }
  return acc;
}

std::vector<arch::EventVector> PerfSimulator::simulate_trace(
    const HardwareConfig& cfg, const WorkloadProfile& profile) const {
  AP_REQUIRE(!profile.phases.empty(),
             "workload has no phases: " + profile.name);

  // Build the phase schedule: single-phase workloads run straight through;
  // multi-phase kernels repeat their phase sequence (blocked outer loop).
  struct Segment {
    std::size_t phase = 0;
    double cycles = 0.0;
  };
  double weight_sum = 0.0;
  for (const auto& ph : profile.phases) weight_sum += ph.weight;
  const int repeats =
      profile.phases.size() > 1 ? std::max(1, options_.phase_repeats) : 1;

  std::vector<Segment> schedule;
  std::vector<double> phase_cycles(profile.phases.size());
  for (std::size_t i = 0; i < profile.phases.size(); ++i) {
    const PhaseRates& pr = phase_rates(cfg, profile, i);
    const double instr = static_cast<double>(profile.instructions) *
                         profile.phases[i].weight / weight_sum;
    phase_cycles[i] = instr / pr.ipc;
  }
  for (int rep = 0; rep < repeats; ++rep) {
    for (std::size_t i = 0; i < profile.phases.size(); ++i) {
      schedule.push_back({i, phase_cycles[i] / repeats});
    }
  }

  const double window = options_.window_cycles;
  std::vector<EventVector> out;
  const std::uint64_t trace_seed =
      util::hash_combine(util::hash_str(profile.name),
                         util::hash_str(cfg.name()));

  std::size_t seg = 0;
  double seg_left = schedule.empty() ? 0.0 : schedule[0].cycles;
  std::size_t window_index = 0;
  while (seg < schedule.size()) {
    EventVector ev;
    double need = window;
    // Deterministic per-window activity modulation: slow wave + jitter,
    // mimicking loop-level burstiness around the phase steady state.
    const double wave =
        0.06 * std::sin(2.0 * 3.141592653589793 *
                        static_cast<double>(window_index) / 29.0);
    const double jitter =
        0.05 * util::hash_sym(util::hash_combine(
                   trace_seed, static_cast<std::uint64_t>(window_index)));
    const double modulation = 1.0 + wave + jitter;
    while (need > 1e-9 && seg < schedule.size()) {
      const double take = std::min(need, seg_left);
      const PhaseRates& pr = phase_rates(cfg, profile, schedule[seg].phase);
      accumulate(ev, pr.rates, take, modulation);
      need -= take;
      seg_left -= take;
      if (seg_left <= 1e-9) {
        ++seg;
        if (seg < schedule.size()) seg_left = schedule[seg].cycles;
      }
    }
    out.push_back(ev);
    ++window_index;
  }
  return out;
}

}  // namespace autopower::sim
