// Set-associative cache / TLB timing model used by the performance
// simulator to derive miss rates from synthetic reference streams.
//
// A genuine LRU cache simulation (not an analytic miss curve): the
// simulator drives it with a deterministic per-phase address stream mixing
// strided and random references over the phase's footprint, so miss rates
// respond to associativity, capacity and stream regularity the way a real
// cache does — including conflict effects at low associativity.
#pragma once

#include <cstdint>
#include <vector>

namespace autopower::sim {

/// LRU set-associative cache over 64-bit byte addresses.
class SetAssocCache {
 public:
  /// line_bytes and sets must be powers of two.
  SetAssocCache(int sets, int ways, int line_bytes);

  /// Accesses one address; returns true on hit.  Allocates on miss.
  bool access(std::uint64_t address);

  void reset();

  [[nodiscard]] int sets() const noexcept { return sets_; }
  [[nodiscard]] int ways() const noexcept { return ways_; }
  [[nodiscard]] int line_bytes() const noexcept { return line_bytes_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return static_cast<std::uint64_t>(sets_) * ways_ * line_bytes_;
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
  };

  int sets_;
  int ways_;
  int line_bytes_;
  int line_shift_;
  int sets_shift_;  // log2(sets_), hoisted out of the access hot loop
  std::uint64_t stamp_ = 0;
  std::vector<Way> ways_storage_;  // sets_ * ways_, row-major by set
};

/// Parameters of a synthetic reference stream.
struct StreamProfile {
  double footprint_kb = 16.0;   ///< working-set size
  double stride_frac = 0.7;     ///< fraction of sequential references
  int stride_bytes = 8;         ///< step of the sequential component
  std::uint64_t seed = 1;       ///< stream identity
};

/// Runs `accesses` synthetic references through the cache and returns the
/// measured miss rate.  Deterministic in (cache geometry, profile).
[[nodiscard]] double measure_miss_rate(SetAssocCache& cache,
                                       const StreamProfile& profile,
                                       int accesses);

}  // namespace autopower::sim
