#include "sim/branch.hpp"

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace autopower::sim {

BranchPredictorModel::BranchPredictorModel(int table_entries, int history_bits)
    : entries_(table_entries), history_bits_(history_bits) {
  AP_REQUIRE(table_entries > 0 && (table_entries & (table_entries - 1)) == 0,
             "predictor table size must be a power of two");
  counters_.assign(static_cast<std::size_t>(entries_), 2);  // weakly taken
}

bool BranchPredictorModel::predict_and_update(std::uint64_t pc, bool taken) {
  const std::uint64_t mask = static_cast<std::uint64_t>(entries_) - 1;
  const std::uint64_t hist_mask = (1ULL << history_bits_) - 1;
  const auto index =
      static_cast<std::size_t>((pc ^ (history_ & hist_mask)) & mask);
  std::uint8_t& ctr = counters_[index];
  const bool prediction = ctr >= 2;

  if (taken && ctr < 3) ++ctr;
  if (!taken && ctr > 0) --ctr;
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & hist_mask;
  return prediction == taken;
}

void BranchPredictorModel::reset() {
  counters_.assign(counters_.size(), 2);
  history_ = 0;
}

double measure_mispredict_rate(BranchPredictorModel& predictor,
                               const BranchStreamProfile& profile,
                               int branches) {
  AP_REQUIRE(branches > 0, "need a positive branch count");
  predictor.reset();
  // Same u64 stream as a plain Rng, block-refilled through the SIMD
  // batch-fill kernel — bit-identical rates, fewer serial mixes.
  util::BufferedRng rng(util::hash_combine(profile.seed, 0xb4a2c3d1ULL));

  // Assign each static branch a behaviour: "easy" branches are strongly
  // biased loop back-edges; "hard" branches are per-execution coin flips
  // with mild bias.  The entropy knob sets the hard fraction.
  const int num_pcs = profile.static_branches;
  std::vector<bool> is_hard(static_cast<std::size_t>(num_pcs));
  std::vector<double> bias(static_cast<std::size_t>(num_pcs));
  for (int b = 0; b < num_pcs; ++b) {
    is_hard[static_cast<std::size_t>(b)] = rng.next_unit() < profile.entropy;
    bias[static_cast<std::size_t>(b)] =
        is_hard[static_cast<std::size_t>(b)]
            ? 0.35 + 0.3 * rng.next_unit()   // hard: near coin flip
            : (rng.next_unit() < 0.5 ? 0.04  // easy: strongly biased
                                     : 0.96);
  }

  int mispredicts = 0;
  for (int i = 0; i < branches; ++i) {
    const auto b = static_cast<std::size_t>(rng.next_below(
        static_cast<std::uint64_t>(num_pcs)));
    const bool taken = rng.next_unit() < bias[b];
    // Branch PCs are spread out so they land in distinct table slots until
    // the table is too small for the static footprint.
    const std::uint64_t pc = 0x4000 + 4 * static_cast<std::uint64_t>(b) * 7;
    if (!predictor.predict_and_update(pc, taken)) ++mispredicts;
  }
  return static_cast<double>(mispredicts) / branches;
}

}  // namespace autopower::sim
