// Branch predictor timing model: a gshare-style predictor simulated over a
// synthetic branch stream.
//
// The table is sized from the configuration's BranchCount parameter (the
// same parameter the BP components' SRAM scales with in the floorplan), so
// larger front ends predict measurably better.  The synthetic stream mixes
// strongly-biased loop branches with data-dependent branches according to
// the phase's branch entropy.
#pragma once

#include <cstdint>
#include <vector>

namespace autopower::sim {

/// Parameters of a synthetic branch stream.
struct BranchStreamProfile {
  double entropy = 0.3;  ///< fraction of data-dependent (hard) branches
  int static_branches = 64;  ///< distinct branch PCs in the hot code
  std::uint64_t seed = 1;
};

/// gshare predictor with 2-bit counters plus a bimodal fallback.
///
/// The default history length is short: with long histories, branches whose
/// outcomes are uncorrelated with the global history dilute their counters
/// across many contexts and never train — 2 bits captures short local
/// patterns (loop alternation) without destroying bias capture.
class BranchPredictorModel {
 public:
  /// table_entries must be a power of two.
  explicit BranchPredictorModel(int table_entries, int history_bits = 2);

  /// Predicts and updates for one (pc, taken) pair; returns true when the
  /// prediction was correct.
  bool predict_and_update(std::uint64_t pc, bool taken);

  void reset();

  [[nodiscard]] int table_entries() const noexcept { return entries_; }

 private:
  int entries_;
  int history_bits_;
  std::uint64_t history_ = 0;
  std::vector<std::uint8_t> counters_;
};

/// Simulates `branches` synthetic branches and returns the mispredict rate.
[[nodiscard]] double measure_mispredict_rate(BranchPredictorModel& predictor,
                                             const BranchStreamProfile& profile,
                                             int branches);

}  // namespace autopower::sim
