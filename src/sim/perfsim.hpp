// Performance simulator (the gem5 stand-in).
//
// A window-based out-of-order timing model: per workload phase it measures
// I/D-cache, TLB and branch-predictor behaviour with genuine structural
// simulations (sim/cache, sim/branch), then composes an interval IPC model
// with width, queue and MSHR constraints, and finally emits the full
// event-parameter vector of arch/events.hpp.
//
// Two entry points:
//   * simulate()        — whole-workload aggregate events (training and
//                         average-power evaluation),
//   * simulate_trace()  — consecutive fixed-length windows (default 50
//                         cycles, paper Sec. III-B5) for time-based power
//                         trace prediction.
//
// The model is deterministic and intentionally *approximate*: the golden
// activity model (src/power) derives its labels from richer functions of
// the same underlying behaviour, reproducing the gem5-vs-RTL gap the paper
// identifies as a root cause of ML power-model error.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "arch/events.hpp"
#include "arch/params.hpp"
#include "workload/workload.hpp"

namespace autopower::sim {

/// Tuning knobs of the performance simulator.
struct SimOptions {
  int window_cycles = 50;     ///< trace window length (paper: 50 cycles)
  int sample_accesses = 6000; ///< cache-stream samples per phase
  int sample_branches = 6000; ///< branch-stream samples per phase
  /// Number of times a multi-phase workload's phase sequence repeats in
  /// the trace schedule (outer loop of blocked GEMM/SPMM kernels).
  int phase_repeats = 24;
};

/// Per-cycle event rates of one steady-state phase on one configuration.
struct PhaseRates {
  double ipc = 0.0;
  arch::EventVector rates;  ///< per-cycle rates; kCycles == 1
  double bp_mispredict_rate = 0.0;  ///< per branch
  double icache_miss_rate = 0.0;    ///< per access
  double dcache_miss_rate = 0.0;    ///< per access
};

/// The out-of-order CPU timing model.
class PerfSimulator {
 public:
  PerfSimulator() = default;
  explicit PerfSimulator(SimOptions options) : options_(options) {}

  /// Aggregate event counters for a whole workload run.
  [[nodiscard]] arch::EventVector simulate(
      const arch::HardwareConfig& cfg,
      const workload::WorkloadProfile& profile) const;

  /// Event counters for consecutive windows of `window_cycles` cycles
  /// covering the whole run (last window may be shorter).
  [[nodiscard]] std::vector<arch::EventVector> simulate_trace(
      const arch::HardwareConfig& cfg,
      const workload::WorkloadProfile& profile) const;

  /// Steady-state rates for one phase (memoised; exposed for tests).
  [[nodiscard]] const PhaseRates& phase_rates(
      const arch::HardwareConfig& cfg,
      const workload::WorkloadProfile& profile,
      std::size_t phase_index) const;

  [[nodiscard]] const SimOptions& options() const noexcept { return options_; }

 private:
  SimOptions options_;
  mutable std::map<std::uint64_t, PhaseRates> memo_;
};

}  // namespace autopower::sim
