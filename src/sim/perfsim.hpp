// Performance simulator (the gem5 stand-in).
//
// A window-based out-of-order timing model: per workload phase it measures
// I/D-cache, TLB and branch-predictor behaviour with genuine structural
// simulations (sim/cache, sim/branch), then composes an interval IPC model
// with width, queue and MSHR constraints, and finally emits the full
// event-parameter vector of arch/events.hpp.
//
// Two entry points:
//   * simulate()        — whole-workload aggregate events (training and
//                         average-power evaluation),
//   * simulate_trace()  — consecutive fixed-length windows (default 50
//                         cycles, paper Sec. III-B5) for time-based power
//                         trace prediction.
//
// The model is deterministic and intentionally *approximate*: the golden
// activity model (src/power) derives its labels from richer functions of
// the same underlying behaviour, reproducing the gem5-vs-RTL gap the paper
// identifies as a root cause of ML power-model error.
//
// Memoisation is two-layered.  The five expensive structural measurements
// per phase (I/D-cache, I/D-TLB, branch predictor) are decoupled into a
// shared util::StructuralSimCache, each keyed ONLY on the hardware
// parameters that sub-simulation reads plus the phase's stream profile —
// so a sweep varying ROB/width/queue parameters reuses every cache and
// branch measurement across configurations.  Each simulator instance
// fronts the shared cache with a private util::StructuralL1 (one array
// probe per hit, no locks), so warm lookups never touch the shared tier.
// The composed per-(config, phase) PhaseRates are additionally memoised
// per simulator instance; that memo is BOUNDED (SimOptions::
// phase_memo_max) and flushed wholesale when full, so a million-config
// streaming sweep does not accumulate an unbounded map — PhaseRates are
// pure functions of their key, so a flush only costs recomputation.
//
// Thread-safety: a PerfSimulator instance is NOT safe to share across
// threads (the instance-level PhaseRates memo and the private L1 are
// unguarded), but any number of instances may safely share one
// StructuralSimCache — that is the supported way to reuse structural work
// across sweep/serve workers.  Results are bit-identical to a fresh,
// unshared simulator in all cases (every memoised value is a pure
// function of its key).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "arch/events.hpp"
#include "arch/params.hpp"
#include "util/structural_cache.hpp"
#include "workload/workload.hpp"

namespace autopower::sim {

/// Tuning knobs of the performance simulator.
struct SimOptions {
  int window_cycles = 50;     ///< trace window length (paper: 50 cycles)
  int sample_accesses = 6000; ///< cache-stream samples per phase
  int sample_branches = 6000; ///< branch-stream samples per phase
  /// Number of times a multi-phase workload's phase sequence repeats in
  /// the trace schedule (outer loop of blocked GEMM/SPMM kernels).
  int phase_repeats = 24;
  /// Bound on the per-instance PhaseRates memo.  When an insert would
  /// exceed it the whole memo is flushed (entries are pure functions of
  /// their key, so this only costs recomputation).  <= 0 means unbounded.
  /// At ~300 bytes per entry the default keeps an instance under ~20 MiB
  /// even on a 10^7-config streaming sweep.
  int phase_memo_max = 65536;
};

/// Per-cycle event rates of one steady-state phase on one configuration.
struct PhaseRates {
  double ipc = 0.0;
  arch::EventVector rates;  ///< per-cycle rates; kCycles == 1
  double bp_mispredict_rate = 0.0;  ///< per branch
  double icache_miss_rate = 0.0;    ///< per access
  double dcache_miss_rate = 0.0;    ///< per access
};

/// The out-of-order CPU timing model.
class PerfSimulator {
 public:
  /// A simulator with a private structural cache (standalone use).
  PerfSimulator();
  explicit PerfSimulator(SimOptions options);
  /// A simulator sharing `structural` with other instances (sweep/serve
  /// workers).  `structural` must not be null.
  PerfSimulator(SimOptions options,
                std::shared_ptr<util::StructuralSimCache> structural);

  /// Aggregate event counters for a whole workload run.
  [[nodiscard]] arch::EventVector simulate(
      const arch::HardwareConfig& cfg,
      const workload::WorkloadProfile& profile) const;

  /// Event counters for consecutive windows of `window_cycles` cycles
  /// covering the whole run (last window may be shorter).
  [[nodiscard]] std::vector<arch::EventVector> simulate_trace(
      const arch::HardwareConfig& cfg,
      const workload::WorkloadProfile& profile) const;

  /// Steady-state rates for one phase (memoised; exposed for tests).
  /// The reference stays valid only until the next phase_rates call — a
  /// later insert may flush the bounded memo (SimOptions::phase_memo_max).
  [[nodiscard]] const PhaseRates& phase_rates(
      const arch::HardwareConfig& cfg,
      const workload::WorkloadProfile& profile,
      std::size_t phase_index) const;

  [[nodiscard]] const SimOptions& options() const noexcept { return options_; }

  /// The structural sub-simulation cache this instance reads and fills.
  /// Pass it to another PerfSimulator's constructor to share measurements.
  [[nodiscard]] const std::shared_ptr<util::StructuralSimCache>&
  structural_cache() const noexcept {
    return structural_;
  }

 private:
  SimOptions options_;
  std::shared_ptr<util::StructuralSimCache> structural_;
  /// Private first-level memo in front of structural_; thread-private
  /// like the instance itself, so its hit path needs no synchronisation.
  mutable util::StructuralL1 l1_;
  mutable std::map<std::uint64_t, PhaseRates> memo_;
};

}  // namespace autopower::sim
