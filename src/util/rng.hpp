// Deterministic, counter-based random utilities.
//
// All stochastic behaviour in the synthetic substrates (synthesis noise,
// trace generation, activity jitter) is keyed on stable 64-bit hashes of the
// (configuration, component, workload, counter) tuple.  There is no global
// RNG state: the same inputs always produce bit-identical outputs, which
// keeps every experiment reproducible and every test stable.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace autopower::util {

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit hashes (order-sensitive).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// FNV-1a hash of a string, for keying noise on component/workload names.
[[nodiscard]] constexpr std::uint64_t hash_str(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

/// Uniform double in [0, 1) derived from a 64-bit hash.
[[nodiscard]] constexpr double hash_unit(std::uint64_t h) noexcept {
  // Use the top 53 bits for a dyadic rational in [0, 1).
  return static_cast<double>(mix64(h) >> 11) * 0x1.0p-53;
}

/// Uniform double in [-1, 1) derived from a 64-bit hash.
[[nodiscard]] constexpr double hash_sym(std::uint64_t h) noexcept {
  return 2.0 * hash_unit(h) - 1.0;
}

/// Deterministic multiplicative noise: returns a factor in
/// [1 - amplitude, 1 + amplitude) keyed on `key`.
[[nodiscard]] constexpr double noise_factor(std::uint64_t key,
                                            double amplitude) noexcept {
  return 1.0 + amplitude * hash_sym(key);
}

/// A small counter-based PRNG (xoshiro-style stream over SplitMix64).
/// Stateless streams: `Rng(seed)` then `next()` walks a deterministic
/// sequence; copies are independent continuations.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept : state_(mix64(seed)) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next_u64() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_);
  }

  /// Uniform double in [0, 1).
  constexpr double next_unit() noexcept { return hash_unit(next_u64()); }

  /// Uniform double in [lo, hi).
  constexpr double next_range(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_unit();
  }

  /// Uniform integer in [0, n).
  constexpr std::uint64_t next_below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : next_u64() % n;
  }

  /// Approximately standard-normal deviate (sum of 4 uniforms, CLT;
  /// adequate for synthetic jitter, cheap and branch-free).
  constexpr double next_gauss() noexcept {
    double s = 0.0;
    for (int i = 0; i < 4; ++i) s += next_unit();
    return (s - 2.0) * 1.7320508075688772;  // variance-normalised
  }

  /// Batch fill: writes the next out.size() raw draws and advances the
  /// stream exactly as that many next_u64() calls would.  The counter-
  /// based stream is embarrassingly parallel, so this dispatches to the
  /// SIMD kernel layer (util/simd.hpp) — bit-identical to the loop.
  void fill_u64(std::span<std::uint64_t> out) noexcept;

  /// Batch fill of next_unit() values; same stream contract as
  /// fill_u64.
  void fill_unit(std::span<double> out) noexcept;

 private:
  std::uint64_t state_;
};

/// Rng with a block-refilled draw buffer.  Every derived operation
/// consumes the identical underlying u64 stream one draw at a time, so
/// a BufferedRng is a drop-in, bit-identical replacement for Rng even
/// in loops whose draw count is data-dependent — the batching only
/// moves the mixing work into the vectorised fill_u64 kernel.
class BufferedRng {
 public:
  explicit BufferedRng(std::uint64_t seed) noexcept : rng_(seed) {}

  std::uint64_t next_u64() noexcept {
    if (pos_ == buf_.size()) {
      rng_.fill_u64(buf_);
      pos_ = 0;
    }
    return buf_[pos_++];
  }

  double next_unit() noexcept { return hash_unit(next_u64()); }

  double next_range(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_unit();
  }

  std::uint64_t next_below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : next_u64() % n;
  }

 private:
  Rng rng_;
  std::array<std::uint64_t, 128> buf_;
  std::size_t pos_ = buf_.size();  // empty until first refill
};

double lognormal_factor(Rng& rng, double sigma);

}  // namespace autopower::util
