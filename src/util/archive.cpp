#include "util/archive.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace autopower::util {

namespace {

std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& token, std::string_view tag) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  AP_REQUIRE(end != nullptr && *end == '\0',
             "archive: bad double for tag " + std::string(tag));
  return v;
}

}  // namespace

std::string content_fingerprint(std::string_view bytes) {
  // FNV-1a 64-bit, same constants as util::hash_str but over an arbitrary
  // byte blob; rendered as fixed-width lowercase hex so fingerprints sort
  // and compare as plain tokens in JSON and memo keys.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void ArchiveWriter::begin(std::string_view tag) {
  AP_REQUIRE(!tag.empty() &&
                 tag.find_first_of(" \t\n") == std::string_view::npos,
             "archive tag must be a single token");
  // Every archived field funnels through here; the fault point stands in
  // for the target stream dying mid-save (full disk, closed pipe).
  AUTOPOWER_FAULT_POINT("util.archive.write");
  out_ << tag;
}

void ArchiveWriter::write(std::string_view tag, double value) {
  begin(tag);
  out_ << ' ' << hex_double(value) << '\n';
}

void ArchiveWriter::write(std::string_view tag, std::int64_t value) {
  begin(tag);
  out_ << ' ' << value << '\n';
}

void ArchiveWriter::write(std::string_view tag, bool value) {
  begin(tag);
  out_ << ' ' << (value ? 1 : 0) << '\n';
}

void ArchiveWriter::write(std::string_view tag, std::string_view token) {
  AP_REQUIRE(!token.empty() &&
                 token.find_first_of(" \t\n") == std::string_view::npos,
             "archive string value must be a single non-empty token");
  begin(tag);
  out_ << ' ' << token << '\n';
}

void ArchiveWriter::write(std::string_view tag,
                          std::span<const double> values) {
  begin(tag);
  out_ << ' ' << values.size();
  for (double v : values) out_ << ' ' << hex_double(v);
  out_ << '\n';
}

void ArchiveWriter::write(std::string_view tag,
                          std::span<const std::int64_t> values) {
  begin(tag);
  out_ << ' ' << values.size();
  for (std::int64_t v : values) out_ << ' ' << v;
  out_ << '\n';
}

void ArchiveReader::expect(std::string_view tag) {
  // Stands in for the source stream dying mid-load (I/O error, torn
  // file); every field read starts with its tag, so this covers all of
  // them.
  AUTOPOWER_FAULT_POINT("util.archive.read");
  std::string seen;
  AP_REQUIRE(static_cast<bool>(in_ >> seen),
             "archive: unexpected end of stream, wanted tag " +
                 std::string(tag));
  AP_REQUIRE(seen == tag, "archive: expected tag '" + std::string(tag) +
                              "', found '" + seen + "'");
}

double ArchiveReader::read_double(std::string_view tag) {
  expect(tag);
  std::string token;
  AP_REQUIRE(static_cast<bool>(in_ >> token), "archive: missing value");
  return parse_double(token, tag);
}

std::int64_t ArchiveReader::read_int(std::string_view tag) {
  expect(tag);
  std::int64_t v = 0;
  AP_REQUIRE(static_cast<bool>(in_ >> v),
             "archive: bad integer for tag " + std::string(tag));
  return v;
}

bool ArchiveReader::read_bool(std::string_view tag) {
  return read_int(tag) != 0;
}

std::string ArchiveReader::read_token(std::string_view tag) {
  expect(tag);
  std::string v;
  AP_REQUIRE(static_cast<bool>(in_ >> v),
             "archive: missing token for tag " + std::string(tag));
  return v;
}

std::vector<double> ArchiveReader::read_doubles(std::string_view tag) {
  expect(tag);
  std::size_t n = 0;
  AP_REQUIRE(static_cast<bool>(in_ >> n),
             "archive: missing vector length for tag " + std::string(tag));
  AP_REQUIRE(n < (1u << 26), "archive: implausible vector length");
  std::vector<double> out(n);
  std::string token;
  for (std::size_t i = 0; i < n; ++i) {
    AP_REQUIRE(static_cast<bool>(in_ >> token),
               "archive: truncated vector for tag " + std::string(tag));
    out[i] = parse_double(token, tag);
  }
  return out;
}

std::vector<std::int64_t> ArchiveReader::read_ints(std::string_view tag) {
  expect(tag);
  std::size_t n = 0;
  AP_REQUIRE(static_cast<bool>(in_ >> n),
             "archive: missing vector length for tag " + std::string(tag));
  AP_REQUIRE(n < (1u << 26), "archive: implausible vector length");
  std::vector<std::int64_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    AP_REQUIRE(static_cast<bool>(in_ >> out[i]),
               "archive: truncated vector for tag " + std::string(tag));
  }
  return out;
}

}  // namespace autopower::util
