// Process-wide metrics: named counters, gauges and fixed-bucket
// histograms for observing the serving, sweep, simulation and training
// layers on a live run.
//
// Design constraints (the serving hot path is the reason this exists):
//   * Recording NEVER takes a lock.  Counters and histograms are sharded
//     over cache-line-padded relaxed atomics indexed by a per-thread slot,
//     so concurrent workers do not bounce a shared line; gauges are a
//     single relaxed atomic<double> (last writer wins).
//   * Instrument lookup (`counter()`, `gauge()`, `histogram()`) takes a
//     registry mutex and is meant for setup time only: call it once,
//     keep the returned reference (instrument addresses are stable for
//     the registry's lifetime), and record through that.
//   * Snapshots (`to_json()`, `value()`, …) use relaxed loads: they are
//     approximate while writers are running and exact once the writers
//     have quiesced — the same contract as the cache stats counters.
//   * A process-wide kill switch (`MetricsRegistry::set_enabled(false)`)
//     turns every record operation into a relaxed load + branch, which is
//     what `bench_metrics_overhead` uses for its uninstrumented baseline.
//     Instrumentation never changes results, only timing: the serving
//     path stays bit-identical with metrics on, off, or toggled mid-run.
//
// Histogram buckets are fixed powers of two: bucket i counts values v
// with bit_width(v) == i, i.e. 0, [1,1], [2,3], [4,7], ... with one
// overflow bucket at the top.  Duration histograms record nanoseconds
// (their names end in `_ns`); size histograms record plain counts.
// `ScopedTimer` records the lifetime of a scope into a histogram.
//
// The canonical instance is `MetricsRegistry::global()` — the CLI's
// `--stats <path>` flag snapshots it via `to_json()`.  Independent
// instances can be created for tests.  The metric-name inventory (which
// site records what) is tabulated in DESIGN.md and README "Observability".
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace autopower::util {

class MetricsRegistry;

namespace metrics_detail {

inline constexpr std::size_t kCounterShards = 8;
inline constexpr std::size_t kHistogramShards = 4;

/// Stable per-thread shard slot (round-robin assigned on first use).
[[nodiscard]] std::size_t thread_slot() noexcept;

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace metrics_detail

/// Monotonic event count, sharded to keep concurrent writers off one
/// cache line.  add() is wait-free (one relaxed fetch_add).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;
  void inc() noexcept { add(1); }
  /// Sum over shards; exact once writers have quiesced.
  [[nodiscard]] std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  std::array<metrics_detail::PaddedU64, metrics_detail::kCounterShards>
      shards_;
};

/// Last-written double value (e.g. a rate computed at the end of a run).
class Gauge {
 public:
  void set(double value) noexcept;
  [[nodiscard]] double value() const noexcept;
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket power-of-two histogram over std::uint64_t values.
class Histogram {
 public:
  /// Bucket i counts values with bit_width == i; the last bucket absorbs
  /// everything >= 2^(kBuckets-2) (the overflow range).
  static constexpr std::size_t kBuckets = 40;

  void observe(std::uint64_t value) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept;
  /// Count in bucket i (see kBuckets for the bucket → range mapping).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept;
  /// Inclusive upper bound of bucket i (2^i - 1); the overflow bucket
  /// reports std::uint64_t max.
  [[nodiscard]] static std::uint64_t bucket_bound(std::size_t i) noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, metrics_detail::kHistogramShards> shards_;
};

/// Named instrument registry.  Thread-safe; see the file comment for the
/// lookup-at-setup / record-through-references usage contract.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use.  References stay valid for the registry's lifetime.  A name
  /// identifies exactly one instrument kind; reusing it for another kind
  /// creates an unrelated instrument (don't).
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// One JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"count":..,"sum":..,"mean":..,"buckets":[..]}},
  /// "histogram_bounds":[...]} with names sorted, numbers round-trip
  /// clean (parseable by serve::JsonValue).
  [[nodiscard]] std::string to_json() const;

  /// Zeroes every registered instrument (names stay registered, so held
  /// references remain valid).
  void reset();

  /// The process-wide registry every built-in instrumentation site
  /// records into.
  [[nodiscard]] static MetricsRegistry& global();

  /// Process-wide recording switch (default on).  When off, every
  /// add/set/observe returns immediately and ScopedTimer skips its clock
  /// reads.
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;

  static std::atomic<bool> enabled_;
};

/// RAII timer: records the scope's duration (nanoseconds) into a
/// histogram on destruction.  Constructing with metrics disabled skips
/// the clock reads entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept
      : hist_(MetricsRegistry::enabled() ? &hist : nullptr),
        start_(hist_ != nullptr ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{}) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    hist_->observe(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace autopower::util
