// Scalar kernel tier + runtime dispatch for util/simd.hpp.
//
// The scalar implementations here are the reference semantics every
// vector tier must reproduce bit for bit — they are deliberately plain
// element loops with no manual unrolling, so reading one tells you the
// exact per-element operation sequence the SSE2/AVX2 twins promise to
// match.  This TU is compiled with the project-default flags only
// (no -mavx2/-msse2): it must run on any x86-64, and vector tiers that
// borrow a scalar kernel for an unaccelerated slot get this baseline
// codegen, not a re-materialised copy under their own ISA flags.

#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>

#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/simd_internal.hpp"

namespace autopower::util::simd {

namespace detail {

namespace {
constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
}  // namespace

void scalar_axpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void scalar_sub_div(const double* x, const double* mean, const double* scale,
                    double* out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) out[j] = (x[j] - mean[j]) / scale[j];
}

void scalar_gather(const double* src, const std::uint32_t* idx, double* out,
                   std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) out[k] = src[idx[k]];
}

void scalar_strided_gather(const double* src, std::size_t stride, double* out,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = src[i * stride];
}

void scalar_affine_rows(const double* rows, std::size_t arity,
                        std::size_t count, const double* coef,
                        double intercept, double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const double* r = rows + i * arity;
    double acc = intercept;
    for (std::size_t j = 0; j < arity; ++j) acc += coef[j] * r[j];
    out[i] = acc;
  }
}

void scalar_forest_leaf_add(const PaddedTreeView& tree, const double* cols,
                            std::size_t col_stride, std::size_t rows,
                            double lr, double* out) {
  const std::int32_t interior = (1 << tree.depth) - 1;
  for (std::size_t i = 0; i < rows; ++i) {
    std::int32_t idx = 0;
    for (std::int32_t level = 0; level < tree.depth; ++level) {
      const double x =
          cols[static_cast<std::size_t>(tree.feature[idx]) * col_stride + i];
      // NaN compares false -> right child, matching the fitted walk.
      idx = 2 * idx + (x < tree.threshold[idx] ? 1 : 2);
    }
    out[i] += lr * tree.weight[idx - interior];
  }
}

void scalar_rng_fill_u64(std::uint64_t base, std::uint64_t* out,
                         std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    base += kGamma;
    out[k] = mix64(base);
  }
}

void scalar_rng_fill_unit(std::uint64_t base, double* out, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    base += kGamma;
    out[k] = hash_unit(mix64(base));
  }
}

}  // namespace detail

namespace {

constexpr KernelTable kScalarTable = {
    Tier::kScalar,
    detail::scalar_axpy,
    detail::scalar_sub_div,
    detail::scalar_gather,
    detail::scalar_strided_gather,
    detail::scalar_affine_rows,
    detail::scalar_forest_leaf_add,
    detail::scalar_rng_fill_u64,
    detail::scalar_rng_fill_unit,
};

void publish_tier_gauge(Tier tier) {
  MetricsRegistry::global()
      .gauge("util.simd.tier")
      .set(static_cast<double>(static_cast<int>(tier)));
}

/// First-use resolution: detected best tier, capped by AUTOPOWER_SIMD.
const KernelTable* resolve_initial_table() {
  Tier tier = detect_best_tier();
  if (const char* env = std::getenv("AUTOPOWER_SIMD")) {
    if (const auto requested = parse_tier(env);
        requested.has_value() && *requested <= tier) {
      tier = *requested;
    }
  }
  const KernelTable* table = kernels_for(tier);
  publish_tier_gauge(table->tier);
  return table;
}

std::atomic<const KernelTable*>& active_table() {
  static std::atomic<const KernelTable*> table{resolve_initial_table()};
  return table;
}

}  // namespace

const KernelTable& kernels() noexcept {
  return *active_table().load(std::memory_order_relaxed);
}

Tier active_tier() noexcept { return kernels().tier; }

Tier detect_best_tier() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && avx2_kernel_table() != nullptr) {
    return Tier::kAvx2;
  }
  if (__builtin_cpu_supports("sse2") && sse2_kernel_table() != nullptr) {
    return Tier::kSse2;
  }
#endif
  return Tier::kScalar;
}

const KernelTable* kernels_for(Tier tier) noexcept {
  switch (tier) {
    case Tier::kAvx2:
      return detect_best_tier() >= Tier::kAvx2 ? avx2_kernel_table() : nullptr;
    case Tier::kSse2:
      return detect_best_tier() >= Tier::kSse2 ? sse2_kernel_table() : nullptr;
    case Tier::kScalar:
      return &kScalarTable;
  }
  return nullptr;
}

Tier set_active_tier(Tier tier) noexcept {
  const KernelTable* table = kernels_for(tier);
  if (table == nullptr) table = kernels_for(detect_best_tier());
  if (table == nullptr) table = &kScalarTable;
  active_table().store(table, std::memory_order_relaxed);
  publish_tier_gauge(table->tier);
  return table->tier;
}

std::string_view tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kSse2: return "sse2";
    case Tier::kAvx2: return "avx2";
  }
  return "scalar";
}

std::optional<Tier> parse_tier(std::string_view text) noexcept {
  if (text == "scalar") return Tier::kScalar;
  if (text == "sse2") return Tier::kSse2;
  if (text == "avx2") return Tier::kAvx2;
  return std::nullopt;
}

}  // namespace autopower::util::simd
