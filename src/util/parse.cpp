#include "util/parse.hpp"

#include <charconv>

#include "util/error.hpp"

namespace autopower::util {

int parse_int(std::string_view text, const std::string& what, int min,
              int max) {
  int value = 0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  // from_chars already rejects leading whitespace and '+'; requiring the
  // full token to be consumed rejects trailing garbage ("4x", "4 ").
  if (ec == std::errc::result_out_of_range) {
    throw InvalidArgument(what + " is out of range for an integer: " +
                          std::string(text));
  }
  if (ec != std::errc{} || ptr != last || text.empty()) {
    throw InvalidArgument(what + " wants an integer, got: " +
                          std::string(text));
  }
  if (value < min || value > max) {
    throw InvalidArgument(what + " must be in [" + std::to_string(min) +
                          ", " + std::to_string(max) + "], got: " +
                          std::string(text));
  }
  return value;
}

}  // namespace autopower::util
