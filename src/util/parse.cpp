#include "util/parse.hpp"

#include <charconv>

#include "util/error.hpp"

namespace autopower::util {

int parse_int(std::string_view text, const std::string& what, int min,
              int max) {
  int value = 0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  // from_chars already rejects leading whitespace and '+'; requiring the
  // full token to be consumed rejects trailing garbage ("4x", "4 ").
  if (ec == std::errc::result_out_of_range) {
    throw InvalidArgument(what + " is out of range for an integer: " +
                          std::string(text));
  }
  if (ec != std::errc{} || ptr != last || text.empty()) {
    throw InvalidArgument(what + " wants an integer, got: " +
                          std::string(text));
  }
  if (value < min || value > max) {
    throw InvalidArgument(what + " must be in [" + std::to_string(min) +
                          ", " + std::to_string(max) + "], got: " +
                          std::string(text));
  }
  return value;
}

std::uint64_t parse_size_bytes(std::string_view text,
                               const std::string& what) {
  std::uint64_t shift = 0;
  std::string_view digits = text;
  if (!digits.empty()) {
    switch (digits.back()) {
      case 'K': case 'k': shift = 10; break;
      case 'M': case 'm': shift = 20; break;
      case 'G': case 'g': shift = 30; break;
      default: break;
    }
    if (shift != 0) digits.remove_suffix(1);
  }
  std::uint64_t value = 0;
  const char* const first = digits.data();
  const char* const last = first + digits.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || digits.empty()) {
    throw InvalidArgument(what +
                          " wants a byte count like 64M or 67108864, got: " +
                          std::string(text));
  }
  // Cap at 2^63-1 so the scaled value survives any signed conversion.
  const std::uint64_t limit =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) >>
      shift;
  if (value == 0 || value > limit) {
    throw InvalidArgument(what + " is out of range: " + std::string(text));
  }
  return value << shift;
}

}  // namespace autopower::util
