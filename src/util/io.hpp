// Output-stream hardening for report writers.
//
// A stream can accept buffered writes long after the underlying target
// has failed (full disk, closed pipe, read-only file): operator<< keeps
// "succeeding" and the process exits 0 with a silently truncated report.
// Every writer of a user-requested output file must flush and re-check
// the stream after its final write; this helper centralises that check.
#pragma once

#include <ostream>
#include <string>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace autopower::util {

/// Flushes `out` and throws util::Error naming `what` if the stream is in
/// a failed state afterwards (disk full, closed pipe, unwritable target —
/// any earlier write failure also latches failbit/badbit and is caught
/// here).
inline void flush_and_check(std::ostream& out, const std::string& what) {
  // Stands in for the final flush hitting a full disk: latches badbit so
  // the real detection path below fires.
  AUTOPOWER_FAULT_STREAM("util.io.flush", out);
  out.flush();
  if (!out.good()) {
    throw Error("write failed for " + what +
                ": output stream is in a failed state after flush "
                "(disk full, closed pipe, or unwritable target?)");
  }
}

}  // namespace autopower::util
