// Strict integer parsing for user-facing flags and specs.
//
// std::stoi silently accepts trailing garbage ("4x" parses as 4) and its
// family is inconsistent about leading whitespace and '+'.  parse_int is
// built on full-consume std::from_chars instead: the whole token must be
// a plain base-10 integer (optional leading '-' only), inside the given
// bounds.  Every integer the CLI or a spec string accepts goes through
// here so the rejection rules are uniform.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace autopower::util {

/// Parses `text` as a base-10 integer in [min, max].  Throws
/// util::InvalidArgument — naming `what` (e.g. "--threads") — when the
/// token is empty, has leading/trailing garbage (including whitespace and
/// a leading '+'), does not fit in an int, or is out of bounds.
[[nodiscard]] int parse_int(std::string_view text, const std::string& what,
                            int min = std::numeric_limits<int>::min(),
                            int max = std::numeric_limits<int>::max());

/// Parses a byte-count flag value such as "67108864", "64K", "128M" or
/// "2G" (suffixes are powers of 1024; lower case accepted).  Same
/// full-consume strictness as parse_int: exactly one optional suffix
/// character, no whitespace, no sign.  Throws util::InvalidArgument —
/// naming `what` (e.g. "--memory-budget") — on empty/garbage input, a
/// value of zero, or overflow past 2^63-1.
[[nodiscard]] std::uint64_t parse_size_bytes(std::string_view text,
                                             const std::string& what);

}  // namespace autopower::util
