// Two-level memo bank for the performance simulator's structural
// sub-simulations (the Graphite private-L1 / shared-sparse-L2 layout).
//
// The simulator's expensive work is five independent structural
// measurements per (configuration, phase): I-cache, D-cache, I-TLB, D-TLB
// and branch-predictor streams of thousands of synthetic references each.
// Every one of them reads only a small subset of the hardware parameters,
// so on a design-space sweep that varies ROB/width/queue parameters the
// measurements are identical across configurations.  Each sub-simulation's
// scalar result (a miss/mispredict rate) lives in its own *lane*, keyed on
// a 64-bit hash of exactly the inputs that sub-simulation reads — the
// decoupling that turns an O(configs) sweep cost into O(1) per distinct
// structural sub-key.
//
// The hierarchy (million-cell sweeps; DESIGN.md "L1/L2 memo hierarchy"):
//   * StructuralL1 — a per-worker PRIVATE direct-mapped cache in front of
//     the shared tier.  Thread-private by construction, so a hit is one
//     array probe: no lock, no atomic, no shared cache line.  On a warm
//     sweep essentially every lookup terminates here.
//   * StructuralSimCache — the shared L2 "directory": lanes of
//     independently-locked shards (shared_lock lookup, unique_lock
//     insert) with FIRST-INSERT-WINS ownership.  Optionally bounded
//     (`max_entries`) with CLOCK (second-chance) eviction per shard, so
//     a sweep's cache footprint respects `sweep --memory-budget`.
//
// Thread-safety semantics of the shared tier (modeled on serve::EvalCache):
//   * Lookups take a shared (reader) lock and inserts a unique (writer)
//     lock, so concurrent sweep workers hitting warm entries never
//     serialise; CLOCK reference bits are relaxed atomics touched under
//     the shared lock.
//   * On a miss the value is computed OUTSIDE any lock.  Two threads may
//     transiently duplicate the same deterministic computation; the first
//     insert wins and both observe one published value.  Because every
//     sub-simulation is a pure function of its key's inputs, the race is
//     benign and results stay bit-identical to an unshared run.  For the
//     same reason an eviction only ever costs recomputation: a bounded
//     cache is bit-identical to an unbounded one (property-tested).
//   * stats() counters are relaxed atomics — approximate while workers
//     are still running, exact once they have quiesced.  A miss is
//     counted only by the WINNING insert, so after quiescing
//     `misses == entries created` (== size() when nothing was evicted or
//     cleared) and `hits + misses == lookups`; a thread that loses the
//     cold-key race counts a hit.  stats() aggregates the L1 counters
//     that StructuralL1 instances flushed back, so the totals cover every
//     lookup regardless of which tier answered it.
//
// The cache stores plain doubles and 64-bit keys only, so it lives in
// src/util/ below the simulator; sim/perfsim.cpp owns the key schema
// (which parameters feed which lane — documented in DESIGN.md).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/fault.hpp"

namespace autopower::util {

class MetricsRegistry;

class StructuralSimCache {
 public:
  /// One lane per structural sub-simulation of the performance simulator.
  enum class SubSim : std::size_t {
    kICache = 0,
    kDCache,
    kItlb,
    kDtlb,
    kBranch,
  };
  static constexpr std::size_t kNumSubSims = 5;

  /// Rough resident cost of one L2 entry (key + value + slot + index
  /// bucket); what `sweep --memory-budget` divides by to size the cache.
  static constexpr std::size_t kApproxEntryBytes = 64;

  /// `shards_per_sub` is clamped to at least 1.  `max_entries` == 0 keeps
  /// the cache unbounded; a positive value bounds the TOTAL entry count
  /// across all lanes and shards, evicting CLOCK-style per shard (each
  /// shard owns an equal slice of the budget, at least one entry).
  explicit StructuralSimCache(std::size_t shards_per_sub = 8,
                              std::size_t max_entries = 0);

  StructuralSimCache(const StructuralSimCache&) = delete;
  StructuralSimCache& operator=(const StructuralSimCache&) = delete;

  /// Returns the memoised value for `key` in lane `sub`, invoking
  /// `compute` (outside all locks) on a miss.  `compute` must be a pure
  /// function of the inputs hashed into `key`.
  template <typename Fn>
  double get_or_compute(SubSim sub, std::uint64_t key, Fn&& compute) {
    Lane& lane = lanes_[static_cast<std::size_t>(sub)];
    Shard& shard = lane.shards[key % lane.shards.size()];
    {
      std::shared_lock lock(shard.mu);
      double value = 0.0;
      if (shard.lookup(key, value)) {
        lane.hits.fetch_add(1, std::memory_order_relaxed);
        return value;
      }
    }
    // Insert-after-successful-compute: a throwing filler (or a failing
    // insert allocation — the shard containers give the strong guarantee)
    // propagates without touching the map, so no lane can hold a partial
    // entry.
    AUTOPOWER_FAULT_POINT("util.structural_cache.fill");
    const double value = compute();
    AUTOPOWER_FAULT_POINT("util.structural_cache.insert");
    std::unique_lock lock(shard.mu);
    // Only the winning insert counts the miss; a lost race adopts the
    // published value (bit-identical anyway — the computation is
    // deterministic in the key's inputs) and counts as a hit, keeping
    // `misses == entries created` exact after the workers quiesce.
    bool evicted = false;
    const bool inserted = shard.insert(key, value, evicted);
    (inserted ? lane.misses : lane.hits)
        .fetch_add(1, std::memory_order_relaxed);
    if (evicted) lane.evictions.fetch_add(1, std::memory_order_relaxed);
    return value;
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// Aggregate counters across all lanes PLUS the flushed private-L1
  /// counters: `hits` counts lookups answered by either tier, `misses`
  /// counts actual computes, so `hits + misses == lookups` end to end.
  [[nodiscard]] Stats stats() const noexcept;
  /// Counters of one L2 lane (the directory tier only — private L1s are
  /// not lane-resolved).
  [[nodiscard]] Stats stats(SubSim sub) const noexcept;
  /// The flushed private-L1 aggregate: hits answered without touching
  /// the shared tier, misses forwarded to it.
  [[nodiscard]] Stats l1_stats() const noexcept;

  /// Adds a private L1's counters into the shared aggregate; called by
  /// StructuralL1::flush_stats (and its destructor).
  void absorb_l1(std::uint64_t hits, std::uint64_t misses) noexcept;

  /// Publishes a per-lane L2 hit/miss snapshot plus the tier aggregates
  /// into `registry` as gauges: "sim.structural.l2.<lane>.hits" /
  /// ".misses", "sim.structural.l2.entries", "sim.structural.l2.evictions",
  /// "sim.structural.l1.hits" and "sim.structural.l1.misses".  Last
  /// writer wins; the serve and sweep layers call this after each run.
  void export_metrics(MetricsRegistry& registry) const;

  /// Number of memoised entries across all lanes and shards.
  [[nodiscard]] std::size_t size() const;

  /// Total entry bound (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const noexcept { return max_entries_; }

  /// Drops every entry and zeroes the counters (including the absorbed
  /// L1 aggregate).
  void clear();

  [[nodiscard]] std::size_t shards_per_sub() const noexcept {
    return lanes_[0].shards.size();
  }

  [[nodiscard]] static std::string_view sub_sim_name(SubSim sub) noexcept;

 private:
  /// One slot of a bounded shard's CLOCK ring.  `ref` is the
  /// second-chance bit: set on every hit (relaxed, under the shared
  /// lock), cleared by the sweeping hand (under the unique lock).
  struct Slot {
    std::uint64_t key = 0;
    double value = 0.0;
    std::atomic<std::uint8_t> ref{0};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    // Unbounded mode: a plain hash map.
    std::unordered_map<std::uint64_t, double> map;
    // Bounded mode (capacity > 0): `index` maps key -> slot, `slots` is
    // the CLOCK ring, `hand` the sweep position.
    std::size_t capacity = 0;
    std::unordered_map<std::uint64_t, std::size_t> index;
    std::unique_ptr<Slot[]> slots;
    std::size_t used = 0;
    std::size_t hand = 0;

    /// Reader-side probe; sets the CLOCK reference bit on a bounded hit.
    bool lookup(std::uint64_t key, double& value) const {
      if (capacity == 0) {
        const auto it = map.find(key);
        if (it == map.end()) return false;
        value = it->second;
        return true;
      }
      const auto it = index.find(key);
      if (it == index.end()) return false;
      Slot& slot = slots[it->second];
      slot.ref.store(1, std::memory_order_relaxed);
      value = slot.value;
      return true;
    }

    /// Writer-side insert (unique lock held).  Returns false when `key`
    /// was already present (lost first-insert race); sets `evicted` when
    /// a CLOCK victim was displaced.  Strong guarantee: a throwing
    /// container operation leaves the shard unchanged.
    bool insert(std::uint64_t key, double value, bool& evicted) {
      if (capacity == 0) {
        return map.emplace(key, value).second;
      }
      if (index.find(key) != index.end()) return false;
      std::size_t slot_i;
      if (used < capacity) {
        slot_i = used;
        index.emplace(key, slot_i);  // may throw; nothing changed yet
        ++used;
      } else {
        // CLOCK sweep: clear reference bits until an unreferenced slot
        // comes up.  Bounded: after one full lap every bit is clear.
        for (;;) {
          Slot& candidate = slots[hand];
          const std::size_t at = hand;
          hand = (hand + 1) % capacity;
          if (candidate.ref.exchange(0, std::memory_order_relaxed) == 0) {
            slot_i = at;
            break;
          }
        }
        index.emplace(key, slot_i);  // may throw; victim still intact
        index.erase(slots[slot_i].key);
        evicted = true;
      }
      Slot& slot = slots[slot_i];
      slot.key = key;
      slot.value = value;
      slot.ref.store(1, std::memory_order_relaxed);
      return true;
    }
  };

  struct Lane {
    std::deque<Shard> shards;  // deque: Shard holds a mutex, must not move
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  std::array<Lane, kNumSubSims> lanes_;
  std::size_t max_entries_ = 0;
  std::atomic<std::uint64_t> l1_hits_{0};
  std::atomic<std::uint64_t> l1_misses_{0};
};

/// A worker-private first-level memo in front of a shared
/// StructuralSimCache.  NOT thread-safe — each worker (each PerfSimulator
/// instance) owns its own.  A hit costs one direct-mapped array probe
/// with no synchronisation whatsoever; a miss forwards to the shared
/// directory tier (which may itself hit) and installs the result locally.
/// The destructor flushes the private hit/miss counters into the backing
/// cache so StructuralSimCache::stats() stays exact after workers retire.
class StructuralL1 {
 public:
  /// `entries_per_lane` is rounded up to a power of two (min 64).
  explicit StructuralL1(std::shared_ptr<StructuralSimCache> l2,
                        std::size_t entries_per_lane = 2048);
  ~StructuralL1();

  StructuralL1(const StructuralL1&) = delete;
  StructuralL1& operator=(const StructuralL1&) = delete;

  template <typename Fn>
  double get_or_compute(StructuralSimCache::SubSim sub, std::uint64_t key,
                        Fn&& compute) {
    Entry& e = entries_[static_cast<std::size_t>(sub) * lane_size_ +
                        (key & mask_)];
    if (e.valid && e.key == key) {
      ++hits_;
      return e.value;
    }
    ++misses_;
    const double value = l2_->get_or_compute(sub, key,
                                             std::forward<Fn>(compute));
    e.key = key;
    e.value = value;
    e.valid = true;
    return value;
  }

  /// Local (unflushed) counters; flush_stats() moves them into the
  /// backing cache's aggregate and zeroes them.
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  void flush_stats() noexcept;

  [[nodiscard]] const std::shared_ptr<StructuralSimCache>& shared()
      const noexcept {
    return l2_;
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    double value = 0.0;
    bool valid = false;
  };

  std::shared_ptr<StructuralSimCache> l2_;
  std::vector<Entry> entries_;
  std::size_t lane_size_ = 0;
  std::uint64_t mask_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace autopower::util
