// Sharded reader-writer memo bank for the performance simulator's
// structural sub-simulations.
//
// The simulator's expensive work is five independent structural
// measurements per (configuration, phase): I-cache, D-cache, I-TLB, D-TLB
// and branch-predictor streams of thousands of synthetic references each.
// Every one of them reads only a small subset of the hardware parameters,
// so on a design-space sweep that varies ROB/width/queue parameters the
// measurements are identical across configurations.  This cache stores
// each sub-simulation's scalar result (a miss/mispredict rate) in its own
// *lane*, keyed on a 64-bit hash of exactly the inputs that sub-simulation
// reads — the decoupling that turns an O(configs) sweep cost into O(1)
// per distinct structural sub-key.
//
// Thread-safety semantics (modeled on serve::EvalCache):
//   * Every lane hashes keys onto independently-locked shards; lookups
//     take a shared (reader) lock and inserts a unique (writer) lock, so
//     concurrent sweep workers hitting warm entries never serialise.
//   * On a miss the value is computed OUTSIDE any lock.  Two threads may
//     transiently duplicate the same deterministic computation; the first
//     insert wins and both observe one published value.  Because every
//     sub-simulation is a pure function of its key's inputs, the race is
//     benign and results stay bit-identical to an unshared run.
//   * stats() counters are relaxed atomics — approximate while workers
//     are still running, exact once they have quiesced.  A miss is
//     counted only by the WINNING insert, so after quiescing
//     `misses == entries created` (== size() if clear() wasn't called)
//     and `hits + misses == lookups`; a thread that loses the cold-key
//     race counts a hit, because it adopts the published value even
//     though it transiently redid the computation.
//
// The cache stores plain doubles and 64-bit keys only, so it lives in
// src/util/ below the simulator; sim/perfsim.cpp owns the key schema
// (which parameters feed which lane — documented in DESIGN.md).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>

#include "util/fault.hpp"

namespace autopower::util {

class MetricsRegistry;

class StructuralSimCache {
 public:
  /// One lane per structural sub-simulation of the performance simulator.
  enum class SubSim : std::size_t {
    kICache = 0,
    kDCache,
    kItlb,
    kDtlb,
    kBranch,
  };
  static constexpr std::size_t kNumSubSims = 5;

  /// `shards_per_sub` is clamped to at least 1.
  explicit StructuralSimCache(std::size_t shards_per_sub = 8);

  StructuralSimCache(const StructuralSimCache&) = delete;
  StructuralSimCache& operator=(const StructuralSimCache&) = delete;

  /// Returns the memoised value for `key` in lane `sub`, invoking
  /// `compute` (outside all locks) on a miss.  `compute` must be a pure
  /// function of the inputs hashed into `key`.
  template <typename Fn>
  double get_or_compute(SubSim sub, std::uint64_t key, Fn&& compute) {
    Lane& lane = lanes_[static_cast<std::size_t>(sub)];
    Shard& shard = lane.shards[key % lane.shards.size()];
    {
      std::shared_lock lock(shard.mu);
      if (const auto it = shard.map.find(key); it != shard.map.end()) {
        lane.hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    // Insert-after-successful-compute: a throwing filler (or a failing
    // insert allocation — emplace gives the strong guarantee) propagates
    // without touching the map, so no lane can hold a partial entry.
    AUTOPOWER_FAULT_POINT("util.structural_cache.fill");
    const double value = compute();
    AUTOPOWER_FAULT_POINT("util.structural_cache.insert");
    std::unique_lock lock(shard.mu);
    const auto [it, inserted] = shard.map.emplace(key, value);
    // Only the winning insert counts the miss; a lost race adopts the
    // published value (bit-identical anyway — the computation is
    // deterministic in the key's inputs) and counts as a hit, keeping
    // `misses == entries created` exact after the workers quiesce.
    (inserted ? lane.misses : lane.hits)
        .fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// Aggregate counters across all lanes.
  [[nodiscard]] Stats stats() const noexcept;
  /// Counters of one lane.
  [[nodiscard]] Stats stats(SubSim sub) const noexcept;

  /// Publishes a per-lane hit/miss snapshot (plus the total entry count)
  /// into `registry` as gauges named "sim.structural.<lane>.hits" /
  /// ".misses" and "sim.structural.entries".  Last writer wins; the
  /// serve and sweep layers call this after each run.
  void export_metrics(MetricsRegistry& registry) const;

  /// Number of memoised entries across all lanes and shards.
  [[nodiscard]] std::size_t size() const;

  /// Drops every entry and zeroes the counters.
  void clear();

  [[nodiscard]] std::size_t shards_per_sub() const noexcept {
    return lanes_[0].shards.size();
  }

  [[nodiscard]] static std::string_view sub_sim_name(SubSim sub) noexcept;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::uint64_t, double> map;
  };
  struct Lane {
    std::deque<Shard> shards;  // deque: Shard holds a mutex, must not move
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
  };

  std::array<Lane, kNumSubSims> lanes_;
};

}  // namespace autopower::util
