// Internal declarations shared between the simd dispatch TU and the
// flag-isolated kernel TUs (simd_sse2.cpp, simd_avx2.cpp).  Not part of
// the public API — include util/simd.hpp instead.
//
// Declarations only, no inline definitions: the kernel TUs are compiled
// with -msse2/-mavx2, and anything inline in a shared header could be
// materialised there with those flags and then picked (comdat) for the
// whole program.  The scalar kernels declared here are *defined* in
// simd.cpp, which uses project-default flags, so a vector tier that
// borrows one for an unaccelerated slot still gets baseline codegen.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/simd.hpp"

namespace autopower::util::simd {

namespace detail {

void scalar_axpy(double a, const double* x, double* y, std::size_t n);
void scalar_sub_div(const double* x, const double* mean, const double* scale,
                    double* out, std::size_t n);
void scalar_gather(const double* src, const std::uint32_t* idx, double* out,
                   std::size_t n);
void scalar_strided_gather(const double* src, std::size_t stride, double* out,
                           std::size_t n);
void scalar_affine_rows(const double* rows, std::size_t arity,
                        std::size_t count, const double* coef,
                        double intercept, double* out);
void scalar_forest_leaf_add(const PaddedTreeView& tree, const double* cols,
                            std::size_t col_stride, std::size_t rows,
                            double lr, double* out);
void scalar_rng_fill_u64(std::uint64_t base, std::uint64_t* out,
                         std::size_t n);
void scalar_rng_fill_unit(std::uint64_t base, double* out, std::size_t n);

}  // namespace detail

/// Tier tables from the flag-isolated TUs; nullptr when the build was
/// configured without the ISA (each TU guards on __SSE2__/__AVX2__).
const KernelTable* sse2_kernel_table() noexcept;
const KernelTable* avx2_kernel_table() noexcept;

}  // namespace autopower::util::simd
