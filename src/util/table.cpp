#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace autopower::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  AP_REQUIRE(!header_.empty(), "table header must not be empty");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  AP_REQUIRE(row.size() == header_.size(),
             "table row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
          << row[c];
    }
    out << " |\n";
  };

  emit_row(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print(std::ostream& os) const { os << to_string(); }

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string fmt_pct(double value, int precision) {
  return fmt(value, precision) + "%";
}

}  // namespace autopower::util
