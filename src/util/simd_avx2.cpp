// AVX2 kernel tier.  This is the ONLY translation unit compiled with
// -mavx2 (tools/check.sh verifies that via compile_commands.json), so
// the includes stay minimal: pulling a heavy header in here could
// materialise its inline functions under -mavx2 and let the linker pick
// those comdat copies for TUs that must run without AVX2.
//
// Bit-identity notes (each kernel's scalar twin is in simd.cpp):
//   * No FMA intrinsics anywhere.  The project compiles ISO C++
//     (-ffp-contract=off), so scalar code is mul-then-add; every vector
//     kernel uses separate _mm256_mul_pd/_mm256_add_pd to match.
//   * Vectorisation is across output elements only; per-element
//     operation order is exactly the scalar sequence.
//   * Gather index arguments are < 2^31, so signed i32/i64 gather
//     indices cannot wrap.
//   * The u64 -> double conversion in rng_fill_unit is exact in every
//     lane (see the comment there), so it equals the scalar
//     static_cast bit for bit.

#if defined(__AVX2__)

// GCC's gather intrinsics initialise their pass-through operand with
// _mm256_undefined_pd(), which -Wmaybe-uninitialized flags even though
// the all-ones default mask makes it unreachable.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "util/simd_internal.hpp"

namespace autopower::util::simd {

namespace {

void avx2_axpy(double a, const double* x, double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d yv = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void avx2_sub_div(const double* x, const double* mean, const double* scale,
                  double* out, std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d num =
        _mm256_sub_pd(_mm256_loadu_pd(x + j), _mm256_loadu_pd(mean + j));
    _mm256_storeu_pd(out + j, _mm256_div_pd(num, _mm256_loadu_pd(scale + j)));
  }
  for (; j < n; ++j) out[j] = (x[j] - mean[j]) / scale[j];
}

void avx2_gather(const double* src, const std::uint32_t* idx, double* out,
                 std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i iv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
    _mm256_storeu_pd(out + k, _mm256_i32gather_pd(src, iv, 8));
  }
  for (; k < n; ++k) out[k] = src[idx[k]];
}

void avx2_strided_gather(const double* src, std::size_t stride, double* out,
                         std::size_t n) {
  const std::int64_t s = static_cast<std::int64_t>(stride);
  __m256i iv = _mm256_set_epi64x(3 * s, 2 * s, s, 0);
  const __m256i step = _mm256_set1_epi64x(4 * s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_i64gather_pd(src, iv, 8));
    iv = _mm256_add_epi64(iv, step);
  }
  for (; i < n; ++i) out[i] = src[i * stride];
}

void avx2_affine_rows(const double* rows, std::size_t arity,
                      std::size_t count, const double* coef, double intercept,
                      double* out) {
  const std::int64_t a = static_cast<std::int64_t>(arity);
  const __m256i step = _mm256_set1_epi64x(4 * a);
  __m256i base = _mm256_set_epi64x(3 * a, 2 * a, a, 0);
  const __m256d icv = _mm256_set1_pd(intercept);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    // Four samples at once; per sample the accumulation is intercept
    // then coef[0], coef[1], ... exactly like the scalar predict loop.
    __m256d acc = icv;
    for (std::size_t j = 0; j < arity; ++j) {
      const __m256d cv = _mm256_set1_pd(coef[j]);
      const __m256d xv = _mm256_i64gather_pd(rows + j, base, 8);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(cv, xv));
    }
    _mm256_storeu_pd(out + i, acc);
    base = _mm256_add_epi64(base, step);
  }
  for (; i < count; ++i) {
    const double* r = rows + i * arity;
    double acc = intercept;
    for (std::size_t j = 0; j < arity; ++j) acc += coef[j] * r[j];
    out[i] = acc;
  }
}

/// Depth <= 5 fast path: a row's at-most-31 condition bits fit a 32-bit
/// lane, so the mask accumulation and the walk run 8 rows per register
/// instead of 4.  The condition compares are still 64-bit (doubles);
/// each pair of compare results is packed to one 8-lane truth register
/// with a single shuffle.  The pack maps rows [0,1,4,5 | 2,3,6,7] into
/// lanes (shuffle_ps works within 128-bit halves); the walk is
/// lane-wise so any consistent lane->row map works, and the weight
/// permute before the store undoes it.
void avx2_forest_leaf_add_w32(const PaddedTreeView& tree, const double* cols,
                              std::size_t col_stride, std::size_t rows,
                              double lr, double* out) {
  const std::int32_t interior = (1 << tree.depth) - 1;
  const __m256d lrv = _mm256_set1_pd(lr);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i two = _mm256_set1_epi32(2);
  const __m256i top = _mm256_set1_epi32(interior - 1);
  const __m256i iv = _mm256_set1_epi32(interior);
  std::size_t i = 0;
  for (; i + 16 <= rows; i += 16) {
    // m = 2m + cond per 32-bit lane (the compare result is all-ones),
    // so node k's truth lands at bit position interior-1-k and no
    // per-node bit constant is needed.
    __m256i m0 = _mm256_setzero_si256();
    __m256i m1 = m0;
    for (std::int32_t k = 0; k < interior; ++k) {
      const double* c =
          cols + static_cast<std::size_t>(tree.feature[k]) * col_stride + i;
      // _CMP_LT_OQ: false for NaN, matching the scalar `x < thr`.
      const __m256d tv = _mm256_set1_pd(tree.threshold[k]);
      const __m256d l0 = _mm256_cmp_pd(_mm256_loadu_pd(c), tv, _CMP_LT_OQ);
      const __m256d l1 = _mm256_cmp_pd(_mm256_loadu_pd(c + 4), tv,
                                       _CMP_LT_OQ);
      const __m256d l2 = _mm256_cmp_pd(_mm256_loadu_pd(c + 8), tv,
                                       _CMP_LT_OQ);
      const __m256d l3 = _mm256_cmp_pd(_mm256_loadu_pd(c + 12), tv,
                                       _CMP_LT_OQ);
      const __m256 p0 = _mm256_shuffle_ps(_mm256_castpd_ps(l0),
                                          _mm256_castpd_ps(l1), 0x88);
      const __m256 p1 = _mm256_shuffle_ps(_mm256_castpd_ps(l2),
                                          _mm256_castpd_ps(l3), 0x88);
      m0 = _mm256_sub_epi32(_mm256_add_epi32(m0, m0),
                            _mm256_castps_si256(p0));
      m1 = _mm256_sub_epi32(_mm256_add_epi32(m1, m1),
                            _mm256_castps_si256(p1));
    }
    __m256i i0 = _mm256_setzero_si256();
    __m256i i1 = i0;
    for (std::int32_t level = 0; level < tree.depth; ++level) {
      const __m256i b0 = _mm256_and_si256(
          _mm256_srlv_epi32(m0, _mm256_sub_epi32(top, i0)), one);
      const __m256i b1 = _mm256_and_si256(
          _mm256_srlv_epi32(m1, _mm256_sub_epi32(top, i1)), one);
      // idx = 2*idx + 2 - bit  (bit set -> left child 2*idx + 1).
      i0 = _mm256_sub_epi32(
          _mm256_add_epi32(_mm256_add_epi32(i0, i0), two), b0);
      i1 = _mm256_sub_epi32(
          _mm256_add_epi32(_mm256_add_epi32(i1, i1), two), b1);
    }
    i0 = _mm256_sub_epi32(i0, iv);
    i1 = _mm256_sub_epi32(i1, iv);
    const __m256d w0 =
        _mm256_i32gather_pd(tree.weight, _mm256_castsi256_si128(i0), 8);
    const __m256d w1 =
        _mm256_i32gather_pd(tree.weight, _mm256_extracti128_si256(i0, 1), 8);
    const __m256d w2 =
        _mm256_i32gather_pd(tree.weight, _mm256_castsi256_si128(i1), 8);
    const __m256d w3 =
        _mm256_i32gather_pd(tree.weight, _mm256_extracti128_si256(i1, 1), 8);
    // w0 holds rows [0,1,4,5], w1 rows [2,3,6,7] (and likewise for the
    // second mask register); recombine into row order for the stores.
    const __m256d a = _mm256_permute2f128_pd(w0, w1, 0x20);  // rows 0-3
    const __m256d b = _mm256_permute2f128_pd(w0, w1, 0x31);  // rows 4-7
    const __m256d c = _mm256_permute2f128_pd(w2, w3, 0x20);  // rows 8-11
    const __m256d d = _mm256_permute2f128_pd(w2, w3, 0x31);  // rows 12-15
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i),
                                            _mm256_mul_pd(lrv, a)));
    _mm256_storeu_pd(out + i + 4,
                     _mm256_add_pd(_mm256_loadu_pd(out + i + 4),
                                   _mm256_mul_pd(lrv, b)));
    _mm256_storeu_pd(out + i + 8,
                     _mm256_add_pd(_mm256_loadu_pd(out + i + 8),
                                   _mm256_mul_pd(lrv, c)));
    _mm256_storeu_pd(out + i + 12,
                     _mm256_add_pd(_mm256_loadu_pd(out + i + 12),
                                   _mm256_mul_pd(lrv, d)));
  }
  if (i < rows) {
    detail::scalar_forest_leaf_add(tree, cols + i, col_stride, rows - i, lr,
                                   out + i);
  }
}

void avx2_forest_leaf_add(const PaddedTreeView& tree, const double* cols,
                          std::size_t col_stride, std::size_t rows, double lr,
                          double* out) {
  if (tree.depth <= 5) {
    avx2_forest_leaf_add_w32(tree, cols, col_stride, rows, lr, out);
    return;
  }
  // Depth 6: 63 condition bits need 64-bit lanes for the mask and walk.
  const std::int32_t interior = (1 << tree.depth) - 1;
  const __m256d lrv = _mm256_set1_pd(lr);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i two = _mm256_set1_epi64x(2);
  const __m256i top = _mm256_set1_epi64x(interior - 1);
  const __m256i iv = _mm256_set1_epi64x(interior);
  std::size_t i = 0;
  // 16 rows per pass: the per-node bookkeeping (feature load, column
  // address, threshold broadcast, loop control) then amortises over four
  // compare lanes instead of one, which is what lifts this kernel past
  // the 2x bar over the already-ILP-friendly scalar block walk.
  for (; i + 16 <= rows; i += 16) {
    // Evaluate every interior condition: feature columns are contiguous
    // across rows, so each condition is four unaligned loads plus one
    // broadcast threshold.  The mask accumulates by doubling
    // (m = 2m + cond, the compare result being all-ones), which needs no
    // per-node bit constant; node k's truth therefore lands at bit
    // position interior-1-k (depth <= 6 -> at most 63 conditions).
    __m256i m0 = _mm256_setzero_si256();
    __m256i m1 = m0;
    __m256i m2 = m0;
    __m256i m3 = m0;
    for (std::int32_t k = 0; k < interior; ++k) {
      const double* c =
          cols + static_cast<std::size_t>(tree.feature[k]) * col_stride + i;
      // _CMP_LT_OQ: false for NaN, matching the scalar `x < thr`.
      const __m256d tv = _mm256_set1_pd(tree.threshold[k]);
      const __m256i l0 =
          _mm256_castpd_si256(_mm256_cmp_pd(_mm256_loadu_pd(c), tv,
                                            _CMP_LT_OQ));
      const __m256i l1 =
          _mm256_castpd_si256(_mm256_cmp_pd(_mm256_loadu_pd(c + 4), tv,
                                            _CMP_LT_OQ));
      const __m256i l2 =
          _mm256_castpd_si256(_mm256_cmp_pd(_mm256_loadu_pd(c + 8), tv,
                                            _CMP_LT_OQ));
      const __m256i l3 =
          _mm256_castpd_si256(_mm256_cmp_pd(_mm256_loadu_pd(c + 12), tv,
                                            _CMP_LT_OQ));
      m0 = _mm256_sub_epi64(_mm256_add_epi64(m0, m0), l0);
      m1 = _mm256_sub_epi64(_mm256_add_epi64(m1, m1), l1);
      m2 = _mm256_sub_epi64(_mm256_add_epi64(m2, m2), l2);
      m3 = _mm256_sub_epi64(_mm256_add_epi64(m3, m3), l3);
    }
    // Walk the perfect tree with pure ALU: the child step only needs
    // bit interior-1-idx of the mask, never memory.  Four independent
    // walks overlap the srlv dependency chains.
    __m256i i0 = _mm256_setzero_si256();
    __m256i i1 = i0;
    __m256i i2 = i0;
    __m256i i3 = i0;
    for (std::int32_t level = 0; level < tree.depth; ++level) {
      const __m256i b0 = _mm256_and_si256(
          _mm256_srlv_epi64(m0, _mm256_sub_epi64(top, i0)), one);
      const __m256i b1 = _mm256_and_si256(
          _mm256_srlv_epi64(m1, _mm256_sub_epi64(top, i1)), one);
      const __m256i b2 = _mm256_and_si256(
          _mm256_srlv_epi64(m2, _mm256_sub_epi64(top, i2)), one);
      const __m256i b3 = _mm256_and_si256(
          _mm256_srlv_epi64(m3, _mm256_sub_epi64(top, i3)), one);
      // idx = 2*idx + 2 - bit  (bit set -> left child 2*idx + 1).
      i0 = _mm256_sub_epi64(
          _mm256_add_epi64(_mm256_add_epi64(i0, i0), two), b0);
      i1 = _mm256_sub_epi64(
          _mm256_add_epi64(_mm256_add_epi64(i1, i1), two), b1);
      i2 = _mm256_sub_epi64(
          _mm256_add_epi64(_mm256_add_epi64(i2, i2), two), b2);
      i3 = _mm256_sub_epi64(
          _mm256_add_epi64(_mm256_add_epi64(i3, i3), two), b3);
    }
    const __m256d w0 =
        _mm256_i64gather_pd(tree.weight, _mm256_sub_epi64(i0, iv), 8);
    const __m256d w1 =
        _mm256_i64gather_pd(tree.weight, _mm256_sub_epi64(i1, iv), 8);
    const __m256d w2 =
        _mm256_i64gather_pd(tree.weight, _mm256_sub_epi64(i2, iv), 8);
    const __m256d w3 =
        _mm256_i64gather_pd(tree.weight, _mm256_sub_epi64(i3, iv), 8);
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i),
                                            _mm256_mul_pd(lrv, w0)));
    _mm256_storeu_pd(out + i + 4,
                     _mm256_add_pd(_mm256_loadu_pd(out + i + 4),
                                   _mm256_mul_pd(lrv, w1)));
    _mm256_storeu_pd(out + i + 8,
                     _mm256_add_pd(_mm256_loadu_pd(out + i + 8),
                                   _mm256_mul_pd(lrv, w2)));
    _mm256_storeu_pd(out + i + 12,
                     _mm256_add_pd(_mm256_loadu_pd(out + i + 12),
                                   _mm256_mul_pd(lrv, w3)));
  }
  if (i < rows) {
    detail::scalar_forest_leaf_add(tree, cols + i, col_stride, rows - i, lr,
                                   out + i);
  }
}

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

/// 64x64 -> low 64 multiply by a broadcast constant (AVX2 has no
/// vpmullq): lo32*lo32 + ((hi32*lo32 + lo32*hi32) << 32).
inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i hi1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i hi2 = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  return _mm256_add_epi64(
      lo, _mm256_slli_epi64(_mm256_add_epi64(hi1, hi2), 32));
}

/// SplitMix64 finalizer on 4 lanes — same constants as util::mix64.
inline __m256i mix64x4(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_set1_epi64x(
                              static_cast<long long>(kGamma)));
  x = mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
            _mm256_set1_epi64x(
                static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
            _mm256_set1_epi64x(
                static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

void avx2_rng_fill_u64(std::uint64_t base, std::uint64_t* out,
                       std::size_t n) {
  __m256i ctr = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(base)),
      _mm256_set_epi64x(static_cast<long long>(4 * kGamma),
                        static_cast<long long>(3 * kGamma),
                        static_cast<long long>(2 * kGamma),
                        static_cast<long long>(kGamma)));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * kGamma));
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), mix64x4(ctr));
    ctr = _mm256_add_epi64(ctr, step);
  }
  if (k < n) {
    detail::scalar_rng_fill_u64(base + k * kGamma, out + k, n - k);
  }
}

void avx2_rng_fill_unit(std::uint64_t base, double* out, std::size_t n) {
  __m256i ctr = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(base)),
      _mm256_set_epi64x(static_cast<long long>(4 * kGamma),
                        static_cast<long long>(3 * kGamma),
                        static_cast<long long>(2 * kGamma),
                        static_cast<long long>(kGamma)));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * kGamma));
  // Low dwords of the four qwords, packed into a __m128i.
  const __m256i low_dwords = _mm256_set_epi32(0, 0, 0, 0, 6, 4, 2, 0);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // hash_unit(next_u64()): two mix64 passes, then the top 53 bits as
    // a dyadic rational.
    const __m256i v = mix64x4(mix64x4(ctr));
    const __m256i v53 = _mm256_srli_epi64(v, 11);
    // Exact u64 -> f64 for values < 2^53: split into hi21 = v53 >> 31
    // (< 2^22) and lo31 = v53 & 0x7fffffff — both fit a SIGNED i32, so
    // cvtepi32_pd converts each exactly; hi21 * 2^31 is exact (product
    // < 2^53) and the final add is exact (integer sum < 2^53 is
    // representable).  Bit-identical to the scalar static_cast.
    const __m256i hi = _mm256_srli_epi64(v53, 31);
    const __m256i lo =
        _mm256_and_si256(v53, _mm256_set1_epi64x(0x7fffffffLL));
    const __m128i hi32 = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(hi, low_dwords));
    const __m128i lo32 = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(lo, low_dwords));
    const __m256d d = _mm256_add_pd(
        _mm256_mul_pd(_mm256_cvtepi32_pd(hi32), _mm256_set1_pd(0x1.0p31)),
        _mm256_cvtepi32_pd(lo32));
    _mm256_storeu_pd(out + k, _mm256_mul_pd(d, _mm256_set1_pd(0x1.0p-53)));
    ctr = _mm256_add_epi64(ctr, step);
  }
  if (k < n) {
    detail::scalar_rng_fill_unit(base + k * kGamma, out + k, n - k);
  }
}

constexpr KernelTable kAvx2Table = {
    Tier::kAvx2,        avx2_axpy,
    avx2_sub_div,       avx2_gather,
    avx2_strided_gather, avx2_affine_rows,
    avx2_forest_leaf_add, avx2_rng_fill_u64,
    avx2_rng_fill_unit,
};

}  // namespace

const KernelTable* avx2_kernel_table() noexcept { return &kAvx2Table; }

}  // namespace autopower::util::simd

#else  // !defined(__AVX2__)

#include "util/simd_internal.hpp"

namespace autopower::util::simd {
const KernelTable* avx2_kernel_table() noexcept { return nullptr; }
}  // namespace autopower::util::simd

#endif
