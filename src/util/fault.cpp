#include "util/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <ostream>

#include "util/parse.hpp"
#include "util/rng.hpp"

namespace autopower::util::fault {

namespace {

struct Site {
  bool armed = false;
  Trigger trigger;
  std::uint64_t hits = 0;      ///< evaluations since process start
  std::uint64_t arm_hits = 0;  ///< evaluations since the current arming
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site, std::less<>> sites;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during exit
  return *r;
}

// Fast path: fault points are on hot paths (cache fills, per-line IO),
// so when nothing is armed they must cost one relaxed load, not a lock.
std::atomic<int> g_armed_count{0};

std::once_flag g_env_once;

Site& site_entry_locked(Registry& r, std::string_view site) {
  const auto it = r.sites.find(site);
  if (it != r.sites.end()) return it->second;
  return r.sites.emplace(std::string(site), Site{}).first->second;
}

bool trigger_fires(const Trigger& t, std::uint64_t arm_hit) {
  switch (t.kind) {
    case Trigger::Kind::kCountdown:
      return arm_hit == t.n;
    case Trigger::Kind::kEveryNth:
      return arm_hit % t.n == 0;
    case Trigger::Kind::kProbability:
      return hash_unit(hash_combine(t.seed, arm_hit)) < t.p;
  }
  return false;
}

Trigger parse_trigger(std::string_view spec) {
  const auto colon = spec.find(':');
  const std::string_view kind = spec.substr(0, colon);
  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{} : spec.substr(
                                                                 colon + 1);
  if (kind == "countdown" || kind == "every") {
    const int n = parse_int(rest, "fault trigger count", 1);
    return kind == "countdown"
               ? Trigger::countdown(static_cast<std::uint64_t>(n))
               : Trigger::every_nth(static_cast<std::uint64_t>(n));
  }
  if (kind == "prob") {
    const auto colon2 = rest.find(':');
    const std::string p_text(rest.substr(0, colon2));
    char* end = nullptr;
    const double p = std::strtod(p_text.c_str(), &end);
    if (end == p_text.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      throw Error("bad fault probability: " + p_text);
    }
    std::uint64_t seed = 0;
    if (colon2 != std::string_view::npos) {
      seed = static_cast<std::uint64_t>(
          parse_int(rest.substr(colon2 + 1), "fault seed", 0));
    }
    return Trigger::probability(p, seed);
  }
  throw Error("unknown fault trigger kind: " + std::string(kind) +
              " (expected countdown | every | prob)");
}

void ensure_env_parsed() {
  std::call_once(g_env_once, [] {
    const char* spec = std::getenv("AUTOPOWER_FAULT");
    if (spec != nullptr && *spec != '\0') {
      arm_from_env();
    }
  });
}

}  // namespace

void arm(std::string_view site, const Trigger& trigger) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  Site& s = site_entry_locked(r, site);
  if (!s.armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.trigger = trigger;
  s.arm_hits = 0;
}

void disarm(std::string_view site) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  const auto it = r.sites.find(site);
  if (it != r.sites.end() && it->second.armed) {
    it->second.armed = false;
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (auto& [name, s] : r.sites) {
    if (s.armed) {
      s.armed = false;
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool should_fail(std::string_view site) {
  ensure_env_parsed();
  if (g_armed_count.load(std::memory_order_relaxed) == 0) {
    // Nothing armed anywhere: skip the lock AND the per-site hit
    // bookkeeping.  sites_seen() is only meaningful in fault tests,
    // which always arm something first.
    return false;
  }
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  Site& s = site_entry_locked(r, site);
  ++s.hits;
  if (!s.armed) return false;
  ++s.arm_hits;
  return trigger_fires(s.trigger, s.arm_hits);
}

void inject(std::string_view site) {
  if (should_fail(site)) {
    throw FaultInjected("injected fault at " + std::string(site));
  }
}

void inject_stream(std::string_view site, std::ostream& out) {
  if (should_fail(site)) {
    out.setstate(std::ios::badbit);
  }
}

std::uint64_t hit_count(std::string_view site) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::vector<std::string> sites_seen() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  std::vector<std::string> out;
  out.reserve(r.sites.size());
  for (const auto& [name, s] : r.sites) {
    if (s.hits > 0) out.push_back(name);
  }
  return out;
}

void arm_from_env() {
  const char* spec = std::getenv("AUTOPOWER_FAULT");
  if (spec == nullptr || *spec == '\0') return;
  std::string_view text(spec);
  while (!text.empty()) {
    const auto semi = text.find(';');
    const std::string_view entry = text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw Error("bad AUTOPOWER_FAULT entry (want site=kind:arg): " +
                  std::string(entry));
    }
    arm(entry.substr(0, eq), parse_trigger(entry.substr(eq + 1)));
  }
}

}  // namespace autopower::util::fault
