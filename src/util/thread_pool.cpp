#include "util/thread_pool.hpp"

#include <exception>
#include <utility>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace autopower::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  AP_ASSERT_MSG(task != nullptr, "ThreadPool::submit: empty task");
  // Stands in for the queue allocation failing under memory pressure.
  AUTOPOWER_FAULT_POINT("util.thread_pool.submit");
  {
    std::lock_guard lock(mu_);
    if (!accepting_) {
      throw Error("ThreadPool::submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

ThreadPool::TaskFailures ThreadPool::task_failures() const {
  std::lock_guard lock(mu_);
  return failures_;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    accepting_ = false;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
      // Graceful shutdown: keep draining until the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // A throwing task must not take the worker (and the process) down —
    // sibling tasks, including those queued behind it during a graceful
    // shutdown drain, must still run.  The failure is recorded so callers
    // for whom a lost task is fatal can detect it via task_failures().
    std::string error;
    bool failed = false;
    try {
      AUTOPOWER_FAULT_POINT("util.thread_pool.run_task");
      task();
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    } catch (...) {
      failed = true;
      error = "unknown exception";
    }
    {
      std::lock_guard lock(mu_);
      --active_;
      if (failed) {
        ++failures_.count;
        if (failures_.first_error.empty()) {
          failures_.first_error = std::move(error);
        }
      }
    }
    idle_cv_.notify_all();
  }
}

}  // namespace autopower::util
