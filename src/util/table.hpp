// Plain-text table rendering for experiment harness output.
//
// The benchmark binaries print paper-style tables (rows of MAPE / R² per
// method, per-component summaries, power-trace error tables).  TablePrinter
// right-aligns numeric columns and pads with spaces so the output is
// readable both in a terminal and when diffed between runs.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace autopower::util {

/// Column-aligned text table with a header row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column separators and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Convenience: renders to an output stream.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 2 decimal places).
[[nodiscard]] std::string fmt(double value, int precision = 2);

/// Formats a double as a percentage string, e.g. 4.36 -> "4.36%".
[[nodiscard]] std::string fmt_pct(double value, int precision = 2);

}  // namespace autopower::util
