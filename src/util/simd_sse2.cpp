// SSE2 kernel tier.  Only this TU is compiled with an explicit -msse2
// (x86-64 implies SSE2 anyway, but the flag isolation keeps the build
// rule uniform with simd_avx2.cpp).  Two-lane versions of the
// elementwise and PRNG kernels; the gather-heavy kernels (gather,
// strided_gather, affine_rows) have no SSE2 gather instruction and
// borrow their scalar twins from simd.cpp.  Bit-identity rules are the
// same as the AVX2 TU: no FMA, vectorise across outputs only, exact
// integer -> double conversion.

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstddef>
#include <cstdint>

#include "util/simd_internal.hpp"

namespace autopower::util::simd {

namespace {

void sse2_axpy(double a, const double* x, double* y, std::size_t n) {
  const __m128d av = _mm_set1_pd(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d xv = _mm_loadu_pd(x + i);
    const __m128d yv = _mm_loadu_pd(y + i);
    _mm_storeu_pd(y + i, _mm_add_pd(yv, _mm_mul_pd(av, xv)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void sse2_sub_div(const double* x, const double* mean, const double* scale,
                  double* out, std::size_t n) {
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m128d num =
        _mm_sub_pd(_mm_loadu_pd(x + j), _mm_loadu_pd(mean + j));
    _mm_storeu_pd(out + j, _mm_div_pd(num, _mm_loadu_pd(scale + j)));
  }
  for (; j < n; ++j) out[j] = (x[j] - mean[j]) / scale[j];
}

void sse2_forest_leaf_add(const PaddedTreeView& tree, const double* cols,
                          std::size_t col_stride, std::size_t rows, double lr,
                          double* out) {
  const std::int32_t interior = (1 << tree.depth) - 1;
  std::size_t i = 0;
  for (; i + 2 <= rows; i += 2) {
    // Condition masks for 2 rows via vector compares; SSE2 has no
    // variable shift, so the mask walk happens on extracted scalars.
    __m128i mask = _mm_setzero_si128();
    for (std::int32_t k = 0; k < interior; ++k) {
      const __m128d xv = _mm_loadu_pd(
          cols + static_cast<std::size_t>(tree.feature[k]) * col_stride + i);
      // cmplt is an ordered compare: false for NaN, like scalar `<`.
      const __m128i lt =
          _mm_castpd_si128(_mm_cmplt_pd(xv, _mm_set1_pd(tree.threshold[k])));
      mask = _mm_or_si128(mask,
                          _mm_and_si128(lt, _mm_set1_epi64x(1LL << k)));
    }
    alignas(16) std::uint64_t lane_mask[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(lane_mask), mask);
    for (int lane = 0; lane < 2; ++lane) {
      std::int64_t idx = 0;
      for (std::int32_t level = 0; level < tree.depth; ++level) {
        idx = 2 * idx + 2 -
              static_cast<std::int64_t>((lane_mask[lane] >> idx) & 1u);
      }
      out[i + static_cast<std::size_t>(lane)] +=
          lr * tree.weight[idx - interior];
    }
  }
  if (i < rows) {
    detail::scalar_forest_leaf_add(tree, cols + i, col_stride, rows - i, lr,
                                   out + i);
  }
}

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

/// 64x64 -> low 64 multiply (no 64-bit vector multiply in SSE2).
inline __m128i mul64(__m128i a, __m128i b) {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i hi1 = _mm_mul_epu32(_mm_srli_epi64(a, 32), b);
  const __m128i hi2 = _mm_mul_epu32(a, _mm_srli_epi64(b, 32));
  return _mm_add_epi64(lo, _mm_slli_epi64(_mm_add_epi64(hi1, hi2), 32));
}

/// SplitMix64 finalizer on 2 lanes — same constants as util::mix64.
inline __m128i mix64x2(__m128i x) {
  x = _mm_add_epi64(x, _mm_set1_epi64x(static_cast<long long>(kGamma)));
  x = mul64(_mm_xor_si128(x, _mm_srli_epi64(x, 30)),
            _mm_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = mul64(_mm_xor_si128(x, _mm_srli_epi64(x, 27)),
            _mm_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm_xor_si128(x, _mm_srli_epi64(x, 31));
}

void sse2_rng_fill_u64(std::uint64_t base, std::uint64_t* out,
                       std::size_t n) {
  __m128i ctr = _mm_add_epi64(
      _mm_set1_epi64x(static_cast<long long>(base)),
      _mm_set_epi64x(static_cast<long long>(2 * kGamma),
                     static_cast<long long>(kGamma)));
  const __m128i step = _mm_set1_epi64x(static_cast<long long>(2 * kGamma));
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k), mix64x2(ctr));
    ctr = _mm_add_epi64(ctr, step);
  }
  if (k < n) {
    detail::scalar_rng_fill_u64(base + k * kGamma, out + k, n - k);
  }
}

void sse2_rng_fill_unit(std::uint64_t base, double* out, std::size_t n) {
  __m128i ctr = _mm_add_epi64(
      _mm_set1_epi64x(static_cast<long long>(base)),
      _mm_set_epi64x(static_cast<long long>(2 * kGamma),
                     static_cast<long long>(kGamma)));
  const __m128i step = _mm_set1_epi64x(static_cast<long long>(2 * kGamma));
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m128i v = mix64x2(mix64x2(ctr));
    const __m128i v53 = _mm_srli_epi64(v, 11);
    // Same exact split conversion as the AVX2 tier: hi21 * 2^31 + lo31
    // with both halves in signed-i32 range, every step exact.
    const __m128i hi = _mm_srli_epi64(v53, 31);
    const __m128i lo = _mm_and_si128(v53, _mm_set1_epi64x(0x7fffffffLL));
    // Low dwords of both qwords -> the two low i32 slots.
    const __m128i hi32 = _mm_shuffle_epi32(hi, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i lo32 = _mm_shuffle_epi32(lo, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128d d =
        _mm_add_pd(_mm_mul_pd(_mm_cvtepi32_pd(hi32), _mm_set1_pd(0x1.0p31)),
                   _mm_cvtepi32_pd(lo32));
    _mm_storeu_pd(out + k, _mm_mul_pd(d, _mm_set1_pd(0x1.0p-53)));
    ctr = _mm_add_epi64(ctr, step);
  }
  if (k < n) {
    detail::scalar_rng_fill_unit(base + k * kGamma, out + k, n - k);
  }
}

constexpr KernelTable kSse2Table = {
    Tier::kSse2,
    sse2_axpy,
    sse2_sub_div,
    detail::scalar_gather,
    detail::scalar_strided_gather,
    detail::scalar_affine_rows,
    sse2_forest_leaf_add,
    sse2_rng_fill_u64,
    sse2_rng_fill_unit,
};

}  // namespace

const KernelTable* sse2_kernel_table() noexcept { return &kSse2Table; }

}  // namespace autopower::util::simd

#else  // !defined(__SSE2__)

#include "util/simd_internal.hpp"

namespace autopower::util::simd {
const KernelTable* sse2_kernel_table() noexcept { return nullptr; }
}  // namespace autopower::util::simd

#endif
