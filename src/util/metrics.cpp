#include "util/metrics.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <limits>

namespace autopower::util {

std::atomic<bool> MetricsRegistry::enabled_{true};

namespace metrics_detail {

std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace metrics_detail

// --- Counter -----------------------------------------------------------------

void Counter::add(std::uint64_t n) noexcept {
  if (!MetricsRegistry::enabled()) return;
  shards_[metrics_detail::thread_slot() % shards_.size()].v.fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// --- Gauge -------------------------------------------------------------------

void Gauge::set(double value) noexcept {
  if (!MetricsRegistry::enabled()) return;
  value_.store(value, std::memory_order_relaxed);
}

double Gauge::value() const noexcept {
  return value_.load(std::memory_order_relaxed);
}

// --- Histogram ---------------------------------------------------------------

void Histogram::observe(std::uint64_t value) noexcept {
  if (!MetricsRegistry::enabled()) return;
  Shard& shard = shards_[metrics_detail::thread_slot() % shards_.size()];
  const std::size_t bucket =
      std::min<std::size_t>(std::bit_width(value), kBuckets - 1);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::bucket(std::size_t i) const noexcept {
  if (i >= kBuckets) return 0;
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s.buckets[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::bucket_bound(std::size_t i) noexcept {
  if (i >= kBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << i) - 1;
}

void Histogram::reset() noexcept {
  for (auto& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

// --- MetricsRegistry ---------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

// %.17g round-trips every double exactly; trailing precision is noise in
// a diagnostics file, not a correctness problem.
void append_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  out += buf;
}

void append_quoted(std::string& out, const std::string& name) {
  // Metric names are code-chosen identifiers ([a-z0-9._]) — no escaping.
  out += '"';
  out += name;
  out += '"';
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    append_u64(out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    append_double(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    const std::uint64_t count = h->count();
    const std::uint64_t sum = h->sum();
    out += ":{\"count\":";
    append_u64(out, count);
    out += ",\"sum\":";
    append_u64(out, sum);
    out += ",\"mean\":";
    append_double(out, count == 0 ? 0.0
                                  : static_cast<double>(sum) /
                                        static_cast<double>(count));
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (i > 0) out += ',';
      append_u64(out, h->bucket(i));
    }
    out += "]}";
  }
  // Shared bucket schema: inclusive upper bounds, one per bucket.
  out += "},\"histogram_bounds\":[";
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (i > 0) out += ',';
    append_u64(out, Histogram::bucket_bound(i));
  }
  out += "]}";
  return out;
}

}  // namespace autopower::util
