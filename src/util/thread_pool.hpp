// Fixed-size worker pool with a FIFO work queue and graceful shutdown.
//
// The library's only thread-spawning primitive: serve::BatchEngine fans
// batch requests out over one of these, `AutoPowerModel::train` fans its
// independent sub-model fits across one, and `autopower evaluate
// --threads` parallelises its held-out predict loop with one.  Semantics:
//
//   * submit() enqueues a task; it throws once shutdown has begun.
//   * shutdown() stops accepting new work, lets the workers DRAIN every
//     task already queued, then joins them (graceful, not abortive).
//   * wait_idle() blocks until the queue is empty and no task is running —
//     a completion barrier for callers that keep the pool alive.
//
// The destructor calls shutdown(), so pending work always completes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace autopower::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Throws util::Error if shutdown() has been called.
  void submit(std::function<void()> task);

  /// Blocks until every queued task has finished executing.
  void wait_idle();

  /// Stops accepting work, drains the queue, joins the workers.  Safe to
  /// call more than once.
  void shutdown();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signalled when work arrives / stops
  std::condition_variable idle_cv_;  ///< signalled when the pool may be idle
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;    ///< tasks currently executing
  bool accepting_ = true;     ///< false once shutdown() begins
};

}  // namespace autopower::util
