// Fixed-size worker pool with a FIFO work queue and graceful shutdown.
//
// The library's only thread-spawning primitive: serve::BatchEngine fans
// batch requests out over one of these, `AutoPowerModel::train` fans its
// independent sub-model fits across one, and `autopower evaluate
// --threads` parallelises its held-out predict loop with one.  Semantics:
//
//   * submit() enqueues a task; it throws once shutdown has begun.
//   * shutdown() stops accepting new work, lets the workers DRAIN every
//     task already queued, then joins them (graceful, not abortive).
//   * wait_idle() blocks until the queue is empty and no task is running —
//     a completion barrier for callers that keep the pool alive.
//   * A throwing task never takes a worker down: the worker records the
//     failure (task_failures()) and keeps draining, so sibling tasks —
//     including those still queued during a graceful shutdown drain —
//     always run.  Callers that must not lose work check task_failures()
//     after wait_idle()/shutdown() and surface the first error.
//
// The destructor calls shutdown(), so pending work always completes.
//
// Multi-submitter contract (audited for the serving daemon, whose
// connection handlers all feed one engine): every public member is safe
// to call from multiple threads concurrently — submit/wait_idle/
// shutdown/task_failures all take the one internal mutex, so concurrent
// submits interleave without losing or duplicating tasks.  The one
// subtlety is wait_idle(): it is a *global* barrier, not a per-submitter
// one.  It returns when the whole queue is empty and no task is running;
// if another thread is still submitting, "idle" is a momentary state and
// the caller has no claim about that thread's tasks.  Callers that need
// per-batch completion join their submitters first (or track their own
// completion count) before waiting — exactly what BatchEngine::run does.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace autopower::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Throws util::Error if shutdown() has been called.
  void submit(std::function<void()> task);

  /// Blocks until every queued task has finished executing.
  void wait_idle();

  /// Stops accepting work, drains the queue, joins the workers.  Safe to
  /// call more than once.
  void shutdown();

  /// Exceptions escaped by tasks so far.  `first_error` is the what() of
  /// the earliest one (empty while count == 0).  Stable after
  /// wait_idle()/shutdown(); callers that treat a lost task as fatal
  /// check this and rethrow.
  struct TaskFailures {
    std::uint64_t count = 0;
    std::string first_error;
  };
  [[nodiscard]] TaskFailures task_failures() const;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< signalled when work arrives / stops
  std::condition_variable idle_cv_;  ///< signalled when the pool may be idle
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  TaskFailures failures_;
  std::size_t active_ = 0;    ///< tasks currently executing
  bool accepting_ = true;     ///< false once shutdown() begins
};

}  // namespace autopower::util
