// SIMD kernel layer with runtime CPU dispatch.
//
// The numeric hot paths (forest inference, presort gathers, ridge
// predicts, batched PRNG fills) call through a per-process kernel table
// selected once from cpuid: scalar, SSE2 or AVX2.  Three properties the
// rest of the repository relies on:
//
//   * Bit-identity across tiers.  Every vector kernel performs, per
//     output element, exactly the operation sequence of its scalar twin
//     — vectorisation is only ever *across* independent output elements
//     (rows, samples, lanes), never across a reduction whose order
//     affects the result.  Kernels that cannot keep that promise do not
//     exist here; those loops stay scalar at the call site (see
//     DESIGN.md "SIMD dispatch" for the per-site inventory).  The
//     differential oracles in tests/test_simd.cpp pin every kernel to
//     its scalar twin over random sizes, alignments, NaNs and
//     denormals.
//   * No ISA leakage.  AVX2/SSE2 code lives only in simd_avx2.cpp /
//     simd_sse2.cpp, which are the only translation units compiled with
//     -mavx2 / -msse2 (tools/check.sh fails the build if the flag
//     appears anywhere else).  This header stays intrinsics-free and
//     inline-function-free so including it can never materialise
//     AVX2 code in a caller's TU.
//   * Observability.  The selected tier is published as the
//     `util.simd.tier` gauge (0 scalar / 1 sse2 / 2 avx2) so --stats
//     snapshots, bench JSON and the daemon health response all say
//     which code path produced their numbers.
//
// Tier selection: highest tier the CPU supports, capped by the
// AUTOPOWER_SIMD environment variable (scalar | sse2 | avx2).  An
// unknown value, or a request for a tier the CPU lacks, falls back to
// auto-detection.  set_active_tier() re-points the dispatch table at
// runtime — a bench/test hook for measuring and differencing tiers in
// one process; it is not meant to be called concurrently with kernel
// users.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace autopower::util::simd {

/// Instruction-set tier, ordered: a higher tier implies the lower ones.
enum class Tier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// One padded perfect tree of the forest-inference layout.  A fitted
/// tree of depth d is mirrored into a complete binary tree in
/// breadth-first order: `feature`/`threshold` hold its 2^d - 1 interior
/// slots, `weight` its 2^d leaf slots, and every leaf of the original
/// tree is replicated across all leaf slots of its padded subtree (so
/// the walk direction through padded interior slots cannot matter).
/// Node k's children are 2k+1 (x[feature[k]] < threshold[k]) and 2k+2;
/// depth <= kMaxPaddedDepth so the 2^d - 1 condition bits fit a uint64.
struct PaddedTreeView {
  const std::int32_t* feature;
  const double* threshold;
  const double* weight;
  std::int32_t depth;
};

/// Deepest tree the padded layout accepts: 2^6 - 1 = 63 interior
/// condition bits is the most a per-row uint64 mask can carry.
inline constexpr std::int32_t kMaxPaddedDepth = 6;

/// The dispatched kernels.  All pointers are always non-null (the
/// scalar implementation backs any slot a tier does not accelerate).
/// Index arguments must be < 2^31: the x86 gather instructions treat
/// indices as signed 32/64-bit.
struct KernelTable {
  Tier tier;

  /// y[i] += a * x[i]  (multiply then add, no FMA contraction).
  void (*axpy)(double a, const double* x, double* y, std::size_t n);

  /// out[j] = (x[j] - mean[j]) / scale[j]  (IEEE divide, as scalar).
  void (*sub_div)(const double* x, const double* mean, const double* scale,
                  double* out, std::size_t n);

  /// out[k] = src[idx[k]].
  void (*gather)(const double* src, const std::uint32_t* idx, double* out,
                 std::size_t n);

  /// out[i] = src[i * stride]  (column gather from a row-major matrix;
  /// pass src already offset to the column).
  void (*strided_gather)(const double* src, std::size_t stride, double* out,
                         std::size_t n);

  /// Dense affine map over row-major samples, vectorised across rows:
  /// out[i] = intercept + sum_j coef[j] * rows[i*arity + j], the sum
  /// accumulated in ascending j exactly like a scalar predict loop.
  void (*affine_rows)(const double* rows, std::size_t arity,
                      std::size_t count, const double* coef, double intercept,
                      double* out);

  /// Forest inference over one padded tree and one column-major block:
  /// out[i] += lr * leaf_weight(row i), where cols[f*col_stride + i] is
  /// feature f of block row i.  Vectorised across rows; per row the
  /// multiply-then-add matches the scalar walk bit for bit.
  void (*forest_leaf_add)(const PaddedTreeView& tree, const double* cols,
                          std::size_t col_stride, std::size_t rows, double lr,
                          double* out);

  /// Counter-based SplitMix64 block fill (the Rng::next_u64 stream):
  /// out[k] = mix64(base + (k+1) * 0x9e3779b97f4a7c15).
  void (*rng_fill_u64)(std::uint64_t base, std::uint64_t* out, std::size_t n);

  /// The Rng::next_unit stream: out[k] = hash_unit(rng_fill_u64 value),
  /// i.e. a second mix64 pass then (v >> 11) * 0x1.0p-53, with the
  /// integer->double conversion exact in every lane.
  void (*rng_fill_unit)(std::uint64_t base, double* out, std::size_t n);
};

/// The active kernel table (initialised on first use from cpuid + the
/// AUTOPOWER_SIMD override).  Fetch once per operation, not per element.
[[nodiscard]] const KernelTable& kernels() noexcept;

/// The tier kernels() currently dispatches to.
[[nodiscard]] Tier active_tier() noexcept;

/// Highest tier this CPU can execute.
[[nodiscard]] Tier detect_best_tier() noexcept;

/// Table for an explicit tier, or nullptr when the CPU (or this build)
/// cannot run it.  kScalar always succeeds.
[[nodiscard]] const KernelTable* kernels_for(Tier tier) noexcept;

/// Re-points kernels() at `tier` (clamped to detect_best_tier()) and
/// updates the util.simd.tier gauge.  Returns the tier actually
/// installed.  Bench/test hook — do not call while other threads are
/// inside dispatched kernels.
Tier set_active_tier(Tier tier) noexcept;

/// "scalar" | "sse2" | "avx2".
[[nodiscard]] std::string_view tier_name(Tier tier) noexcept;

/// Parses an AUTOPOWER_SIMD value; std::nullopt for anything unknown.
[[nodiscard]] std::optional<Tier> parse_tier(std::string_view text) noexcept;

}  // namespace autopower::util::simd
