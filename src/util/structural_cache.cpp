#include "util/structural_cache.hpp"

#include <string>

#include "util/metrics.hpp"

namespace autopower::util {

StructuralSimCache::StructuralSimCache(std::size_t shards_per_sub) {
  const std::size_t shards = shards_per_sub == 0 ? 1 : shards_per_sub;
  for (Lane& lane : lanes_) {
    lane.shards.resize(shards);
  }
}

StructuralSimCache::Stats StructuralSimCache::stats() const noexcept {
  Stats total;
  for (const Lane& lane : lanes_) {
    total.hits += lane.hits.load(std::memory_order_relaxed);
    total.misses += lane.misses.load(std::memory_order_relaxed);
  }
  return total;
}

StructuralSimCache::Stats StructuralSimCache::stats(SubSim sub) const noexcept {
  const Lane& lane = lanes_[static_cast<std::size_t>(sub)];
  return {lane.hits.load(std::memory_order_relaxed),
          lane.misses.load(std::memory_order_relaxed)};
}

std::size_t StructuralSimCache::size() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) {
    for (const Shard& shard : lane.shards) {
      std::shared_lock lock(shard.mu);
      n += shard.map.size();
    }
  }
  return n;
}

void StructuralSimCache::clear() {
  for (Lane& lane : lanes_) {
    for (Shard& shard : lane.shards) {
      std::unique_lock lock(shard.mu);
      shard.map.clear();
    }
    lane.hits.store(0, std::memory_order_relaxed);
    lane.misses.store(0, std::memory_order_relaxed);
  }
}

void StructuralSimCache::export_metrics(MetricsRegistry& registry) const {
  for (std::size_t i = 0; i < kNumSubSims; ++i) {
    const auto sub = static_cast<SubSim>(i);
    const Stats lane = stats(sub);
    const std::string prefix =
        "sim.structural." + std::string(sub_sim_name(sub));
    registry.gauge(prefix + ".hits").set(static_cast<double>(lane.hits));
    registry.gauge(prefix + ".misses").set(static_cast<double>(lane.misses));
  }
  registry.gauge("sim.structural.entries")
      .set(static_cast<double>(size()));
}

std::string_view StructuralSimCache::sub_sim_name(SubSim sub) noexcept {
  switch (sub) {
    case SubSim::kICache: return "icache";
    case SubSim::kDCache: return "dcache";
    case SubSim::kItlb: return "itlb";
    case SubSim::kDtlb: return "dtlb";
    case SubSim::kBranch: return "branch";
  }
  return "unknown";
}

}  // namespace autopower::util
