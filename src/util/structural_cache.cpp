#include "util/structural_cache.hpp"

#include <algorithm>
#include <string>

#include "util/metrics.hpp"

namespace autopower::util {

StructuralSimCache::StructuralSimCache(std::size_t shards_per_sub,
                                       std::size_t max_entries)
    : max_entries_(max_entries) {
  const std::size_t shards = shards_per_sub == 0 ? 1 : shards_per_sub;
  // Bounded mode splits the total budget evenly across every shard of
  // every lane; each shard keeps at least one slot so no key can become
  // uncacheable.
  const std::size_t per_shard =
      max_entries == 0
          ? 0
          : std::max<std::size_t>(1, max_entries / (kNumSubSims * shards));
  for (Lane& lane : lanes_) {
    lane.shards.resize(shards);
    if (per_shard != 0) {
      for (Shard& shard : lane.shards) {
        shard.capacity = per_shard;
        shard.slots = std::make_unique<Slot[]>(per_shard);
        shard.index.reserve(per_shard);
      }
    }
  }
}

StructuralSimCache::Stats StructuralSimCache::stats() const noexcept {
  // The combined view: the L1 tier answers a lookup (flushed hit) or
  // forwards it, and every forwarded lookup lands in exactly one lane as
  // an L2 hit or miss — so hits(total) = l1_hits + l2_hits and
  // misses(total) = l2_misses keeps hits + misses == lookups.
  Stats total;
  for (const Lane& lane : lanes_) {
    total.hits += lane.hits.load(std::memory_order_relaxed);
    total.misses += lane.misses.load(std::memory_order_relaxed);
    total.evictions += lane.evictions.load(std::memory_order_relaxed);
  }
  total.hits += l1_hits_.load(std::memory_order_relaxed);
  return total;
}

StructuralSimCache::Stats StructuralSimCache::stats(SubSim sub) const noexcept {
  const Lane& lane = lanes_[static_cast<std::size_t>(sub)];
  return {lane.hits.load(std::memory_order_relaxed),
          lane.misses.load(std::memory_order_relaxed),
          lane.evictions.load(std::memory_order_relaxed)};
}

StructuralSimCache::Stats StructuralSimCache::l1_stats() const noexcept {
  return {l1_hits_.load(std::memory_order_relaxed),
          l1_misses_.load(std::memory_order_relaxed), 0};
}

void StructuralSimCache::absorb_l1(std::uint64_t hits,
                                   std::uint64_t misses) noexcept {
  l1_hits_.fetch_add(hits, std::memory_order_relaxed);
  l1_misses_.fetch_add(misses, std::memory_order_relaxed);
}

std::size_t StructuralSimCache::size() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) {
    for (const Shard& shard : lane.shards) {
      std::shared_lock lock(shard.mu);
      n += shard.capacity == 0 ? shard.map.size() : shard.index.size();
    }
  }
  return n;
}

void StructuralSimCache::clear() {
  for (Lane& lane : lanes_) {
    for (Shard& shard : lane.shards) {
      std::unique_lock lock(shard.mu);
      shard.map.clear();
      shard.index.clear();
      shard.used = 0;
      shard.hand = 0;
    }
    lane.hits.store(0, std::memory_order_relaxed);
    lane.misses.store(0, std::memory_order_relaxed);
    lane.evictions.store(0, std::memory_order_relaxed);
  }
  l1_hits_.store(0, std::memory_order_relaxed);
  l1_misses_.store(0, std::memory_order_relaxed);
}

void StructuralSimCache::export_metrics(MetricsRegistry& registry) const {
  Stats l2_total;
  for (std::size_t i = 0; i < kNumSubSims; ++i) {
    const auto sub = static_cast<SubSim>(i);
    const Stats lane = stats(sub);
    l2_total.hits += lane.hits;
    l2_total.misses += lane.misses;
    l2_total.evictions += lane.evictions;
    const std::string prefix =
        "sim.structural.l2." + std::string(sub_sim_name(sub));
    registry.gauge(prefix + ".hits").set(static_cast<double>(lane.hits));
    registry.gauge(prefix + ".misses").set(static_cast<double>(lane.misses));
  }
  registry.gauge("sim.structural.l2.entries")
      .set(static_cast<double>(size()));
  registry.gauge("sim.structural.l2.evictions")
      .set(static_cast<double>(l2_total.evictions));
  const Stats l1 = l1_stats();
  registry.gauge("sim.structural.l1.hits").set(static_cast<double>(l1.hits));
  registry.gauge("sim.structural.l1.misses")
      .set(static_cast<double>(l1.misses));
}

std::string_view StructuralSimCache::sub_sim_name(SubSim sub) noexcept {
  switch (sub) {
    case SubSim::kICache: return "icache";
    case SubSim::kDCache: return "dcache";
    case SubSim::kItlb: return "itlb";
    case SubSim::kDtlb: return "dtlb";
    case SubSim::kBranch: return "branch";
  }
  return "unknown";
}

StructuralL1::StructuralL1(std::shared_ptr<StructuralSimCache> l2,
                           std::size_t entries_per_lane)
    : l2_(std::move(l2)) {
  std::size_t n = 64;
  while (n < entries_per_lane) n <<= 1;
  lane_size_ = n;
  mask_ = n - 1;
  entries_.resize(lane_size_ * StructuralSimCache::kNumSubSims);
}

StructuralL1::~StructuralL1() { flush_stats(); }

void StructuralL1::flush_stats() noexcept {
  if (hits_ == 0 && misses_ == 0) return;
  l2_->absorb_l1(hits_, misses_);
  hits_ = 0;
  misses_ = 0;
}

}  // namespace autopower::util
