#include "util/rng.hpp"

#include <cmath>

namespace autopower::util {

double lognormal_factor(Rng& rng, double sigma) {
  return std::exp(sigma * rng.next_gauss());
}

}  // namespace autopower::util
