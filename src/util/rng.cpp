#include "util/rng.hpp"

#include <cmath>

#include "util/simd.hpp"

namespace autopower::util {

double lognormal_factor(Rng& rng, double sigma) {
  return std::exp(sigma * rng.next_gauss());
}

void Rng::fill_u64(std::span<std::uint64_t> out) noexcept {
  // The kernel computes out[k] = mix64(state + (k+1) * gamma) — the
  // exact sequence of out.size() next_u64() calls — so the stream
  // position afterwards is state + n * gamma.
  simd::kernels().rng_fill_u64(state_, out.data(), out.size());
  state_ += 0x9e3779b97f4a7c15ULL * out.size();
}

void Rng::fill_unit(std::span<double> out) noexcept {
  simd::kernels().rng_fill_unit(state_, out.data(), out.size());
  state_ += 0x9e3779b97f4a7c15ULL * out.size();
}

}  // namespace autopower::util
