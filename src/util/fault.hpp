// Deterministic fault injection for failure-path testing.
//
// Production code marks its fallible seams — allocations that fill a
// cache, lines read from or written to a report stream, archive fields,
// worker-pool task launches — with AUTOPOWER_FAULT_POINT("site.name").
// Tests then *arm* a site with a trigger (fail the Nth hit, every Nth
// hit, or a seeded probability per hit) and drive the real code path;
// the armed point throws util::FaultInjected exactly where a disk-full,
// bad_alloc or torn stream would surface.  Everything is deterministic:
// countdown/every-Nth triggers count hits, and the probability trigger
// derives each decision from mix64(seed, hit_index) — the same arming
// always fails the same hits.
//
// Sites are plain string literals; the registry records every site that
// has ever been evaluated (hit) in this process, so tests can assert
// that the paths they exercised actually contain the points they armed
// (`sites_seen`).  The canonical site list lives in DESIGN.md ("Testing
// strategy" — fault-site registry).
//
// Cost: when AUTOPOWER_FAULT_INJECTION is not defined (Release builds;
// see src/util/CMakeLists.txt) every macro compiles to `((void)0)`.
// When compiled in but with nothing armed, a fault point is one relaxed
// atomic load.
//
// Cross-process arming: AUTOPOWER_FAULT="site=countdown:3;other=every:2"
// in the environment arms sites at first use, so subprocess tests can
// inject faults into the CLI without touching its code.  Trigger specs:
//   countdown:N      fail the Nth evaluation of the site (1-based), once
//   every:N          fail every Nth evaluation
//   prob:P[:SEED]    fail each evaluation with probability P (default
//                    seed 0); deterministic in (SEED, hit index)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace autopower::util::fault {

/// Thrown by an armed fault point.  Derives util::Error so every
/// existing catch/exit-1 path treats it like a genuine I/O or
/// allocation failure.
class FaultInjected : public Error {
 public:
  explicit FaultInjected(const std::string& what) : Error(what) {}
};

/// When a site fires.
struct Trigger {
  enum class Kind { kCountdown, kEveryNth, kProbability };
  Kind kind = Kind::kCountdown;
  std::uint64_t n = 1;    ///< countdown target / every-Nth period
  double p = 0.0;         ///< kProbability only
  std::uint64_t seed = 0; ///< kProbability decision stream seed

  /// Fail the `n`th evaluation (1-based) of the site, exactly once.
  [[nodiscard]] static Trigger countdown(std::uint64_t n) {
    return {Kind::kCountdown, n == 0 ? 1 : n, 0.0, 0};
  }
  /// Fail every `n`th evaluation (hits n, 2n, 3n, ...).
  [[nodiscard]] static Trigger every_nth(std::uint64_t n) {
    return {Kind::kEveryNth, n == 0 ? 1 : n, 0.0, 0};
  }
  /// Fail each evaluation with probability `p`, decided by
  /// mix64(seed, hit index) — deterministic across runs.
  [[nodiscard]] static Trigger probability(double p, std::uint64_t seed = 0) {
    return {Kind::kProbability, 1, p, seed};
  }
};

/// Arms `site` with `trigger` (replacing any previous arming and
/// resetting its hit counter).
void arm(std::string_view site, const Trigger& trigger);

/// Disarms `site`; its hit history is kept for sites_seen()/hit_count().
void disarm(std::string_view site);

/// Disarms every site (does not clear hit history).
void disarm_all();

/// True when the site's trigger elects this evaluation to fail.  Every
/// call counts one hit against the site, armed or not.
[[nodiscard]] bool should_fail(std::string_view site);

/// should_fail + throw FaultInjected naming the site.  This is what
/// AUTOPOWER_FAULT_POINT expands to.
void inject(std::string_view site);

/// Stream-flavoured injection: instead of throwing, latches badbit on
/// `out` when the site fires, so the production stream-state checks
/// (util::flush_and_check) detect it exactly like a full disk.
void inject_stream(std::string_view site, std::ostream& out);

/// Total evaluations of `site` in this process (armed or not).
[[nodiscard]] std::uint64_t hit_count(std::string_view site);

/// Every site evaluated at least once in this process, sorted.
[[nodiscard]] std::vector<std::string> sites_seen();

/// Parses AUTOPOWER_FAULT from the environment and arms the listed
/// sites.  Called lazily by the first fault-point evaluation; exposed
/// so tests can force a re-read after setenv.  Throws util::Error on a
/// malformed spec.
void arm_from_env();

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor.
class ScopedFault {
 public:
  ScopedFault(std::string_view site, const Trigger& trigger)
      : site_(site) {
    arm(site_, trigger);
  }
  ~ScopedFault() { disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace autopower::util::fault

#if defined(AUTOPOWER_FAULT_INJECTION)
#define AUTOPOWER_FAULT_POINT(site) ::autopower::util::fault::inject(site)
#define AUTOPOWER_FAULT_STREAM(site, os) \
  ::autopower::util::fault::inject_stream((site), (os))
#else
#define AUTOPOWER_FAULT_POINT(site) ((void)0)
#define AUTOPOWER_FAULT_STREAM(site, os) ((void)0)
#endif
