// Tagged text archive for model serialization.
//
// Trained AutoPower models are cheap to produce here, but in the real flow
// they embody weeks of VLSI-flow label collection — a released library must
// be able to persist them.  The format is deliberately simple and
// diff-friendly: one `tag value...` line per field, vectors length-prefixed,
// doubles round-tripped exactly via hex-float.  Readers verify every tag,
// so schema drift fails loudly instead of mis-loading.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace autopower::util {

/// Writes tagged fields to a text stream.
class ArchiveWriter {
 public:
  explicit ArchiveWriter(std::ostream& out) : out_(out) {}

  void write(std::string_view tag, double value);
  void write(std::string_view tag, std::int64_t value);
  void write(std::string_view tag, bool value);
  /// Token must contain no whitespace.
  void write(std::string_view tag, std::string_view token);
  void write(std::string_view tag, std::span<const double> values);
  void write(std::string_view tag, std::span<const std::int64_t> values);

 private:
  void begin(std::string_view tag);
  std::ostream& out_;
};

/// Content fingerprint of a serialized blob: 16 lowercase hex chars of a
/// 64-bit FNV-1a hash.  Two archives fingerprint equal iff their bytes are
/// equal, so the serving layer can use this as a model-identity token in
/// cache keys (fingerprints of distinct archives collide only with hash
/// probability, which is acceptable for cache partitioning, not security).
[[nodiscard]] std::string content_fingerprint(std::string_view bytes);

/// Reads tagged fields back, verifying each tag.
class ArchiveReader {
 public:
  explicit ArchiveReader(std::istream& in) : in_(in) {}

  [[nodiscard]] double read_double(std::string_view tag);
  [[nodiscard]] std::int64_t read_int(std::string_view tag);
  [[nodiscard]] bool read_bool(std::string_view tag);
  [[nodiscard]] std::string read_token(std::string_view tag);
  [[nodiscard]] std::vector<double> read_doubles(std::string_view tag);
  [[nodiscard]] std::vector<std::int64_t> read_ints(std::string_view tag);

 private:
  void expect(std::string_view tag);
  std::istream& in_;
};

}  // namespace autopower::util
