// Error handling utilities shared across the AutoPower libraries.
//
// Construction-time and configuration errors throw `autopower::util::Error`;
// internal invariant violations use AP_ASSERT which throws in all build
// types (the library is used from long-running experiment harnesses where
// aborting loses partial results).
#pragma once

#include <stdexcept>
#include <string>

namespace autopower::util {

/// Base exception for all AutoPower library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an API is called with arguments violating its preconditions.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a model is used before being trained/fitted.
class NotFitted : public Error {
 public:
  explicit NotFitted(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  throw Error(std::string("assertion failed: ") + expr + " at " + file + ":" +
              std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace autopower::util

#define AP_ASSERT(expr)                                                  \
  do {                                                                   \
    if (!(expr))                                                         \
      ::autopower::util::detail::assert_fail(#expr, __FILE__, __LINE__, \
                                             "");                       \
  } while (0)

#define AP_ASSERT_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr))                                                         \
      ::autopower::util::detail::assert_fail(#expr, __FILE__, __LINE__, \
                                             (msg));                    \
  } while (0)

#define AP_REQUIRE(expr, msg)                                    \
  do {                                                           \
    if (!(expr)) throw ::autopower::util::InvalidArgument(msg); \
  } while (0)
