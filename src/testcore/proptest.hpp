// In-repo property-based testing core.
//
// A property is a (generator, check) pair run over many pseudo-random
// cases.  Every case is deterministic: case i draws its inputs from a
// PCG32 stream seeded with hash_combine(base_seed, i), so a failure is
// reproduced exactly by re-running with the same base seed — which the
// failure report prints, together with the environment line to paste:
//
//   AUTOPOWER_PROPTEST_SEED=<base_seed> ./test_differential
//
// Seed/case-count resolution (highest priority first):
//   1. set_seed_override / set_cases_override (the test binaries' --seed
//      and --cases flags),
//   2. AUTOPOWER_PROPTEST_SEED / AUTOPOWER_PROPTEST_CASES environment,
//   3. the per-property defaults (seed derived from the property name).
//
// When a case fails and the property supplies a shrinker, the runner
// greedily walks shrink candidates (bounded by max_shrink_evals check
// evaluations) and reports the smallest still-failing input it found.
//
// testcore deliberately does not depend on gtest: run_property returns a
// PropResult and the test asserts `ASSERT_TRUE(r.passed) << r.report`.
// The report is also echoed to stderr so the reproducing seed survives
// any output capture.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace autopower::testcore {

/// PCG-XSH-RR 32-bit generator (Melissa O'Neill's PCG family): 64-bit
/// state, 32-bit output, excellent statistical quality for its size and
/// cheap to seed per test case.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept {
    inc_ = (stream << 1u) | 1u;
    state_ = 0u;
    (void)next_u32();
    state_ += seed;
    (void)next_u32();
  }

  std::uint32_t next_u32() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t hi = next_u32();
    return (hi << 32) | next_u32();
  }

  /// Uniform in [0, n); returns 0 when n == 0.
  std::uint64_t next_below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : next_u64() % n;
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  int next_int(int lo, int hi) noexcept {
    return lo + static_cast<int>(next_below(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_unit() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_unit();
  }

  bool next_bool(double p = 0.5) noexcept { return next_unit() < p; }

  /// Uniform index into a container of `size` elements.
  std::size_t index(std::size_t size) noexcept {
    return static_cast<std::size_t>(next_below(size));
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Per-property knobs.  `seed == 0` derives a default from the name, so
/// distinct properties explore distinct streams by default.
struct PropOptions {
  std::string name;
  int cases = 200;
  std::uint64_t seed = 0;
  int max_shrink_evals = 200;
};

/// Outcome of run_property.  On failure `report` names the property,
/// failing case index, base seed, input description and the exact
/// environment line that reproduces the run.
struct PropResult {
  bool passed = true;
  int cases_run = 0;
  std::uint64_t base_seed = 0;
  std::string report;
};

/// Process-wide overrides set by the test binaries' --seed / --cases
/// flags; pass std::nullopt to clear.
void set_seed_override(std::optional<std::uint64_t> seed);
void set_cases_override(std::optional<int> cases);

/// Final (overrides > environment > default) seed / case-count for one
/// property run.  Exposed for the runner and for tests of the resolution
/// order itself.
[[nodiscard]] std::uint64_t resolve_seed(const PropOptions& options);
[[nodiscard]] int resolve_cases(const PropOptions& options);

/// Derives case i's generator seed from the run's base seed.
[[nodiscard]] std::uint64_t case_seed(std::uint64_t base_seed, int case_index);

/// Parses --seed=N / --seed N / --cases=N / --cases N out of argv
/// (consuming them) and installs the overrides.  Test binaries call this
/// from main() after InitGoogleTest.  Throws util::Error on a malformed
/// value.
void apply_cli_flags(int* argc, char** argv);

namespace detail {
[[nodiscard]] std::string failure_report(
    const std::string& name, std::uint64_t base_seed, int case_index,
    const std::string& message, const std::string& described_input,
    int shrink_steps);
void echo_failure(const std::string& report);
}  // namespace detail

/// Runs `check` over `resolve_cases(options)` generated inputs.  `check`
/// returns std::nullopt on success or a failure message; any exception it
/// (or `generate`) throws also fails the case with e.what().  `describe`
/// renders the failing input for the report (optional).  `shrink` maps a
/// failing input to simpler candidates to try (optional); the runner
/// greedily descends while candidates keep failing.
template <typename T>
PropResult run_property(
    const PropOptions& options, const std::function<T(Pcg32&)>& generate,
    const std::function<std::optional<std::string>(const T&)>& check,
    const std::function<std::string(const T&)>& describe = nullptr,
    const std::function<std::vector<T>(const T&)>& shrink = nullptr) {
  PropResult result;
  result.base_seed = resolve_seed(options);
  const int cases = resolve_cases(options);

  const auto checked = [&check](const T& input) -> std::optional<std::string> {
    try {
      return check(input);
    } catch (const std::exception& e) {
      return std::string("unexpected exception: ") + e.what();
    } catch (...) {
      return std::string("unexpected non-std exception");
    }
  };

  for (int i = 0; i < cases; ++i) {
    Pcg32 rng(case_seed(result.base_seed, i));
    T input;
    try {
      input = generate(rng);
    } catch (const std::exception& e) {
      result.passed = false;
      result.report = detail::failure_report(
          options.name, result.base_seed, i,
          std::string("generator threw: ") + e.what(), "<no input>", 0);
      detail::echo_failure(result.report);
      return result;
    }
    ++result.cases_run;
    auto failure = checked(input);
    if (!failure) continue;

    // Greedy shrink: keep replacing the failing input with the first
    // still-failing candidate, bounded by max_shrink_evals evaluations.
    int shrink_steps = 0;
    if (shrink) {
      int evals = 0;
      bool made_progress = true;
      while (made_progress && evals < options.max_shrink_evals) {
        made_progress = false;
        for (const T& candidate : shrink(input)) {
          if (evals >= options.max_shrink_evals) break;
          ++evals;
          if (auto f = checked(candidate)) {
            input = candidate;
            failure = std::move(f);
            ++shrink_steps;
            made_progress = true;
            break;
          }
        }
      }
    }

    result.passed = false;
    result.report = detail::failure_report(
        options.name, result.base_seed, i, *failure,
        describe ? describe(input) : std::string("<input not described>"),
        shrink_steps);
    detail::echo_failure(result.report);
    return result;
  }
  return result;
}

}  // namespace autopower::testcore
