// Random-input generators for the property/differential tests.
//
// Every generator draws from a caller-owned Pcg32, so one test case's
// inputs come from one seeded stream (proptest.hpp).  Generated values
// stay inside the ranges the production code is specified for:
//
//   * hardware configurations mix per-axis values observed across the
//     BOOM design space (paper Table II), so any generated point is a
//     plausible core the simulator can execute — while covering far more
//     of the 14-dimensional grid than the 15 canonical C1..C15 points;
//   * workload profiles keep instruction-mix fractions summing below 1
//     and footprints/entropies in their documented [0, 1] / kB ranges;
//   * datasets deliberately include duplicate-valued and constant
//     feature columns to stress split-finding tie handling;
//   * request batches mix valid config/workload/mode names with (when
//     asked) unknown names and malformed lines for the error paths.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "ml/dataset.hpp"
#include "ml/gbt.hpp"
#include "serve/engine.hpp"
#include "sim/perfsim.hpp"
#include "testcore/proptest.hpp"
#include "workload/workload.hpp"

namespace autopower::testcore {

/// A configuration whose value on each axis is drawn from the values
/// that axis takes across boom_design_space().  Named "Gxxxxxxxx" from a
/// hash of its values (PerfSimulator keys structural memo entries on the
/// values, not the name).
[[nodiscard]] arch::HardwareConfig random_hardware_config(Pcg32& rng);

/// One phase with mix fractions scaled to sum below 0.85 (remainder is
/// ALU work) and footprints in simulator-supported ranges.
[[nodiscard]] workload::WorkloadPhase random_workload_phase(Pcg32& rng,
                                                           int index);

/// 1..4 phases, 20k..120k dynamic instructions.
[[nodiscard]] workload::WorkloadProfile random_workload_profile(Pcg32& rng);

struct DatasetShape {
  int min_rows = 4;
  int max_rows = 48;
  int min_features = 2;
  int max_features = 6;
};

/// Random regression dataset.  Each column independently picks a style:
/// continuous uniform, small discrete value pool (duplicates/ties), or
/// constant.  Targets mix a linear signal with noise.
[[nodiscard]] ml::Dataset random_dataset(Pcg32& rng,
                                         const DatasetShape& shape = {});

/// Small (test-speed) GBT hyper-parameters: 2..10 rounds, depth 1..4,
/// varied lambda/gamma/min_child_weight/learning-rate.
[[nodiscard]] ml::GbtOptions random_gbt_options(Pcg32& rng);

/// Reduced-cost simulator options (sample counts in the hundreds, small
/// phase repeats) so hundreds of property cases stay fast under ASan.
[[nodiscard]] sim::SimOptions small_sim_options(Pcg32& rng);

/// 1..max_size requests over the canonical C1..C15 / known-workload
/// names and all three modes.  With include_invalid, some requests get
/// unknown config or workload names (exercising the per-request error
/// path without aborting the batch).
[[nodiscard]] std::vector<serve::BatchRequest> random_request_batch(
    Pcg32& rng, std::size_t max_size, bool include_invalid);

/// Serialises requests as JSONL text, randomly omitting the optional
/// "mode" key when it is "total" and varying inter-line whitespace.
[[nodiscard]] std::string requests_to_jsonl(
    const std::vector<serve::BatchRequest>& requests, Pcg32& rng);

}  // namespace autopower::testcore
