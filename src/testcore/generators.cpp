#include "testcore/generators.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "serve/jsonl.hpp"
#include "util/rng.hpp"

namespace autopower::testcore {

namespace {

/// Distinct values each hardware axis takes across the BOOM design
/// space, computed once.  Mixing per-axis observed values keeps every
/// generated point inside the envelope the simulator was written for.
const std::array<std::vector<int>, arch::kNumHwParams>& axis_pools() {
  static const auto* pools = [] {
    auto* p = new std::array<std::vector<int>, arch::kNumHwParams>;
    for (const auto& cfg : arch::boom_design_space()) {
      for (const arch::HwParam param : arch::all_hw_params()) {
        auto& pool = (*p)[static_cast<std::size_t>(param)];
        const int v = cfg.value(param);
        if (std::find(pool.begin(), pool.end(), v) == pool.end()) {
          pool.push_back(v);
        }
      }
    }
    return p;
  }();
  return *pools;
}

const std::vector<std::string>& known_workload_names() {
  static const auto* names = [] {
    auto* n = new std::vector<std::string>;
    for (const auto& w : workload::riscv_tests_workloads()) {
      n->push_back(w.name);
    }
    for (const auto& w : workload::trace_workloads()) n->push_back(w.name);
    for (const auto& w : workload::extension_workloads()) {
      n->push_back(w.name);
    }
    return n;
  }();
  return *names;
}

}  // namespace

arch::HardwareConfig random_hardware_config(Pcg32& rng) {
  std::array<int, arch::kNumHwParams> values{};
  std::uint64_t h = util::hash_str("generated-config");
  for (std::size_t i = 0; i < arch::kNumHwParams; ++i) {
    const auto& pool = axis_pools()[i];
    values[i] = pool[rng.index(pool.size())];
    h = util::hash_combine(h, static_cast<std::uint64_t>(values[i]));
  }
  std::ostringstream name;
  name << "G" << std::hex << (h >> 32);
  return arch::HardwareConfig(name.str(), values);
}

workload::WorkloadPhase random_workload_phase(Pcg32& rng, int index) {
  workload::WorkloadPhase ph;
  ph.name = "gen_phase_" + std::to_string(index);
  ph.weight = rng.next_range(0.2, 1.0);
  ph.ilp = rng.next_range(0.8, 5.0);
  // Draw raw mix weights and scale them to a total below 0.85, keeping
  // the ALU remainder positive.
  double raw[5];
  double sum = 0.0;
  for (double& r : raw) {
    r = rng.next_range(0.05, 1.0);
    sum += r;
  }
  const double total = rng.next_range(0.25, 0.85);
  ph.branch_frac = raw[0] / sum * total;
  ph.load_frac = raw[1] / sum * total;
  ph.store_frac = raw[2] / sum * total;
  ph.fp_frac = rng.next_bool(0.4) ? raw[3] / sum * total : 0.0;
  ph.muldiv_frac = raw[4] / sum * total * 0.3;
  ph.branch_entropy = rng.next_range(0.0, 1.0);
  ph.dcache_footprint_kb = rng.next_range(1.0, 128.0);
  ph.dcache_stride_frac = rng.next_range(0.0, 1.0);
  ph.icache_footprint_kb = rng.next_range(1.0, 32.0);
  ph.mem_serialisation = rng.next_range(0.0, 0.8);
  return ph;
}

workload::WorkloadProfile random_workload_profile(Pcg32& rng) {
  workload::WorkloadProfile profile;
  const int phases = rng.next_int(1, 4);
  std::uint64_t h = util::hash_str("generated-workload");
  for (int i = 0; i < phases; ++i) {
    profile.phases.push_back(random_workload_phase(rng, i));
    h = util::hash_combine(h, rng.next_u64());
  }
  std::ostringstream name;
  name << "gen_wl_" << std::hex << (h >> 40);
  profile.name = name.str();
  profile.instructions = 20'000 + rng.next_below(100'000);
  return profile;
}

ml::Dataset random_dataset(Pcg32& rng, const DatasetShape& shape) {
  const int features = rng.next_int(shape.min_features, shape.max_features);
  const int rows = rng.next_int(shape.min_rows, shape.max_rows);

  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(features));
  for (int j = 0; j < features; ++j) names.push_back("f" + std::to_string(j));

  // Column-major generation so each column can have its own style, then
  // transpose into add_sample rows.
  std::vector<std::vector<double>> columns(
      static_cast<std::size_t>(features));
  for (auto& col : columns) {
    col.resize(static_cast<std::size_t>(rows));
    const int style = rng.next_int(0, 3);
    if (style == 0) {
      // Constant column: split search must yield no gain, never divide
      // by a zero-width threshold window.
      const double v = rng.next_range(-5.0, 5.0);
      std::fill(col.begin(), col.end(), v);
    } else if (style <= 2) {
      // Small discrete pool: guaranteed duplicate values -> tie handling
      // in the sorted-scan split search.
      const int pool_size = rng.next_int(2, 4);
      std::array<double, 4> pool{};
      for (int k = 0; k < pool_size; ++k) {
        pool[static_cast<std::size_t>(k)] = rng.next_range(-10.0, 10.0);
      }
      for (double& v : col) {
        v = pool[rng.index(static_cast<std::size_t>(pool_size))];
      }
    } else {
      // Continuous column: one batched unit fill through the SIMD rng
      // kernel (util::Rng::fill_unit), mapped onto [-10, 10).
      util::Rng crng(rng.next_u64());
      crng.fill_unit(col);
      for (double& v : col) v = -10.0 + 20.0 * v;
    }
  }

  // Targets: linear signal over the columns plus noise, occasionally
  // pure noise (trees must cope with unlearnable targets too).
  std::vector<double> coeff(static_cast<std::size_t>(features));
  for (double& c : coeff) c = rng.next_range(-2.0, 2.0);
  const bool pure_noise = rng.next_bool(0.2);

  ml::Dataset data(std::move(names));
  std::vector<double> row(static_cast<std::size_t>(features));
  for (int i = 0; i < rows; ++i) {
    double target = 0.0;
    for (int j = 0; j < features; ++j) {
      row[static_cast<std::size_t>(j)] =
          columns[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
      target += coeff[static_cast<std::size_t>(j)] *
                row[static_cast<std::size_t>(j)];
    }
    if (pure_noise) target = 0.0;
    target += rng.next_range(-1.0, 1.0);
    data.add_sample(row, target);
  }
  return data;
}

ml::GbtOptions random_gbt_options(Pcg32& rng) {
  ml::GbtOptions opt;
  opt.num_rounds = rng.next_int(2, 10);
  opt.learning_rate = rng.next_range(0.05, 0.5);
  opt.nonnegative_prediction = rng.next_bool(0.3);
  opt.tree.max_depth = rng.next_int(1, 4);
  opt.tree.lambda = rng.next_range(0.1, 3.0);
  opt.tree.gamma = rng.next_bool(0.5) ? 0.0 : rng.next_range(0.0, 1.0);
  opt.tree.min_child_weight = rng.next_range(0.5, 3.0);
  return opt;
}

sim::SimOptions small_sim_options(Pcg32& rng) {
  sim::SimOptions opt;
  opt.window_cycles = rng.next_int(20, 80);
  opt.sample_accesses = rng.next_int(200, 700);
  opt.sample_branches = rng.next_int(200, 700);
  opt.phase_repeats = rng.next_int(2, 6);
  return opt;
}

std::vector<serve::BatchRequest> random_request_batch(Pcg32& rng,
                                                      std::size_t max_size,
                                                      bool include_invalid) {
  const auto& configs = arch::boom_design_space();
  const auto& workloads = known_workload_names();
  const auto& riscv = workload::riscv_tests_workloads();
  const std::size_t size = 1 + rng.index(max_size);
  std::vector<serve::BatchRequest> batch;
  batch.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    serve::BatchRequest req;
    const int mode = rng.next_int(0, 2);
    req.mode = mode == 0   ? serve::PredictMode::kTotal
               : mode == 1 ? serve::PredictMode::kPerComponent
                           : serve::PredictMode::kTrace;
    if (include_invalid && rng.next_bool(0.15)) {
      req.config = "X" + std::to_string(rng.next_below(100));
    } else {
      req.config = configs[rng.index(configs.size())].name();
    }
    if (include_invalid && rng.next_bool(0.15)) {
      req.workload = "nosuch_" + std::to_string(rng.next_below(100));
    } else if (req.mode == serve::PredictMode::kTrace) {
      // Trace responses carry one value per 50-cycle window; keep the
      // generated traces to the ~100k-instruction riscv-tests workloads
      // (a GEMM/SPMM trace would be millions of windows per case).
      req.workload = riscv[rng.index(riscv.size())].name;
    } else {
      req.workload = workloads[rng.index(workloads.size())];
    }
    batch.push_back(std::move(req));
  }
  return batch;
}

std::string requests_to_jsonl(const std::vector<serve::BatchRequest>& requests,
                              Pcg32& rng) {
  std::ostringstream out;
  for (const auto& req : requests) {
    if (rng.next_bool(0.2)) out << "\n";  // blank lines are skipped
    out << "{\"config\": \"" << serve::json_escape(req.config)
        << "\", \"workload\": \"" << serve::json_escape(req.workload) << "\"";
    // "mode" is optional when it is the default "total".
    if (req.mode != serve::PredictMode::kTotal || rng.next_bool(0.5)) {
      out << ", \"mode\": \"" << serve::to_string(req.mode) << "\"";
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace autopower::testcore
