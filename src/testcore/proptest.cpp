#include "testcore/proptest.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

namespace autopower::testcore {

namespace {

std::optional<std::uint64_t> g_seed_override;
std::optional<int> g_cases_override;

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    throw util::Error(std::string(name) + " is not a number: " + text);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

void set_seed_override(std::optional<std::uint64_t> seed) {
  g_seed_override = seed;
}

void set_cases_override(std::optional<int> cases) { g_cases_override = cases; }

std::uint64_t resolve_seed(const PropOptions& options) {
  if (g_seed_override) return *g_seed_override;
  if (const auto env = env_u64("AUTOPOWER_PROPTEST_SEED")) return *env;
  if (options.seed != 0) return options.seed;
  return util::hash_str(options.name);
}

int resolve_cases(const PropOptions& options) {
  if (g_cases_override) return *g_cases_override;
  if (const auto env = env_u64("AUTOPOWER_PROPTEST_CASES")) {
    return static_cast<int>(*env);
  }
  return options.cases;
}

std::uint64_t case_seed(std::uint64_t base_seed, int case_index) {
  return util::hash_combine(base_seed,
                            static_cast<std::uint64_t>(case_index));
}

void apply_cli_flags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg(argv[i]);
    std::string_view value;
    const auto take = [&](std::string_view flag) -> bool {
      if (arg == flag) {
        if (i + 1 >= *argc) {
          throw util::Error(std::string(flag) + " needs a value");
        }
        value = argv[++i];
        return true;
      }
      const std::string prefix = std::string(flag) + "=";
      if (arg.substr(0, prefix.size()) == prefix) {
        value = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    if (take("--seed")) {
      char* end = nullptr;
      const std::string text(value);
      const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        throw util::Error("--seed is not a number: " + text);
      }
      set_seed_override(static_cast<std::uint64_t>(v));
    } else if (take("--cases")) {
      set_cases_override(util::parse_int(value, "--cases", 1));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
}

namespace detail {

std::string failure_report(const std::string& name, std::uint64_t base_seed,
                           int case_index, const std::string& message,
                           const std::string& described_input,
                           int shrink_steps) {
  std::ostringstream out;
  out << "property '" << name << "' failed at case " << case_index
      << " (base seed " << base_seed << ")\n"
      << "  " << message << "\n"
      << "  input";
  if (shrink_steps > 0) out << " (after " << shrink_steps << " shrink steps)";
  out << ": " << described_input << "\n"
      << "  reproduce: AUTOPOWER_PROPTEST_SEED=" << base_seed
      << " AUTOPOWER_PROPTEST_CASES=" << (case_index + 1)
      << " <test binary>";
  return out.str();
}

void echo_failure(const std::string& report) {
  std::fprintf(stderr, "[proptest] %s\n", report.c_str());
  std::fflush(stderr);
}

}  // namespace detail

}  // namespace autopower::testcore
