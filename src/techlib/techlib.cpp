#include "techlib/techlib.hpp"

namespace autopower::techlib {

const TechLibrary& TechLibrary::default_40nm() {
  static const TechLibrary lib{};
  return lib;
}

}  // namespace autopower::techlib
