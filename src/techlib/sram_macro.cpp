#include "techlib/sram_macro.hpp"

#include <cmath>
#include <limits>
#include <map>

#include "util/error.hpp"

namespace autopower::techlib {

std::string SramMacroSpec::name() const {
  return "sram_" + std::to_string(width) + "x" + std::to_string(depth);
}

namespace {

/// Access energies follow the usual compiler trends: roughly linear in
/// width (bitline count) and sub-linear in depth (wordline/decode).
SramMacroSpec make_macro(int width, int depth) {
  SramMacroSpec spec;
  spec.width = width;
  spec.depth = depth;
  const double w = static_cast<double>(width);
  const double d = static_cast<double>(depth);
  spec.read_energy = 0.63 + 0.014 * w + 0.0077 * w * std::sqrt(d) / 8.0 +
                     0.0028 * std::sqrt(d);
  spec.write_energy = 1.05 * spec.read_energy + 0.15;
  spec.leakage = 0.00002 * w * d / 8.0 + 0.002;
  return spec;
}

}  // namespace

const SramMacroLibrary& SramMacroLibrary::default_40nm() {
  static const SramMacroLibrary lib = [] {
    SramMacroLibrary out;
    constexpr int kWidths[] = {8, 16, 20, 24, 32, 40, 48, 64};
    constexpr int kDepths[] = {16, 32, 64, 128, 256, 512, 1024};
    for (int w : kWidths) {
      for (int d : kDepths) {
        out.macros_.push_back(make_macro(w, d));
      }
    }
    return out;
  }();
  return lib;
}

const SramMacroSpec& SramMacroLibrary::find(int width, int depth) const {
  for (const auto& m : macros_) {
    if (m.width == width && m.depth == depth) return m;
  }
  throw util::InvalidArgument("unsupported SRAM macro shape: " +
                              std::to_string(width) + "x" +
                              std::to_string(depth));
}

MacroMappingResult map_block_to_macros(const SramMacroLibrary& library,
                                       int block_width, int block_depth) {
  AP_REQUIRE(block_width > 0 && block_depth > 0,
             "SRAM block shape must be positive");

  // The mapping is pure in (library, shape) and sits on the per-window hot
  // path of trace evaluation; memoise per thread.  Keyed on the library
  // address too, so tests with custom catalogues stay correct.
  struct Key {
    const SramMacroLibrary* lib;
    long long shape;
    bool operator<(const Key& o) const {
      return lib != o.lib ? lib < o.lib : shape < o.shape;
    }
  };
  thread_local std::map<Key, MacroMappingResult> memo;
  const Key key{&library,
                (static_cast<long long>(block_width) << 32) | block_depth};
  if (const auto it = memo.find(key); it != memo.end()) return it->second;

  const MacroMappingResult* best = nullptr;
  MacroMappingResult candidate;
  MacroMappingResult chosen;
  std::int64_t best_waste = std::numeric_limits<std::int64_t>::max();
  int best_total = std::numeric_limits<int>::max();
  double best_energy = std::numeric_limits<double>::max();

  const std::int64_t block_bits =
      static_cast<std::int64_t>(block_width) * block_depth;

  for (const auto& macro : library.macros()) {
    candidate.macro = macro;
    candidate.per_row = (block_width + macro.width - 1) / macro.width;
    candidate.per_col = (block_depth + macro.depth - 1) / macro.depth;
    const std::int64_t used_bits =
        static_cast<std::int64_t>(candidate.total()) * macro.bits();
    const std::int64_t waste = used_bits - block_bits;
    const int total = candidate.total();
    const double energy = macro.read_energy * candidate.per_row;

    const bool better =
        waste < best_waste ||
        (waste == best_waste &&
         (total < best_total ||
          (total == best_total && energy < best_energy)));
    if (better) {
      chosen = candidate;
      best = &chosen;
      best_waste = waste;
      best_total = total;
      best_energy = energy;
    }
  }
  AP_ASSERT_MSG(best != nullptr, "macro library is empty");
  memo.emplace(key, chosen);
  return chosen;
}

}  // namespace autopower::techlib
