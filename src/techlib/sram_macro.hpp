// SRAM macro catalogue and macro-level mapping rule (the "memory compiler"
// plus the VLSI flow's block->macro decomposition script).
//
// The memory compiler of a technology node can only generate a discrete set
// of macro shapes.  An RTL-level SRAM Block with an arbitrary (width, depth)
// is therefore tiled from supported macros by an automatic script that is
// part of the VLSI flow.  AutoPower's macro-level mapping reuses exactly
// this rule (paper Sec. II-B): hardware mapping gives the macro grid, and
// the activity mapping divides block read/write frequency by N_col — the
// number of macros stacked along the depth dimension (Eq. 9).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace autopower::techlib {

/// One macro shape supported by the memory compiler.
struct SramMacroSpec {
  int width = 0;   ///< bits per word
  int depth = 0;   ///< words
  double read_energy = 0.0;   ///< pJ per read access
  double write_energy = 0.0;  ///< pJ per full-width write access
  double leakage = 0.0;       ///< pJ per cycle

  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::int64_t bits() const noexcept {
    return static_cast<std::int64_t>(width) * depth;
  }
};

/// The macro catalogue of the synthetic 40nm node.
class SramMacroLibrary {
 public:
  /// Builds the default catalogue (widths 8..64, depths 32..1024).
  [[nodiscard]] static const SramMacroLibrary& default_40nm();

  [[nodiscard]] std::span<const SramMacroSpec> macros() const noexcept {
    return macros_;
  }

  /// Looks up a macro by exact shape; throws util::InvalidArgument if the
  /// compiler does not support it.
  [[nodiscard]] const SramMacroSpec& find(int width, int depth) const;

 private:
  std::vector<SramMacroSpec> macros_;
};

/// Result of decomposing one SRAM Block into macros.
struct MacroMappingResult {
  SramMacroSpec macro;  ///< the chosen macro shape
  int per_row = 0;      ///< macros side by side covering the width
  int per_col = 0;      ///< N_col: macros stacked along the depth
  [[nodiscard]] int total() const noexcept { return per_row * per_col; }
};

/// The deterministic block->macro decomposition rule of the VLSI flow.
///
/// Chooses the supported macro minimising wasted bits, breaking ties by
/// fewer macros and then by lower read energy.  The same rule is used when
/// generating the golden layout and inside AutoPower's macro-level mapping,
/// mirroring the paper ("the mapping rule is a part of VLSI flow ... it is
/// available and unchanged for all processors implemented with the same
/// flow").
[[nodiscard]] MacroMappingResult map_block_to_macros(
    const SramMacroLibrary& library, int block_width, int block_depth);

}  // namespace autopower::techlib
