// Synthetic 40nm-class technology library (stand-in for the TSMC 40nm
// standard-cell library used by the paper's VLSI flow).
//
// All energies are per-cycle / per-event picojoules.  The core clock runs
// at 1 GHz, so 1 pJ/cycle == 1 mW: power numbers throughout the repository
// are in milliwatts.
//
// AutoPower the *model* reads only the nominal values (`clock_pin_energy`,
// `gating_latch_energy`, macro read/write energies) — exactly the lookups
// the paper performs on the library file.  The *golden* power model also
// applies per-component deviations (cell mix, drive strengths) that the
// architecture-level model cannot see; this keeps model error realistic.
#pragma once

#include <cstdint>

namespace autopower::techlib {

/// Nominal standard-cell energies of the synthetic 40nm node.
struct TechLibrary {
  /// Operating frequency in GHz (power[mW] = energy[pJ/cycle] * f_ghz).
  double frequency_ghz = 1.0;

  /// p_reg: clock-pin internal energy of a register, per active clock
  /// cycle (pJ).  This is the value Eq. 7 looks up from the library.
  double clock_pin_energy = 0.0022;

  /// p_latch: clock-pin energy of the latch inside a clock-gating cell,
  /// per active cycle (pJ).
  double gating_latch_energy = 0.0036;

  /// Data-path (non-clock) energy of one register per data toggle (pJ).
  double register_toggle_energy = 0.0011;

  /// Static leakage of one register (pJ/cycle).
  double register_leakage = 0.00008;

  /// Dynamic energy of one combinational cell per unit toggle rate (pJ).
  double comb_toggle_energy = 0.00052;

  /// Static leakage of one combinational cell (pJ/cycle).
  double comb_leakage = 0.00003;

  /// Returns the library used for every experiment in the paper repro.
  [[nodiscard]] static const TechLibrary& default_40nm();

  /// Converts a per-cycle energy (pJ) into power (mW) at this node.
  [[nodiscard]] double power_mw(double energy_pj_per_cycle) const noexcept {
    return energy_pj_per_cycle * frequency_ghz;
  }
};

}  // namespace autopower::techlib
