// Surrogate-guided design-space exploration.
//
// The trained AutoPower model is a cheap oracle over the hardware
// parameter space, so beyond ~10^5 grid cells the exhaustive sweep stops
// being the right tool: explore runs a multi-objective evolutionary
// search — candidate generation (seeded random + mutation / crossover
// over the grid axes, deduplicated against a visited set), MODEL-scored
// ranking (closed-form proxy event estimation feeding
// AutoPowerModel::predict_total_batch; no simulator in the inner loop),
// NSGA-II-style non-dominated sorting with crowding-distance selection,
// and per-generation SIMULATOR verification of the elites batched
// through serve::evaluate_configs (sharing one StructuralSimCache, so
// neighbouring elites reuse each other's structural measurements).
// Verified truths are re-injected as calibration anchors (a k-NN ratio
// correction of the proxy's per-workload ipc / mW) and as parents for
// the next generation, and the model-vs-simulator elite error is
// reported per generation.
//
// Objectives: maximise ipc_per_watt, minimise mean total mW, minimise an
// analytic area proxy (a fixed weighted sum of the Table II parameters —
// no silicon data in this repo, but a deterministic monotone stand-in is
// enough to shape a frontier).
//
// Determinism: every stochastic choice draws from a counter-based
// util::Rng stream keyed (seed, generation, slot), scoring writes
// results by slot index, and verification goes through the
// thread-invariant evaluate_configs — so the frontier JSONL is
// byte-identical for a fixed seed at ANY thread count.  Checkpoints
// reuse the serve/checkpoint crc-JSONL format (one line per VERIFIED
// configuration, fingerprint extended with the explore identity): a
// resumed run replays the verified rows as a memo and re-walks the
// deterministic search, skipping already-verified evaluations, so the
// final frontier is byte-identical to an uninterrupted run even after a
// SIGKILL mid-generation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arch/events.hpp"
#include "arch/params.hpp"
#include "core/autopower.hpp"
#include "serve/sweep.hpp"
#include "util/rng.hpp"
#include "util/structural_cache.hpp"
#include "workload/workload.hpp"

namespace autopower::explore {

/// One candidate's objective vector.  Larger ipc_per_watt is better;
/// smaller total_mw and area are better.
struct Objectives {
  double ipc_per_watt = 0.0;
  double total_mw = 0.0;
  double area = 0.0;
};

/// Pareto dominance: `a` dominates `b` when it is no worse on every
/// objective and strictly better on at least one.
[[nodiscard]] bool dominates(const Objectives& a, const Objectives& b) noexcept;

/// Deterministic analytic area proxy (arbitrary units): a fixed weighted
/// sum of the 14 Table II parameters, weights reflecting rough relative
/// silicon cost (issue/cache structures heavy, TLB/branch tables light).
[[nodiscard]] double area_proxy(const arch::HardwareConfig& cfg) noexcept;

/// Fast non-dominated sort: returns the Pareto rank of every objective
/// vector (0 = non-dominated front, 1 = non-dominated after removing
/// front 0, ...).  O(M N^2) like NSGA-II's fast-non-dominated-sort.
[[nodiscard]] std::vector<std::size_t> non_dominated_rank(
    std::span<const Objectives> objs);

/// NSGA-II crowding distance of the members of one front (`front` holds
/// indices into `objs`).  Returned in `front` order; boundary members of
/// every objective get +infinity.  Objectives with zero spread
/// contribute nothing.
[[nodiscard]] std::vector<double> crowding_distance(
    std::span<const Objectives> objs, std::span<const std::size_t> front);

// ---- Grid-coordinate candidate operators (public for property tests).
// A candidate is a digit vector: one value-list index per axis, in axis
// order.  The flat grid index uses the GridCursor mixed-radix encoding
// (first axis varies slowest).

[[nodiscard]] std::size_t digits_to_index(
    std::span<const std::size_t> digits,
    std::span<const serve::SweepAxis> axes);
[[nodiscard]] std::vector<std::size_t> index_to_digits(
    std::size_t index, std::span<const serve::SweepAxis> axes);

/// Point mutation: re-draws 1–2 axes (uniformly chosen) to uniform
/// in-range values.  Always returns an in-grid digit vector.
[[nodiscard]] std::vector<std::size_t> mutate(
    std::span<const std::size_t> digits,
    std::span<const serve::SweepAxis> axes, util::Rng& rng);

/// Uniform crossover: each axis takes parent a's or b's digit with
/// probability 1/2.  Always returns an in-grid digit vector.
[[nodiscard]] std::vector<std::size_t> crossover(
    std::span<const std::size_t> a, std::span<const std::size_t> b,
    std::span<const serve::SweepAxis> axes, util::Rng& rng);

/// Closed-form proxy event estimation: the simulator's interval IPC
/// model with smooth analytic stand-ins for the sampled structural miss
/// rates.  A pure function of (configuration, workload) — no run
/// history — so a resumed search recomputes identical scores.  The
/// estimate feeds predict_total_batch for surrogate power; absolute
/// accuracy is corrected per-workload by the k-NN anchor calibration.
[[nodiscard]] arch::EventVector proxy_events(
    const arch::HardwareConfig& cfg,
    const workload::WorkloadProfile& profile);

struct ExploreSpec {
  std::string base = "C8";             ///< Table II baseline config
  std::vector<serve::SweepAxis> axes;  ///< grid axes (the search space)
  std::vector<std::string> workloads;  ///< evaluation workloads
  std::size_t threads = 1;
  std::uint64_t seed = 1;
  std::size_t population = 64;   ///< candidates scored per generation
  std::size_t generations = 20;
  /// Elites simulator-verified per generation; 0 = verify every scored
  /// candidate (the differential-oracle mode).
  std::size_t verify_top = 16;
  std::string checkpoint;  ///< crc-JSONL checkpoint path ("" = off)
  bool resume = false;     ///< replay `checkpoint` first
};

/// One Pareto-frontier member: the verified sweep row plus its area.
struct FrontierRow {
  serve::SweepRow row;      ///< row.index = grid index, row.rank = 1-based
  double area = 0.0;        ///< area_proxy of row.config
};

struct ExploreReport {
  std::vector<FrontierRow> frontier;  ///< ipc_per_watt desc, index asc
  std::size_t grid_configs = 0;       ///< grid size
  std::size_t generations_run = 0;
  std::size_t candidates_scored = 0;  ///< model-scored candidates
  std::size_t verified = 0;           ///< simulator-evaluated this run
  std::size_t resumed = 0;            ///< rows replayed from checkpoint
  /// Mean relative |surrogate ipc_per_watt − verified| per generation,
  /// over that generation's newly verified elites (0 when none).
  std::vector<double> elite_err;
  util::StructuralSimCache::Stats structural;  ///< sub-memo hit/miss
};

/// Runs the search.  Deterministic for a fixed spec (any thread count);
/// resuming a killed run converges to the identical frontier.  Throws
/// util::Error for an unknown base config, unknown workloads, an empty
/// workload/axis list, or a corrupt checkpoint.
[[nodiscard]] ExploreReport run_explore(
    const core::AutoPowerModel& model, const ExploreSpec& spec,
    std::shared_ptr<util::StructuralSimCache> structural = nullptr);

/// Writes the frontier as JSONL, one member per line:
///   {"rank":1,<append_row_json body>,"area_proxy":...}
/// Numbers round-trip exactly (serve::json_number).
void write_frontier(std::ostream& out, const ExploreReport& report);

}  // namespace autopower::explore
