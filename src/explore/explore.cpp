#include "explore/explore.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <map>
#include <ostream>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/sample.hpp"
#include "serve/checkpoint.hpp"
#include "serve/jsonl.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace autopower::explore {

bool dominates(const Objectives& a, const Objectives& b) noexcept {
  if (a.ipc_per_watt < b.ipc_per_watt) return false;
  if (a.total_mw > b.total_mw) return false;
  if (a.area > b.area) return false;
  return a.ipc_per_watt > b.ipc_per_watt || a.total_mw < b.total_mw ||
         a.area < b.area;
}

double area_proxy(const arch::HardwareConfig& cfg) noexcept {
  // Fixed per-parameter weights (arbitrary units, roughly: datapath
  // width and cache ways are silicon-heavy; predictor/TLB tables are
  // cheap per entry).  Deterministic and monotone in every parameter so
  // the area objective always pulls toward the small corner.
  using P = arch::HwParam;
  return 0.40 * cfg.value_d(P::kFetchWidth) +
         0.60 * cfg.value_d(P::kDecodeWidth) +
         0.08 * cfg.value_d(P::kFetchBufferEntry) +
         0.030 * cfg.value_d(P::kRobEntry) +
         0.025 * cfg.value_d(P::kIntPhyRegister) +
         0.025 * cfg.value_d(P::kFpPhyRegister) +
         0.050 * cfg.value_d(P::kLdqStqEntry) +
         0.020 * cfg.value_d(P::kBranchCount) +
         0.50 * cfg.value_d(P::kMemFpIssueWidth) +
         0.50 * cfg.value_d(P::kIntIssueWidth) +
         1.20 * cfg.value_d(P::kCacheWay) +
         0.030 * cfg.value_d(P::kTlbEntry) +
         0.10 * cfg.value_d(P::kMshrEntry) +
         0.050 * cfg.value_d(P::kICacheFetchBytes);
}

std::vector<std::size_t> non_dominated_rank(std::span<const Objectives> objs) {
  const std::size_t n = objs.size();
  std::vector<std::size_t> rank(n, 0);
  if (n == 0) return rank;
  // NSGA-II fast non-dominated sort: domination counts + dominated
  // lists, then peel fronts.
  std::vector<std::size_t> dom_count(n, 0);
  std::vector<std::vector<std::size_t>> dominated(n);
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dominates(objs[i], objs[j])) {
        dominated[i].push_back(j);
      } else if (dominates(objs[j], objs[i])) {
        ++dom_count[i];
      }
    }
    if (dom_count[i] == 0) front.push_back(i);
  }
  std::size_t level = 0;
  while (!front.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : front) {
      rank[i] = level;
      for (std::size_t j : dominated[i]) {
        if (--dom_count[j] == 0) next.push_back(j);
      }
    }
    front = std::move(next);
    ++level;
  }
  return rank;
}

std::vector<double> crowding_distance(std::span<const Objectives> objs,
                                      std::span<const std::size_t> front) {
  const std::size_t n = front.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, 0.0);
  if (n == 0) return dist;
  if (n <= 2) {
    std::fill(dist.begin(), dist.end(), kInf);
    return dist;
  }
  // Positions 0..n-1 into `front`, re-sorted per objective.
  std::vector<std::size_t> order(n);
  const auto accumulate = [&](auto key) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                const double ka = key(objs[front[a]]);
                const double kb = key(objs[front[b]]);
                if (ka != kb) return ka < kb;
                return front[a] < front[b];  // deterministic tie-break
              });
    const double lo = key(objs[front[order.front()]]);
    const double hi = key(objs[front[order.back()]]);
    dist[order.front()] = kInf;
    dist[order.back()] = kInf;
    if (hi <= lo) return;  // zero spread: interior contributions are 0
    for (std::size_t i = 1; i + 1 < n; ++i) {
      if (dist[order[i]] == kInf) continue;
      dist[order[i]] += (key(objs[front[order[i + 1]]]) -
                         key(objs[front[order[i - 1]]])) /
                        (hi - lo);
    }
  };
  accumulate([](const Objectives& o) { return o.ipc_per_watt; });
  accumulate([](const Objectives& o) { return o.total_mw; });
  accumulate([](const Objectives& o) { return o.area; });
  return dist;
}

std::size_t digits_to_index(std::span<const std::size_t> digits,
                            std::span<const serve::SweepAxis> axes) {
  AP_REQUIRE(digits.size() == axes.size(),
             "digit vector does not match axis count");
  // Mixed-radix encode, first axis most significant (GridCursor order).
  std::size_t index = 0;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    AP_REQUIRE(digits[a] < axes[a].values.size(),
               "digit out of range for axis");
    index = index * axes[a].values.size() + digits[a];
  }
  return index;
}

std::vector<std::size_t> index_to_digits(
    std::size_t index, std::span<const serve::SweepAxis> axes) {
  std::vector<std::size_t> digits(axes.size(), 0);
  std::size_t n = index;
  for (std::size_t a = axes.size(); a-- > 0;) {
    digits[a] = n % axes[a].values.size();
    n /= axes[a].values.size();
  }
  return digits;
}

std::vector<std::size_t> mutate(std::span<const std::size_t> digits,
                                std::span<const serve::SweepAxis> axes,
                                util::Rng& rng) {
  std::vector<std::size_t> out(digits.begin(), digits.end());
  if (axes.empty()) return out;
  const std::size_t flips = 1 + rng.next_below(2);
  for (std::size_t k = 0; k < flips; ++k) {
    const std::size_t a = rng.next_below(axes.size());
    out[a] = rng.next_below(axes[a].values.size());
  }
  return out;
}

std::vector<std::size_t> crossover(std::span<const std::size_t> a,
                                   std::span<const std::size_t> b,
                                   std::span<const serve::SweepAxis> axes,
                                   util::Rng& rng) {
  AP_REQUIRE(a.size() == axes.size() && b.size() == axes.size(),
             "crossover parents do not match axis count");
  std::vector<std::size_t> out(axes.size(), 0);
  for (std::size_t i = 0; i < axes.size(); ++i) {
    out[i] = rng.next_unit() < 0.5 ? a[i] : b[i];
    if (out[i] >= axes[i].values.size()) out[i] = axes[i].values.size() - 1;
  }
  return out;
}

namespace {

/// ±1 step on one uniformly chosen axis (direction flipped at a range
/// edge; a 1-value axis stays put).
std::vector<std::size_t> neighbour(std::span<const std::size_t> digits,
                                   std::span<const serve::SweepAxis> axes,
                                   util::Rng& rng) {
  std::vector<std::size_t> out(digits.begin(), digits.end());
  if (axes.empty()) return out;
  const std::size_t a = rng.next_below(axes.size());
  const std::size_t radix = axes[a].values.size();
  if (radix < 2) return out;
  const bool up = rng.next_unit() < 0.5;
  if (up) {
    out[a] = out[a] + 1 < radix ? out[a] + 1 : out[a] - 1;
  } else {
    out[a] = out[a] > 0 ? out[a] - 1 : out[a] + 1;
  }
  return out;
}

/// Smooth analytic miss-rate stand-in for the sampled structural
/// simulation: a footprint that fits is (nearly) resident; the excess
/// fraction of a too-large footprint misses once per line for strided
/// refs and once per access for random refs.
double smooth_miss(double footprint_kb, double capacity_kb,
                   double stride_frac, double line_amortise) {
  if (footprint_kb <= 1e-9) return 0.0;
  constexpr double kResident = 0.002;
  const double pressure = footprint_kb / std::max(capacity_kb, 1e-9);
  if (pressure <= 1.0) return kResident * pressure;
  const double excess = 1.0 - 1.0 / pressure;
  const double per_access =
      stride_frac * line_amortise + (1.0 - stride_frac);
  return std::min(1.0, kResident + excess * per_access);
}

struct ProxyMisses {
  double icache = 0.0, dcache = 0.0, itlb = 0.0, dtlb = 0.0, bp = 0.0;
};

ProxyMisses proxy_misses(const arch::HardwareConfig& cfg,
                         const workload::WorkloadPhase& ph) {
  using P = arch::HwParam;
  const double way = cfg.value_d(P::kCacheWay);
  const double mfw = cfg.value_d(P::kMemFpIssueWidth);
  const double ifb = cfg.value_d(P::kICacheFetchBytes);
  const double tlb = cfg.value_d(P::kTlbEntry);
  const double bc = cfg.value_d(P::kBranchCount);
  ProxyMisses m;
  // Capacities mirror the simulator's structures: I$ 16*ifb sets × way
  // × 64 B = ifb*way KiB; D$ 32*mfw sets = 2*mfw*way KiB; TLBs cover
  // tlb × 4 KiB pages.  Fetch strides 8*ifb bytes per 64 B line.
  m.icache = smooth_miss(ph.icache_footprint_kb, ifb * way, 0.92,
                         std::min(1.0, ifb / 8.0));
  m.dcache = smooth_miss(ph.dcache_footprint_kb, 2.0 * mfw * way,
                         ph.dcache_stride_frac, 1.0 / 8.0);
  m.itlb = smooth_miss(ph.icache_footprint_kb, tlb * 4.0, 0.95, 1.0 / 64.0);
  m.dtlb = smooth_miss(ph.dcache_footprint_kb, tlb * 4.0,
                       ph.dcache_stride_frac, 1.0 / 64.0);
  // Predictor: entropy floor plus capacity pressure of the static
  // branch set against the 64*BranchCount table.
  const double static_branches = 16.0 + ph.icache_footprint_kb * 12.0;
  const double pressure = static_branches / std::max(64.0 * bc, 1.0);
  m.bp = std::clamp(0.02 + 0.38 * ph.branch_entropy +
                        0.25 * std::min(1.0, pressure) *
                            (0.3 + 0.7 * ph.branch_entropy),
                    0.005, 0.95);
  return m;
}

/// Mirror of the simulator's interval IPC + event-rate model
/// (sim/perfsim.cpp compute_phase) with proxy_misses in place of the
/// sampled structural measurements.
void proxy_phase_rates(const arch::HardwareConfig& cfg,
                       const workload::WorkloadPhase& ph,
                       arch::EventVector& r, double& ipc_out) {
  using arch::EventKind;
  using P = arch::HwParam;
  const ProxyMisses mb = proxy_misses(cfg, ph);
  const double fw = cfg.value_d(P::kFetchWidth);
  const double dw = cfg.value_d(P::kDecodeWidth);
  const double rob = cfg.value_d(P::kRobEntry);
  const double lq = cfg.value_d(P::kLdqStqEntry);
  const double mfw = cfg.value_d(P::kMemFpIssueWidth);
  const double iw = cfg.value_d(P::kIntIssueWidth);
  const double mshr = cfg.value_d(P::kMshrEntry);
  const double fbe = cfg.value_d(P::kFetchBufferEntry);

  const double ipc0 = std::min(dw, ph.ilp);
  const double taken_frac = 0.45 * ph.branch_frac + 1e-4;
  const double instr_per_packet = std::min(fw, 1.0 / taken_frac);
  const double ic_access_per_instr = 1.0 / instr_per_packet;

  const double flush_penalty = 9.0 + 0.8 * dw;
  const double stall_branch = ph.branch_frac * mb.bp * flush_penalty;
  const double stall_icache = ic_access_per_instr * mb.icache * 16.0;
  const double stall_itlb = ic_access_per_instr * mb.itlb * 20.0;
  const double overlap =
      (1.0 - ph.mem_serialisation) * (mshr / (mshr + 3.0));
  const double miss_latency = 38.0;
  const double stall_dcache =
      ph.load_frac * mb.dcache * miss_latency * (1.0 - overlap) +
      ph.store_frac * mb.dcache * miss_latency * 0.15;
  const double stall_dtlb =
      (ph.load_frac + ph.store_frac) * mb.dtlb * 22.0;

  const double cpi = 1.0 / ipc0 + stall_branch + stall_icache +
                     stall_itlb + stall_dcache + stall_dtlb;
  double ipc = 1.0 / cpi;
  const double int_demand =
      1.0 - ph.load_frac - ph.store_frac - ph.fp_frac;
  if (int_demand > 1e-9) {
    ipc = std::min(ipc, iw / std::max(int_demand, 0.05));
  }
  const double mem_demand = ph.load_frac + ph.store_frac;
  if (mem_demand > 1e-9) ipc = std::min(ipc, mfw / mem_demand);
  if (ph.fp_frac > 1e-9) ipc = std::min(ipc, mfw / ph.fp_frac);
  const double lifetime =
      11.0 + ph.load_frac * mb.dcache * miss_latency * 0.8 +
      ph.branch_frac * mb.bp * flush_penalty * 0.4;
  ipc = std::min(ipc, 0.95 * rob / lifetime);
  const double load_residence = 7.0 + mb.dcache * miss_latency * 0.9;
  if (ph.load_frac > 1e-9) {
    ipc = std::min(ipc, 0.95 * lq / (ph.load_frac * load_residence));
  }
  ipc = std::max(ipc, 0.05);
  ipc_out = ipc;

  r[EventKind::kCycles] = 1.0;
  r[EventKind::kInstructions] = ipc;
  r[EventKind::kBranches] = ipc * ph.branch_frac;
  r[EventKind::kLoads] = ipc * ph.load_frac;
  r[EventKind::kStores] = ipc * ph.store_frac;
  r[EventKind::kFpInstrs] = ipc * ph.fp_frac;
  r[EventKind::kMulDivInstrs] = ipc * ph.muldiv_frac;
  r[EventKind::kIntAluInstrs] =
      ipc * std::max(0.0, 1.0 - ph.branch_frac - ph.load_frac -
                              ph.store_frac - ph.fp_frac - ph.muldiv_frac);

  const double waste = 1.0 + ph.branch_frac * mb.bp * (3.0 + 0.5 * dw);
  const double frontend_uops = ipc * waste;
  r[EventKind::kFetchPackets] = frontend_uops * ic_access_per_instr;
  r[EventKind::kFetchBubbles] = std::clamp(1.0 - ipc / dw, 0.0, 1.0);
  r[EventKind::kFetchBufferOcc] =
      std::min(fbe, 2.0 + 0.35 * fbe * (ipc / dw));
  r[EventKind::kBpLookups] = r[EventKind::kFetchPackets];
  r[EventKind::kBpMispredicts] = ipc * ph.branch_frac * mb.bp;
  r[EventKind::kBtbHits] =
      r[EventKind::kBpLookups] * (0.55 + 0.4 * (1.0 - ph.branch_entropy));
  r[EventKind::kICacheAccesses] = r[EventKind::kFetchPackets];
  r[EventKind::kICacheMisses] = r[EventKind::kICacheAccesses] * mb.icache;
  r[EventKind::kItlbAccesses] = r[EventKind::kICacheAccesses];
  r[EventKind::kItlbMisses] = r[EventKind::kItlbAccesses] * mb.itlb;

  r[EventKind::kDecodedUops] = frontend_uops;
  r[EventKind::kRenameUops] = frontend_uops;
  r[EventKind::kRenameStalls] =
      std::clamp(1.0 - ipc / dw, 0.0, 1.0) * 0.6;
  r[EventKind::kDispatchedUops] = frontend_uops;
  r[EventKind::kCommittedUops] = ipc;
  r[EventKind::kRobOccupancy] = std::min(0.97 * rob, ipc * lifetime);
  r[EventKind::kPipelineFlushes] =
      r[EventKind::kBpMispredicts] + 1e-5 * ipc;

  const double spec = waste;
  r[EventKind::kIntIssued] =
      ipc * spec * (r[EventKind::kIntAluInstrs] / std::max(ipc, 1e-9) +
                    ph.branch_frac + ph.muldiv_frac);
  r[EventKind::kMemIssued] = ipc * spec * mem_demand * 1.08;
  r[EventKind::kFpIssued] = ipc * spec * ph.fp_frac;
  const double iq_wait = 2.5 + 0.5 * lifetime * ph.mem_serialisation;
  r[EventKind::kIntIqOcc] =
      std::min(0.9 * (8.0 + 4.0 * dw), r[EventKind::kIntIssued] * iq_wait);
  r[EventKind::kMemIqOcc] =
      std::min(0.9 * (8.0 + 4.0 * dw), r[EventKind::kMemIssued] * iq_wait);
  r[EventKind::kFpIqOcc] =
      std::min(0.9 * (8.0 + 4.0 * dw), r[EventKind::kFpIssued] * iq_wait);
  r[EventKind::kRegfileReads] =
      1.65 * (r[EventKind::kIntIssued] + r[EventKind::kMemIssued] +
              r[EventKind::kFpIssued]);
  r[EventKind::kRegfileWrites] =
      0.82 * (r[EventKind::kIntIssued] + r[EventKind::kMemIssued] +
              r[EventKind::kFpIssued]);
  r[EventKind::kAluOps] =
      ipc * spec * (r[EventKind::kIntAluInstrs] / std::max(ipc, 1e-9) +
                    ph.branch_frac);
  r[EventKind::kMulOps] = ipc * spec * ph.muldiv_frac * 0.8;
  r[EventKind::kDivOps] = ipc * spec * ph.muldiv_frac * 0.2;
  r[EventKind::kFpuOps] = r[EventKind::kFpIssued];

  r[EventKind::kLoadsExecuted] = ipc * spec * ph.load_frac * 1.08;
  r[EventKind::kStoresExecuted] = ipc * ph.store_frac;
  r[EventKind::kStoreForwards] = r[EventKind::kLoadsExecuted] * 0.06 *
                                 std::min(1.0, ph.store_frac * 8.0);
  r[EventKind::kLdqOcc] =
      std::min(0.97 * lq, r[EventKind::kLoadsExecuted] * load_residence);
  r[EventKind::kStqOcc] =
      std::min(0.97 * lq, r[EventKind::kStoresExecuted] *
                              (6.0 + 0.3 * load_residence));
  r[EventKind::kDcacheAccesses] =
      r[EventKind::kLoadsExecuted] + r[EventKind::kStoresExecuted];
  r[EventKind::kDcacheMisses] =
      r[EventKind::kDcacheAccesses] * mb.dcache;
  r[EventKind::kDcacheWritebacks] =
      r[EventKind::kDcacheMisses] *
      std::min(0.9, 0.25 + 1.2 * ph.store_frac);
  r[EventKind::kMshrAllocs] = r[EventKind::kDcacheMisses];
  r[EventKind::kMshrFullStalls] =
      std::max(0.0, r[EventKind::kDcacheMisses] * miss_latency - mshr) /
      miss_latency * 0.5;
  r[EventKind::kDtlbAccesses] = r[EventKind::kDcacheAccesses];
  r[EventKind::kDtlbMisses] = r[EventKind::kDtlbAccesses] * mb.dtlb;
}

void append_int(std::string& out, long long value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

}  // namespace

arch::EventVector proxy_events(const arch::HardwareConfig& cfg,
                               const workload::WorkloadProfile& profile) {
  AP_REQUIRE(!profile.phases.empty(),
             "workload has no phases: " + profile.name);
  arch::EventVector acc;
  double weight_sum = 0.0;
  for (const auto& ph : profile.phases) weight_sum += ph.weight;
  for (const auto& ph : profile.phases) {
    arch::EventVector rates;
    double ipc = 0.0;
    proxy_phase_rates(cfg, ph, rates, ipc);
    const double instr = static_cast<double>(profile.instructions) *
                         ph.weight / weight_sum;
    const double cycles = instr / ipc;
    for (std::size_t i = 0; i < arch::kNumEvents; ++i) {
      const auto kind = static_cast<arch::EventKind>(i);
      acc[kind] += rates[kind] * cycles;
    }
  }
  return acc;
}

namespace {

/// One verified truth, as the calibration sees it: grid coordinates plus
/// per-workload (true, proxy) scalars.  Everything here is recomputable
/// from a checkpoint row, which is what keeps a resumed search
/// byte-identical — no state survives a kill except verified rows.
struct Anchor {
  std::vector<std::size_t> digits;
  std::vector<double> true_ipc, true_mw;    // per workload; 0 = failed cell
  std::vector<double> proxy_ipc, proxy_mw;  // proxy estimates, same order
};

/// Normalised squared grid distance between two digit vectors.
double digit_distance2(std::span<const std::size_t> a,
                       std::span<const std::size_t> b,
                       std::span<const serve::SweepAxis> axes) {
  double d2 = 0.0;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const double span =
        std::max<double>(1.0, static_cast<double>(axes[i].values.size()) - 1.0);
    const double d = (static_cast<double>(a[i]) - static_cast<double>(b[i])) /
                     span;
    d2 += d * d;
  }
  return d2;
}

std::string explore_fingerprint(const ExploreSpec& spec,
                                const core::AutoPowerModel& model) {
  // The sweep fingerprint hashes base + axes + workloads + model; fold
  // the explore search identity (seed, population, generations,
  // verify_top) into the base string so a checkpoint can only resume
  // the exact search that wrote it — a different seed or cadence walks
  // a different verification order.
  std::string base = spec.base;
  base += "#explore-v1#seed=";
  append_int(base, static_cast<long long>(spec.seed));
  base += "#pop=";
  append_int(base, static_cast<long long>(spec.population));
  base += "#gen=";
  append_int(base, static_cast<long long>(spec.generations));
  base += "#verify=";
  append_int(base, static_cast<long long>(spec.verify_top));
  return serve::sweep_fingerprint(base, spec.axes, spec.workloads,
                                  model.fingerprint());
}

/// True objectives of a verified row (caller has checked eligibility).
Objectives row_objectives(const serve::SweepRow& row) {
  return Objectives{row.ipc_per_watt, row.mean_total_mw,
                    area_proxy(row.config)};
}

bool frontier_eligible(const serve::SweepRow& row) {
  return row.failed == 0 && row.mean_total_mw > 0.0;
}

}  // namespace

ExploreReport run_explore(
    const core::AutoPowerModel& model, const ExploreSpec& spec,
    std::shared_ptr<util::StructuralSimCache> structural) {
  AP_REQUIRE(!spec.workloads.empty(), "explore needs at least one workload");
  AP_REQUIRE(!spec.axes.empty(), "explore needs at least one grid axis");
  AP_REQUIRE(spec.population > 0, "explore population must be positive");
  AP_REQUIRE(!spec.resume || !spec.checkpoint.empty(),
             "explore resume needs a checkpoint path");
  const arch::HardwareConfig& base = arch::boom_config(spec.base);
  const serve::GridCursor cursor(base, spec.axes);
  const std::size_t n_configs = cursor.size();
  const std::size_t n_workloads = spec.workloads.size();
  const std::span<const serve::SweepAxis> axes(spec.axes);

  std::vector<const workload::WorkloadProfile*> profiles;
  std::vector<workload::ProgramFeatures> programs;
  profiles.reserve(n_workloads);
  for (const std::string& name : spec.workloads) {
    profiles.push_back(&workload::workload_by_name(name));
    programs.push_back(workload::program_features(*profiles.back()));
  }

  if (structural == nullptr) {
    structural =
        std::make_shared<util::StructuralSimCache>(/*shards_per_sub=*/8,
                                                   /*max_entries=*/0);
  }
  const util::StructuralSimCache::Stats before = structural->stats();

  auto& registry = util::MetricsRegistry::global();
  auto& m_gens = registry.counter("explore.generations");
  auto& m_cands = registry.counter("explore.candidates");
  auto& m_verified = registry.counter("explore.elites_verified");
  auto& g_elite_err = registry.gauge("explore.model_elite_err");

  // Checkpoint = a memo of simulator evaluations.  The search itself is
  // replayed deterministically from generation 0 on resume; replayed
  // rows only short-circuit the verification step, they never perturb
  // candidate generation (which would diverge from the original walk).
  std::map<std::size_t, serve::SweepRow> memo;
  std::unique_ptr<serve::CheckpointWriter> checkpoint;
  std::size_t resumed = 0;
  if (!spec.checkpoint.empty()) {
    const std::string fingerprint = explore_fingerprint(spec, model);
    std::uint64_t keep_bytes = 0;
    if (spec.resume) {
      serve::CheckpointReplay replay = serve::load_checkpoint(
          spec.checkpoint, fingerprint, n_configs, n_workloads);
      keep_bytes = replay.valid_bytes;
      resumed = replay.rows.size();
      for (serve::SweepRow& row : replay.rows) {
        memo.emplace(row.index, std::move(row));
      }
    }
    checkpoint = std::make_unique<serve::CheckpointWriter>(
        spec.checkpoint, fingerprint, n_configs, n_workloads, keep_bytes);
  }

  // Search state.  `visited` holds every grid index ever scored (or
  // force-verified), so a cell is model-scored at most once per run.
  std::unordered_set<std::size_t> visited;
  std::map<std::size_t, serve::SweepRow> walk_verified;
  std::vector<Anchor> anchors;
  std::vector<std::vector<std::size_t>> parents;
  constexpr std::size_t kNoBest = std::numeric_limits<std::size_t>::max();
  std::size_t best_index = kNoBest;
  double best_ipw = -std::numeric_limits<double>::infinity();

  ExploreReport report;
  report.grid_configs = n_configs;
  report.resumed = resumed;

  const auto random_digits = [&](util::Rng& rng) {
    std::vector<std::size_t> d(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a) {
      d[a] = rng.next_below(axes[a].values.size());
    }
    return d;
  };

  for (std::size_t gen = 0; gen < spec.generations; ++gen) {
    AUTOPOWER_FAULT_POINT("serve.explore.generation");

    // ---- 1. Candidate generation (deterministic per-slot streams,
    // deduplicated against everything ever scored).
    std::vector<std::vector<std::size_t>> cand_digits;
    std::vector<std::size_t> cand_index;
    std::size_t forced_begin = 0;  // candidates from here on are forced
    std::unordered_set<std::size_t> in_gen;
    const auto accept = [&](std::vector<std::size_t>&& d) {
      const std::size_t idx = digits_to_index(d, axes);
      cand_digits.push_back(std::move(d));
      cand_index.push_back(idx);
      in_gen.insert(idx);
    };
    for (std::size_t slot = 0; slot < spec.population; ++slot) {
      util::Rng rng(util::hash_combine(
          util::hash_combine(spec.seed, static_cast<std::uint64_t>(gen)),
          static_cast<std::uint64_t>(slot)));
      bool found = false;
      for (int attempt = 0; attempt < 16 && !found; ++attempt) {
        std::vector<std::size_t> d;
        if (gen == 0 || parents.empty()) {
          d = random_digits(rng);
        } else {
          const double u = rng.next_unit();
          if (u < 0.40) {
            d = mutate(parents[rng.next_below(parents.size())], axes, rng);
          } else if (u < 0.70) {
            const auto& pa = parents[rng.next_below(parents.size())];
            const auto& pb = parents[rng.next_below(parents.size())];
            d = crossover(pa, pb, axes, rng);
          } else if (u < 0.85) {
            d = neighbour(parents[rng.next_below(parents.size())], axes,
                          rng);
          } else {
            d = random_digits(rng);  // random immigrant
          }
        }
        const std::size_t idx = digits_to_index(d, axes);
        if (visited.count(idx) == 0 && in_gen.count(idx) == 0) {
          accept(std::move(d));
          found = true;
        }
      }
      if (!found) {
        // Collision fallback: deterministic linear scan for ANY
        // unvisited cell from a random start, so a small grid is
        // covered exhaustively instead of starving on duplicates.
        if (visited.size() + in_gen.size() >= n_configs) continue;
        const std::size_t start = rng.next_below(n_configs);
        for (std::size_t k = 0; k < n_configs; ++k) {
          const std::size_t idx = (start + k) % n_configs;
          if (visited.count(idx) == 0 && in_gen.count(idx) == 0) {
            accept(index_to_digits(idx, axes));
            break;
          }
        }
      }
    }
    forced_begin = cand_digits.size();
    // Forced hill-climb probes: the ±1 single-axis neighbours of the
    // best verified config are always verified, so the search cannot
    // terminate while an adjacent grid point beats the incumbent.
    if (best_index != kNoBest) {
      const std::vector<std::size_t> bd = index_to_digits(best_index, axes);
      for (std::size_t a = 0; a < axes.size(); ++a) {
        for (int step : {-1, 1}) {
          if (step < 0 && bd[a] == 0) continue;
          if (step > 0 && bd[a] + 1 >= axes[a].values.size()) continue;
          std::vector<std::size_t> d = bd;
          d[a] = step < 0 ? d[a] - 1 : d[a] + 1;
          const std::size_t idx = digits_to_index(d, axes);
          if (visited.count(idx) == 0 && in_gen.count(idx) == 0) {
            accept(std::move(d));
          }
        }
      }
    }
    if (cand_digits.empty()) break;  // grid exhausted
    const std::size_t n_cand = cand_digits.size();
    for (std::size_t idx : cand_index) visited.insert(idx);

    // ---- 2. Model scoring (no simulator): proxy events →
    // predict_total_batch, in fixed-size chunks over the thread pool.
    // Results land by slot, and each element is bit-identical however
    // the batch is chunked, so any thread count scores identically.
    std::vector<arch::HardwareConfig> cand_cfgs(n_cand);
    for (std::size_t i = 0; i < n_cand; ++i) {
      cand_cfgs[i] = cursor.config_at(cand_index[i]);
    }
    std::vector<double> proxy_ipc(n_cand * n_workloads, 0.0);
    std::vector<double> proxy_mw(n_cand * n_workloads, 0.0);
    const auto score_chunk = [&](std::size_t lo, std::size_t hi) {
      std::vector<core::EvalContext> ctxs;
      ctxs.reserve((hi - lo) * n_workloads);
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t w = 0; w < n_workloads; ++w) {
          core::EvalContext ctx;
          ctx.cfg = &cand_cfgs[i];
          ctx.workload = spec.workloads[w];
          ctx.program = programs[w];
          ctx.events = proxy_events(cand_cfgs[i], *profiles[w]);
          proxy_ipc[i * n_workloads + w] =
              ctx.events.rate(arch::EventKind::kInstructions);
          ctxs.push_back(std::move(ctx));
        }
      }
      const std::vector<double> totals = model.predict_total_batch(ctxs);
      for (std::size_t k = 0; k < totals.size(); ++k) {
        proxy_mw[lo * n_workloads + k] = totals[k];
      }
    };
    constexpr std::size_t kScoreChunk = 16;  // fixed: thread-invariant
    std::size_t score_threads = spec.threads == 0 ? 1 : spec.threads;
    if (score_threads > 1) {
      score_threads = std::min<std::size_t>(
          score_threads,
          std::max<std::size_t>(2, std::thread::hardware_concurrency()));
    }
    if (score_threads <= 1 || n_cand <= kScoreChunk) {
      score_chunk(0, n_cand);
    } else {
      util::ThreadPool pool(score_threads);
      for (std::size_t lo = 0; lo < n_cand; lo += kScoreChunk) {
        const std::size_t hi = std::min(n_cand, lo + kScoreChunk);
        pool.submit([&score_chunk, lo, hi] { score_chunk(lo, hi); });
      }
      pool.wait_idle();
      const util::ThreadPool::TaskFailures failures = pool.task_failures();
      if (failures.count > 0) {
        throw util::Error("explore scoring worker failed: " +
                          failures.first_error);
      }
    }
    m_cands.add(n_cand);
    report.candidates_scored += n_cand;

    // ---- 3. k-NN anchor calibration: correct each proxy scalar by the
    // distance-weighted mean true/proxy ratio of the nearest verified
    // anchors (per workload).  With no anchors yet the proxy stands.
    std::vector<Objectives> est(n_cand);
    const std::size_t knn = std::min<std::size_t>(8, anchors.size());
    std::vector<std::pair<double, std::size_t>> near;
    for (std::size_t i = 0; i < n_cand; ++i) {
      double ipc_sum = 0.0, mw_sum = 0.0;
      std::size_t ok = 0;
      for (std::size_t w = 0; w < n_workloads; ++w) {
        double ipc = proxy_ipc[i * n_workloads + w];
        double mw = proxy_mw[i * n_workloads + w];
        if (knn > 0) {
          near.clear();
          near.reserve(anchors.size());
          for (std::size_t a = 0; a < anchors.size(); ++a) {
            near.emplace_back(
                digit_distance2(cand_digits[i], anchors[a].digits, axes), a);
          }
          std::partial_sort(near.begin(), near.begin() + knn, near.end());
          double wsum = 0.0, ipc_ratio = 0.0, mw_ratio = 0.0;
          for (std::size_t k = 0; k < knn; ++k) {
            const Anchor& anc = anchors[near[k].second];
            const std::size_t w_i = w;
            if (anc.true_ipc[w_i] <= 0.0 || anc.proxy_ipc[w_i] <= 0.0 ||
                anc.true_mw[w_i] <= 0.0 || anc.proxy_mw[w_i] <= 0.0) {
              continue;
            }
            const double weight = 1.0 / (1e-6 + near[k].first);
            wsum += weight;
            ipc_ratio += weight * (anc.true_ipc[w_i] / anc.proxy_ipc[w_i]);
            mw_ratio += weight * (anc.true_mw[w_i] / anc.proxy_mw[w_i]);
          }
          if (wsum > 0.0) {
            ipc *= ipc_ratio / wsum;
            mw *= mw_ratio / wsum;
          }
        }
        if (mw > 0.0) {
          ipc_sum += ipc;
          mw_sum += mw;
          ++ok;
        }
      }
      Objectives& o = est[i];
      o.area = area_proxy(cand_cfgs[i]);
      if (ok > 0) {
        const double mean_ipc = ipc_sum / static_cast<double>(ok);
        const double mean_mw = mw_sum / static_cast<double>(ok);
        o.total_mw = mean_mw;
        o.ipc_per_watt =
            mean_mw > 0.0 ? mean_ipc / (mean_mw / 1000.0) : 0.0;
      } else {
        o.total_mw = std::numeric_limits<double>::infinity();
      }
    }

    // ---- 4. Elite selection: (Pareto rank asc, crowding desc, slot
    // asc), then the forced probes unconditionally.
    const std::vector<std::size_t> ranks = non_dominated_rank(est);
    std::vector<double> crowd(n_cand, 0.0);
    {
      const std::size_t n_fronts =
          ranks.empty() ? 0 : 1 + *std::max_element(ranks.begin(),
                                                    ranks.end());
      for (std::size_t level = 0; level < n_fronts; ++level) {
        std::vector<std::size_t> front;
        for (std::size_t i = 0; i < n_cand; ++i) {
          if (ranks[i] == level) front.push_back(i);
        }
        const std::vector<double> d = crowding_distance(est, front);
        for (std::size_t k = 0; k < front.size(); ++k) {
          crowd[front[k]] = d[k];
        }
      }
    }
    std::vector<std::size_t> order(n_cand);
    for (std::size_t i = 0; i < n_cand; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (ranks[a] != ranks[b]) return ranks[a] < ranks[b];
                if (crowd[a] != crowd[b]) return crowd[a] > crowd[b];
                return a < b;
              });
    const std::size_t n_elite =
        spec.verify_top == 0 ? n_cand
                             : std::min(spec.verify_top, n_cand);
    std::vector<std::size_t> chosen;  // candidate slots
    chosen.reserve(n_elite + (n_cand - forced_begin));
    for (std::size_t k = 0; k < n_elite; ++k) chosen.push_back(order[k]);
    for (std::size_t i = forced_begin; i < n_cand; ++i) {
      if (std::find(chosen.begin(), chosen.end(), i) == chosen.end()) {
        chosen.push_back(i);
      }
    }
    // Verification batch in ascending grid order (deterministic; the
    // row values are order-invariant anyway).
    std::sort(chosen.begin(), chosen.end(),
              [&](std::size_t a, std::size_t b) {
                return cand_index[a] < cand_index[b];
              });

    // ---- 5. Simulator verification, memo-aware: checkpointed rows are
    // replayed, everything else goes through the batched sweep driver
    // and is appended to the checkpoint.
    std::vector<std::size_t> fresh_slots;
    std::vector<arch::HardwareConfig> fresh_cfgs;
    for (std::size_t slot : chosen) {
      if (memo.count(cand_index[slot]) == 0) {
        fresh_slots.push_back(slot);
        fresh_cfgs.push_back(cand_cfgs[slot]);
      }
    }
    if (!fresh_cfgs.empty()) {
      std::vector<serve::SweepRow> rows = serve::evaluate_configs(
          model, fresh_cfgs, spec.workloads, spec.threads, structural);
      std::string json_scratch;
      for (std::size_t j = 0; j < rows.size(); ++j) {
        rows[j].index = cand_index[fresh_slots[j]];
        if (checkpoint != nullptr) {
          json_scratch.clear();
          serve::append_row_json(json_scratch, rows[j]);
          checkpoint->append(rows[j].index, json_scratch);
        }
        memo.emplace(rows[j].index, std::move(rows[j]));
      }
      report.verified += fresh_cfgs.size();
      m_verified.add(fresh_cfgs.size());
    }

    // ---- 6. Fold the verified truths back in: elite error, anchors,
    // incumbent, parent pool.
    double err_sum = 0.0;
    std::size_t err_n = 0;
    for (std::size_t slot : chosen) {
      const std::size_t idx = cand_index[slot];
      const serve::SweepRow& row = memo.at(idx);
      walk_verified.emplace(idx, row);
      Anchor anc;
      anc.digits = cand_digits[slot];
      anc.true_ipc.resize(n_workloads, 0.0);
      anc.true_mw.resize(n_workloads, 0.0);
      anc.proxy_ipc.resize(n_workloads, 0.0);
      anc.proxy_mw.resize(n_workloads, 0.0);
      for (std::size_t w = 0; w < n_workloads; ++w) {
        const serve::SweepCell& cell = row.cells[w];
        if (cell.ok) {
          anc.true_ipc[w] = cell.ipc;
          anc.true_mw[w] = cell.total_mw;
        }
        anc.proxy_ipc[w] = proxy_ipc[slot * n_workloads + w];
        anc.proxy_mw[w] = proxy_mw[slot * n_workloads + w];
      }
      anchors.push_back(std::move(anc));
      if (frontier_eligible(row)) {
        if (row.ipc_per_watt > best_ipw ||
            (row.ipc_per_watt == best_ipw && idx < best_index)) {
          best_ipw = row.ipc_per_watt;
          best_index = idx;
        }
        err_sum += std::abs(est[slot].ipc_per_watt - row.ipc_per_watt) /
                   std::max(row.ipc_per_watt, 1e-12);
        ++err_n;
      }
    }
    const double gen_err =
        err_n > 0 ? err_sum / static_cast<double>(err_n) : 0.0;
    report.elite_err.push_back(gen_err);
    g_elite_err.set(gen_err);

    // Parents for the next generation: the verified Pareto front plus
    // this generation's elites (ascending grid order, deduplicated).
    parents.clear();
    {
      std::vector<std::size_t> front_idx;
      std::vector<Objectives> objs;
      for (const auto& [idx, row] : walk_verified) {
        if (!frontier_eligible(row)) continue;
        front_idx.push_back(idx);
        objs.push_back(row_objectives(row));
      }
      const std::vector<std::size_t> vranks = non_dominated_rank(objs);
      std::unordered_set<std::size_t> seen;
      for (std::size_t k = 0; k < front_idx.size(); ++k) {
        if (vranks[k] == 0 && seen.insert(front_idx[k]).second) {
          parents.push_back(index_to_digits(front_idx[k], axes));
        }
      }
      for (std::size_t slot : chosen) {
        if (seen.insert(cand_index[slot]).second) {
          parents.push_back(cand_digits[slot]);
        }
      }
    }
    m_gens.inc();
    ++report.generations_run;
  }
  if (checkpoint != nullptr) checkpoint->close();

  // ---- Final frontier: the non-dominated verified rows, ipc_per_watt
  // descending, grid index ascending as the deterministic tie-break.
  {
    std::vector<const serve::SweepRow*> rows;
    std::vector<Objectives> objs;
    for (const auto& [idx, row] : walk_verified) {
      if (!frontier_eligible(row)) continue;
      rows.push_back(&row);
      objs.push_back(row_objectives(row));
    }
    const std::vector<std::size_t> ranks = non_dominated_rank(objs);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (ranks[k] != 0) continue;
      FrontierRow fr;
      fr.row = *rows[k];
      fr.area = objs[k].area;
      report.frontier.push_back(std::move(fr));
    }
    std::sort(report.frontier.begin(), report.frontier.end(),
              [](const FrontierRow& a, const FrontierRow& b) {
                if (a.row.ipc_per_watt != b.row.ipc_per_watt) {
                  return a.row.ipc_per_watt > b.row.ipc_per_watt;
                }
                return a.row.index < b.row.index;
              });
    for (std::size_t k = 0; k < report.frontier.size(); ++k) {
      report.frontier[k].row.rank = k + 1;
    }
  }

  const util::StructuralSimCache::Stats after = structural->stats();
  report.structural = {after.hits - before.hits,
                       after.misses - before.misses,
                       after.evictions - before.evictions};
  if (util::MetricsRegistry::enabled()) {
    structural->export_metrics(registry);
  }
  return report;
}

void write_frontier(std::ostream& out, const ExploreReport& report) {
  std::string line;
  for (const FrontierRow& fr : report.frontier) {
    // Same stream-flavoured fault site as the sweep report writer: a
    // torn frontier must latch badbit and exit non-zero.
    AUTOPOWER_FAULT_STREAM("serve.report.write_row", out);
    line.clear();
    line += "{\"rank\":";
    append_int(line, static_cast<long long>(fr.row.rank));
    line += ',';
    serve::append_row_json(line, fr.row);
    line += ",\"area_proxy\":";
    line += serve::json_number(fr.area);
    line += "}\n";
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
}

}  // namespace autopower::explore
