#include "ml/linear.hpp"

#include <algorithm>
#include <cmath>

#include "ml/matrix.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace autopower::ml {

void RidgeRegression::fit(const Dataset& data) {
  AP_REQUIRE(!data.empty(), "cannot fit ridge regression on empty dataset");
  const std::size_t n = data.size();
  const std::size_t p = data.num_features();

  // Standardise features; centre the target.  Centring makes the intercept
  // exact and unpenalised.
  std::vector<double> mean(p, 0.0);
  std::vector<double> scale(p, 1.0);
  for (std::size_t j = 0; j < p; ++j) {
    const auto col = data.column(j);
    double m = 0.0;
    for (double v : col) m += v;
    m /= static_cast<double>(n);
    double var = 0.0;
    for (double v : col) var += (v - m) * (v - m);
    var /= static_cast<double>(n);
    mean[j] = m;
    scale[j] = var > 1e-24 ? std::sqrt(var) : 1.0;
  }
  double ymean = 0.0;
  for (std::size_t i = 0; i < n; ++i) ymean += data.target(i);
  ymean /= static_cast<double>(n);

  Matrix x(n, p);
  std::vector<double> y(n);
  const auto& kt = util::simd::kernels();
  for (std::size_t i = 0; i < n; ++i) {
    const auto f = data.features(i);
    kt.sub_div(f.data(), mean.data(), scale.data(), &x(i, 0), p);
    y[i] = data.target(i) - ymean;
  }

  // Normal equations (X^T X + lambda I) w = X^T y.
  Matrix gram = x.transpose_times(x);
  for (std::size_t j = 0; j < p; ++j) {
    gram(j, j) += std::max(options_.lambda, 1e-10);
  }
  const std::vector<double> rhs = x.transpose_times(y);
  const std::vector<double> w = cholesky_solve(std::move(gram), rhs);

  // Back-transform to original feature space.
  coef_.assign(p, 0.0);
  intercept_ = ymean;
  for (std::size_t j = 0; j < p; ++j) {
    coef_[j] = w[j] / scale[j];
    intercept_ -= coef_[j] * mean[j];
  }
  fitted_ = true;
}

double RidgeRegression::predict(std::span<const double> features) const {
  if (!fitted_) throw util::NotFitted("RidgeRegression::predict before fit");
  AP_REQUIRE(features.size() == coef_.size(),
             "feature arity mismatch in RidgeRegression::predict");
  double acc = intercept_;
  for (std::size_t j = 0; j < coef_.size(); ++j) {
    acc += coef_[j] * features[j];
  }
  if (options_.nonnegative_prediction) acc = std::max(acc, 0.0);
  return acc;
}

void RidgeRegression::save(util::ArchiveWriter& out) const {
  out.write("ridge.lambda", options_.lambda);
  out.write("ridge.nonneg", options_.nonnegative_prediction);
  out.write("ridge.fitted", fitted_);
  out.write("ridge.intercept", intercept_);
  out.write("ridge.coef", coef_);
}

void RidgeRegression::load(util::ArchiveReader& in) {
  options_.lambda = in.read_double("ridge.lambda");
  options_.nonnegative_prediction = in.read_bool("ridge.nonneg");
  fitted_ = in.read_bool("ridge.fitted");
  intercept_ = in.read_double("ridge.intercept");
  coef_ = in.read_doubles("ridge.coef");
}

std::vector<double> RidgeRegression::predict_all(const Dataset& data) const {
  if (data.empty()) return {};
  return predict_rows(data.row_major_features(), data.num_features());
}

std::vector<double> RidgeRegression::predict_rows(
    std::span<const double> rows, std::size_t arity) const {
  if (!fitted_) {
    throw util::NotFitted("RidgeRegression::predict_rows before fit");
  }
  AP_REQUIRE(arity == coef_.size(),
             "feature arity mismatch in RidgeRegression::predict_rows");
  AP_REQUIRE(arity > 0 && rows.size() % arity == 0,
             "row buffer is not a multiple of the feature arity");
  const std::size_t count = rows.size() / arity;
  std::vector<double> out(count);
  // Vectorised across samples; per sample the kernel accumulates
  // intercept then coef[0], coef[1], ... — exactly predict()'s order,
  // so the batch is bit-identical to per-sample calls.
  util::simd::kernels().affine_rows(rows.data(), arity, count, coef_.data(),
                                    intercept_, out.data());
  if (options_.nonnegative_prediction) {
    for (double& v : out) v = std::max(v, 0.0);
  }
  return out;
}

}  // namespace autopower::ml
