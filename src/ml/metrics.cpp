#include "ml/metrics.hpp"

#include <cmath>

#include "util/error.hpp"

namespace autopower::ml {

namespace {
void check_sizes(std::span<const double> a, std::span<const double> p) {
  AP_REQUIRE(a.size() == p.size() && !a.empty(),
             "metric inputs must be equal-sized and non-empty");
}
}  // namespace

double mape(std::span<const double> actual, std::span<const double> predicted,
            double eps) {
  check_sizes(actual, predicted);
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(actual[i]) < eps) continue;
    acc += std::abs((predicted[i] - actual[i]) / actual[i]);
    ++count;
  }
  AP_REQUIRE(count > 0, "mape: all actual values are ~zero");
  return 100.0 * acc / static_cast<double>(count);
}

double r2_score(std::span<const double> actual,
                std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double mean = 0.0;
  for (double v : actual) mean += v;
  mean /= static_cast<double>(actual.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - mean) * (actual[i] - mean);
  }
  if (ss_tot < 1e-24) return ss_res < 1e-24 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double pearson_r(std::span<const double> actual,
                 std::span<const double> predicted) {
  check_sizes(actual, predicted);
  const auto n = static_cast<double>(actual.size());
  double ma = 0.0;
  double mp = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ma += actual[i];
    mp += predicted[i];
  }
  ma /= n;
  mp /= n;
  double cov = 0.0;
  double va = 0.0;
  double vp = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    cov += (actual[i] - ma) * (predicted[i] - mp);
    va += (actual[i] - ma) * (actual[i] - ma);
    vp += (predicted[i] - mp) * (predicted[i] - mp);
  }
  if (va < 1e-24 || vp < 1e-24) return 0.0;
  return cov / std::sqrt(va * vp);
}

double rmse(std::span<const double> actual,
            std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    acc += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
  }
  return std::sqrt(acc / static_cast<double>(actual.size()));
}

double mae(std::span<const double> actual, std::span<const double> predicted) {
  check_sizes(actual, predicted);
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    acc += std::abs(actual[i] - predicted[i]);
  }
  return acc / static_cast<double>(actual.size());
}

}  // namespace autopower::ml
