#include "ml/matrix.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace autopower::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    AP_REQUIRE(row.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::transpose_times(const Matrix& other) const {
  AP_REQUIRE(rows_ == other.rows_, "dimension mismatch in transpose_times");
  Matrix out(cols_, other.cols_);
  // k-outer order keeps each out(i, j)'s accumulation over k in
  // ascending order, so the inner row update is an axpy over
  // independent j outputs — SIMD-dispatched without changing any sum.
  const auto& kt = util::simd::kernels();
  for (std::size_t k = 0; k < rows_; ++k) {
    for (std::size_t i = 0; i < cols_; ++i) {
      const double aki = at(k, i);
      if (aki == 0.0) continue;
      kt.axpy(aki, &other.data_[k * other.cols_], &out.data_[i * out.cols_],
              other.cols_);
    }
  }
  return out;
}

std::vector<double> Matrix::times(const std::vector<double>& vec) const {
  AP_REQUIRE(vec.size() == cols_, "dimension mismatch in times");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += at(r, c) * vec[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> Matrix::transpose_times(
    const std::vector<double>& vec) const {
  AP_REQUIRE(vec.size() == rows_, "dimension mismatch in transpose_times");
  std::vector<double> out(cols_, 0.0);
  const auto& kt = util::simd::kernels();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double v = vec[r];
    if (v == 0.0) continue;
    kt.axpy(v, &data_[r * cols_], out.data(), cols_);
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

std::vector<double> cholesky_solve(Matrix a, std::vector<double> b) {
  AP_REQUIRE(a.rows() == a.cols(), "cholesky_solve requires a square matrix");
  AP_REQUIRE(a.rows() == b.size(), "dimension mismatch in cholesky_solve");
  const std::size_t n = a.rows();

  // In-place lower Cholesky factorisation A = L L^T.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    AP_ASSERT_MSG(diag > 1e-12, "matrix not positive definite");
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v / ljj;
    }
  }

  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a(i, k) * b[k];
    b[i] = v / a(i, i);
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= a(k, ii) * b[k];
    b[ii] = v / a(ii, ii);
  }
  return b;
}

}  // namespace autopower::ml
