#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace autopower::ml {

namespace {

double leaf_weight(double grad_sum, double hess_sum, double lambda) {
  return -grad_sum / (hess_sum + lambda);
}

double score(double grad_sum, double hess_sum, double lambda) {
  return grad_sum * grad_sum / (hess_sum + lambda);
}

}  // namespace

void RegressionTree::fit(const Dataset& data, std::span<const double> grad,
                         std::span<const double> hess,
                         const TreeOptions& options) {
  AP_REQUIRE(grad.size() == data.size() && hess.size() == data.size(),
             "gradient arity does not match dataset");
  AP_REQUIRE(!data.empty(), "cannot fit tree on empty dataset");
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> samples(data.size());
  for (std::size_t i = 0; i < samples.size(); ++i) samples[i] = i;
  build(data, grad, hess, samples, 0, options);
}

int RegressionTree::build(const Dataset& data, std::span<const double> grad,
                          std::span<const double> hess,
                          std::vector<std::size_t>& samples, int depth,
                          const TreeOptions& options) {
  depth_ = std::max(depth_, depth);
  double grad_sum = 0.0;
  double hess_sum = 0.0;
  for (std::size_t i : samples) {
    grad_sum += grad[i];
    hess_sum += hess[i];
  }

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].weight = leaf_weight(grad_sum, hess_sum, options.lambda);

  if (depth >= options.max_depth || samples.size() < 2) return node_index;

  // Exact greedy split search.
  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  const double parent_score = score(grad_sum, hess_sum, options.lambda);

  std::vector<std::size_t> order;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    order = samples;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double va = data.features(a)[f];
      const double vb = data.features(b)[f];
      return va < vb || (va == vb && a < b);  // stable under ties
    });
    double gl = 0.0;
    double hl = 0.0;
    for (std::size_t k = 0; k + 1 < order.size(); ++k) {
      gl += grad[order[k]];
      hl += hess[order[k]];
      const double vk = data.features(order[k])[f];
      const double vn = data.features(order[k + 1])[f];
      if (vk == vn) continue;  // can only split between distinct values
      const double gr = grad_sum - gl;
      const double hr = hess_sum - hl;
      if (hl < options.min_child_weight || hr < options.min_child_weight) {
        continue;
      }
      const double gain = 0.5 * (score(gl, hl, options.lambda) +
                                 score(gr, hr, options.lambda) -
                                 parent_score) -
                          options.gamma;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (vk + vn);
      }
    }
  }

  if (best_feature < 0) return node_index;

  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  for (std::size_t i : samples) {
    if (data.features(i)[static_cast<std::size_t>(best_feature)] <
        best_threshold) {
      left.push_back(i);
    } else {
      right.push_back(i);
    }
  }
  AP_ASSERT(!left.empty() && !right.empty());

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const int l = build(data, grad, hess, left, depth + 1, options);
  nodes_[node_index].left = l;
  const int r = build(data, grad, hess, right, depth + 1, options);
  nodes_[node_index].right = r;
  return node_index;
}

void RegressionTree::save(util::ArchiveWriter& out) const {
  out.write("tree.depth", static_cast<std::int64_t>(depth_));
  std::vector<std::int64_t> structure;
  std::vector<double> values;
  structure.reserve(nodes_.size() * 3);
  values.reserve(nodes_.size() * 2);
  for (const Node& n : nodes_) {
    structure.push_back(n.feature);
    structure.push_back(n.left);
    structure.push_back(n.right);
    values.push_back(n.threshold);
    values.push_back(n.weight);
  }
  out.write("tree.structure", structure);
  out.write("tree.values", values);
}

void RegressionTree::load(util::ArchiveReader& in) {
  depth_ = static_cast<int>(in.read_int("tree.depth"));
  const auto structure = in.read_ints("tree.structure");
  const auto values = in.read_doubles("tree.values");
  AP_REQUIRE(structure.size() % 3 == 0 &&
                 values.size() == structure.size() / 3 * 2,
             "corrupt tree archive");
  const std::size_t n = structure.size() / 3;
  nodes_.assign(n, Node{});
  for (std::size_t i = 0; i < n; ++i) {
    nodes_[i].feature = static_cast<int>(structure[3 * i]);
    nodes_[i].left = static_cast<int>(structure[3 * i + 1]);
    nodes_[i].right = static_cast<int>(structure[3 * i + 2]);
    nodes_[i].threshold = values[2 * i];
    nodes_[i].weight = values[2 * i + 1];
    const auto limit = static_cast<int>(n);
    AP_REQUIRE(nodes_[i].feature >= -1 && nodes_[i].left < limit &&
                   nodes_[i].right < limit,
               "corrupt tree archive: bad node indices");
  }
  AP_REQUIRE(!nodes_.empty(), "corrupt tree archive: no nodes");
}

double RegressionTree::predict(std::span<const double> features) const {
  AP_REQUIRE(!nodes_.empty(), "tree not fitted");
  int idx = 0;
  while (nodes_[static_cast<std::size_t>(idx)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    const auto f = static_cast<std::size_t>(n.feature);
    AP_REQUIRE(f < features.size(), "feature arity mismatch in tree predict");
    idx = features[f] < n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(idx)].weight;
}

}  // namespace autopower::ml
