#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace autopower::ml {

namespace {

double leaf_weight(double grad_sum, double hess_sum, double lambda) {
  return -grad_sum / (hess_sum + lambda);
}

double score(double grad_sum, double hess_sum, double lambda) {
  return grad_sum * grad_sum / (hess_sum + lambda);
}

}  // namespace

/// Per-fit scratch for the presorted builder: one sorted column index (and
/// its value column) per feature, computed once, plus per-node gather
/// buffers reused across every node of the tree.
struct RegressionTree::PresortWorkspace {
  std::size_t n = 0;
  // Column-major: sorted_idx[f * n + k] is the index of the k-th smallest
  // sample under feature f, ties broken by sample index — the same
  // (value, index) order the reference per-node sort uses.
  std::vector<std::uint32_t> sorted_idx;
  std::vector<double> sorted_val;  ///< feature values, parallel to sorted_idx
  std::vector<unsigned char> in_node;  ///< node-membership mask
  // Contiguous per-node gathers (value / grad / hess in presorted order).
  std::vector<double> val;
  std::vector<double> grad;
  std::vector<double> hess;
};

void RegressionTree::fit(const Dataset& data, std::span<const double> grad,
                         std::span<const double> hess,
                         const TreeOptions& options) {
  AP_REQUIRE(grad.size() == data.size() && hess.size() == data.size(),
             "gradient arity does not match dataset");
  AP_REQUIRE(!data.empty(), "cannot fit tree on empty dataset");
  nodes_.clear();
  depth_ = 0;

  if (options.reference_split_search) {
    std::vector<std::size_t> samples(data.size());
    std::iota(samples.begin(), samples.end(), std::size_t{0});
    build_reference(data, grad, hess, samples, 0, options);
    return;
  }

  const std::size_t n = data.size();
  const std::size_t num_features = data.num_features();
  // int32 bound (not uint32): the SIMD gather kernels consume the sorted
  // index columns as signed 32-bit gather indices.
  AP_REQUIRE(n <= static_cast<std::size_t>(
                      std::numeric_limits<std::int32_t>::max()),
             "dataset too large for the presorted tree builder");

  PresortWorkspace ws;
  ws.n = n;
  ws.sorted_idx.resize(num_features * n);
  ws.sorted_val.resize(num_features * n);
  ws.in_node.assign(n, 0);
  ws.val.resize(n);
  ws.grad.resize(n);
  ws.hess.resize(n);

  std::vector<double> col(n);
  std::vector<std::uint32_t> order(n);
  const auto& kt = util::simd::kernels();
  const std::span<const double> all = data.row_major_features();
  for (std::size_t f = 0; f < num_features; ++f) {
    kt.strided_gather(all.data() + f, num_features, col.data(), n);
    std::iota(order.begin(), order.end(), std::uint32_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return col[a] < col[b] || (col[a] == col[b] && a < b);
              });
    for (std::size_t k = 0; k < n; ++k) {
      ws.sorted_idx[f * n + k] = order[k];
      ws.sorted_val[f * n + k] = col[order[k]];
    }
  }

  std::vector<std::uint32_t> samples(n);
  std::iota(samples.begin(), samples.end(), std::uint32_t{0});
  build_presorted(data, grad, hess, samples, 0, options, ws);
}

int RegressionTree::build_presorted(const Dataset& data,
                                    std::span<const double> grad,
                                    std::span<const double> hess,
                                    std::vector<std::uint32_t>& samples,
                                    int depth, const TreeOptions& options,
                                    PresortWorkspace& ws) {
  depth_ = std::max(depth_, depth);
  double grad_sum = 0.0;
  double hess_sum = 0.0;
  for (std::uint32_t i : samples) {
    grad_sum += grad[i];
    hess_sum += hess[i];
  }

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].weight = leaf_weight(grad_sum, hess_sum, options.lambda);

  if (depth >= options.max_depth || samples.size() < 2) return node_index;

  // Exact greedy split search over the presorted columns.
  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  const double parent_score = score(grad_sum, hess_sum, options.lambda);

  const std::size_t n = ws.n;
  const std::size_t m = samples.size();
  for (std::uint32_t i : samples) ws.in_node[i] = 1;

  for (std::size_t f = 0; f < data.num_features(); ++f) {
    // Gather this node's members, in presorted order, into contiguous
    // buffers; the split scan then runs over plain arrays.
    const std::uint32_t* idx = ws.sorted_idx.data() + f * n;
    const double* val = ws.sorted_val.data() + f * n;
    if (m == n) {  // root: every sample is a member
      // Straight indexed gathers (SIMD-dispatched); the membership-
      // masked compaction below is inherently serial and stays scalar.
      const auto& kt = util::simd::kernels();
      std::copy(val, val + n, ws.val.begin());
      kt.gather(grad.data(), idx, ws.grad.data(), n);
      kt.gather(hess.data(), idx, ws.hess.data(), n);
    } else {
      std::size_t out = 0;
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t i = idx[k];
        if (!ws.in_node[i]) continue;
        ws.val[out] = val[k];
        ws.grad[out] = grad[i];
        ws.hess[out] = hess[i];
        ++out;
      }
    }

    double gl = 0.0;
    double hl = 0.0;
    for (std::size_t k = 0; k + 1 < m; ++k) {
      gl += ws.grad[k];
      hl += ws.hess[k];
      if (ws.val[k] == ws.val[k + 1]) continue;  // split between distinct
      const double gr = grad_sum - gl;
      const double hr = hess_sum - hl;
      if (hl < options.min_child_weight || hr < options.min_child_weight) {
        continue;
      }
      const double gain = 0.5 * (score(gl, hl, options.lambda) +
                                 score(gr, hr, options.lambda) -
                                 parent_score) -
                          options.gamma;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (ws.val[k] + ws.val[k + 1]);
      }
    }
  }

  for (std::uint32_t i : samples) ws.in_node[i] = 0;

  if (best_feature < 0) return node_index;

  std::vector<std::uint32_t> left;
  std::vector<std::uint32_t> right;
  for (std::uint32_t i : samples) {
    if (data.features(i)[static_cast<std::size_t>(best_feature)] <
        best_threshold) {
      left.push_back(i);
    } else {
      right.push_back(i);
    }
  }
  AP_ASSERT(!left.empty() && !right.empty());

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const int l =
      build_presorted(data, grad, hess, left, depth + 1, options, ws);
  nodes_[node_index].left = l;
  const int r =
      build_presorted(data, grad, hess, right, depth + 1, options, ws);
  nodes_[node_index].right = r;
  return node_index;
}

int RegressionTree::build_reference(const Dataset& data,
                                    std::span<const double> grad,
                                    std::span<const double> hess,
                                    std::vector<std::size_t>& samples,
                                    int depth, const TreeOptions& options) {
  depth_ = std::max(depth_, depth);
  double grad_sum = 0.0;
  double hess_sum = 0.0;
  for (std::size_t i : samples) {
    grad_sum += grad[i];
    hess_sum += hess[i];
  }

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].weight = leaf_weight(grad_sum, hess_sum, options.lambda);

  if (depth >= options.max_depth || samples.size() < 2) return node_index;

  // Exact greedy split search, re-sorting the node's samples per feature.
  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  const double parent_score = score(grad_sum, hess_sum, options.lambda);

  std::vector<std::size_t> order;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    order = samples;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double va = data.features(a)[f];
      const double vb = data.features(b)[f];
      return va < vb || (va == vb && a < b);  // stable under ties
    });
    double gl = 0.0;
    double hl = 0.0;
    for (std::size_t k = 0; k + 1 < order.size(); ++k) {
      gl += grad[order[k]];
      hl += hess[order[k]];
      const double vk = data.features(order[k])[f];
      const double vn = data.features(order[k + 1])[f];
      if (vk == vn) continue;  // can only split between distinct values
      const double gr = grad_sum - gl;
      const double hr = hess_sum - hl;
      if (hl < options.min_child_weight || hr < options.min_child_weight) {
        continue;
      }
      const double gain = 0.5 * (score(gl, hl, options.lambda) +
                                 score(gr, hr, options.lambda) -
                                 parent_score) -
                          options.gamma;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (vk + vn);
      }
    }
  }

  if (best_feature < 0) return node_index;

  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  for (std::size_t i : samples) {
    if (data.features(i)[static_cast<std::size_t>(best_feature)] <
        best_threshold) {
      left.push_back(i);
    } else {
      right.push_back(i);
    }
  }
  AP_ASSERT(!left.empty() && !right.empty());

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const int l = build_reference(data, grad, hess, left, depth + 1, options);
  nodes_[node_index].left = l;
  const int r = build_reference(data, grad, hess, right, depth + 1, options);
  nodes_[node_index].right = r;
  return node_index;
}

void RegressionTree::flatten_into(std::vector<std::int32_t>& feature,
                                  std::vector<double>& threshold,
                                  std::vector<std::int32_t>& left,
                                  std::vector<std::int32_t>& right,
                                  std::vector<double>& weight) const {
  const auto offset = static_cast<std::int32_t>(feature.size());
  for (const Node& n : nodes_) {
    feature.push_back(n.feature);
    threshold.push_back(n.threshold);
    left.push_back(n.left < 0 ? -1 : n.left + offset);
    right.push_back(n.right < 0 ? -1 : n.right + offset);
    weight.push_back(n.weight);
  }
}

void RegressionTree::save(util::ArchiveWriter& out) const {
  out.write("tree.depth", static_cast<std::int64_t>(depth_));
  std::vector<std::int64_t> structure;
  std::vector<double> values;
  structure.reserve(nodes_.size() * 3);
  values.reserve(nodes_.size() * 2);
  for (const Node& n : nodes_) {
    structure.push_back(n.feature);
    structure.push_back(n.left);
    structure.push_back(n.right);
    values.push_back(n.threshold);
    values.push_back(n.weight);
  }
  out.write("tree.structure", structure);
  out.write("tree.values", values);
}

void RegressionTree::load(util::ArchiveReader& in) {
  depth_ = static_cast<int>(in.read_int("tree.depth"));
  const auto structure = in.read_ints("tree.structure");
  const auto values = in.read_doubles("tree.values");
  AP_REQUIRE(structure.size() % 3 == 0 &&
                 values.size() == structure.size() / 3 * 2,
             "corrupt tree archive");
  const std::size_t n = structure.size() / 3;
  nodes_.assign(n, Node{});
  for (std::size_t i = 0; i < n; ++i) {
    nodes_[i].feature = static_cast<int>(structure[3 * i]);
    nodes_[i].left = static_cast<int>(structure[3 * i + 1]);
    nodes_[i].right = static_cast<int>(structure[3 * i + 2]);
    nodes_[i].threshold = values[2 * i];
    nodes_[i].weight = values[2 * i + 1];
    const auto limit = static_cast<int>(n);
    // Children must be -1 (leaf link) or a valid node index; any other
    // negative value would pass a `< limit` check and then index out of
    // bounds in predict().
    AP_REQUIRE(nodes_[i].feature >= -1 && nodes_[i].left >= -1 &&
                   nodes_[i].right >= -1 && nodes_[i].left < limit &&
                   nodes_[i].right < limit,
               "corrupt tree archive: bad node indices");
    // An interior node (feature >= 0) must have both children.
    AP_REQUIRE(nodes_[i].feature < 0 ||
                   (nodes_[i].left >= 0 && nodes_[i].right >= 0),
               "corrupt tree archive: interior node missing a child");
  }
  AP_REQUIRE(!nodes_.empty(), "corrupt tree archive: no nodes");
}

double RegressionTree::predict(std::span<const double> features) const {
  AP_REQUIRE(!nodes_.empty(), "tree not fitted");
  int idx = 0;
  while (nodes_[static_cast<std::size_t>(idx)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    const auto f = static_cast<std::size_t>(n.feature);
    AP_REQUIRE(f < features.size(), "feature arity mismatch in tree predict");
    idx = features[f] < n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(idx)].weight;
}

}  // namespace autopower::ml
