#include "ml/dataset.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace autopower::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {
  AP_REQUIRE(!feature_names_.empty(), "dataset needs at least one feature");
}

void Dataset::add_sample(std::span<const double> features, double target) {
  AP_REQUIRE(features.size() == feature_names_.size(),
             "feature vector arity does not match dataset schema");
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(target);
}

std::span<const double> Dataset::features(std::size_t i) const {
  AP_REQUIRE(i < size(), "sample index out of range");
  return {features_.data() + i * num_features(), num_features()};
}

std::vector<double> Dataset::column(std::size_t j) const {
  AP_REQUIRE(j < num_features(), "feature index out of range");
  std::vector<double> out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out[i] = features_[i * num_features() + j];
  }
  return out;
}

std::size_t Dataset::feature_index(const std::string& name) const {
  const auto it =
      std::find(feature_names_.begin(), feature_names_.end(), name);
  AP_REQUIRE(it != feature_names_.end(), "unknown feature: " + name);
  return static_cast<std::size_t>(it - feature_names_.begin());
}

}  // namespace autopower::ml
