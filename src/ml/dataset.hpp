// Feature-matrix + target container shared by all regressors.
//
// A Dataset carries named feature columns so models can report which
// features they used and so experiment code can assemble feature vectors by
// name without positional bugs.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace autopower::ml {

/// A supervised-regression dataset: row-major features plus one target.
class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset with the given feature schema.
  explicit Dataset(std::vector<std::string> feature_names);

  /// Appends one sample. `features.size()` must match the schema.
  void add_sample(std::span<const double> features, double target);

  [[nodiscard]] std::size_t size() const noexcept { return targets_.size(); }
  [[nodiscard]] std::size_t num_features() const noexcept {
    return feature_names_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return targets_.empty(); }

  [[nodiscard]] const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }

  /// Read-only view of sample `i`'s feature vector.
  [[nodiscard]] std::span<const double> features(std::size_t i) const;

  /// The whole feature matrix, row-major (size() * num_features() doubles).
  /// Batched predictors iterate this directly instead of per-row spans.
  [[nodiscard]] std::span<const double> row_major_features() const noexcept {
    return features_;
  }

  [[nodiscard]] double target(std::size_t i) const { return targets_.at(i); }
  [[nodiscard]] const std::vector<double>& targets() const noexcept {
    return targets_;
  }

  /// Column `j` gathered across all samples (copy).
  [[nodiscard]] std::vector<double> column(std::size_t j) const;

  /// Index of a feature by name; throws util::InvalidArgument if unknown.
  [[nodiscard]] std::size_t feature_index(const std::string& name) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> features_;  // row-major, size() * num_features()
  std::vector<double> targets_;
};

}  // namespace autopower::ml
