// Minimal dense linear algebra for the ML substrate.
//
// The models in this repository are small (tens of features, tens-to-
// thousands of samples), so a straightforward row-major double matrix with
// a Cholesky solver covers everything ridge regression needs.  No BLAS
// dependency; determinism and clarity beat raw speed at this scale.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace autopower::ml {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) noexcept { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return at(r, c);
  }

  /// Returns this^T * other. Dimensions must agree (this.rows == other.rows).
  [[nodiscard]] Matrix transpose_times(const Matrix& other) const;

  /// Returns this * vec. vec.size() must equal cols().
  [[nodiscard]] std::vector<double> times(const std::vector<double>& vec) const;

  /// Returns this^T * vec. vec.size() must equal rows().
  [[nodiscard]] std::vector<double> transpose_times(
      const std::vector<double>& vec) const;

  /// Identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the symmetric positive-definite system A x = b in place via
/// Cholesky decomposition.  Throws util::Error if A is not SPD (within a
/// small diagonal tolerance).
[[nodiscard]] std::vector<double> cholesky_solve(Matrix a,
                                                 std::vector<double> b);

}  // namespace autopower::ml
