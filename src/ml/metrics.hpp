// Regression accuracy metrics used throughout the evaluation.
//
// The paper reports MAPE (mean absolute percentage error), the coefficient
// of determination R², and the Pearson correlation coefficient R.  All
// metrics take (actual, predicted) in that order.
#pragma once

#include <span>

namespace autopower::ml {

/// Mean absolute percentage error in percent (e.g. 4.36 for 4.36%).
/// Samples with |actual| < eps are skipped to avoid division blow-ups.
[[nodiscard]] double mape(std::span<const double> actual,
                          std::span<const double> predicted,
                          double eps = 1e-12);

/// Coefficient of determination R² = 1 - SS_res / SS_tot.
[[nodiscard]] double r2_score(std::span<const double> actual,
                              std::span<const double> predicted);

/// Pearson correlation coefficient in [-1, 1].
[[nodiscard]] double pearson_r(std::span<const double> actual,
                               std::span<const double> predicted);

/// Root mean squared error.
[[nodiscard]] double rmse(std::span<const double> actual,
                          std::span<const double> predicted);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> actual,
                         std::span<const double> predicted);

}  // namespace autopower::ml
