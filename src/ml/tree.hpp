// Regression tree used as the weak learner inside GBTRegressor.
//
// Follows the XGBoost formulation: each sample carries a gradient/hessian
// pair; leaves take weight -G/(H + lambda); splits maximise the second-order
// gain with gamma as the split cost.  Split finding is exact greedy over
// sorted feature values.
//
// Two builders produce bit-identical trees:
//   * the presorted fast path (default) computes one sorted column index
//     per feature once per fit(), then scans each node's members in that
//     presorted order through a node-membership mask, gathering grad/hess
//     into contiguous scratch buffers — O(F n) per node;
//   * the reference path re-sorts the node's sample list per feature per
//     node — O(F n log n) per node.  It is retained (TreeOptions::
//     reference_split_search) so property tests and benchmarks can verify
//     the fast path split-for-split.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "util/archive.hpp"

namespace autopower::ml {

/// Hyper-parameters for a single boosted tree.
struct TreeOptions {
  int max_depth = 3;
  double lambda = 1.0;            ///< L2 on leaf weights.
  double gamma = 0.0;             ///< Minimum gain to split.
  double min_child_weight = 1.0;  ///< Minimum hessian sum per child.
  /// Use the per-node re-sorting reference split search instead of the
  /// presorted fast path.  Both produce bit-identical trees; the reference
  /// exists for the property tests and bench_train_throughput self-checks.
  bool reference_split_search = false;
};

/// A fitted regression tree (flat node array, index 0 is the root).
class RegressionTree {
 public:
  /// Fits the tree to gradients/hessians over the dataset's features.
  /// `grad` and `hess` must have `data.size()` entries.
  void fit(const Dataset& data, std::span<const double> grad,
           std::span<const double> hess, const TreeOptions& options);

  /// Returns the leaf weight for one feature vector.
  [[nodiscard]] double predict(std::span<const double> features) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// Appends this tree's nodes to a flattened structure-of-arrays forest,
  /// rebasing child links to absolute indices (leaf links stay -1).
  /// GBTRegressor builds its batched inference layout from this.
  void flatten_into(std::vector<std::int32_t>& feature,
                    std::vector<double>& threshold,
                    std::vector<std::int32_t>& left,
                    std::vector<std::int32_t>& right,
                    std::vector<double>& weight) const;

  /// Serialization (see util/archive.hpp).
  void save(util::ArchiveWriter& out) const;
  void load(util::ArchiveReader& in);

 private:
  struct Node {
    int feature = -1;        // -1 for leaves
    double threshold = 0.0;  // go left if x[feature] < threshold
    int left = -1;
    int right = -1;
    double weight = 0.0;  // leaf value
  };

  struct PresortWorkspace;  // defined in tree.cpp

  int build_reference(const Dataset& data, std::span<const double> grad,
                      std::span<const double> hess,
                      std::vector<std::size_t>& samples, int depth,
                      const TreeOptions& options);

  int build_presorted(const Dataset& data, std::span<const double> grad,
                      std::span<const double> hess,
                      std::vector<std::uint32_t>& samples, int depth,
                      const TreeOptions& options, PresortWorkspace& ws);

  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace autopower::ml
