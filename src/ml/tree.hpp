// Regression tree used as the weak learner inside GBTRegressor.
//
// Follows the XGBoost formulation: each sample carries a gradient/hessian
// pair; leaves take weight -G/(H + lambda); splits maximise the second-order
// gain with gamma as the split cost.  Split finding is exact greedy over
// sorted feature values — the datasets here are tiny so histogram
// approximation is unnecessary.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "util/archive.hpp"

namespace autopower::ml {

/// Hyper-parameters for a single boosted tree.
struct TreeOptions {
  int max_depth = 3;
  double lambda = 1.0;            ///< L2 on leaf weights.
  double gamma = 0.0;             ///< Minimum gain to split.
  double min_child_weight = 1.0;  ///< Minimum hessian sum per child.
};

/// A fitted regression tree (flat node array, index 0 is the root).
class RegressionTree {
 public:
  /// Fits the tree to gradients/hessians over the dataset's features.
  /// `grad` and `hess` must have `data.size()` entries.
  void fit(const Dataset& data, std::span<const double> grad,
           std::span<const double> hess, const TreeOptions& options);

  /// Returns the leaf weight for one feature vector.
  [[nodiscard]] double predict(std::span<const double> features) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// Serialization (see util/archive.hpp).
  void save(util::ArchiveWriter& out) const;
  void load(util::ArchiveReader& in);

 private:
  struct Node {
    int feature = -1;        // -1 for leaves
    double threshold = 0.0;  // go left if x[feature] < threshold
    int left = -1;
    int right = -1;
    double weight = 0.0;  // leaf value
  };

  int build(const Dataset& data, std::span<const double> grad,
            std::span<const double> hess, std::vector<std::size_t>& samples,
            int depth, const TreeOptions& options);

  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace autopower::ml
