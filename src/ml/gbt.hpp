// Gradient-boosted regression trees — the "XGBoost" of this repository.
//
// The paper uses XGBoost for every activity-style sub-model (effective
// active rate, SRAM read/write frequency, register activity, combinational
// variation) and as the regressor inside the McPAT-Calib baselines.  This is
// a from-scratch implementation of the same algorithm for squared-error
// loss: second-order boosting with shrinkage, L2 leaf regularisation and
// gamma split cost.  Deterministic — no row/column subsampling.
//
// Inference comes in two layouts: predict() pointer-walks the per-tree
// Node arrays for one sample, while predict_rows()/predict_all() walk a
// flattened structure-of-arrays forest (feature[] / threshold[] / left[] /
// right[] / weight[], rebuilt on fit() and load()) tree-major over blocks
// of samples.  Both are bit-identical; the flattened path is what the
// batch-serving and trace-prediction layers use.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/tree.hpp"

namespace autopower::ml {

/// Hyper-parameters for GBTRegressor.
struct GbtOptions {
  int num_rounds = 120;
  double learning_rate = 0.12;
  TreeOptions tree;
  /// If true, predictions are clamped to be non-negative (rates, powers).
  bool nonnegative_prediction = false;
};

/// XGBoost-style gradient boosted trees for squared-error regression.
class GBTRegressor {
 public:
  GBTRegressor() = default;
  explicit GBTRegressor(GbtOptions options) : options_(options) {}

  /// Fits the ensemble; base score is the target mean.
  void fit(const Dataset& data);

  /// Predicts one sample; throws util::NotFitted before fit().
  [[nodiscard]] double predict(std::span<const double> features) const;

  /// Predicts every sample in a dataset (batched, flattened-forest path).
  [[nodiscard]] std::vector<double> predict_all(const Dataset& data) const;

  /// Batched prediction over `rows.size() / num_features` feature vectors
  /// stored row-major in `rows`.  Iterates tree-major over blocks of
  /// samples on the flattened SoA forest; bit-identical to calling
  /// predict() on each row.
  [[nodiscard]] std::vector<double> predict_rows(
      std::span<const double> rows, std::size_t num_features) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t num_trees() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] double base_score() const noexcept { return base_score_; }

  /// Serialization (see util/archive.hpp).
  void save(util::ArchiveWriter& out) const;
  void load(util::ArchiveReader& in);

 private:
  void rebuild_flat();
  void rebuild_padded();

  GbtOptions options_;
  std::vector<RegressionTree> trees_;
  double base_score_ = 0.0;
  bool fitted_ = false;

  // Flattened SoA forest (rebuilt on fit()/load()): every tree's nodes
  // concatenated, child links rebased to absolute indices.  Leaves are
  // made self-looping (left = right = own index, feature = 0) so a block
  // of samples can be advanced level-synchronously for exactly the tree's
  // depth with no per-sample termination test — the traversal becomes
  // independent work across samples instead of one serial load chain each.
  std::vector<std::int32_t> flat_feature_;
  std::vector<double> flat_threshold_;
  std::vector<std::int32_t> flat_left_;
  std::vector<std::int32_t> flat_right_;
  std::vector<double> flat_weight_;
  std::vector<std::int32_t> flat_roots_;  ///< root node index per tree
  std::vector<std::int32_t> flat_depth_;  ///< levels to walk per tree
  int max_feature_ = -1;  ///< highest feature index any node tests

  // Padded perfect-tree mirror of the flat forest, consumed by the SIMD
  // forest_leaf_add kernel (util/simd.hpp): per tree of depth d, 2^d - 1
  // interior slots in breadth-first order plus 2^d leaf slots, with each
  // real leaf's weight replicated across every leaf slot of its padded
  // subtree.  Trees deeper than simd::kMaxPaddedDepth get pad_depth_ -1
  // and fall back to the scalar level-synchronous walk per tree.
  std::vector<std::int32_t> pad_depth_;      ///< padded depth, -1 = too deep
  std::vector<std::size_t> pad_node_off_;    ///< per-tree interior offset
  std::vector<std::size_t> pad_leaf_off_;    ///< per-tree leaf offset
  std::vector<std::int32_t> pad_feature_;
  std::vector<double> pad_threshold_;
  std::vector<double> pad_weight_;
};

}  // namespace autopower::ml
