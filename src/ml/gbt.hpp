// Gradient-boosted regression trees — the "XGBoost" of this repository.
//
// The paper uses XGBoost for every activity-style sub-model (effective
// active rate, SRAM read/write frequency, register activity, combinational
// variation) and as the regressor inside the McPAT-Calib baselines.  This is
// a from-scratch implementation of the same algorithm for squared-error
// loss: second-order boosting with shrinkage, L2 leaf regularisation and
// gamma split cost.  Deterministic — no row/column subsampling.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/tree.hpp"

namespace autopower::ml {

/// Hyper-parameters for GBTRegressor.
struct GbtOptions {
  int num_rounds = 120;
  double learning_rate = 0.12;
  TreeOptions tree;
  /// If true, predictions are clamped to be non-negative (rates, powers).
  bool nonnegative_prediction = false;
};

/// XGBoost-style gradient boosted trees for squared-error regression.
class GBTRegressor {
 public:
  GBTRegressor() = default;
  explicit GBTRegressor(GbtOptions options) : options_(options) {}

  /// Fits the ensemble; base score is the target mean.
  void fit(const Dataset& data);

  /// Predicts one sample; throws util::NotFitted before fit().
  [[nodiscard]] double predict(std::span<const double> features) const;

  /// Predicts every sample in a dataset.
  [[nodiscard]] std::vector<double> predict_all(const Dataset& data) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t num_trees() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] double base_score() const noexcept { return base_score_; }

  /// Serialization (see util/archive.hpp).
  void save(util::ArchiveWriter& out) const;
  void load(util::ArchiveReader& in);

 private:
  GbtOptions options_;
  std::vector<RegressionTree> trees_;
  double base_score_ = 0.0;
  bool fitted_ = false;
};

}  // namespace autopower::ml
