#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/simd.hpp"

namespace autopower::ml {

namespace {

// Process-wide instruments, looked up once (thread-safe static init);
// recording through the references is lock-free.  rows/sec is derived
// from the snapshot: rows / (sum of the matching _ns histogram / 1e9).
struct GbtMetrics {
  util::Histogram& fit_ns;
  util::Counter& fit_rows;
  util::Histogram& predict_ns;
  util::Counter& predict_rows;
};

GbtMetrics& gbt_metrics() {
  auto& r = util::MetricsRegistry::global();
  static GbtMetrics m{r.histogram("ml.gbt.fit_ns"),
                      r.counter("ml.gbt.fit_rows"),
                      r.histogram("ml.gbt.predict_ns"),
                      r.counter("ml.gbt.predict_rows")};
  return m;
}

}  // namespace

void GBTRegressor::fit(const Dataset& data) {
  AP_REQUIRE(!data.empty(), "cannot fit GBT on empty dataset");
  util::ScopedTimer fit_timer(gbt_metrics().fit_ns);
  gbt_metrics().fit_rows.add(data.size());
  trees_.clear();

  const std::size_t n = data.size();
  base_score_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) base_score_ += data.target(i);
  base_score_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_score_);
  std::vector<double> grad(n);
  const std::vector<double> hess(n, 1.0);  // squared loss: constant hessian

  for (int round = 0; round < options_.num_rounds; ++round) {
    double sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] = pred[i] - data.target(i);  // d/dp 0.5(p - y)^2
      sq += grad[i] * grad[i];
    }
    if (sq / static_cast<double>(n) < 1e-16) break;  // already exact

    RegressionTree tree;
    tree.fit(data, grad, hess, options_.tree);
    if (tree.node_count() == 1 && std::abs(tree.predict(data.features(0))) <
                                      1e-15) {
      break;  // no useful split and zero correction: converged
    }
    for (std::size_t i = 0; i < n; ++i) {
      pred[i] += options_.learning_rate * tree.predict(data.features(i));
    }
    trees_.push_back(std::move(tree));
  }
  rebuild_flat();
  fitted_ = true;
}

void GBTRegressor::rebuild_flat() {
  flat_feature_.clear();
  flat_threshold_.clear();
  flat_left_.clear();
  flat_right_.clear();
  flat_weight_.clear();
  flat_roots_.clear();
  flat_depth_.clear();
  max_feature_ = -1;

  std::size_t total = 0;
  for (const auto& tree : trees_) total += tree.node_count();
  flat_feature_.reserve(total);
  flat_threshold_.reserve(total);
  flat_left_.reserve(total);
  flat_right_.reserve(total);
  flat_weight_.reserve(total);
  flat_roots_.reserve(trees_.size());
  flat_depth_.reserve(trees_.size());

  for (const auto& tree : trees_) {
    flat_roots_.push_back(static_cast<std::int32_t>(flat_feature_.size()));
    flat_depth_.push_back(static_cast<std::int32_t>(tree.depth()));
    tree.flatten_into(flat_feature_, flat_threshold_, flat_left_, flat_right_,
                      flat_weight_);
  }
  for (const std::int32_t f : flat_feature_) {
    max_feature_ = std::max(max_feature_, static_cast<int>(f));
  }
  // The padded mirror must be built while leaf links are still -1 (the
  // self-loop fixup below erases that distinction).
  rebuild_padded();
  // Make leaves self-looping so a fixed-depth level-synchronous walk lands
  // on — and stays on — the correct leaf.  Leaf feature becomes 0 (a valid
  // column; the comparison result no longer matters once both children are
  // the node itself), which never raises max_feature_ above an interior
  // node's.
  for (std::size_t i = 0; i < flat_feature_.size(); ++i) {
    if (flat_left_[i] < 0) {
      flat_left_[i] = static_cast<std::int32_t>(i);
      flat_right_[i] = static_cast<std::int32_t>(i);
      flat_feature_[i] = 0;
    }
  }
}

void GBTRegressor::rebuild_padded() {
  pad_depth_.clear();
  pad_node_off_.clear();
  pad_leaf_off_.clear();
  pad_feature_.clear();
  pad_threshold_.clear();
  pad_weight_.clear();
  pad_depth_.reserve(trees_.size());
  pad_node_off_.reserve(trees_.size());
  pad_leaf_off_.reserve(trees_.size());

  for (std::size_t t = 0; t < flat_roots_.size(); ++t) {
    pad_node_off_.push_back(pad_feature_.size());
    pad_leaf_off_.push_back(pad_weight_.size());
    const std::int32_t depth = flat_depth_[t];
    if (depth > util::simd::kMaxPaddedDepth) {
      pad_depth_.push_back(-1);  // mask bits would overflow; scalar walk
      continue;
    }
    pad_depth_.push_back(depth);
    const std::size_t interior = (std::size_t{1} << depth) - 1;
    const std::size_t leaves = std::size_t{1} << depth;
    const std::size_t node_off = pad_feature_.size();
    const std::size_t leaf_off = pad_weight_.size();
    pad_feature_.resize(node_off + interior, 0);
    pad_threshold_.resize(node_off + interior, 0.0);
    pad_weight_.resize(leaf_off + leaves, 0.0);

    // Breadth-first fill: slot s's children are 2s+1 / 2s+2.  A real
    // leaf reached above the bottom level is carried down through its
    // whole padded subtree (feature 0, threshold 0 — the walk direction
    // is irrelevant once every leaf slot below holds the same weight).
    struct Item {
      std::size_t slot;
      std::int32_t node;  // flat index; interior iff flat_left_[node] >= 0
    };
    std::vector<Item> stack{{0, flat_roots_[t]}};
    while (!stack.empty()) {
      const Item item = stack.back();
      stack.pop_back();
      const auto node = static_cast<std::size_t>(item.node);
      const bool is_leaf = flat_left_[node] < 0;
      if (item.slot >= interior) {
        AP_ASSERT(is_leaf);  // depth counts the deepest interior level
        pad_weight_[leaf_off + (item.slot - interior)] = flat_weight_[node];
        continue;
      }
      if (is_leaf) {
        stack.push_back({2 * item.slot + 1, item.node});
        stack.push_back({2 * item.slot + 2, item.node});
      } else {
        pad_feature_[node_off + item.slot] = flat_feature_[node];
        pad_threshold_[node_off + item.slot] = flat_threshold_[node];
        stack.push_back({2 * item.slot + 1, flat_left_[node]});
        stack.push_back({2 * item.slot + 2, flat_right_[node]});
      }
    }
  }
}

void GBTRegressor::save(util::ArchiveWriter& out) const {
  out.write("gbt.rounds", static_cast<std::int64_t>(options_.num_rounds));
  out.write("gbt.lr", options_.learning_rate);
  out.write("gbt.max_depth",
            static_cast<std::int64_t>(options_.tree.max_depth));
  out.write("gbt.lambda", options_.tree.lambda);
  out.write("gbt.gamma", options_.tree.gamma);
  out.write("gbt.min_child_weight", options_.tree.min_child_weight);
  out.write("gbt.nonneg", options_.nonnegative_prediction);
  out.write("gbt.fitted", fitted_);
  out.write("gbt.base_score", base_score_);
  out.write("gbt.num_trees", static_cast<std::int64_t>(trees_.size()));
  for (const auto& tree : trees_) tree.save(out);
}

void GBTRegressor::load(util::ArchiveReader& in) {
  options_.num_rounds = static_cast<int>(in.read_int("gbt.rounds"));
  options_.learning_rate = in.read_double("gbt.lr");
  options_.tree.max_depth = static_cast<int>(in.read_int("gbt.max_depth"));
  options_.tree.lambda = in.read_double("gbt.lambda");
  options_.tree.gamma = in.read_double("gbt.gamma");
  options_.tree.min_child_weight = in.read_double("gbt.min_child_weight");
  options_.nonnegative_prediction = in.read_bool("gbt.nonneg");
  fitted_ = in.read_bool("gbt.fitted");
  base_score_ = in.read_double("gbt.base_score");
  const auto n = in.read_int("gbt.num_trees");
  AP_REQUIRE(n >= 0 && n < (1 << 20), "corrupt GBT archive");
  trees_.assign(static_cast<std::size_t>(n), RegressionTree{});
  for (auto& tree : trees_) tree.load(in);
  rebuild_flat();
}

double GBTRegressor::predict(std::span<const double> features) const {
  if (!fitted_) throw util::NotFitted("GBTRegressor::predict before fit");
  double acc = base_score_;
  for (const auto& tree : trees_) {
    acc += options_.learning_rate * tree.predict(features);
  }
  if (options_.nonnegative_prediction) acc = std::max(acc, 0.0);
  return acc;
}

std::vector<double> GBTRegressor::predict_all(const Dataset& data) const {
  if (data.empty()) return {};
  return predict_rows(data.row_major_features(), data.num_features());
}

std::vector<double> GBTRegressor::predict_rows(
    std::span<const double> rows, std::size_t num_features) const {
  if (!fitted_) throw util::NotFitted("GBTRegressor::predict_rows before fit");
  AP_REQUIRE(num_features > 0 && rows.size() % num_features == 0,
             "row buffer is not a multiple of the feature arity");
  AP_REQUIRE(max_feature_ < static_cast<int>(num_features),
             "feature arity mismatch in GBT predict_rows");

  const std::size_t count = rows.size() / num_features;
  util::ScopedTimer predict_timer(gbt_metrics().predict_ns);
  gbt_metrics().predict_rows.add(count);
  std::vector<double> out(count, base_score_);

  // Tree-major over blocks of samples, level-synchronous within a tree:
  // every sample in the block advances one level per pass, for exactly the
  // tree's depth.  Self-looping leaves make the walk branch-free (a sample
  // that reaches its leaf early just stays there), and the per-level loads
  // are independent across the block — the CPU overlaps them instead of
  // serialising one root-to-leaf chain per sample.  The per-sample
  // accumulation order (tree 0, 1, ...) matches predict() exactly, so
  // results are bit-identical.
  constexpr std::size_t kBlock = 64;
  const double lr = options_.learning_rate;
  const std::int32_t* const feature = flat_feature_.data();
  const double* const threshold = flat_threshold_.data();
  const std::int32_t* const left = flat_left_.data();
  const std::int32_t* const right = flat_right_.data();
  const double* const weight = flat_weight_.data();
  std::int32_t idx[kBlock];

  // SIMD tiers additionally run each padded tree through the vector
  // forest_leaf_add kernel over a column-major copy of the block (the
  // kernel evaluates all of a tree's conditions with contiguous loads
  // across rows).  The per-row accumulation order — tree 0, 1, ... with
  // one mul-then-add per tree — is identical either way, so the tiers
  // are bit-identical; the scalar tier takes exactly the pre-SIMD path.
  const auto& kt = util::simd::kernels();
  const bool vectorize = kt.tier != util::simd::Tier::kScalar &&
                         !pad_depth_.empty();
  std::vector<double> cols;
  if (vectorize) {
    cols.resize(static_cast<std::size_t>(max_feature_ + 1) * kBlock);
  }

  for (std::size_t begin = 0; begin < count; begin += kBlock) {
    const std::size_t block = std::min(kBlock, count - begin);
    const double* const block_rows = rows.data() + begin * num_features;
    if (vectorize) {
      // Row-major copy order: reads stream sequentially and the 4 KiB
      // cols buffer stays L1-resident, which beats a per-feature
      // strided-gather pass here (each gather lane would touch its own
      // cache line at typical feature arities).
      for (std::size_t i = 0; i < block; ++i) {
        const double* const r = block_rows + i * num_features;
        for (int f = 0; f <= max_feature_; ++f) {
          cols[static_cast<std::size_t>(f) * kBlock + i] = r[f];
        }
      }
    }
    for (std::size_t t = 0; t < flat_roots_.size(); ++t) {
      if (vectorize && pad_depth_[t] >= 0) {
        const util::simd::PaddedTreeView view{
            pad_feature_.data() + pad_node_off_[t],
            pad_threshold_.data() + pad_node_off_[t],
            pad_weight_.data() + pad_leaf_off_[t],
            pad_depth_[t],
        };
        kt.forest_leaf_add(view, cols.data(), kBlock, block, lr,
                           out.data() + begin);
        continue;
      }
      const std::int32_t root = flat_roots_[t];
      const std::int32_t depth = flat_depth_[t];
      for (std::size_t i = 0; i < block; ++i) idx[i] = root;
      for (std::int32_t level = 0; level < depth; ++level) {
        for (std::size_t i = 0; i < block; ++i) {
          const auto k = static_cast<std::size_t>(idx[i]);
          const double x = block_rows[i * num_features +
                                      static_cast<std::size_t>(feature[k])];
          // Branchless select: split direction is data-dependent and
          // unpredictable, so a conditional jump here would mispredict
          // roughly every other node and stall the whole block.
          const std::int32_t mask = -static_cast<std::int32_t>(
              x < threshold[k]);
          idx[i] = (left[k] & mask) | (right[k] & ~mask);
        }
      }
      for (std::size_t i = 0; i < block; ++i) {
        out[begin + i] += lr * weight[static_cast<std::size_t>(idx[i])];
      }
    }
  }

  if (options_.nonnegative_prediction) {
    for (double& v : out) v = std::max(v, 0.0);
  }
  return out;
}

}  // namespace autopower::ml
