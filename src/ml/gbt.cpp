#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace autopower::ml {

void GBTRegressor::fit(const Dataset& data) {
  AP_REQUIRE(!data.empty(), "cannot fit GBT on empty dataset");
  trees_.clear();

  const std::size_t n = data.size();
  base_score_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) base_score_ += data.target(i);
  base_score_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_score_);
  std::vector<double> grad(n);
  const std::vector<double> hess(n, 1.0);  // squared loss: constant hessian

  for (int round = 0; round < options_.num_rounds; ++round) {
    double sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] = pred[i] - data.target(i);  // d/dp 0.5(p - y)^2
      sq += grad[i] * grad[i];
    }
    if (sq / static_cast<double>(n) < 1e-16) break;  // already exact

    RegressionTree tree;
    tree.fit(data, grad, hess, options_.tree);
    if (tree.node_count() == 1 && std::abs(tree.predict(data.features(0))) <
                                      1e-15) {
      break;  // no useful split and zero correction: converged
    }
    for (std::size_t i = 0; i < n; ++i) {
      pred[i] += options_.learning_rate * tree.predict(data.features(i));
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

void GBTRegressor::save(util::ArchiveWriter& out) const {
  out.write("gbt.rounds", static_cast<std::int64_t>(options_.num_rounds));
  out.write("gbt.lr", options_.learning_rate);
  out.write("gbt.max_depth",
            static_cast<std::int64_t>(options_.tree.max_depth));
  out.write("gbt.lambda", options_.tree.lambda);
  out.write("gbt.gamma", options_.tree.gamma);
  out.write("gbt.min_child_weight", options_.tree.min_child_weight);
  out.write("gbt.nonneg", options_.nonnegative_prediction);
  out.write("gbt.fitted", fitted_);
  out.write("gbt.base_score", base_score_);
  out.write("gbt.num_trees", static_cast<std::int64_t>(trees_.size()));
  for (const auto& tree : trees_) tree.save(out);
}

void GBTRegressor::load(util::ArchiveReader& in) {
  options_.num_rounds = static_cast<int>(in.read_int("gbt.rounds"));
  options_.learning_rate = in.read_double("gbt.lr");
  options_.tree.max_depth = static_cast<int>(in.read_int("gbt.max_depth"));
  options_.tree.lambda = in.read_double("gbt.lambda");
  options_.tree.gamma = in.read_double("gbt.gamma");
  options_.tree.min_child_weight = in.read_double("gbt.min_child_weight");
  options_.nonnegative_prediction = in.read_bool("gbt.nonneg");
  fitted_ = in.read_bool("gbt.fitted");
  base_score_ = in.read_double("gbt.base_score");
  const auto n = in.read_int("gbt.num_trees");
  AP_REQUIRE(n >= 0 && n < (1 << 20), "corrupt GBT archive");
  trees_.assign(static_cast<std::size_t>(n), RegressionTree{});
  for (auto& tree : trees_) tree.load(in);
}

double GBTRegressor::predict(std::span<const double> features) const {
  if (!fitted_) throw util::NotFitted("GBTRegressor::predict before fit");
  double acc = base_score_;
  for (const auto& tree : trees_) {
    acc += options_.learning_rate * tree.predict(features);
  }
  if (options_.nonnegative_prediction) acc = std::max(acc, 0.0);
  return acc;
}

std::vector<double> GBTRegressor::predict_all(const Dataset& data) const {
  std::vector<double> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = predict(data.features(i));
  }
  return out;
}

}  // namespace autopower::ml
