// Ridge regression ("linear model with L2 normalization" in the paper).
//
// AutoPower uses ridge models for structural quantities — register count and
// gating rate per component, which are near-affine in the hardware
// parameters — because they must extrapolate from as few as two known
// configurations.  Features are standardised internally so the L2 penalty is
// scale-free; the intercept is never penalised.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "util/archive.hpp"

namespace autopower::ml {

/// Hyper-parameters for RidgeRegression.
struct RidgeOptions {
  /// L2 penalty on standardised coefficients.
  double lambda = 1e-3;
  /// If true, predictions are clamped to be non-negative (counts, rates).
  bool nonnegative_prediction = false;
};

/// Closed-form ridge regression with internal feature standardisation.
class RidgeRegression {
 public:
  RidgeRegression() = default;
  explicit RidgeRegression(RidgeOptions options) : options_(options) {}

  /// Fits on the dataset.  Works for any n >= 1 (the ridge penalty makes the
  /// normal equations well-posed even when underdetermined).
  void fit(const Dataset& data);

  /// Predicts one sample; throws util::NotFitted before fit().
  [[nodiscard]] double predict(std::span<const double> features) const;

  /// Predicts every sample in a dataset.
  [[nodiscard]] std::vector<double> predict_all(const Dataset& data) const;

  /// Batched prediction over `rows.size() / arity` feature vectors stored
  /// row-major in `rows` (SIMD-dispatched across samples; bit-identical
  /// to calling predict() on each row).
  [[nodiscard]] std::vector<double> predict_rows(std::span<const double> rows,
                                                 std::size_t arity) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Coefficients in the original (unstandardised) feature space.
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coef_;
  }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }

  /// Serialization (see util/archive.hpp).
  void save(util::ArchiveWriter& out) const;
  void load(util::ArchiveReader& in);

 private:
  RidgeOptions options_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace autopower::ml
