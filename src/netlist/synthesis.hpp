// Parametric synthesis model — the stand-in for Chipyard RTL generation
// followed by Design Compiler logic synthesis (see DESIGN.md, substitutions).
//
// Given a hardware configuration, it produces for each of the 22 components
// the structural quantities a synthesized netlist would expose:
//
//   * register count R and gating rate g (labels for F_reg / F_gate),
//   * clock-gating-cell ratio r and per-component clock-pin energy spread,
//   * combinational cell count (drives golden combinational power),
//   * the SRAM floorplan: every SRAM Position with its SRAM Block
//     width/depth/count (labels for the scaling-pattern hardware model).
//
// Structural quantities are near-affine in the architecture parameters —
// as they are for a real synthesized BOOM — plus a small deterministic
// "synthesis noise" keyed on the configuration values, standing in for the
// jitter real synthesis runs exhibit.  Combinational cell counts contain
// genuinely non-linear terms (bypass networks, select trees), which is what
// makes monolithic few-shot ML models struggle.
#pragma once

#include <string>
#include <vector>

#include "arch/component.hpp"
#include "arch/params.hpp"

namespace autopower::netlist {

/// One SRAM Position of a component, realised as `count` identical
/// SRAM Blocks of shape width x depth (RTL level, technology independent).
struct SramPositionInfo {
  std::string name;  ///< e.g. "meta", "ldq", "int_rf"
  int block_width = 0;
  int block_depth = 0;
  int block_count = 0;

  [[nodiscard]] long long total_bits() const noexcept {
    return static_cast<long long>(block_width) * block_depth * block_count;
  }
};

/// Structural synthesis result for one component.
struct ComponentNetlist {
  double register_count = 0.0;   ///< R: total registers
  double gating_rate = 0.0;      ///< g: fraction of registers gated
  double gating_cell_ratio = 0.0;  ///< r: gating cells per gated register
  double comb_cell_count = 0.0;  ///< combinational cells
  /// Per-component average clock-pin energy (pJ), including the cell-mix
  /// deviation from the library nominal that the model cannot see.
  double avg_clock_pin_energy = 0.0;
  /// Per-component average gating-latch energy (pJ).
  double avg_gating_latch_energy = 0.0;
  std::vector<SramPositionInfo> sram_positions;
};

/// Options controlling the synthetic synthesis run.
struct SynthesisOptions {
  /// Relative amplitude of the deterministic synthesis jitter on register
  /// and combinational cell counts.
  double structural_noise = 0.02;
  /// Relative amplitude of the per-component clock-pin energy spread
  /// (cell-mix deviation from the library nominal).
  double energy_spread = 0.08;
};

/// Deterministic synthesis model over the BOOM-style design space.
class SynthesisModel {
 public:
  SynthesisModel() = default;
  explicit SynthesisModel(SynthesisOptions options) : options_(options) {}

  /// Synthesizes one component of one configuration.
  [[nodiscard]] ComponentNetlist synthesize(const arch::HardwareConfig& cfg,
                                            arch::ComponentKind c) const;

  /// Synthesizes every component of a configuration (Table III order).
  [[nodiscard]] std::vector<ComponentNetlist> synthesize_all(
      const arch::HardwareConfig& cfg) const;

  /// Total register count across the whole core.
  [[nodiscard]] double total_registers(const arch::HardwareConfig& cfg) const;

  [[nodiscard]] const SynthesisOptions& options() const noexcept {
    return options_;
  }

 private:
  SynthesisOptions options_;
};

}  // namespace autopower::netlist
