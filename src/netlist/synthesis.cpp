#include "netlist/synthesis.hpp"

#include <algorithm>
#include <cmath>

#include "techlib/techlib.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace autopower::netlist {

namespace {

using arch::ComponentKind;
using arch::HardwareConfig;
using arch::HwParam;

double p(const HardwareConfig& cfg, HwParam param) {
  return cfg.value_d(param);
}

/// Stable key for (configuration values, component, tag).  Keyed on values,
/// not the configuration name, so two identically-parameterised configs
/// synthesize identically.
std::uint64_t noise_key(const HardwareConfig& cfg, ComponentKind c,
                        std::string_view tag) {
  std::uint64_t h = util::hash_str(tag);
  h = util::hash_combine(h, static_cast<std::uint64_t>(c));
  for (HwParam param : arch::all_hw_params()) {
    h = util::hash_combine(h,
                           static_cast<std::uint64_t>(cfg.value(param)));
  }
  return h;
}

/// Noise-free register count per component (near-affine structural model).
double base_register_count(const HardwareConfig& cfg, ComponentKind c) {
  const double fw = p(cfg, HwParam::kFetchWidth);
  const double dw = p(cfg, HwParam::kDecodeWidth);
  const double fbe = p(cfg, HwParam::kFetchBufferEntry);
  const double rob = p(cfg, HwParam::kRobEntry);
  const double ipr = p(cfg, HwParam::kIntPhyRegister);
  const double fpr = p(cfg, HwParam::kFpPhyRegister);
  const double lq = p(cfg, HwParam::kLdqStqEntry);
  const double bc = p(cfg, HwParam::kBranchCount);
  const double mfw = p(cfg, HwParam::kMemFpIssueWidth);
  const double iw = p(cfg, HwParam::kIntIssueWidth);
  const double way = p(cfg, HwParam::kCacheWay);
  const double tlb = p(cfg, HwParam::kTlbEntry);
  const double mshr = p(cfg, HwParam::kMshrEntry);
  const double ifb = p(cfg, HwParam::kICacheFetchBytes);

  switch (c) {
    case ComponentKind::kBpTage:
      return 300 + 80 * fw + 15 * bc;
    case ComponentKind::kBpBtb:
      return 200 + 60 * fw + 12 * bc;
    case ComponentKind::kBpOthers:
      return 150 + 100 * fw + 8 * bc;
    case ComponentKind::kICacheTagArray:
      return 50 + 25 * way + 30 * ifb;
    case ComponentKind::kICacheDataArray:
      return 30 + 10 * way + 20 * ifb;
    case ComponentKind::kICacheOthers:
      return 250 + 40 * way + 60 * ifb;
    case ComponentKind::kRnu:
      return 400 + 700 * dw;
    case ComponentKind::kRob:
      return 250 + 28 * rob + 150 * dw;
    case ComponentKind::kRegfile:
      return 150 + 6 * (ipr + fpr) + 100 * dw;
    case ComponentKind::kDCacheTagArray:
      return 80 + 20 * way + 40 * mfw + 2 * tlb;
    case ComponentKind::kDCacheDataArray:
      return 60 + 15 * way + 50 * mfw;
    case ComponentKind::kDCacheOthers:
      return 350 + 45 * way + 120 * mfw + 3 * tlb;
    case ComponentKind::kFpIsu:
      return 200 + 350 * dw + 250 * mfw;
    case ComponentKind::kIntIsu:
      return 250 + 400 * dw + 300 * iw;
    case ComponentKind::kMemIsu:
      return 200 + 320 * dw + 220 * mfw;
    case ComponentKind::kITlb:
      return 150 + 14 * tlb;
    case ComponentKind::kDTlb:
      return 170 + 16 * tlb;
    case ComponentKind::kFuPool:
      return 800 + 900 * iw + 1400 * mfw;
    case ComponentKind::kOtherLogic:
      return 1200 + 180 * fw + 500 * dw + 3 * rob + 2 * (ipr + fpr) +
             10 * lq + 8 * bc;
    case ComponentKind::kDCacheMshr:
      return 120 + 110 * mshr;
    case ComponentKind::kLsu:
      return 300 + 75 * lq + 200 * mfw;
    case ComponentKind::kIfu:
      return 280 + 120 * fw + 24 * fbe + 90 * dw;
  }
  return 0.0;
}

/// Noise-free gating rate per component.  High and mildly size-dependent:
/// bigger structures synthesize with slightly more gating coverage.
double base_gating_rate(const HardwareConfig& cfg, ComponentKind c) {
  const double dw = p(cfg, HwParam::kDecodeWidth);
  double base = 0.90;
  switch (c) {
    case ComponentKind::kBpTage:
    case ComponentKind::kBpBtb:
    case ComponentKind::kBpOthers:
      base = 0.86;
      break;
    case ComponentKind::kICacheTagArray:
    case ComponentKind::kICacheDataArray:
    case ComponentKind::kICacheOthers:
      base = 0.80;
      break;
    case ComponentKind::kRnu:
      base = 0.92;
      break;
    case ComponentKind::kRob:
      base = 0.95;
      break;
    case ComponentKind::kRegfile:
      base = 0.90;
      break;
    case ComponentKind::kDCacheTagArray:
    case ComponentKind::kDCacheDataArray:
    case ComponentKind::kDCacheOthers:
      base = 0.82;
      break;
    case ComponentKind::kFpIsu:
    case ComponentKind::kIntIsu:
    case ComponentKind::kMemIsu:
      base = 0.93;
      break;
    case ComponentKind::kITlb:
    case ComponentKind::kDTlb:
      base = 0.87;
      break;
    case ComponentKind::kFuPool:
      base = 0.96;
      break;
    case ComponentKind::kOtherLogic:
      base = 0.84;
      break;
    case ComponentKind::kDCacheMshr:
      base = 0.89;
      break;
    case ComponentKind::kLsu:
      base = 0.91;
      break;
    case ComponentKind::kIfu:
      base = 0.90;
      break;
  }
  // Wider machines end up with marginally better gating coverage.
  return std::clamp(base + 0.004 * (dw - 3.0), 0.60, 0.985);
}

/// Gating cells per gated register (inverse of the average gating fanout).
double base_gating_cell_ratio(ComponentKind c) {
  switch (c) {
    case ComponentKind::kRegfile:
    case ComponentKind::kRob:
      return 0.07;  // wide, regular banks: large gating fanout
    case ComponentKind::kFuPool:
      return 0.09;
    case ComponentKind::kOtherLogic:
      return 0.14;  // scattered control registers
    default:
      return 0.11;
  }
}

/// Combinational cell count — intentionally non-linear in the parameters.
double base_comb_cells(const HardwareConfig& cfg, ComponentKind c) {
  const double fw = p(cfg, HwParam::kFetchWidth);
  const double dw = p(cfg, HwParam::kDecodeWidth);
  const double fbe = p(cfg, HwParam::kFetchBufferEntry);
  const double rob = p(cfg, HwParam::kRobEntry);
  const double ipr = p(cfg, HwParam::kIntPhyRegister);
  const double fpr = p(cfg, HwParam::kFpPhyRegister);
  const double lq = p(cfg, HwParam::kLdqStqEntry);
  const double bc = p(cfg, HwParam::kBranchCount);
  const double mfw = p(cfg, HwParam::kMemFpIssueWidth);
  const double iw = p(cfg, HwParam::kIntIssueWidth);
  const double way = p(cfg, HwParam::kCacheWay);
  const double tlb = p(cfg, HwParam::kTlbEntry);
  const double mshr = p(cfg, HwParam::kMshrEntry);
  const double ifb = p(cfg, HwParam::kICacheFetchBytes);

  switch (c) {
    case ComponentKind::kBpTage:
      return 900 + 260 * fw + 40 * bc + 14 * fw * bc;
    case ComponentKind::kBpBtb:
      return 600 + 200 * fw + 30 * bc + 9 * fw * bc;
    case ComponentKind::kBpOthers:
      return 500 + 320 * fw + 20 * bc;
    case ComponentKind::kICacheTagArray:
      return 250 + 90 * way + 60 * ifb + 11 * way * ifb;
    case ComponentKind::kICacheDataArray:
      return 200 + 60 * way + 160 * ifb + 8 * way * ifb;
    case ComponentKind::kICacheOthers:
      return 900 + 130 * way + 260 * ifb;
    case ComponentKind::kRnu:
      return 1300 + 1900 * dw + 260 * dw * dw;
    case ComponentKind::kRob:
      return 1000 + 55 * rob + 600 * dw + 9 * dw * rob;
    case ComponentKind::kRegfile:
      // Read-port crossbars grow with ports x registers.
      return 600 + 9 * dw * ipr + 7 * mfw * fpr;
    case ComponentKind::kDCacheTagArray:
      return 350 + 80 * way + 150 * mfw + 6 * tlb;
    case ComponentKind::kDCacheDataArray:
      return 300 + 70 * way + 260 * mfw + 16 * way * mfw;
    case ComponentKind::kDCacheOthers:
      return 1200 + 170 * way + 520 * mfw + 10 * tlb;
    case ComponentKind::kFpIsu:
      return 700 + 950 * dw + 800 * mfw + 160 * dw * mfw;
    case ComponentKind::kIntIsu:
      // Select/wakeup trees are quadratic in issue width.
      return 800 + 1100 * dw + 700 * iw + 260 * iw * iw;
    case ComponentKind::kMemIsu:
      return 650 + 850 * dw + 620 * mfw + 140 * dw * mfw;
    case ComponentKind::kITlb:
      return 420 + 34 * tlb;
    case ComponentKind::kDTlb:
      return 470 + 38 * tlb;
    case ComponentKind::kFuPool:
      // Bypass network grows quadratically with total issue width.
      return 2600 + 2300 * iw + 5200 * mfw +
             320 * (iw + mfw) * (iw + mfw);
    case ComponentKind::kOtherLogic:
      return 4200 + 700 * fw + 1600 * dw + 24 * rob + 5 * (ipr + fpr) +
             120 * dw * fw + 30 * lq;
    case ComponentKind::kDCacheMshr:
      return 380 + 290 * mshr + 22 * mshr * mshr;
    case ComponentKind::kLsu:
      // Store-to-load forwarding CAM compare grows with lq^2-ish pressure.
      return 900 + 210 * lq + 620 * mfw + 3.2 * lq * lq;
    case ComponentKind::kIfu:
      return 1100 + 420 * fw + 70 * fbe + 330 * dw + 10 * fw * fbe;
  }
  return 0.0;
}

int iround(double v) { return static_cast<int>(std::llround(v)); }

/// The SRAM floorplan of a component: every SRAM Position with its block
/// shape as an exact function of the architecture parameters.  The IFU
/// "meta" position reproduces paper Table I exactly
/// (width = 30*FetchWidth, depth = 8*DecodeWidth, count = 1).
std::vector<SramPositionInfo> sram_floorplan(const HardwareConfig& cfg,
                                             ComponentKind c) {
  const int fw = cfg.value(HwParam::kFetchWidth);
  const int dw = cfg.value(HwParam::kDecodeWidth);
  const int fbe = cfg.value(HwParam::kFetchBufferEntry);
  const int rob = cfg.value(HwParam::kRobEntry);
  const int ipr = cfg.value(HwParam::kIntPhyRegister);
  const int fpr = cfg.value(HwParam::kFpPhyRegister);
  const int lq = cfg.value(HwParam::kLdqStqEntry);
  const int bc = cfg.value(HwParam::kBranchCount);
  const int mfw = cfg.value(HwParam::kMemFpIssueWidth);
  const int way = cfg.value(HwParam::kCacheWay);
  const int tlb = cfg.value(HwParam::kTlbEntry);
  const int mshr = cfg.value(HwParam::kMshrEntry);
  const int ifb = cfg.value(HwParam::kICacheFetchBytes);

  switch (c) {
    case ComponentKind::kBpTage:
      return {{"tage_table", 11 * fw, 128, 4}};
    case ComponentKind::kBpBtb:
      return {{"btb_data", 26 * fw, 4 * bc, 2},
              {"btb_meta", 10 * fw, 4 * bc, 1}};
    case ComponentKind::kBpOthers:
      return {{"ghist", 8 * fw, 32, 1}};
    case ComponentKind::kICacheTagArray:
      return {{"tag", 20 * way, 64, 1}};
    case ComponentKind::kICacheDataArray:
      // Parallel-read ways: one block per way, each fetch reads all ways.
      return {{"data", 32 * ifb, 256, way}};
    case ComponentKind::kRnu:
      return {{"maptable", 14 * dw, 32, 1}, {"freelist", 8 * dw, 16, 1}};
    case ComponentKind::kRob:
      // Banked by DecodeWidth: RobEntry/DecodeWidth rows of DecodeWidth
      // uops (the Table II design space keeps this an integer).
      return {{"rob_data", 70 * dw, rob / dw, 1}};
    case ComponentKind::kRegfile:
      return {{"int_rf", 64, ipr, dw}, {"fp_rf", 65, fpr, dw}};
    case ComponentKind::kDCacheTagArray:
      return {{"tag", 21 * way, 64, mfw}};
    case ComponentKind::kDCacheDataArray:
      // Way-select before data read: ways stacked in depth, banked per
      // memory pipe.
      return {{"data", 64, 256 * way, mfw}};
    case ComponentKind::kITlb:
      return {{"itlb", 52, tlb, 1}};
    case ComponentKind::kDTlb:
      return {{"dtlb", 52, tlb, 1}};
    case ComponentKind::kDCacheMshr:
      return {{"mshr_data", 64, 4 * mshr, 1}};
    case ComponentKind::kLsu:
      return {{"ldq", 78, lq, 1}, {"stq", 88, lq, 1}};
    case ComponentKind::kIfu:
      return {{"fb", 35 * fw, fbe, 1},
              {"meta", 30 * fw, 8 * dw, 1},
              {"ghist_q", 16 * fw, 8 * dw, 1}};
    case ComponentKind::kICacheOthers:
    case ComponentKind::kDCacheOthers:
    case ComponentKind::kFpIsu:
    case ComponentKind::kIntIsu:
    case ComponentKind::kMemIsu:
    case ComponentKind::kFuPool:
    case ComponentKind::kOtherLogic:
      return {};  // flop-based components: no SRAM positions
  }
  (void)iround;
  return {};
}

}  // namespace

ComponentNetlist SynthesisModel::synthesize(const HardwareConfig& cfg,
                                            ComponentKind c) const {
  ComponentNetlist out;
  const double reg_noise =
      util::noise_factor(noise_key(cfg, c, "regs"), options_.structural_noise);
  const double comb_noise = util::noise_factor(noise_key(cfg, c, "comb"),
                                               1.5 * options_.structural_noise);
  const double gate_noise =
      util::hash_sym(noise_key(cfg, c, "gate")) * 0.008;

  out.register_count = base_register_count(cfg, c) * reg_noise;
  out.gating_rate =
      std::clamp(base_gating_rate(cfg, c) + gate_noise, 0.5, 0.99);
  out.gating_cell_ratio = base_gating_cell_ratio(c);
  out.comb_cell_count = base_comb_cells(cfg, c) * comb_noise;

  // Cell-mix spread: the per-component average clock-pin energy deviates
  // from the library nominal (mostly component-identity driven, with a
  // small configuration-dependent residue).
  const auto& lib = techlib::TechLibrary::default_40nm();
  const double comp_spread = util::noise_factor(
      util::hash_combine(util::hash_str("pinmix"),
                         static_cast<std::uint64_t>(c)),
      options_.energy_spread);
  const double cfg_spread =
      util::noise_factor(noise_key(cfg, c, "pinmix-cfg"), 0.015);
  out.avg_clock_pin_energy =
      lib.clock_pin_energy * comp_spread * cfg_spread;
  out.avg_gating_latch_energy =
      lib.gating_latch_energy * comp_spread * cfg_spread;

  out.sram_positions = sram_floorplan(cfg, c);
  return out;
}

std::vector<ComponentNetlist> SynthesisModel::synthesize_all(
    const HardwareConfig& cfg) const {
  std::vector<ComponentNetlist> out;
  out.reserve(arch::kNumComponents);
  for (arch::ComponentKind c : arch::all_components()) {
    out.push_back(synthesize(cfg, c));
  }
  return out;
}

double SynthesisModel::total_registers(const HardwareConfig& cfg) const {
  double total = 0.0;
  for (arch::ComponentKind c : arch::all_components()) {
    total += synthesize(cfg, c).register_count;
  }
  return total;
}

}  // namespace autopower::netlist
