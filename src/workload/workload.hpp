// Workload profiles — the stand-in for the riscv-tests binaries (and the
// GEMM/SPMM kernels of the power-trace experiment).
//
// A workload is described by its dynamic-instruction profile: phases with
// an instruction mix, inherent ILP, branch predictability, and cache
// footprints.  The performance simulator turns a profile plus a hardware
// configuration into event parameters; the profile alone also yields the
// microarchitecture-independent "program-level features" AutoPower feeds
// to its activity models (paper Sec. II-B: features unaffected by the
// performance simulator's inaccuracy).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace autopower::workload {

/// One execution phase of a workload.
struct WorkloadPhase {
  std::string name;
  /// Fraction of the workload's dynamic instructions spent in this phase.
  double weight = 1.0;
  /// Inherent instruction-level parallelism (independent ops per cycle the
  /// program offers an infinitely wide machine).
  double ilp = 2.0;
  // Dynamic instruction mix (fractions of all instructions; the remainder
  // is plain integer ALU work).
  double branch_frac = 0.15;
  double load_frac = 0.20;
  double store_frac = 0.10;
  double fp_frac = 0.0;
  double muldiv_frac = 0.02;
  /// Inherent branch unpredictability in [0, 1]: 0 = perfectly regular
  /// loops, 1 = data-dependent chaos.
  double branch_entropy = 0.3;
  /// Data working-set size and access regularity.
  double dcache_footprint_kb = 16.0;
  double dcache_stride_frac = 0.7;  ///< fraction of sequential/strided refs
  /// Code working-set size.
  double icache_footprint_kb = 4.0;
  /// Average dependent-load latency sensitivity (pointer chasing).
  double mem_serialisation = 0.2;
};

/// A complete workload: named phases plus total dynamic instructions.
struct WorkloadProfile {
  std::string name;
  std::uint64_t instructions = 100'000;
  std::vector<WorkloadPhase> phases;

  /// Weighted average of a phase quantity over the whole run.
  [[nodiscard]] double average(double WorkloadPhase::* field) const;
};

/// Program-level feature vector (microarchitecture independent).
struct ProgramFeatures {
  double log_instructions = 0.0;
  double branch_frac = 0.0;
  double load_frac = 0.0;
  double store_frac = 0.0;
  double fp_frac = 0.0;
  double muldiv_frac = 0.0;
  double ilp = 0.0;
  double branch_entropy = 0.0;
  double dcache_footprint_kb = 0.0;
  double icache_footprint_kb = 0.0;

  [[nodiscard]] std::vector<double> as_vector() const;
  [[nodiscard]] static std::vector<std::string> names();
};

/// Extracts the program-level features of a profile.
[[nodiscard]] ProgramFeatures program_features(const WorkloadProfile& profile);

/// The eight riscv-tests evaluation workloads of the paper:
/// dhrystone, median, multiply, qsort, rsort, towers, spmv, vvadd.
[[nodiscard]] const std::vector<WorkloadProfile>& riscv_tests_workloads();

/// The two large power-trace workloads (paper Table IV): GEMM and SPMM,
/// multi-million-cycle phased kernels.
[[nodiscard]] const std::vector<WorkloadProfile>& trace_workloads();

/// Extension workloads NOT part of the paper's evaluation grid (fft,
/// coremark): used to study generalisation to workloads the models never
/// saw during training (bench_ext_unseen_workloads).
[[nodiscard]] const std::vector<WorkloadProfile>& extension_workloads();

/// Looks up any known workload by name; throws if unknown.
[[nodiscard]] const WorkloadProfile& workload_by_name(std::string_view name);

}  // namespace autopower::workload
