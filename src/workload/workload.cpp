#include "workload/workload.hpp"

#include <cmath>

#include "util/error.hpp"

namespace autopower::workload {

double WorkloadProfile::average(double WorkloadPhase::* field) const {
  AP_REQUIRE(!phases.empty(), "workload has no phases: " + name);
  double acc = 0.0;
  double wsum = 0.0;
  for (const auto& ph : phases) {
    acc += ph.weight * (ph.*field);
    wsum += ph.weight;
  }
  return acc / wsum;
}

std::vector<double> ProgramFeatures::as_vector() const {
  return {log_instructions, branch_frac, load_frac,
          store_frac,       fp_frac,     muldiv_frac,
          ilp,              branch_entropy, dcache_footprint_kb,
          icache_footprint_kb};
}

std::vector<std::string> ProgramFeatures::names() {
  return {"P.LogInstructions", "P.BranchFrac",   "P.LoadFrac",
          "P.StoreFrac",       "P.FpFrac",       "P.MulDivFrac",
          "P.Ilp",             "P.BranchEntropy", "P.DcacheFootprintKb",
          "P.IcacheFootprintKb"};
}

ProgramFeatures program_features(const WorkloadProfile& profile) {
  ProgramFeatures f;
  f.log_instructions =
      std::log10(static_cast<double>(profile.instructions));
  f.branch_frac = profile.average(&WorkloadPhase::branch_frac);
  f.load_frac = profile.average(&WorkloadPhase::load_frac);
  f.store_frac = profile.average(&WorkloadPhase::store_frac);
  f.fp_frac = profile.average(&WorkloadPhase::fp_frac);
  f.muldiv_frac = profile.average(&WorkloadPhase::muldiv_frac);
  f.ilp = profile.average(&WorkloadPhase::ilp);
  f.branch_entropy = profile.average(&WorkloadPhase::branch_entropy);
  f.dcache_footprint_kb =
      profile.average(&WorkloadPhase::dcache_footprint_kb);
  f.icache_footprint_kb =
      profile.average(&WorkloadPhase::icache_footprint_kb);
  return f;
}

namespace {

WorkloadPhase phase(std::string name, double weight) {
  WorkloadPhase p;
  p.name = std::move(name);
  p.weight = weight;
  return p;
}

std::vector<WorkloadProfile> make_riscv_tests() {
  std::vector<WorkloadProfile> out;

  {  // dhrystone: the classic branchy integer benchmark, tiny footprint.
    WorkloadProfile w;
    w.name = "dhrystone";
    w.instructions = 360'000;
    auto p = phase("main", 1.0);
    p.ilp = 2.2;
    p.branch_frac = 0.17;
    p.load_frac = 0.21;
    p.store_frac = 0.11;
    p.muldiv_frac = 0.01;
    p.branch_entropy = 0.25;
    p.dcache_footprint_kb = 6.0;
    p.dcache_stride_frac = 0.75;
    p.icache_footprint_kb = 6.0;
    p.mem_serialisation = 0.15;
    w.phases = {p};
    out.push_back(std::move(w));
  }
  {  // median: 1-D median filter over a vector; load heavy, compare chains.
    WorkloadProfile w;
    w.name = "median";
    w.instructions = 140'000;
    auto p = phase("filter", 1.0);
    p.ilp = 2.0;
    p.branch_frac = 0.16;
    p.load_frac = 0.30;
    p.store_frac = 0.08;
    p.branch_entropy = 0.45;
    p.dcache_footprint_kb = 8.0;
    p.dcache_stride_frac = 0.85;
    p.icache_footprint_kb = 2.0;
    p.mem_serialisation = 0.25;
    w.phases = {p};
    out.push_back(std::move(w));
  }
  {  // multiply: software multiply via shift-add loops; regular branches.
    WorkloadProfile w;
    w.name = "multiply";
    w.instructions = 220'000;
    auto p = phase("shift-add", 1.0);
    p.ilp = 1.8;
    p.branch_frac = 0.22;
    p.load_frac = 0.12;
    p.store_frac = 0.05;
    p.muldiv_frac = 0.00;
    p.branch_entropy = 0.18;
    p.dcache_footprint_kb = 3.0;
    p.dcache_stride_frac = 0.9;
    p.icache_footprint_kb = 1.5;
    p.mem_serialisation = 0.1;
    w.phases = {p};
    out.push_back(std::move(w));
  }
  {  // qsort: recursive quicksort; data-dependent branches, mid footprint.
    WorkloadProfile w;
    w.name = "qsort";
    w.instructions = 260'000;
    auto p = phase("partition", 1.0);
    p.ilp = 1.7;
    p.branch_frac = 0.19;
    p.load_frac = 0.26;
    p.store_frac = 0.13;
    p.branch_entropy = 0.65;
    p.dcache_footprint_kb = 24.0;
    p.dcache_stride_frac = 0.55;
    p.icache_footprint_kb = 2.5;
    p.mem_serialisation = 0.3;
    w.phases = {p};
    out.push_back(std::move(w));
  }
  {  // rsort: radix sort; streaming passes, very regular branches.
    WorkloadProfile w;
    w.name = "rsort";
    w.instructions = 300'000;
    auto p = phase("radix-pass", 1.0);
    p.ilp = 2.6;
    p.branch_frac = 0.10;
    p.load_frac = 0.31;
    p.store_frac = 0.18;
    p.branch_entropy = 0.12;
    p.dcache_footprint_kb = 64.0;
    p.dcache_stride_frac = 0.8;
    p.icache_footprint_kb = 2.0;
    p.mem_serialisation = 0.15;
    w.phases = {p};
    out.push_back(std::move(w));
  }
  {  // towers: Towers of Hanoi; deep recursion, low ILP, predictable.
    WorkloadProfile w;
    w.name = "towers";
    w.instructions = 120'000;
    auto p = phase("recurse", 1.0);
    p.ilp = 1.4;
    p.branch_frac = 0.20;
    p.load_frac = 0.24;
    p.store_frac = 0.16;
    p.branch_entropy = 0.22;
    p.dcache_footprint_kb = 4.0;
    p.dcache_stride_frac = 0.6;
    p.icache_footprint_kb = 1.5;
    p.mem_serialisation = 0.35;
    w.phases = {p};
    out.push_back(std::move(w));
  }
  {  // spmv: sparse matrix-vector product; irregular gathers, some FP.
    WorkloadProfile w;
    w.name = "spmv";
    w.instructions = 240'000;
    auto p = phase("gather", 1.0);
    p.ilp = 2.1;
    p.branch_frac = 0.09;
    p.load_frac = 0.34;
    p.store_frac = 0.06;
    p.fp_frac = 0.24;
    p.branch_entropy = 0.3;
    p.dcache_footprint_kb = 128.0;
    p.dcache_stride_frac = 0.3;
    p.icache_footprint_kb = 1.5;
    p.mem_serialisation = 0.5;
    w.phases = {p};
    out.push_back(std::move(w));
  }
  {  // vvadd: streaming vector add; wide ILP, near-zero branch entropy.
    WorkloadProfile w;
    w.name = "vvadd";
    w.instructions = 200'000;
    auto p = phase("stream", 1.0);
    p.ilp = 3.6;
    p.branch_frac = 0.07;
    p.load_frac = 0.40;
    p.store_frac = 0.20;
    p.branch_entropy = 0.05;
    p.dcache_footprint_kb = 192.0;
    p.dcache_stride_frac = 1.0;
    p.icache_footprint_kb = 1.0;
    p.mem_serialisation = 0.05;
    w.phases = {p};
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<WorkloadProfile> make_trace_workloads() {
  std::vector<WorkloadProfile> out;

  {  // GEMM: blocked dense matrix multiply — alternating pack/compute
    // phases give the power trace its max/min structure.
    WorkloadProfile w;
    w.name = "gemm";
    w.instructions = 3'200'000;
    auto pack = phase("pack", 0.12);
    pack.ilp = 2.8;
    pack.branch_frac = 0.08;
    pack.load_frac = 0.38;
    pack.store_frac = 0.24;
    pack.fp_frac = 0.02;
    pack.branch_entropy = 0.08;
    pack.dcache_footprint_kb = 256.0;
    pack.dcache_stride_frac = 0.95;
    pack.icache_footprint_kb = 1.0;
    pack.mem_serialisation = 0.1;
    auto compute = phase("compute", 0.80);
    compute.ilp = 3.4;
    compute.branch_frac = 0.05;
    compute.load_frac = 0.30;
    compute.store_frac = 0.06;
    compute.fp_frac = 0.46;
    compute.branch_entropy = 0.04;
    compute.dcache_footprint_kb = 24.0;  // blocked: tile fits in cache
    compute.dcache_stride_frac = 0.95;
    compute.icache_footprint_kb = 0.8;
    compute.mem_serialisation = 0.05;
    auto writeback = phase("writeback", 0.08);
    writeback.ilp = 2.4;
    writeback.branch_frac = 0.07;
    writeback.load_frac = 0.20;
    writeback.store_frac = 0.36;
    writeback.fp_frac = 0.04;
    writeback.branch_entropy = 0.06;
    writeback.dcache_footprint_kb = 256.0;
    writeback.dcache_stride_frac = 1.0;
    writeback.icache_footprint_kb = 0.8;
    writeback.mem_serialisation = 0.1;
    w.phases = {pack, compute, writeback};
    out.push_back(std::move(w));
  }
  {  // SPMM: sparse x dense matrix multiply — irregular row phases
    // interleaved with dense accumulation bursts.
    WorkloadProfile w;
    w.name = "spmm";
    w.instructions = 2'600'000;
    auto index = phase("index-walk", 0.30);
    index.ilp = 1.6;
    index.branch_frac = 0.14;
    index.load_frac = 0.36;
    index.store_frac = 0.05;
    index.fp_frac = 0.04;
    index.branch_entropy = 0.55;
    index.dcache_footprint_kb = 320.0;
    index.dcache_stride_frac = 0.25;
    index.icache_footprint_kb = 1.5;
    index.mem_serialisation = 0.6;
    auto accum = phase("accumulate", 0.62);
    accum.ilp = 2.9;
    accum.branch_frac = 0.07;
    accum.load_frac = 0.32;
    accum.store_frac = 0.12;
    accum.fp_frac = 0.34;
    accum.branch_entropy = 0.18;
    accum.dcache_footprint_kb = 48.0;
    accum.dcache_stride_frac = 0.7;
    accum.icache_footprint_kb = 1.2;
    accum.mem_serialisation = 0.2;
    auto flush = phase("row-flush", 0.08);
    flush.ilp = 2.2;
    flush.branch_frac = 0.09;
    flush.load_frac = 0.18;
    flush.store_frac = 0.34;
    flush.fp_frac = 0.05;
    flush.branch_entropy = 0.1;
    flush.dcache_footprint_kb = 128.0;
    flush.dcache_stride_frac = 0.9;
    flush.icache_footprint_kb = 1.0;
    flush.mem_serialisation = 0.12;
    w.phases = {index, accum, flush};
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<WorkloadProfile> make_extension_workloads() {
  std::vector<WorkloadProfile> out;

  {  // fft: butterfly stages — fp heavy with strided bit-reversed access.
    WorkloadProfile w;
    w.name = "fft";
    w.instructions = 280'000;
    auto p = phase("butterfly", 1.0);
    p.ilp = 2.7;
    p.branch_frac = 0.08;
    p.load_frac = 0.30;
    p.store_frac = 0.16;
    p.fp_frac = 0.34;
    p.muldiv_frac = 0.0;
    p.branch_entropy = 0.1;
    p.dcache_footprint_kb = 96.0;
    p.dcache_stride_frac = 0.5;  // bit-reversed addressing
    p.icache_footprint_kb = 1.2;
    p.mem_serialisation = 0.15;
    w.phases = {p};
    out.push_back(std::move(w));
  }
  {  // coremark: mixed list/matrix/state-machine kernel, integer only.
    WorkloadProfile w;
    w.name = "coremark";
    w.instructions = 420'000;
    auto list = phase("list", 0.4);
    list.ilp = 1.6;
    list.branch_frac = 0.21;
    list.load_frac = 0.27;
    list.store_frac = 0.09;
    list.branch_entropy = 0.5;
    list.dcache_footprint_kb = 12.0;
    list.dcache_stride_frac = 0.35;  // pointer chasing
    list.icache_footprint_kb = 5.0;
    list.mem_serialisation = 0.55;
    auto matrix = phase("matrix", 0.35);
    matrix.ilp = 2.8;
    matrix.branch_frac = 0.09;
    matrix.load_frac = 0.28;
    matrix.store_frac = 0.12;
    matrix.muldiv_frac = 0.06;
    matrix.branch_entropy = 0.08;
    matrix.dcache_footprint_kb = 10.0;
    matrix.dcache_stride_frac = 0.9;
    matrix.icache_footprint_kb = 2.0;
    matrix.mem_serialisation = 0.1;
    auto state = phase("state-machine", 0.25);
    state.ilp = 1.5;
    state.branch_frac = 0.26;
    state.load_frac = 0.18;
    state.store_frac = 0.07;
    state.branch_entropy = 0.6;
    state.dcache_footprint_kb = 2.0;
    state.dcache_stride_frac = 0.7;
    state.icache_footprint_kb = 4.0;
    state.mem_serialisation = 0.25;
    w.phases = {list, matrix, state};
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace

const std::vector<WorkloadProfile>& riscv_tests_workloads() {
  static const std::vector<WorkloadProfile> workloads = make_riscv_tests();
  return workloads;
}

const std::vector<WorkloadProfile>& trace_workloads() {
  static const std::vector<WorkloadProfile> workloads = make_trace_workloads();
  return workloads;
}

const std::vector<WorkloadProfile>& extension_workloads() {
  static const std::vector<WorkloadProfile> workloads =
      make_extension_workloads();
  return workloads;
}

const WorkloadProfile& workload_by_name(std::string_view name) {
  for (const auto& w : riscv_tests_workloads()) {
    if (w.name == name) return w;
  }
  for (const auto& w : trace_workloads()) {
    if (w.name == name) return w;
  }
  for (const auto& w : extension_workloads()) {
    if (w.name == name) return w;
  }
  throw util::InvalidArgument("unknown workload: " + std::string(name));
}

}  // namespace autopower::workload
