#include "serve/jsonl.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <utility>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace autopower::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw util::Error("jsonl: " + what);
}

}  // namespace

// --- JsonValue accessors ----------------------------------------------------

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) fail("expected a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) fail("expected a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) fail("expected a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) fail("expected an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) fail("expected an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

// --- Parser -----------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail_at("trailing characters after value");
    return v;
  }

 private:
  [[noreturn]] void fail_at(const std::string& what) const {
    fail(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail_at("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
        if (consume_literal("true")) return make_bool(true);
        fail_at("invalid literal");
      case 'f':
        if (consume_literal("false")) return make_bool(false);
        fail_at("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail_at("invalid literal");
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      JsonValue value = parse_value();
      if (!v.object_.emplace(key.string_, std::move(value)).second) {
        fail_at("duplicate key \"" + key.string_ + "\"");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    std::string& out = v.string_;
    for (;;) {
      if (pos_ >= text_.size()) fail_at("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail_at("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail_at("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail_at("invalid \\u escape");
          }
          // Encode as UTF-8 (basic multilingual plane only; surrogate
          // pairs are not needed for config/workload names).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail_at("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail_at("invalid number");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

// --- Writer helpers ---------------------------------------------------------

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  // Shortest representation that round-trips: try increasing precision.
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    const auto len = std::string_view(buf).size();
    const auto [ptr, ec] = std::from_chars(buf, buf + len, parsed);
    if (ec == std::errc{} && ptr == buf + len && parsed == value) break;
  }
  return buf;
}

// --- Request / response (de)serialisation -----------------------------------

BatchRequest request_from_jsonl(std::string_view line) {
  const JsonValue doc = JsonValue::parse(line);
  BatchRequest req;
  bool have_config = false;
  bool have_workload = false;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "config") {
      req.config = value.as_string();
      have_config = true;
    } else if (key == "workload") {
      req.workload = value.as_string();
      have_workload = true;
    } else if (key == "mode") {
      req.mode = mode_from_string(value.as_string());
    } else {
      fail("unknown request key \"" + key + "\"");
    }
  }
  if (!have_config) fail("request is missing \"config\"");
  if (!have_workload) fail("request is missing \"workload\"");
  return req;
}

std::string response_to_jsonl(const BatchResponse& response) {
  std::string out = "{\"index\": " + std::to_string(response.index) +
                    ", \"config\": \"" + json_escape(response.config) +
                    "\", \"workload\": \"" + json_escape(response.workload) +
                    "\", \"mode\": \"" +
                    std::string(to_string(response.mode)) + "\", \"ok\": " +
                    (response.ok ? "true" : "false");
  if (!response.ok) {
    out += ", \"error\": \"" + json_escape(response.error) + "\"}";
    return out;
  }
  out += ", \"total_mw\": " + json_number(response.total_mw);
  if (response.mode == PredictMode::kPerComponent) {
    out += ", \"components\": [";
    for (std::size_t i = 0; i < response.components.size(); ++i) {
      const auto& cp = response.components[i];
      if (i > 0) out += ", ";
      out += "{\"component\": \"" + json_escape(cp.component) +
             "\", \"clock_mw\": " + json_number(cp.clock_mw) +
             ", \"sram_mw\": " + json_number(cp.sram_mw) +
             ", \"logic_mw\": " + json_number(cp.logic_mw) +
             ", \"total_mw\": " + json_number(cp.total_mw) + "}";
    }
    out += "]";
  } else if (response.mode == PredictMode::kTrace) {
    out += ", \"trace_mw\": [";
    for (std::size_t i = 0; i < response.trace_mw.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_number(response.trace_mw[i]);
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::vector<BatchRequest> read_requests(std::istream& in) {
  std::vector<BatchRequest> requests;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;  // blank line
    try {
      // Stands in for the request source dying mid-read (I/O error on a
      // spooled file, truncated pipe): surfaces as a line-numbered error.
      AUTOPOWER_FAULT_POINT("serve.jsonl.read_line");
      requests.push_back(request_from_jsonl(line));
    } catch (const util::Error& e) {
      throw util::Error("line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  return requests;
}

void write_responses(std::ostream& out,
                     std::span<const BatchResponse> responses) {
  for (const auto& response : responses) {
    // Stream-flavoured fault: latches badbit like a full disk would, so
    // the caller's flush_and_check path is what reports the torn report.
    AUTOPOWER_FAULT_STREAM("serve.jsonl.write_response", out);
    out << response_to_jsonl(response) << '\n';
  }
}

}  // namespace autopower::serve
