#include "serve/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <thread>
#include <utility>

#include "arch/component.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"
#include "util/error.hpp"
#include "workload/workload.hpp"

namespace autopower::serve {

std::string_view to_string(PredictMode mode) noexcept {
  switch (mode) {
    case PredictMode::kTotal: return "total";
    case PredictMode::kPerComponent: return "per_component";
    case PredictMode::kTrace: return "trace";
  }
  return "total";
}

PredictMode mode_from_string(std::string_view text) {
  if (text == "total") return PredictMode::kTotal;
  if (text == "per_component") return PredictMode::kPerComponent;
  if (text == "trace") return PredictMode::kTrace;
  throw util::InvalidArgument(
      "unknown mode: " + std::string(text) +
      " (expected total | per_component | trace)");
}

namespace {

// '\x1f' cannot appear in config/workload names; the mode tag makes the
// key unique per response shape.  The fingerprint leads the key so two
// model snapshots can never alias a memo entry — de-routed, not
// invalidated: swapping back to an identical archive re-hits its entries.
std::string response_key(std::string_view fingerprint,
                         const BatchRequest& request) {
  std::string key;
  key.reserve(fingerprint.size() + 3 + request.config.size() +
              request.workload.size() + 16);
  key += fingerprint;
  key += '\x1f';
  key += request.config;
  key += '\x1f';
  key += request.workload;
  key += '\x1f';
  key += to_string(request.mode);
  return key;
}

}  // namespace

BatchEngine::BatchEngine(std::shared_ptr<const core::AutoPowerModel> model,
                         EngineOptions options)
    : model_(std::move(model)),
      options_(options),
      cache_(options.cache_shards),
      structural_(std::make_shared<util::StructuralSimCache>()),
      response_shards_(options.cache_shards == 0 ? 1 : options.cache_shards),
      metrics_{util::MetricsRegistry::global().counter(
                   "serve.batch.requests"),
               util::MetricsRegistry::global().counter("serve.batch.failed"),
               util::MetricsRegistry::global().counter(
                   "serve.batch.response_memo.hits"),
               util::MetricsRegistry::global().counter(
                   "serve.batch.response_memo.misses"),
               util::MetricsRegistry::global().histogram(
                   "serve.batch.request_latency_ns"),
               util::MetricsRegistry::global().histogram(
                   "serve.batch.queue_wait_ns"),
               util::MetricsRegistry::global().histogram(
                   "serve.batch.batch_size")} {
  AP_REQUIRE(model_ != nullptr, "BatchEngine: null model");
  if (options_.threads == 0) options_.threads = 1;
  // Clamp worker fan-out to the physical core count — oversubscribing a
  // small box adds context-switch latency without adding throughput.
  // Responses are order-preserving and thread-count-invariant, so the
  // clamp never changes a result — but a threaded request must stay
  // threaded: the serial path in run() propagates a handle() failure
  // while the worker path isolates it per request, so clamping 4 -> 1
  // on a single-core host would change error semantics, not just
  // scheduling.  Hence the floor of 2 whenever the caller asked for
  // more than one worker.
  if (options_.threads > 1) {
    options_.threads = std::min(
        options_.threads,
        std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  }
}

EvalCache::Stats BatchEngine::response_stats() const noexcept {
  return {response_hits_.load(std::memory_order_relaxed),
          response_misses_.load(std::memory_order_relaxed)};
}

void BatchEngine::swap_model(
    std::shared_ptr<const core::AutoPowerModel> model) {
  AP_REQUIRE(model != nullptr, "BatchEngine: null model");
  std::lock_guard<std::mutex> lock(model_mu_);
  model_ = std::move(model);
}

std::shared_ptr<const core::AutoPowerModel> BatchEngine::model() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

std::string BatchEngine::model_fingerprint() const {
  return model()->fingerprint();
}

BatchResponse BatchEngine::handle(const BatchRequest& request,
                                  std::size_t index,
                                  const sim::PerfSimulator& sim,
                                  const core::AutoPowerModel& model) {
  // Outside compute()'s try block: an injected failure here exercises the
  // worker-loop error isolation, not the per-request error reporting.
  AUTOPOWER_FAULT_POINT("serve.engine.handle");
  if (!options_.memoize_responses || request.mode == PredictMode::kTrace) {
    BatchResponse resp = compute(request, sim, model);
    resp.index = index;
    return resp;
  }

  const std::string key = response_key(model.fingerprint(), request);
  ResponseShard& shard =
      response_shards_[std::hash<std::string>{}(key) %
                       response_shards_.size()];
  {
    std::lock_guard lock(shard.mu);
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      response_hits_.fetch_add(1, std::memory_order_relaxed);
      metrics_.memo_hits.inc();
      BatchResponse resp = *it->second;  // memoised with index == 0
      resp.index = index;
      return resp;
    }
  }

  // Compute outside the lock; on a racing miss the first insert wins and
  // both copies are bit-identical anyway (everything is deterministic).
  auto computed =
      std::make_shared<const BatchResponse>(compute(request, sim, model));
  if (!computed->ok) {
    // Never memoise a failed response: compute() folds transient faults
    // (allocation / injected failures) into ok == false, and publishing
    // one would poison the memo — every future identical request would
    // be served the stale error even after the fault clears.  Failures
    // for deterministic reasons (unknown config) recompute cheaply.
    response_misses_.fetch_add(1, std::memory_order_relaxed);
    metrics_.memo_misses.inc();
    BatchResponse resp = *computed;
    resp.index = index;
    return resp;
  }
  BatchResponse resp;
  bool won_insert = false;
  {
    std::lock_guard lock(shard.mu);
    const auto [it, inserted] = shard.map.emplace(key, std::move(computed));
    won_insert = inserted;
    resp = *it->second;
  }
  // Only the winning insert is a miss; a lost race adopted the published
  // response and counts as a hit (see response_stats doc).
  if (won_insert) {
    response_misses_.fetch_add(1, std::memory_order_relaxed);
    metrics_.memo_misses.inc();
  } else {
    response_hits_.fetch_add(1, std::memory_order_relaxed);
    metrics_.memo_hits.inc();
  }
  resp.index = index;
  return resp;
}

BatchResponse BatchEngine::compute(const BatchRequest& request,
                                   const sim::PerfSimulator& sim,
                                   const core::AutoPowerModel& model) {
  BatchResponse resp;
  resp.config = request.config;
  resp.workload = request.workload;
  resp.mode = request.mode;
  try {
    if (request.mode == PredictMode::kTrace) {
      // Per-window contexts are trace-specific and not cached: a trace is
      // one large deterministic simulation, not a repeated lookup key.
      const auto& cfg = arch::boom_config(request.config);
      const auto& profile = workload::workload_by_name(request.workload);
      const auto program = workload::program_features(profile);
      const auto windows = sim.simulate_trace(cfg, profile);
      std::vector<core::EvalContext> contexts(windows.size());
      for (std::size_t w = 0; w < windows.size(); ++w) {
        contexts[w].cfg = &cfg;
        contexts[w].workload = request.workload;
        contexts[w].program = program;
        contexts[w].events = windows[w];
      }
      resp.trace_mw = model.predict_trace(contexts);
      for (double mw : resp.trace_mw) resp.total_mw += mw;
      if (!resp.trace_mw.empty()) {
        resp.total_mw /= static_cast<double>(resp.trace_mw.size());
      }
    } else {
      const auto ctx = cache_.get_or_compute(model.fingerprint(),
                                             request.config,
                                             request.workload, sim);
      if (request.mode == PredictMode::kPerComponent) {
        const auto result = model.predict(*ctx);
        resp.components.reserve(result.components.size());
        for (const auto& cp : result.components) {
          resp.components.push_back(
              {std::string(arch::component_name(cp.component)),
               cp.groups.clock, cp.groups.sram, cp.groups.logic(),
               cp.groups.total()});
        }
        resp.total_mw = result.total();
      } else {
        resp.total_mw = model.predict_total(*ctx);
      }
    }
    resp.ok = true;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  return resp;
}

std::vector<BatchResponse> BatchEngine::run(
    std::span<const BatchRequest> requests) {
  std::vector<BatchResponse> responses(requests.size());
  if (requests.empty()) return responses;

  metrics_.batch_size.observe(requests.size());
  metrics_.requests.add(requests.size());
  const auto run_start = std::chrono::steady_clock::now();

  // Pin the published snapshot ONCE: a swap_model() landing mid-run can
  // never tear this batch across two models.
  const std::shared_ptr<const core::AutoPowerModel> pinned = model();

  const std::size_t workers =
      std::min(options_.threads, requests.size());
  if (workers <= 1) {
    sim::PerfSimulator sim(sim::SimOptions{}, structural_);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      util::ScopedTimer timer(metrics_.request_latency_ns);
      responses[i] = handle(requests[i], i, sim, *pinned);
    }
    finish_run(responses);
    return responses;
  }

  // One long-lived task per worker; workers pull request indices off a
  // shared atomic counter and write into disjoint response slots, so the
  // output is in input order by construction.  Each worker owns a private
  // PerfSimulator — its phase-rate memo is not thread-safe to share — but
  // all of them share the engine's structural cache, so cache/TLB/branch
  // measurements (for simulate AND simulate_trace) dedupe across workers.
  //
  // Completion is pool.wait_idle(), not a latch counted down inside the
  // tasks: a task that dies before reaching its count-down (an exception
  // escaping handle(), or the pool failing to launch the task at all)
  // would strand a latch forever, turning one lost worker into a hung
  // batch.  wait_idle() is maintained by the pool itself and therefore
  // survives any task failure; requests a dead worker would have claimed
  // are still drained by its siblings off the shared counter.
  // Prefill every slot as a clean "not processed" failure: if a worker
  // task is lost before claiming any index (launch failure), the batch
  // still returns well-formed error responses instead of empty ones.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    responses[i].index = i;
    responses[i].config = requests[i].config;
    responses[i].workload = requests[i].workload;
    responses[i].mode = requests[i].mode;
    responses[i].ok = false;
    responses[i].error = "request not processed (worker lost)";
  }
  std::atomic<std::size_t> next{0};
  util::ThreadPool pool(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([this, &requests, &responses, &next, &pinned, run_start] {
      sim::PerfSimulator sim(sim::SimOptions{}, structural_);
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) break;
        // Queue wait: how long this request sat in the batch before a
        // worker picked it up (requests are all "enqueued" at run start).
        if (util::MetricsRegistry::enabled()) {
          metrics_.queue_wait_ns.observe(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - run_start)
                  .count()));
        }
        util::ScopedTimer timer(metrics_.request_latency_ns);
        // A request whose failure escapes handle() (it only catches
        // inside compute()) must fail alone, exactly like a bad request:
        // its slot gets an error response and the worker moves on to the
        // next index instead of taking its remaining share of the batch
        // down with it.
        try {
          responses[i] = handle(requests[i], i, sim, *pinned);
        } catch (const std::exception& e) {
          responses[i] = BatchResponse{};
          responses[i].index = i;
          responses[i].config = requests[i].config;
          responses[i].workload = requests[i].workload;
          responses[i].mode = requests[i].mode;
          responses[i].ok = false;
          responses[i].error = e.what();
        }
      }
    });
  }
  pool.wait_idle();
  finish_run(responses);
  return responses;
}

void BatchEngine::finish_run(std::span<const BatchResponse> responses) {
  if (!util::MetricsRegistry::enabled()) return;
  std::uint64_t failed = 0;
  for (const BatchResponse& r : responses) {
    if (!r.ok) ++failed;
  }
  if (failed > 0) metrics_.failed.add(failed);
  structural_->export_metrics(util::MetricsRegistry::global());
}

}  // namespace autopower::serve
