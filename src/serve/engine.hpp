// Batch inference engine — fans a request list out across a thread pool.
//
// One engine wraps a PUBLISHED immutable model snapshot (from
// serve::ModelRegistry or any shared_ptr<const AutoPowerModel>) plus three
// sharded memo layers.  The snapshot is swappable (RCU by shared_ptr):
// swap_model() atomically publishes a new handle, each run() pins the
// snapshot once at entry, and in-flight batches finish on the handle they
// pinned — so a hot-swap never tears a batch, and requests admitted before
// the swap stay bit-identical to the old model's output.  Every memo key
// (response memo, EvalCache) is qualified by the pinned model's archive
// fingerprint, so entries filled under one model can never be served for
// another — the stale-model hazard hot-swap would otherwise create.
// run() executes every request and returns responses IN INPUT ORDER; each
// worker thread owns a private PerfSimulator (the simulator's instance
// memo is not thread-safe) while the serve::EvalCache deduplicates
// (config, workload) simulations and the response memo answers exact
// repeat queries — (config, workload, mode) — without touching the model
// at all.  Underneath both, every worker simulator shares the engine's
// util::StructuralSimCache, so the expensive cache/TLB/branch structural
// measurements are computed once per distinct sub-key across ALL workers
// and ALL modes — including kTrace, whose simulate_trace calls previously
// redid the full structural work in every worker.  All layers persist
// across run() calls.
//
// Determinism contract: the simulator, feature extraction, and the model
// are all deterministic, so `run(reqs)` is bit-identical for any thread
// count — including the serial `predict` loop it replaces.  A request
// that fails (unknown config/workload, untrained model) yields ok=false
// with the error message; it never aborts the rest of the batch.
//
// Multi-caller contract (audited for the serving daemon, where several
// connection handlers share one engine): run() is safe to call from
// multiple threads concurrently.  Each call owns its ThreadPool, its
// worker simulators, and its response vector; the state shared across
// calls — the EvalCache (sharded, internally locked), the response memo
// (mutex per shard), the StructuralSimCache, and the hit/miss atomics —
// is individually thread-safe, and each model snapshot is immutable
// (swap_model() replaces the published handle; it never mutates a model).
// Concurrent calls therefore stay bit-identical per call; only the
// aggregate cache counters interleave.  (The daemon still funnels
// requests through ONE dispatcher call at a time — not for safety, but
// so cross-client coalescing actually shares batch overhead.)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/autopower.hpp"
#include "serve/eval_cache.hpp"
#include "util/metrics.hpp"
#include "util/structural_cache.hpp"

namespace autopower::serve {

/// What a batch request asks the model for.
enum class PredictMode {
  kTotal,         ///< total core power (mW)
  kPerComponent,  ///< per-component, per-group breakdown
  kTrace,         ///< per-window total power over the whole run
};

[[nodiscard]] std::string_view to_string(PredictMode mode) noexcept;
/// Parses "total" | "per_component" | "trace"; throws on anything else.
[[nodiscard]] PredictMode mode_from_string(std::string_view text);

struct BatchRequest {
  std::string config;    ///< "C1".."C15"
  std::string workload;  ///< e.g. "dhrystone", "gemm"
  PredictMode mode = PredictMode::kTotal;
};

/// Per-component breakdown row of a kPerComponent response.
struct ComponentBreakdown {
  std::string component;
  double clock_mw = 0.0;
  double sram_mw = 0.0;
  double logic_mw = 0.0;
  double total_mw = 0.0;
};

struct BatchResponse {
  std::size_t index = 0;  ///< position in the request list
  std::string config;
  std::string workload;
  PredictMode mode = PredictMode::kTotal;
  bool ok = false;
  std::string error;                           ///< set when !ok
  double total_mw = 0.0;                       ///< all modes
  std::vector<ComponentBreakdown> components;  ///< kPerComponent only
  std::vector<double> trace_mw;                ///< kTrace only
};

struct EngineOptions {
  std::size_t threads = 1;
  std::size_t cache_shards = 16;
  /// Memoise whole responses per (config, workload, mode).  The model is
  /// immutable and every pipeline stage is deterministic, so a repeated
  /// query can be answered straight from the memo.  Trace responses are
  /// never memoised (large payload, rarely repeated).
  bool memoize_responses = true;
};

class BatchEngine {
 public:
  explicit BatchEngine(std::shared_ptr<const core::AutoPowerModel> model,
                       EngineOptions options = {});

  /// Runs every request; responses are returned in input order.  The
  /// published model snapshot is pinned ONCE at entry: the whole batch is
  /// evaluated against one model even if swap_model() lands mid-run.
  [[nodiscard]] std::vector<BatchResponse> run(
      std::span<const BatchRequest> requests);

  /// Atomically publishes a new model snapshot.  In-flight run() calls
  /// finish on the handle they pinned; subsequent calls see `model`.
  /// Memo entries from previous models stay resident but can never be
  /// served (keys carry the archive fingerprint) — swapping back to a
  /// model with an identical archive re-hits its old entries.
  void swap_model(std::shared_ptr<const core::AutoPowerModel> model);

  /// The currently published model snapshot.
  [[nodiscard]] std::shared_ptr<const core::AutoPowerModel> model() const;
  /// Archive fingerprint of the currently published snapshot.
  [[nodiscard]] std::string model_fingerprint() const;

  [[nodiscard]] const EvalCache& cache() const noexcept { return cache_; }
  /// The structural sub-simulation cache shared by all worker simulators.
  [[nodiscard]] const std::shared_ptr<util::StructuralSimCache>&
  structural_cache() const noexcept {
    return structural_;
  }
  /// Hit/miss counters of the response memo (all zero when disabled).
  /// Same corrected semantics as EvalCache::Stats: a miss is counted
  /// only by the winning insert, a lost cold-key race counts a hit, so
  /// after run() returns `misses == memoised responses` exactly — as
  /// long as every request succeeded.  Failed responses are NEVER
  /// memoised (a transient fault must not poison the memo) and each
  /// failed compute counts one miss, so in general
  /// `misses == memoised responses + failed computes` and
  /// `hits + misses == memoised-path lookups` stays exact.
  [[nodiscard]] EvalCache::Stats response_stats() const noexcept;
  [[nodiscard]] std::size_t threads() const noexcept {
    return options_.threads;
  }

 private:
  struct ResponseShard {
    std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const BatchResponse>> map;
  };

  [[nodiscard]] BatchResponse handle(const BatchRequest& request,
                                     std::size_t index,
                                     const sim::PerfSimulator& sim,
                                     const core::AutoPowerModel& model);
  [[nodiscard]] BatchResponse compute(const BatchRequest& request,
                                      const sim::PerfSimulator& sim,
                                      const core::AutoPowerModel& model);
  /// Post-run bookkeeping: failed-request count and the structural-cache
  /// gauge export (no-op while metrics are disabled).
  void finish_run(std::span<const BatchResponse> responses);

  // The published snapshot, guarded by a tiny mutex (a swap and a pin are
  // both a shared_ptr copy; never held across any compute).
  mutable std::mutex model_mu_;
  std::shared_ptr<const core::AutoPowerModel> model_;
  EngineOptions options_;
  EvalCache cache_;
  std::shared_ptr<util::StructuralSimCache> structural_;
  std::deque<ResponseShard> response_shards_;
  std::atomic<std::uint64_t> response_hits_{0};
  std::atomic<std::uint64_t> response_misses_{0};

  // Process-wide instruments (util/metrics), looked up once at
  // construction; recording is lock-free and a no-op while the registry
  // is disabled.  See DESIGN.md "Metrics inventory" for the names.
  struct Instruments {
    util::Counter& requests;
    util::Counter& failed;
    util::Counter& memo_hits;
    util::Counter& memo_misses;
    util::Histogram& request_latency_ns;
    util::Histogram& queue_wait_ns;
    util::Histogram& batch_size;
  };
  Instruments metrics_;
};

}  // namespace autopower::serve
