// Long-lived serving daemon: a JSONL-over-TCP front-end over the
// BatchEngine, with production admission semantics.
//
// Protocol (newline-delimited JSON, one object per line — the same wire
// format `autopower batch` reads and writes):
//
//   compute request   {"config": "C3", "workload": "dhrystone",
//                      "mode": "total", "deadline_ms": 50,
//                      "model": "boom_a"}
//                     `mode` defaults to "total"; `deadline_ms`
//                     (optional) is a relative per-request deadline;
//                     `model` (optional) routes to a named model slot
//                     (default: the first slot) — an unknown name is
//                     answered {"ok": false, "error": "unknown_model"}.
//   control request   {"cmd": "health"} | {"cmd": "metrics"} |
//                     {"cmd": "reload", "model": "boom_a"}
//                     `reload` re-reads the slot's backing archive and
//                     hot-swaps the published snapshot (see below).
//
// Responses are serve::response_to_jsonl lines whose `index` is the
// request's 0-based position on ITS connection (blank lines don't
// count), so a client that pipes the same request file through the
// daemon gets bytes identical to `autopower batch` output.  Control
// responses are {"index": N, "cmd": ..., "ok": true, ...}; `metrics`
// embeds the live util::MetricsRegistry snapshot, making `--stats` a
// live endpoint.  A malformed line answers {"index": N, "ok": false,
// "error": ...} and the connection stays up (unlike `batch`, which
// rejects the whole file — a resident daemon must not let one bad
// client line poison its stream).
//
// Admission control — the load-shedding state machine per request:
//
//      read line ──parse──> control ──────────────> answered inline
//          │                 compute
//          │                    │ queue full (or serve.daemon.admit
//          │                    │ fault)            ──> {"error":"overloaded"}
//          │                    v
//          │              bounded queue ──dispatcher──> deadline passed?
//          │                                   │ yes ──> deadline-exceeded
//          │                                   │ no  ──> BatchEngine::run
//          v                                   v
//        EOF: wait for queued responses, flush, close
//
// The dispatcher thread coalesces whatever is queued (up to
// `max_batch`) into one BatchEngine::run call, so concurrent clients
// share simulation work through the engine's EvalCache/response memo,
// and per-connection response order is restored by a per-connection
// reorder buffer.  Expired requests are answered without ever occupying
// an engine worker.
//
// Model zoo and hot-swap: the daemon hosts one BatchEngine per named
// model slot (the spec-list constructor; the single-model constructor
// wraps its model in one slot named "default").  The slot map is frozen
// at construction — routing is a lock-free lookup — but each slot's
// PUBLISHED snapshot is swappable: an in-band {"cmd": "reload"} (or
// SIGHUP via notify_reload(), which reloads every disk-backed slot)
// re-reads the backing archive on the requesting thread (never the
// dispatcher) and then enqueues the swap as a queue item, so the swap
// LINEARIZES with admission: requests admitted before the reload are
// answered by the old snapshot bit-identically, requests after by the
// new one, and no batch ever straddles two models (batch formation
// never crosses a swap item, and BatchEngine::run pins one snapshot per
// call).  A failed reload leaves the old snapshot published and answers
// {"cmd": "reload", "ok": false, ...}.  Stale-response safety does not
// depend on any of this ordering: every engine memo key carries the
// model's archive fingerprint.
//
// Graceful drain: notify_stop() (async-signal-safe — it only write(2)s
// one byte to an internal pipe, so the CLI's SIGINT/SIGTERM handler may
// call it directly) makes serve() stop accepting and drain in two
// phases.  Phase 1: the listener closes (so load balancers see refused
// connects) and NEW compute/reload lines are answered {"error":
// "draining"}, while {"cmd": "health"} keeps answering — with "status":
// "draining" — and every already-admitted request finishes and flushes.
// Phase 2: once the queue and dispatcher have run dry, every client is
// half-closed for reading, buffered lines are still parsed and
// answered, connections flush and close, threads join, serve()
// returns.  In-flight responses are always delivered before the close.
//
// Thread model: one acceptor (the caller of serve()), one dispatcher,
// one reader thread per live connection (bounded by max_connections).
// Readers are the "multiple submitting threads" the BatchEngine/
// ThreadPool multi-submitter contract exists for — they only touch the
// bounded queue; exactly one dispatcher calls engine.run() at a time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/autopower.hpp"
#include "serve/engine.hpp"
#include "serve/net.hpp"
#include "serve/registry.hpp"
#include "util/metrics.hpp"

namespace autopower::serve {

/// One named model slot for the daemon's zoo: requests with
/// {"model": name} route here; `path` is the backing `.ap` archive that
/// {"cmd": "reload"} / SIGHUP re-reads.
struct ModelSpec {
  std::string name;
  std::string path;
};

struct DaemonOptions {
  /// 0 binds an ephemeral port (tests); the CLI validates 1..65535.
  std::uint16_t port = 0;
  /// Bounded admission queue depth; a full queue sheds with an
  /// {"error": "overloaded"} response instead of queueing unboundedly.
  std::size_t queue_depth = 1024;
  /// Concurrent client connections; excess connects are answered with
  /// one {"error": "too_many_connections"} line and closed.
  std::size_t max_connections = 64;
  /// Dispatcher coalescing bound: at most this many queued requests per
  /// BatchEngine::run call.
  std::size_t max_batch = 32;
  EngineOptions engine;
};

/// One parsed daemon wire line (exposed for unit tests).
struct DaemonRequest {
  enum class Kind { kCompute, kControl };
  Kind kind = Kind::kCompute;
  BatchRequest request;           ///< kCompute
  bool has_deadline = false;      ///< kCompute: deadline_ms present
  std::uint64_t deadline_ms = 0;  ///< relative deadline, milliseconds
  std::string cmd;   ///< kControl: "health" | "metrics" | "reload"
  std::string model; ///< slot name; kCompute routing or reload target
};

/// Parses one daemon request line.  Accepts the `batch` request schema
/// plus the daemon-only `deadline_ms` / `model` keys, or a {"cmd": ...}
/// control object (`model` is only valid alongside "cmd": "reload").
/// Throws util::Error on malformed input.
[[nodiscard]] DaemonRequest daemon_request_from_jsonl(std::string_view line);

class Daemon {
 public:
  /// Binds and listens immediately (throws util::Error / net::NetError
  /// on bind failure), so port() is valid before serve() is entered.
  /// The single-model form publishes `model` as one in-memory slot named
  /// "default" with no backing archive (so "reload" answers an error).
  Daemon(std::shared_ptr<const core::AutoPowerModel> model,
         DaemonOptions options = {});
  /// Multi-model form: loads every spec's archive (throws if any load
  /// fails — a daemon never starts with a half-loaded zoo).  The FIRST
  /// spec is the default route for requests without a "model" field.
  /// Names must be non-empty, unique, and match [A-Za-z0-9_.-]+.
  Daemon(const std::vector<ModelSpec>& models, DaemonOptions options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// The bound listening port (== options.port unless that was 0).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Accept loop; blocks the calling thread until notify_stop(), then
  /// drains (finish admitted requests, flush, close) and returns.
  /// One-shot: a Daemon cannot be re-served after it drained.
  void serve();

  /// Requests a graceful drain.  Async-signal-safe and idempotent.
  void notify_stop() noexcept;

  /// Requests a reload of every disk-backed model slot (the SIGHUP
  /// handler calls this).  Async-signal-safe: like notify_stop() it only
  /// write(2)s one byte; the acceptor thread does the archive reads and
  /// enqueues the swaps.  A slot whose reload fails keeps its old
  /// snapshot.  No-op after the drain started.
  void notify_reload() noexcept;

  /// Live state, also surfaced by the in-band health/metrics commands.
  struct Stats {
    std::uint64_t accepted = 0;        ///< connections ever accepted
    std::uint64_t active = 0;          ///< connections currently open
    std::uint64_t requests = 0;        ///< compute requests read
    std::uint64_t shed = 0;            ///< answered "overloaded"
    std::uint64_t deadline_expired = 0;
    std::uint64_t net_errors = 0;      ///< accept/read/write failures
  };
  [[nodiscard]] Stats stats() const noexcept;

  /// The default slot's engine (kept for single-model callers; the
  /// multi-model form routes per request).
  [[nodiscard]] const BatchEngine& engine() const noexcept;

  /// Slot names in sorted order.
  [[nodiscard]] std::vector<std::string> model_names() const;

 private:
  struct ModelSlot;
  struct Connection;
  struct Work;

  void init_slots(const std::vector<ModelSpec>& specs);
  /// Routing: empty name means the default slot; nullptr for unknown.
  [[nodiscard]] ModelSlot* find_slot(const std::string& name) const;
  void handle_connection(Connection& conn);
  void handle_reload(Connection& conn, std::uint64_t seq,
                     const std::string& model_name);
  void reload_all_slots();
  void enqueue_swap(ModelSlot& slot, ModelRegistry::ModelHandle model,
                    Connection* conn, std::uint64_t seq,
                    std::string response_line);
  void dispatch_loop();
  void process_batch(std::vector<Work>& batch,
                     std::vector<BatchRequest>& requests,
                     std::vector<Work*>& live);
  /// Queues `line` for `seq` on `conn`, flushing every consecutively
  /// ready response.  `admitted` responses release one outstanding slot.
  void deliver(Connection& conn, std::uint64_t seq, std::string line,
               bool admitted);
  [[nodiscard]] std::string control_response_line(std::uint64_t seq,
                                                  const std::string& cmd);
  void reap_finished(bool join_all);

  DaemonOptions options_;
  ModelRegistry registry_;  ///< loads archives, publishes named slots
  /// Frozen after construction: readers route with a plain lookup.  Each
  /// slot's engine owns the swappable published snapshot.
  std::map<std::string, std::unique_ptr<ModelSlot>> slots_;
  ModelSlot* default_slot_ = nullptr;
  std::unique_ptr<net::Listener> listener_;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};

  // Admission queue (readers push, the dispatcher pops).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Work> queue_;
  std::size_t reading_handlers_ = 0;  ///< handlers that may still push
  std::size_t inflight_batches_ = 0;  ///< popped, not yet fully delivered
  /// Signalled by the dispatcher when queue + in-flight run dry; only
  /// the drain in serve() waits on it (its own CV so reader pushes can
  /// keep notify_one-ing the dispatcher without lost wakeups).
  std::condition_variable drain_cv_;
  std::thread dispatcher_;

  // Live connections (acceptor inserts/reaps, readers mark finished).
  std::mutex conns_mu_;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::vector<std::uint64_t> finished_;
  std::uint64_t next_conn_id_ = 0;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> net_errors_{0};

  struct Instruments {
    util::Counter& connections;
    util::Gauge& active_connections;
    util::Counter& requests;
    util::Counter& shed;
    util::Counter& deadline_expired;
    util::Counter& net_errors;
    util::Counter& unknown_model;
    util::Gauge& queue_depth;
    util::Histogram& request_latency_ns;
  };
  Instruments metrics_;
};

}  // namespace autopower::serve
