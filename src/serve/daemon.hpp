// Long-lived serving daemon: a JSONL-over-TCP front-end over the
// BatchEngine, with production admission semantics.
//
// Protocol (newline-delimited JSON, one object per line — the same wire
// format `autopower batch` reads and writes):
//
//   compute request   {"config": "C3", "workload": "dhrystone",
//                      "mode": "total", "deadline_ms": 50}
//                     `mode` defaults to "total"; `deadline_ms`
//                     (optional) is a relative per-request deadline.
//   control request   {"cmd": "health"} | {"cmd": "metrics"}
//
// Responses are serve::response_to_jsonl lines whose `index` is the
// request's 0-based position on ITS connection (blank lines don't
// count), so a client that pipes the same request file through the
// daemon gets bytes identical to `autopower batch` output.  Control
// responses are {"index": N, "cmd": ..., "ok": true, ...}; `metrics`
// embeds the live util::MetricsRegistry snapshot, making `--stats` a
// live endpoint.  A malformed line answers {"index": N, "ok": false,
// "error": ...} and the connection stays up (unlike `batch`, which
// rejects the whole file — a resident daemon must not let one bad
// client line poison its stream).
//
// Admission control — the load-shedding state machine per request:
//
//      read line ──parse──> control ──────────────> answered inline
//          │                 compute
//          │                    │ queue full (or serve.daemon.admit
//          │                    │ fault)            ──> {"error":"overloaded"}
//          │                    v
//          │              bounded queue ──dispatcher──> deadline passed?
//          │                                   │ yes ──> deadline-exceeded
//          │                                   │ no  ──> BatchEngine::run
//          v                                   v
//        EOF: wait for queued responses, flush, close
//
// The dispatcher thread coalesces whatever is queued (up to
// `max_batch`) into one BatchEngine::run call, so concurrent clients
// share simulation work through the engine's EvalCache/response memo,
// and per-connection response order is restored by a per-connection
// reorder buffer.  Expired requests are answered without ever occupying
// an engine worker.
//
// Graceful drain: notify_stop() (async-signal-safe — it only write(2)s
// one byte to an internal pipe, so the CLI's SIGINT/SIGTERM handler may
// call it directly) makes serve() stop accepting, half-close every
// client for reading, finish every admitted request, flush and close
// all connections, join its threads, and return.  In-flight responses
// are always delivered before the close.
//
// Thread model: one acceptor (the caller of serve()), one dispatcher,
// one reader thread per live connection (bounded by max_connections).
// Readers are the "multiple submitting threads" the BatchEngine/
// ThreadPool multi-submitter contract exists for — they only touch the
// bounded queue; exactly one dispatcher calls engine.run() at a time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/autopower.hpp"
#include "serve/engine.hpp"
#include "serve/net.hpp"
#include "util/metrics.hpp"

namespace autopower::serve {

struct DaemonOptions {
  /// 0 binds an ephemeral port (tests); the CLI validates 1..65535.
  std::uint16_t port = 0;
  /// Bounded admission queue depth; a full queue sheds with an
  /// {"error": "overloaded"} response instead of queueing unboundedly.
  std::size_t queue_depth = 1024;
  /// Concurrent client connections; excess connects are answered with
  /// one {"error": "too_many_connections"} line and closed.
  std::size_t max_connections = 64;
  /// Dispatcher coalescing bound: at most this many queued requests per
  /// BatchEngine::run call.
  std::size_t max_batch = 32;
  EngineOptions engine;
};

/// One parsed daemon wire line (exposed for unit tests).
struct DaemonRequest {
  enum class Kind { kCompute, kControl };
  Kind kind = Kind::kCompute;
  BatchRequest request;           ///< kCompute
  bool has_deadline = false;      ///< kCompute: deadline_ms present
  std::uint64_t deadline_ms = 0;  ///< relative deadline, milliseconds
  std::string cmd;                ///< kControl: "health" | "metrics"
};

/// Parses one daemon request line.  Accepts the `batch` request schema
/// plus the daemon-only `deadline_ms` key, or a {"cmd": ...} control
/// object.  Throws util::Error on malformed input.
[[nodiscard]] DaemonRequest daemon_request_from_jsonl(std::string_view line);

class Daemon {
 public:
  /// Binds and listens immediately (throws util::Error / net::NetError
  /// on bind failure), so port() is valid before serve() is entered.
  Daemon(std::shared_ptr<const core::AutoPowerModel> model,
         DaemonOptions options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// The bound listening port (== options.port unless that was 0).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Accept loop; blocks the calling thread until notify_stop(), then
  /// drains (finish admitted requests, flush, close) and returns.
  /// One-shot: a Daemon cannot be re-served after it drained.
  void serve();

  /// Requests a graceful drain.  Async-signal-safe and idempotent.
  void notify_stop() noexcept;

  /// Live state, also surfaced by the in-band health/metrics commands.
  struct Stats {
    std::uint64_t accepted = 0;        ///< connections ever accepted
    std::uint64_t active = 0;          ///< connections currently open
    std::uint64_t requests = 0;        ///< compute requests read
    std::uint64_t shed = 0;            ///< answered "overloaded"
    std::uint64_t deadline_expired = 0;
    std::uint64_t net_errors = 0;      ///< accept/read/write failures
  };
  [[nodiscard]] Stats stats() const noexcept;

  [[nodiscard]] const BatchEngine& engine() const noexcept {
    return *engine_;
  }

 private:
  struct Connection;
  struct Work;

  void handle_connection(Connection& conn);
  void dispatch_loop();
  /// Queues `line` for `seq` on `conn`, flushing every consecutively
  /// ready response.  `admitted` responses release one outstanding slot.
  void deliver(Connection& conn, std::uint64_t seq, std::string line,
               bool admitted);
  [[nodiscard]] std::string control_response_line(std::uint64_t seq,
                                                  const std::string& cmd);
  void reap_finished(bool join_all);

  DaemonOptions options_;
  std::unique_ptr<BatchEngine> engine_;
  std::unique_ptr<net::Listener> listener_;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};

  // Admission queue (readers push, the dispatcher pops).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Work> queue_;
  std::size_t reading_handlers_ = 0;  ///< handlers that may still push
  std::thread dispatcher_;

  // Live connections (acceptor inserts/reaps, readers mark finished).
  std::mutex conns_mu_;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::vector<std::uint64_t> finished_;
  std::uint64_t next_conn_id_ = 0;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> net_errors_{0};

  struct Instruments {
    util::Counter& connections;
    util::Gauge& active_connections;
    util::Counter& requests;
    util::Counter& shed;
    util::Counter& deadline_expired;
    util::Counter& net_errors;
    util::Gauge& queue_depth;
    util::Histogram& request_latency_ns;
  };
  Instruments metrics_;
};

}  // namespace autopower::serve
