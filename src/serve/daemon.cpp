#include "serve/daemon.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "serve/jsonl.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/simd.hpp"

namespace autopower::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void fail(const std::string& message) {
  throw util::Error("daemon: " + message);
}

}  // namespace

DaemonRequest daemon_request_from_jsonl(std::string_view line) {
  const JsonValue doc = JsonValue::parse(line);
  const auto& object = doc.as_object();
  DaemonRequest out;

  if (doc.find("cmd") != nullptr) {
    out.kind = DaemonRequest::Kind::kControl;
    bool have_model = false;
    for (const auto& [key, value] : object) {
      if (key == "cmd") {
        out.cmd = value.as_string();
      } else if (key == "model") {
        out.model = value.as_string();
        have_model = true;
      } else {
        fail("unknown control key \"" + key +
             "\" (expected \"cmd\" and, for reload, \"model\")");
      }
    }
    if (out.cmd != "health" && out.cmd != "metrics" && out.cmd != "reload") {
      fail("unknown cmd \"" + out.cmd +
           "\" (expected \"health\" | \"metrics\" | \"reload\")");
    }
    if (have_model && out.cmd != "reload") {
      fail("\"model\" is only valid with \"cmd\": \"reload\"");
    }
    return out;
  }

  out.kind = DaemonRequest::Kind::kCompute;
  bool have_config = false;
  bool have_workload = false;
  std::string mode = "total";
  for (const auto& [key, value] : object) {
    if (key == "config") {
      out.request.config = value.as_string();
      have_config = true;
    } else if (key == "workload") {
      out.request.workload = value.as_string();
      have_workload = true;
    } else if (key == "mode") {
      mode = value.as_string();
    } else if (key == "deadline_ms") {
      const double ms = value.as_number();
      if (!(ms >= 0.0) || ms > 1e12 || std::floor(ms) != ms) {
        fail("deadline_ms must be a non-negative integer (got " +
             std::string(line.substr(0, 64)) + ")");
      }
      out.has_deadline = true;
      out.deadline_ms = static_cast<std::uint64_t>(ms);
    } else if (key == "model") {
      out.model = value.as_string();
    } else {
      fail("unknown request key \"" + key + "\"");
    }
  }
  if (!have_config) fail("request is missing \"config\"");
  if (!have_workload) fail("request is missing \"workload\"");
  out.request.mode = mode_from_string(mode);
  return out;
}

// Defined here (not the header) so daemon.hpp stays free of the
// reorder-buffer internals.  Lifetime: owned by conns_ until the
// acceptor reaps it; the reader thread's wait on `outstanding == 0`
// guarantees no dispatcher deliver() can arrive after the reader
// finishes, so reaping after the reader exits is safe.
struct Daemon::Connection {
  net::Socket sock;
  std::uint64_t id = 0;
  std::thread thread;

  std::mutex mu;
  std::condition_variable cv;
  /// Reorder buffer: responses ready to write, keyed by per-connection
  /// sequence number.  Flushed in seq order by deliver().
  std::map<std::uint64_t, std::string> ready;
  std::uint64_t next_write = 0;  ///< next seq the client expects
  std::size_t outstanding = 0;   ///< admitted, response not yet delivered
  bool write_failed = false;     ///< a write died; drop later responses
};

/// One named model slot: a routing name, the backing archive path (held
/// by the registry), a dedicated BatchEngine whose published snapshot is
/// what reload swaps, and the slot's metric instruments.
struct Daemon::ModelSlot {
  std::string name;
  std::unique_ptr<BatchEngine> engine;
  util::Counter& requests;  ///< daemon.model.<name>.requests
  util::Counter& reloads;   ///< daemon.model.<name>.reloads
};

/// A queue item: either one admitted compute request, or a model swap.
/// Swaps ride the SAME queue so they linearize with admission — every
/// compute admitted before the swap is popped (and batched) before it,
/// every one after sees the new snapshot.
struct Daemon::Work {
  enum class Kind { kCompute, kSwap };
  Kind kind = Kind::kCompute;
  Connection* conn = nullptr;  ///< kSwap: nullptr for SIGHUP reloads
  std::uint64_t seq = 0;
  ModelSlot* slot = nullptr;
  // kCompute:
  BatchRequest request;
  Clock::time_point arrival{};
  bool has_deadline = false;
  Clock::time_point deadline{};
  // kSwap: the pre-loaded snapshot and the pre-built reload response
  // (delivered when the swap is applied, so the client's "ok" is ordered
  // exactly at the swap point in its response stream).
  ModelRegistry::ModelHandle new_model;
  std::string response_line;
};

namespace {

bool valid_slot_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Daemon::Daemon(std::shared_ptr<const core::AutoPowerModel> model,
               DaemonOptions options)
    : options_(options),
      listener_(std::make_unique<net::Listener>(options.port)),
      metrics_{util::MetricsRegistry::global().counter("daemon.connections"),
               util::MetricsRegistry::global().gauge(
                   "daemon.active_connections"),
               util::MetricsRegistry::global().counter("daemon.requests"),
               util::MetricsRegistry::global().counter("daemon.shed"),
               util::MetricsRegistry::global().counter(
                   "daemon.deadline_expired"),
               util::MetricsRegistry::global().counter("daemon.net_errors"),
               util::MetricsRegistry::global().counter(
                   "daemon.unknown_model"),
               util::MetricsRegistry::global().gauge("daemon.queue_depth"),
               util::MetricsRegistry::global().histogram(
                   "daemon.request_latency_ns")} {
  AP_REQUIRE(model != nullptr, "daemon: null model");
  registry_.publish("default", std::move(model));
  init_slots({ModelSpec{"default", ""}});
}

Daemon::Daemon(const std::vector<ModelSpec>& models, DaemonOptions options)
    : options_(options),
      listener_(std::make_unique<net::Listener>(options.port)),
      metrics_{util::MetricsRegistry::global().counter("daemon.connections"),
               util::MetricsRegistry::global().gauge(
                   "daemon.active_connections"),
               util::MetricsRegistry::global().counter("daemon.requests"),
               util::MetricsRegistry::global().counter("daemon.shed"),
               util::MetricsRegistry::global().counter(
                   "daemon.deadline_expired"),
               util::MetricsRegistry::global().counter("daemon.net_errors"),
               util::MetricsRegistry::global().counter(
                   "daemon.unknown_model"),
               util::MetricsRegistry::global().gauge("daemon.queue_depth"),
               util::MetricsRegistry::global().histogram(
                   "daemon.request_latency_ns")} {
  AP_REQUIRE(!models.empty(), "daemon: at least one model slot required");
  for (const ModelSpec& spec : models) {
    AP_REQUIRE(valid_slot_name(spec.name),
               "invalid model slot name '" + spec.name +
                   "' (expected [A-Za-z0-9_.-]+)");
    AP_REQUIRE(!spec.path.empty(),
               "model slot '" + spec.name + "' needs an archive path");
    registry_.open(spec.name, spec.path);  // throws if the load fails
  }
  init_slots(models);
}

void Daemon::init_slots(const std::vector<ModelSpec>& specs) {
  auto& reg = util::MetricsRegistry::global();
  for (const ModelSpec& spec : specs) {
    AP_REQUIRE(slots_.find(spec.name) == slots_.end(),
               "duplicate model slot name '" + spec.name + "'");
    auto slot = std::unique_ptr<ModelSlot>(new ModelSlot{
        spec.name,
        std::make_unique<BatchEngine>(registry_.named(spec.name),
                                      options_.engine),
        reg.counter("daemon.model." + spec.name + ".requests"),
        reg.counter("daemon.model." + spec.name + ".reloads")});
    ModelSlot* raw = slot.get();
    slots_.emplace(spec.name, std::move(slot));
    if (default_slot_ == nullptr) default_slot_ = raw;
  }

  if (options_.queue_depth == 0) options_.queue_depth = 1;
  if (options_.max_connections == 0) options_.max_connections = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (::pipe(stop_pipe_) != 0) {
    fail(std::string("pipe: ") + std::strerror(errno));
  }
  // Non-blocking write end: notify_stop() from a signal handler must
  // never block, even if the pipe is (implausibly) full.
  const int flags = ::fcntl(stop_pipe_[1], F_GETFL, 0);
  (void)::fcntl(stop_pipe_[1], F_SETFL, flags | O_NONBLOCK);
}

Daemon::~Daemon() {
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

std::uint16_t Daemon::port() const noexcept { return listener_->port(); }

void Daemon::notify_stop() noexcept {
  // Async-signal-safe: write(2) only.  One byte is enough; extra bytes
  // from repeated signals are harmless (the accept loop drains the pipe
  // and acts once per wake-up; 's' always wins over 'h').
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

void Daemon::notify_reload() noexcept {
  // Same pipe as notify_stop with a distinct byte: the acceptor thread
  // wakes, re-reads every disk-backed archive and enqueues the swaps.
  const char byte = 'h';
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

const BatchEngine& Daemon::engine() const noexcept {
  return *default_slot_->engine;
}

std::vector<std::string> Daemon::model_names() const {
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) out.push_back(name);
  return out;
}

Daemon::ModelSlot* Daemon::find_slot(const std::string& name) const {
  if (name.empty()) return default_slot_;
  const auto it = slots_.find(name);
  return it == slots_.end() ? nullptr : it->second.get();
}

Daemon::Stats Daemon::stats() const noexcept {
  Stats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.active = active_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  out.net_errors = net_errors_.load(std::memory_order_relaxed);
  return out;
}

void Daemon::serve() {
  if (!listener_->open()) fail("serve() called on a drained daemon");
  dispatcher_ = std::thread([this] { dispatch_loop(); });

  for (;;) {
    net::Socket client;
    try {
      client = listener_->accept(stop_pipe_[0]);
    } catch (const util::Error&) {
      // Transient accept failure (serve.net.accept fault, EMFILE, ...):
      // count it and keep serving — an accept hiccup must never take
      // the daemon down.
      net_errors_.fetch_add(1, std::memory_order_relaxed);
      metrics_.net_errors.inc();
      continue;
    }
    if (!client.valid()) {
      // The signal pipe woke us.  Drain it and decide: any 's' wins and
      // starts the drain; only-'h' bytes mean SIGHUP-style reload-all.
      char buf[64];
      const ssize_t n = ::read(stop_pipe_[0], buf, sizeof(buf));
      bool stop = n <= 0;  // a dead pipe can only mean shutdown
      bool reload = false;
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] == 'h') reload = true;
        else stop = true;
      }
      if (stop) break;
      if (reload) reload_all_slots();
      continue;
    }

    reap_finished(/*join_all=*/false);

    if (active_.load(std::memory_order_relaxed) >= options_.max_connections) {
      BatchResponse refusal;
      refusal.ok = false;
      refusal.error = "too_many_connections";
      try {
        net::write_line(client.fd(), response_to_jsonl(refusal));
      } catch (const util::Error&) {
        // Client is already gone; nothing to refuse.
      }
      continue;  // Socket destructor closes the connection
    }

    accepted_.fetch_add(1, std::memory_order_relaxed);
    metrics_.connections.inc();
    const std::uint64_t now_active =
        active_.fetch_add(1, std::memory_order_relaxed) + 1;
    metrics_.active_connections.set(static_cast<double>(now_active));

    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(client);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_.emplace(conn->id, std::move(conn));
    }
    // Registered before the thread starts so the dispatcher's drain
    // predicate (`reading_handlers_ == 0`) can never observe "no
    // readers" while this connection is about to enqueue work.
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      ++reading_handlers_;
    }
    raw->thread = std::thread([this, raw] { handle_connection(*raw); });
  }

  // Graceful drain, two phases.
  //
  // Phase 1 — stop the world politely: close the listener (load
  // balancers now see refused connects), flip draining_ so readers
  // answer new compute/reload lines with {"error": "draining"} while
  // health keeps responding with "status": "draining", and wait for
  // every already-admitted request to be popped AND delivered.  Clients
  // that sent work before the drain get every response.
  draining_.store(true, std::memory_order_seq_cst);
  listener_->close();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock, [this] {
      return queue_.empty() && inflight_batches_ == 0;
    });
  }

  // Phase 2 — half-close every client for reading (wakes blocked
  // readers with EOF; buffered lines are still parsed — and, being
  // post-drain, answered "draining" — and their send direction stays
  // open so queued responses still flush), then let the pipeline run
  // dry.  A reader that raced one last line past phase 1 is still
  // served: the dispatcher only exits once every reader is done.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) conn->sock.shutdown_read();
  }
  queue_cv_.notify_all();
  reap_finished(/*join_all=*/true);  // joins every reader (waits for flush)
  if (dispatcher_.joinable()) dispatcher_.join();
  metrics_.queue_depth.set(0.0);
}

void Daemon::handle_connection(Connection& conn) {
  net::LineReader reader(conn.sock.fd());
  std::string line;
  std::uint64_t seq = 0;
  try {
    while (reader.next_line(line)) {
      // Blank lines are skipped without consuming a sequence number —
      // exactly read_requests() behaviour, which keeps daemon response
      // indices bit-identical to `autopower batch` for the same stream.
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      const Clock::time_point arrival = Clock::now();

      DaemonRequest request;
      try {
        request = daemon_request_from_jsonl(line);
      } catch (const util::Error& e) {
        BatchResponse bad;
        bad.index = seq;
        bad.ok = false;
        bad.error = e.what();
        deliver(conn, seq, response_to_jsonl(bad), /*admitted=*/false);
        ++seq;
        continue;
      }

      if (request.kind == DaemonRequest::Kind::kControl) {
        if (request.cmd == "reload") {
          handle_reload(conn, seq, request.model);
        } else {
          deliver(conn, seq, control_response_line(seq, request.cmd),
                  /*admitted=*/false);
        }
        ++seq;
        continue;
      }

      requests_.fetch_add(1, std::memory_order_relaxed);
      metrics_.requests.inc();

      // Draining gate (phase 1): the listener is closed, but clients that
      // connected earlier may still send.  New work is refused with a
      // structured error so load balancers retry elsewhere; responses for
      // already-admitted requests keep flowing.
      if (draining_.load(std::memory_order_relaxed)) {
        BatchResponse refused;
        refused.index = seq;
        refused.config = request.request.config;
        refused.workload = request.request.workload;
        refused.mode = request.request.mode;
        refused.ok = false;
        refused.error = "draining";
        deliver(conn, seq, response_to_jsonl(refused), /*admitted=*/false);
        ++seq;
        continue;
      }

      // Model routing: an unknown slot is a client error answered in
      // place — it never occupies a queue slot.
      ModelSlot* slot = find_slot(request.model);
      if (slot == nullptr) {
        metrics_.unknown_model.inc();
        BatchResponse unknown;
        unknown.index = seq;
        unknown.config = request.request.config;
        unknown.workload = request.request.workload;
        unknown.mode = request.request.mode;
        unknown.ok = false;
        unknown.error = "unknown_model";
        deliver(conn, seq, response_to_jsonl(unknown), /*admitted=*/false);
        ++seq;
        continue;
      }
      slot->requests.inc();

      bool forced_full = false;
#if defined(AUTOPOWER_FAULT_INJECTION)
      // serve.daemon.admit: deterministically exercise the shed path.
      // Real queue-full is timing-dependent; the fault site makes the
      // admission decision itself injectable.
      forced_full = util::fault::should_fail("serve.daemon.admit");
#endif
      bool admitted = false;
      if (!forced_full) {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (queue_.size() < options_.queue_depth) {
          Work work;
          work.kind = Work::Kind::kCompute;
          work.conn = &conn;
          work.seq = seq;
          work.slot = slot;
          work.request = request.request;
          work.arrival = arrival;
          work.has_deadline = request.has_deadline;
          if (request.has_deadline) {
            work.deadline =
                arrival + std::chrono::milliseconds(request.deadline_ms);
          }
          {
            std::lock_guard<std::mutex> conn_lock(conn.mu);
            ++conn.outstanding;
          }
          queue_.push_back(std::move(work));
          metrics_.queue_depth.set(static_cast<double>(queue_.size()));
          admitted = true;
        }
      }
      if (admitted) {
        queue_cv_.notify_one();
      } else {
        shed_.fetch_add(1, std::memory_order_relaxed);
        metrics_.shed.inc();
        BatchResponse overloaded;
        overloaded.index = seq;
        overloaded.config = request.request.config;
        overloaded.workload = request.request.workload;
        overloaded.mode = request.request.mode;
        overloaded.ok = false;
        overloaded.error = "overloaded";
        deliver(conn, seq, response_to_jsonl(overloaded), /*admitted=*/false);
      }
      ++seq;
    }
  } catch (const util::Error&) {
    // serve.net.read fault or a torn connection: close this connection
    // cleanly; the daemon itself keeps serving everyone else.
    net_errors_.fetch_add(1, std::memory_order_relaxed);
    metrics_.net_errors.inc();
  }

  // Reading is over: let the dispatcher's drain predicate make progress.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    --reading_handlers_;
  }
  queue_cv_.notify_all();

  // Every admitted request still owes this connection a response; wait
  // until the dispatcher delivered them all (deliver() flushes the
  // reorder buffer in order, so outstanding == 0 implies ready.empty()).
  {
    std::unique_lock<std::mutex> lock(conn.mu);
    conn.cv.wait(lock, [&conn] { return conn.outstanding == 0; });
  }
  conn.sock.shutdown_both();  // FIN; the fd closes when the acceptor reaps

  // Discard any bytes that landed after we stopped reading (e.g. a
  // request racing the drain): closing an fd with unread inbound data
  // makes the kernel send RST, which would destroy responses still
  // sitting in the client's receive buffer.  recv after SHUT_RD returns
  // queued data first and then 0, so this never blocks.
  char scratch[4096];
  while (::recv(conn.sock.fd(), scratch, sizeof(scratch), 0) > 0) {
  }

  const std::uint64_t now_active =
      active_.fetch_sub(1, std::memory_order_relaxed) - 1;
  metrics_.active_connections.set(static_cast<double>(now_active));
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    finished_.push_back(conn.id);  // must be the reader's last touch of conn
  }
}

void Daemon::handle_reload(Connection& conn, std::uint64_t seq,
                           const std::string& model_name) {
  const std::string display =
      model_name.empty() ? default_slot_->name : model_name;
  const auto error_line = [&](const std::string& error) {
    return "{\"index\": " + std::to_string(seq) +
           ", \"cmd\": \"reload\", \"ok\": false, \"model\": \"" +
           json_escape(display) + "\", \"error\": \"" + json_escape(error) +
           "\"}";
  };

  if (draining_.load(std::memory_order_relaxed)) {
    deliver(conn, seq, error_line("draining"), /*admitted=*/false);
    return;
  }
  ModelSlot* slot = find_slot(model_name);
  if (slot == nullptr) {
    metrics_.unknown_model.inc();
    deliver(conn, seq, error_line("unknown_model"), /*admitted=*/false);
    return;
  }
  // The archive re-read happens HERE, on the requesting reader thread —
  // a slow disk must stall neither the dispatcher nor other clients.  A
  // failed load answers in place and swaps nothing.
  ModelRegistry::ModelHandle loaded;
  try {
    loaded = registry_.reload_named(slot->name);
  } catch (const std::exception& e) {
    deliver(conn, seq, error_line(e.what()), /*admitted=*/false);
    return;
  }
  std::string ok_line = "{\"index\": " + std::to_string(seq) +
                        ", \"cmd\": \"reload\", \"ok\": true, \"model\": \"" +
                        json_escape(slot->name) + "\", \"fingerprint\": \"" +
                        loaded->fingerprint() + "\"}";
  enqueue_swap(*slot, std::move(loaded), &conn, seq, std::move(ok_line));
}

void Daemon::reload_all_slots() {
  // SIGHUP semantics: best-effort reload of every disk-backed slot.  The
  // acceptor thread does the archive reads (it is otherwise idle between
  // accepts); a slot whose load fails keeps serving its old snapshot.
  for (auto& [name, slot] : slots_) {
    if (registry_.path_of(name).empty()) continue;  // in-memory slot
    try {
      ModelRegistry::ModelHandle loaded = registry_.reload_named(name);
      enqueue_swap(*slot, std::move(loaded), nullptr, 0, {});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "autopower serve: reload of model '%s' failed: %s\n",
                   name.c_str(), e.what());
    }
  }
}

void Daemon::enqueue_swap(ModelSlot& slot, ModelRegistry::ModelHandle model,
                          Connection* conn, std::uint64_t seq,
                          std::string response_line) {
  // Swaps bypass the queue-depth bound: shedding a reload under load
  // would make the one operation meant to fix a bad model depend on the
  // very congestion it may be causing.  At most a handful are ever
  // queued (one per reload command / SIGHUP slot).
  if (conn != nullptr) {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    ++conn->outstanding;
  }
  Work work;
  work.kind = Work::Kind::kSwap;
  work.conn = conn;
  work.seq = seq;
  work.slot = &slot;
  work.new_model = std::move(model);
  work.response_line = std::move(response_line);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(work));
    metrics_.queue_depth.set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
}

void Daemon::dispatch_loop() {
  std::vector<Work> batch;
  std::vector<BatchRequest> requests;
  std::vector<Work*> live;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() ||
               (draining_.load(std::memory_order_relaxed) &&
                reading_handlers_ == 0);
      });
      if (queue_.empty()) return;  // draining and no reader can enqueue
      // A swap is a batch of its own: batch formation never crosses one,
      // so requests admitted before a reload can only ever be evaluated
      // by the pre-swap snapshot and requests after by the new one.
      if (queue_.front().kind == Work::Kind::kSwap) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      } else {
        const std::size_t take = std::min(options_.max_batch, queue_.size());
        while (batch.size() < take &&
               queue_.front().kind == Work::Kind::kCompute) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          if (queue_.empty()) break;
        }
      }
      ++inflight_batches_;
      metrics_.queue_depth.set(static_cast<double>(queue_.size()));
    }

    process_batch(batch, requests, live);

    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --inflight_batches_;
      if (draining_.load(std::memory_order_relaxed) && queue_.empty() &&
          inflight_batches_ == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

void Daemon::process_batch(std::vector<Work>& batch,
                           std::vector<BatchRequest>& requests,
                           std::vector<Work*>& live) {
  if (batch.front().kind == Work::Kind::kSwap) {
    Work& work = batch.front();
    // Publish atomically; in-flight engine runs finish on the snapshot
    // they pinned (RCU by shared_ptr), new batches see the new model.
    work.slot->engine->swap_model(std::move(work.new_model));
    work.slot->reloads.inc();
    if (work.conn != nullptr) {
      deliver(*work.conn, work.seq, std::move(work.response_line),
              /*admitted=*/true);
    }
    return;
  }

  // Deadline gate: expired requests are answered here and never reach
  // an engine worker.  Re-checked HERE — after the queue wait — because
  // a deadline that expired while the request sat in the admission
  // queue must be answered "deadline exceeded", not computed.
  const Clock::time_point now = Clock::now();
  requests.clear();
  live.clear();
  for (Work& work : batch) {
    if (work.has_deadline && now >= work.deadline) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      metrics_.deadline_expired.inc();
      BatchResponse expired;
      expired.index = work.seq;
      expired.config = work.request.config;
      expired.workload = work.request.workload;
      expired.mode = work.request.mode;
      expired.ok = false;
      expired.error = "deadline exceeded";
      deliver(*work.conn, work.seq, response_to_jsonl(expired),
              /*admitted=*/true);
    } else {
      live.push_back(&work);
    }
  }
  if (live.empty()) return;

  // Partition by model slot, preserving first-appearance order (the
  // reorder buffer restores per-connection order either way; stable
  // grouping just keeps the execution deterministic).  The common case
  // — every request on the default slot — stays one engine run.
  std::vector<std::pair<ModelSlot*, std::vector<Work*>>> groups;
  for (Work* work : live) {
    ModelSlot* slot = work->slot;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [slot](const auto& g) { return g.first == slot; });
    if (it == groups.end()) {
      groups.emplace_back(slot, std::vector<Work*>{});
      it = std::prev(groups.end());
    }
    it->second.push_back(work);
  }

  for (auto& [slot, works] : groups) {
    requests.clear();
    for (const Work* work : works) requests.push_back(work->request);

    std::vector<BatchResponse> responses;
    try {
      responses = slot->engine->run(requests);
    } catch (const std::exception& e) {
      // The engine isolates per-request failures; reaching here means
      // the whole batch failed (e.g. serial-path model error).  Every
      // admitted request still gets a structured answer — a resident
      // daemon never drops a response on the floor.
      for (Work* work : works) {
        BatchResponse failed;
        failed.index = work->seq;
        failed.config = work->request.config;
        failed.workload = work->request.workload;
        failed.mode = work->request.mode;
        failed.ok = false;
        failed.error = e.what();
        deliver(*work->conn, work->seq, response_to_jsonl(failed),
                /*admitted=*/true);
      }
      continue;
    }

    for (std::size_t i = 0; i < works.size(); ++i) {
      Work* work = works[i];
      // The engine numbers responses by batch position; rewrite to the
      // per-connection sequence so clients see `batch`-identical indices.
      responses[i].index = work->seq;
      metrics_.request_latency_ns.observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               work->arrival)
              .count()));
      deliver(*work->conn, work->seq, response_to_jsonl(responses[i]),
              /*admitted=*/true);
    }
  }
}

void Daemon::deliver(Connection& conn, std::uint64_t seq, std::string line,
                     bool admitted) {
  std::lock_guard<std::mutex> lock(conn.mu);
  conn.ready.emplace(seq, std::move(line));
  while (!conn.ready.empty() &&
         conn.ready.begin()->first == conn.next_write) {
    const auto it = conn.ready.begin();
    if (!conn.write_failed) {
      try {
        net::write_line(conn.sock.fd(), it->second);
      } catch (const util::Error&) {
        // serve.net.write fault or dead peer: tear down only this
        // connection.  shutdown_both() wakes its (possibly blocked)
        // reader with EOF; later responses are dropped silently since
        // nobody can receive them.
        conn.write_failed = true;
        net_errors_.fetch_add(1, std::memory_order_relaxed);
        metrics_.net_errors.inc();
        conn.sock.shutdown_both();
      }
    }
    conn.ready.erase(it);
    ++conn.next_write;
  }
  if (admitted) {
    --conn.outstanding;
    conn.cv.notify_all();
  }
}

std::string Daemon::control_response_line(std::uint64_t seq,
                                          const std::string& cmd) {
  std::string out = "{\"index\": " + std::to_string(seq) + ", \"cmd\": \"" +
                    cmd + "\", \"ok\": true";
  if (cmd == "health") {
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      depth = queue_.size();
    }
    out += ", \"status\": \"";
    out += draining_.load(std::memory_order_relaxed) ? "draining" : "serving";
    out += "\", \"connections\": " +
           std::to_string(active_.load(std::memory_order_relaxed));
    out += ", \"queue_depth\": " + std::to_string(depth);
    out += ", \"models\": " + std::to_string(slots_.size());
    // Numeric tier (0 scalar / 1 sse2 / 2 avx2), not the name: golden
    // snapshots normalise numbers, so the schema stays host-independent.
    out += ", \"simd_tier\": " + std::to_string(static_cast<int>(
                                     util::simd::active_tier()));
  } else {
    out += ", \"metrics\": " + util::MetricsRegistry::global().to_json();
  }
  out += "}";
  return out;
}

void Daemon::reap_finished(bool join_all) {
  std::vector<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (join_all) {
      for (auto& [id, conn] : conns_) dead.push_back(std::move(conn));
      conns_.clear();
    } else {
      for (const std::uint64_t id : finished_) {
        const auto it = conns_.find(id);
        if (it != conns_.end()) {
          dead.push_back(std::move(it->second));
          conns_.erase(it);
        }
      }
    }
    finished_.clear();
  }
  // Join outside conns_mu_: a reader's last action takes conns_mu_ to
  // mark itself finished, so joining under the lock would deadlock.
  for (auto& conn : dead) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

}  // namespace autopower::serve
