// Sharded (model fingerprint, config, workload) → EvalContext cache.
//
// Building an evaluation context — looking up the configuration and
// workload, extracting program-level features, and above all running
// `PerfSimulator::simulate` — dominates per-query cost and is fully
// deterministic, so the serving layer memoises it here.  The cache is the
// concurrency boundary around the simulator: `PerfSimulator::simulate` is
// const but memoises phase rates internally and is therefore NOT safe to
// share across threads; each caller passes its own (thread-local)
// simulator, and the cache publishes the resulting context as an
// immutable `shared_ptr<const EvalContext>` that any thread may read.
//
// Sharding: keys hash onto `shards` independently-locked maps, so lookups
// of different keys rarely contend.  On a miss the context is computed
// OUTSIDE the shard lock (two threads may transiently duplicate the same
// deterministic computation; the first insert wins — both observe one
// published value, and results are bit-identical either way).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/sample.hpp"
#include "sim/perfsim.hpp"

namespace autopower::serve {

class EvalCache {
 public:
  /// `shards` is clamped to at least 1.
  explicit EvalCache(std::size_t shards = 16);

  /// Returns the cached context for (model_fingerprint, config, workload),
  /// computing it with `sim` on a miss.  Throws util::Error for unknown
  /// names.  The fingerprint qualifies the key so entries filled while one
  /// model was published can never be served for another after a hot-swap
  /// (contexts are model-independent today, but the cache sits on the
  /// serving path and the keying contract is: no memo outlives the model
  /// that filled it).
  [[nodiscard]] std::shared_ptr<const core::EvalContext> get_or_compute(
      std::string_view model_fingerprint, const std::string& config,
      const std::string& workload, const sim::PerfSimulator& sim);

  /// Relaxed counters: approximate while callers are running, exact once
  /// they have quiesced.  A miss is counted only by the winning insert,
  /// so `misses == contexts created` and `hits + misses == successful
  /// lookups`; a thread that loses a cold-key race counts a hit (it
  /// adopts the published context, even though it transiently redid the
  /// simulation).  Lookups that throw (unknown names) count neither.
  /// Every increment is mirrored into the process-wide MetricsRegistry
  /// as "serve.eval_cache.hits" / ".misses".
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] Stats stats() const noexcept;

  /// Number of cached contexts across all shards.
  [[nodiscard]] std::size_t size() const;

  void clear();

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const core::EvalContext>>
        map;
  };

  [[nodiscard]] Shard& shard_for(std::string_view key) noexcept;

  std::deque<Shard> shards_;  // deque: Shard holds a mutex, must not move
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace autopower::serve
