#include "serve/eval_cache.hpp"

#include <functional>
#include <utility>

#include "arch/params.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "workload/workload.hpp"

namespace autopower::serve {

namespace {

// '\x1f' (unit separator) cannot appear in fingerprints (hex), config or
// workload names, so the concatenation is collision-free.
std::string cache_key(std::string_view fingerprint, const std::string& config,
                      const std::string& workload) {
  std::string key;
  key.reserve(fingerprint.size() + 2 + config.size() + workload.size());
  key += fingerprint;
  key += '\x1f';
  key += config;
  key += '\x1f';
  key += workload;
  return key;
}

// Process-wide mirrors of the per-instance counters (see Stats doc).
// Looked up once; recording through the references is lock-free.
struct CacheMetrics {
  util::Counter& hits;
  util::Counter& misses;
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m{
      util::MetricsRegistry::global().counter("serve.eval_cache.hits"),
      util::MetricsRegistry::global().counter("serve.eval_cache.misses")};
  return m;
}

}  // namespace

EvalCache::EvalCache(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

EvalCache::Shard& EvalCache::shard_for(std::string_view key) noexcept {
  const std::size_t h = std::hash<std::string_view>{}(key);
  return shards_[h % shards_.size()];
}

std::shared_ptr<const core::EvalContext> EvalCache::get_or_compute(
    std::string_view model_fingerprint, const std::string& config,
    const std::string& workload, const sim::PerfSimulator& sim) {
  const std::string key = cache_key(model_fingerprint, config, workload);
  Shard& shard = shard_for(key);
  {
    std::lock_guard lock(shard.mu);
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      cache_metrics().hits.inc();
      return it->second;
    }
  }

  // Compute outside the lock with the caller's simulator.  The fill is
  // strictly insert-after-successful-compute: if anything below throws —
  // the lookup, the simulation, an (injected) allocation failure — the
  // half-built context dies with this frame and the map is untouched, so
  // a failed fill can never publish a partially-constructed entry.
  AUTOPOWER_FAULT_POINT("serve.eval_cache.compute");
  auto ctx = std::make_shared<core::EvalContext>();
  ctx->cfg = &arch::boom_config(config);  // static storage; pointer stable
  ctx->workload = workload;
  const auto& profile = workload::workload_by_name(workload);
  ctx->program = workload::program_features(profile);
  ctx->events = sim.simulate(*ctx->cfg, profile);
  // The insert's own allocation failing (strong guarantee of emplace)
  // likewise leaves the map without the key.
  AUTOPOWER_FAULT_POINT("serve.eval_cache.insert");

  std::lock_guard lock(shard.mu);
  const auto [it, inserted] = shard.map.emplace(key, std::move(ctx));
  // Only the winning insert is a miss; a lost race adopts the published
  // context and counts as a hit (see Stats doc in the header).
  if (inserted) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    cache_metrics().misses.inc();
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    cache_metrics().hits.inc();
  }
  return it->second;
}

EvalCache::Stats EvalCache::stats() const noexcept {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed)};
}

std::size_t EvalCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

void EvalCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    shard.map.clear();
  }
}

}  // namespace autopower::serve
