// Streaming parallel design-space sweep driver.
//
// The workload architecture-level power models exist for: enumerate a
// config-grid spec (axis lists over Table II hardware parameters applied
// to a base configuration), evaluate every (configuration, workload) cell
// — performance simulation + power prediction — across a thread pool, and
// rank the configurations into a JSONL report.
//
// The grid is never materialised: a GridCursor yields configuration
// *indices* and reconstructs each HardwareConfig on demand (mixed-radix
// decode), so a 10^7-cell sweep holds O(workers + top-K) rows, not
// O(grid).  Workers claim chunked index ranges from per-worker shards and
// steal chunks from each other when their own shard drains, so skewed
// per-cell costs cannot idle a worker.  With `--top K` each worker feeds
// a bounded K-heap, merged and ranked at the end.  A `--checkpoint` file
// records every finished configuration as a crc-guarded JSONL line;
// `--resume` replays it and skips the finished indices, and the final
// report is byte-identical to an uninterrupted run (serve/checkpoint.hpp
// documents the format and torn-line policy).
//
// Every worker's PerfSimulator shares ONE util::StructuralSimCache (the
// L2 directory tier; each simulator fronts it with a private L1), so
// neighbouring grid points (which differ only in a few parameters) reuse
// each other's cache/TLB/branch structural measurements; on a grid that
// varies ROB/width/queue parameters the whole sweep performs the
// structural work of a single configuration.  Results are bit-identical
// to evaluating each cell with a fresh, unshared simulator, for any
// thread count, any chunking/steal schedule, and any `--memory-budget`
// (`bench_sim_throughput` enforces these properties).
//
// Grid spec syntax (CLI `--grid`): semicolon-separated axes, each
// "Param=v1,v2,...", e.g. "RobEntry=64,96,128;FetchWidth=4,8".  Axis
// order is report order; the first axis varies slowest.  A cell whose
// configuration cannot be simulated (e.g. a non-power-of-two
// ICacheFetchBytes) fails alone with its error message, like a bad batch
// request.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "arch/params.hpp"
#include "core/autopower.hpp"
#include "util/structural_cache.hpp"

namespace autopower::serve {

/// One grid axis: the values a hardware parameter sweeps over.
struct SweepAxis {
  arch::HwParam param = arch::HwParam::kFetchWidth;
  std::vector<int> values;
};

/// How the ranked report orders configurations.
enum class SweepMetric {
  kIpcPerWatt,  ///< mean IPC / mean watts, descending (the DSE default)
  kIpc,         ///< mean IPC, descending
  kPower,       ///< mean total mW, ascending
};

[[nodiscard]] std::string_view to_string(SweepMetric metric) noexcept;
/// Parses "ipc_per_watt" | "ipc" | "power"; throws on anything else.
[[nodiscard]] SweepMetric sweep_metric_from_string(std::string_view text);

struct SweepSpec {
  std::string base = "C8";                ///< Table II baseline config
  std::vector<SweepAxis> axes;            ///< grid axes (may be empty)
  std::vector<std::string> workloads;     ///< evaluation workloads
  std::size_t threads = 1;
  SweepMetric metric = SweepMetric::kIpcPerWatt;
  std::size_t top = 0;                    ///< 0 = report every config
  std::string checkpoint;                 ///< JSONL checkpoint path ("" = off)
  bool resume = false;                    ///< replay `checkpoint` first
  /// Approximate byte bound for the shared structural cache when
  /// run_sweep creates its own (0 = unbounded); ignored when the caller
  /// passes a cache in.
  std::uint64_t memory_budget = 0;
};

/// Parses the `--grid` spec ("RobEntry=64,96;FetchWidth=4,8").  Throws
/// util::Error on unknown parameters, duplicate axes, empty or
/// non-positive value lists, or malformed syntax.
[[nodiscard]] std::vector<SweepAxis> parse_grid(std::string_view spec);

/// Lazy mixed-radix enumeration of a config grid: the cartesian product
/// of `axes` applied to `base`, addressed by index in [0, size()).  The
/// first axis varies slowest (index 0 is the base point of every axis),
/// matching the report order of the former materialised expansion.
/// Config names are deterministic: "<base>+Param=v+..." (base's own name
/// for an empty grid).  There is NO size cap beyond std::size_t overflow
/// — callers stream indices instead of materialising configs.
/// Thread-safe: all accessors are const and touch no shared mutable
/// state, so sweep workers decode from one shared cursor.
class GridCursor {
 public:
  /// Throws util::Error on an empty axis value list or a product that
  /// overflows std::size_t.
  GridCursor(const arch::HardwareConfig& base,
             std::span<const SweepAxis> axes);

  [[nodiscard]] std::size_t size() const noexcept { return total_; }

  /// Writes config `index`'s full parameter vector into `values`.
  void values_at(std::size_t index,
                 std::array<int, arch::kNumHwParams>& values) const;

  /// Formats config `index`'s name into `name` (clearing it first).
  /// Callers reuse one scratch string across a streaming loop, so the
  /// per-config cost is a few appends into already-reserved storage —
  /// no repeated std::to_string temporaries.
  void format_name(std::size_t index, std::string& name) const;

  /// Materialises one configuration (the convenience path; streaming
  /// callers use values_at/format_name with reused scratch space).
  [[nodiscard]] arch::HardwareConfig config_at(std::size_t index) const;

 private:
  std::string base_name_;
  std::array<int, arch::kNumHwParams> base_values_{};
  std::vector<SweepAxis> axes_;
  std::size_t total_ = 1;
};

/// Cartesian product of the axes applied to `base`, materialised.  Kept
/// for small grids and tests; refuses to materialise more than 1e6
/// configurations — stream via GridCursor instead.
[[nodiscard]] std::vector<arch::HardwareConfig> expand_grid(
    const arch::HardwareConfig& base, std::span<const SweepAxis> axes);

/// One (configuration, workload) evaluation.
struct SweepCell {
  std::string workload;
  bool ok = false;
  std::string error;      ///< set when !ok
  double total_mw = 0.0;  ///< predicted average power
  double ipc = 0.0;       ///< simulated instructions per cycle
};

/// One configuration's row of the ranked report.
struct SweepRow {
  arch::HardwareConfig config;
  std::vector<SweepCell> cells;    ///< one per workload, spec order
  double mean_total_mw = 0.0;      ///< over ok cells
  double mean_ipc = 0.0;
  double ipc_per_watt = 0.0;
  std::size_t failed = 0;          ///< cells that failed
  std::size_t rank = 0;            ///< 1-based rank under the spec metric
  std::size_t index = 0;           ///< grid index (the deterministic
                                   ///< tie-break; not serialised)
};

struct SweepReport {
  std::vector<SweepRow> rows;  ///< ranked best-first (truncated to top)
  std::size_t configs = 0;     ///< grid size before truncation
  std::size_t evaluations = 0;
  std::size_t resumed = 0;     ///< rows replayed from a checkpoint
  util::StructuralSimCache::Stats structural;  ///< sub-memo hit/miss
};

/// Runs the sweep: streams grid indices from a GridCursor over
/// `spec.threads` workers (clamped to the host's hardware concurrency)
/// sharing one structural cache (`structural` if given, else a fresh one
/// bounded by `spec.memory_budget`), and ranks the rows — through
/// bounded per-worker top-K heaps when `spec.top` is set.  Deterministic:
/// the report is bit-identical for any thread count, any steal schedule,
/// any memory budget, any pre-warmed cache state, and any
/// checkpoint/resume split.  Throws util::Error for an unknown base
/// config, unknown workloads, an empty workload list, a corrupt
/// checkpoint, or a checkpoint write failure.
[[nodiscard]] SweepReport run_sweep(
    const core::AutoPowerModel& model, const SweepSpec& spec,
    std::shared_ptr<util::StructuralSimCache> structural = nullptr);

/// Evaluates an explicit configuration list — every (config, workload)
/// cell, performance simulation + power prediction — over `threads`
/// workers (clamped like run_sweep) sharing one structural cache
/// (`structural` if given, else a fresh unbounded one).  Returns one
/// finalized row per config, in input order, with row.index = input
/// position (callers that address a grid rewrite it).  Rows are
/// bit-identical to the run_sweep rows for the same configs, for any
/// thread count.  This is the verification path for callers (the
/// explore loop) that pick sparse, non-contiguous grid points instead
/// of streaming a whole grid.  Throws util::Error on unknown or empty
/// workloads.
[[nodiscard]] std::vector<SweepRow> evaluate_configs(
    const core::AutoPowerModel& model,
    std::span<const arch::HardwareConfig> configs,
    std::span<const std::string> workloads, std::size_t threads,
    std::shared_ptr<util::StructuralSimCache> structural = nullptr);

/// Appends the body of one row's JSON object — everything after the
/// opening '{' and the "rank" member:
///   "config":"C8+RobEntry=96","params":{...},"mean_total_mw":...,
///   "mean_ipc":...,"ipc_per_watt":...,"failed":0,
///   "cells":[{"workload":...,"ok":true,"total_mw":...,"ipc":...},...]
/// Shared by the final report writer and the checkpoint writer so a
/// replayed row reproduces its original bytes exactly (numbers round-trip
/// through serve::json_number).
void append_row_json(std::string& out, const SweepRow& row);

/// Writes the report as JSONL, one ranked row per line:
///   {"rank":1,<append_row_json body>}
/// Numbers round-trip exactly (serve::json_number).
void write_sweep_report(std::ostream& out, const SweepReport& report);

}  // namespace autopower::serve
