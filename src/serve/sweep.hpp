// Parallel design-space sweep driver.
//
// The workload architecture-level power models exist for: expand a
// config-grid spec (axis lists over Table II hardware parameters applied
// to a base configuration), evaluate every (configuration, workload) cell
// — performance simulation + power prediction — across a thread pool, and
// rank the configurations into a JSONL report.
//
// Every worker's PerfSimulator shares ONE util::StructuralSimCache, so
// neighbouring grid points (which differ only in a few parameters) reuse
// each other's cache/TLB/branch structural measurements; on a grid that
// varies ROB/width/queue parameters the whole sweep performs the
// structural work of a single configuration.  Results are bit-identical
// to evaluating each cell with a fresh, unshared simulator, for any
// thread count (`bench_sim_throughput` enforces both properties).
//
// Grid spec syntax (CLI `--grid`): semicolon-separated axes, each
// "Param=v1,v2,...", e.g. "RobEntry=64,96,128;FetchWidth=4,8".  Axis
// order is report order; the first axis varies slowest.  A cell whose
// configuration cannot be simulated (e.g. a non-power-of-two
// ICacheFetchBytes) fails alone with its error message, like a bad batch
// request.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "arch/params.hpp"
#include "core/autopower.hpp"
#include "util/structural_cache.hpp"

namespace autopower::serve {

/// One grid axis: the values a hardware parameter sweeps over.
struct SweepAxis {
  arch::HwParam param = arch::HwParam::kFetchWidth;
  std::vector<int> values;
};

/// How the ranked report orders configurations.
enum class SweepMetric {
  kIpcPerWatt,  ///< mean IPC / mean watts, descending (the DSE default)
  kIpc,         ///< mean IPC, descending
  kPower,       ///< mean total mW, ascending
};

[[nodiscard]] std::string_view to_string(SweepMetric metric) noexcept;
/// Parses "ipc_per_watt" | "ipc" | "power"; throws on anything else.
[[nodiscard]] SweepMetric sweep_metric_from_string(std::string_view text);

struct SweepSpec {
  std::string base = "C8";                ///< Table II baseline config
  std::vector<SweepAxis> axes;            ///< grid axes (may be empty)
  std::vector<std::string> workloads;     ///< evaluation workloads
  std::size_t threads = 1;
  SweepMetric metric = SweepMetric::kIpcPerWatt;
  std::size_t top = 0;                    ///< 0 = report every config
};

/// Parses the `--grid` spec ("RobEntry=64,96;FetchWidth=4,8").  Throws
/// util::Error on unknown parameters, duplicate axes, empty or
/// non-positive value lists, or malformed syntax.
[[nodiscard]] std::vector<SweepAxis> parse_grid(std::string_view spec);

/// Cartesian product of the axes applied to `base`.  Config names are
/// deterministic: "<base>+Param=v+..." (base's own name for an empty
/// grid).  The first axis varies slowest.
[[nodiscard]] std::vector<arch::HardwareConfig> expand_grid(
    const arch::HardwareConfig& base, std::span<const SweepAxis> axes);

/// One (configuration, workload) evaluation.
struct SweepCell {
  std::string workload;
  bool ok = false;
  std::string error;      ///< set when !ok
  double total_mw = 0.0;  ///< predicted average power
  double ipc = 0.0;       ///< simulated instructions per cycle
};

/// One configuration's row of the ranked report.
struct SweepRow {
  arch::HardwareConfig config;
  std::vector<SweepCell> cells;    ///< one per workload, spec order
  double mean_total_mw = 0.0;      ///< over ok cells
  double mean_ipc = 0.0;
  double ipc_per_watt = 0.0;
  std::size_t rank = 0;            ///< 1-based rank under the spec metric
};

struct SweepReport {
  std::vector<SweepRow> rows;  ///< ranked best-first (truncated to top)
  std::size_t configs = 0;     ///< grid size before truncation
  std::size_t evaluations = 0;
  util::StructuralSimCache::Stats structural;  ///< sub-memo hit/miss
};

/// Runs the sweep: expands the grid, fans (config x workload) cells over
/// `spec.threads` workers sharing one structural cache (`structural` if
/// given, else a fresh private one), and ranks the rows.  Deterministic:
/// the report is bit-identical for any thread count and any pre-warmed
/// cache state.  Throws util::Error for an unknown base config, unknown
/// workloads, or an empty workload list.
[[nodiscard]] SweepReport run_sweep(
    const core::AutoPowerModel& model, const SweepSpec& spec,
    std::shared_ptr<util::StructuralSimCache> structural = nullptr);

/// Writes the report as JSONL, one ranked row per line:
///   {"rank":1,"config":"C8+RobEntry=96","params":{...},
///    "mean_total_mw":...,"mean_ipc":...,"ipc_per_watt":...,
///    "cells":[{"workload":"dhrystone","ok":true,"total_mw":...,
///              "ipc":...},...]}
/// Numbers round-trip exactly (serve::json_number).
void write_sweep_report(std::ostream& out, const SweepReport& report);

}  // namespace autopower::serve
