#include "serve/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "serve/jsonl.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace autopower::serve {

namespace {

/// Flush the row buffer after this many rows or bytes, whichever comes
/// first: bounds both the fsync rate on million-row sweeps and the
/// worst-case work lost to a SIGKILL.
constexpr std::size_t kFlushRows = 64;
constexpr std::size_t kFlushBytes = 256 * 1024;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

std::uint32_t crc32_update(std::uint32_t crc, std::string_view data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

std::string hex_u32(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

[[noreturn]] void checkpoint_error(const std::string& path,
                                   const std::string& what) {
  throw util::Error("checkpoint " + path + ": " + what);
}

std::size_t as_index(const JsonValue& v, const std::string& path,
                     const char* what) {
  const double d = v.as_number();
  if (d < 0.0 || d != static_cast<double>(static_cast<std::size_t>(d))) {
    checkpoint_error(path, std::string(what) + " is not a valid index");
  }
  return static_cast<std::size_t>(d);
}

/// Inverse of append_row_json: rebuilds a SweepRow (config reconstructed
/// from its name + params) from one checkpoint line's `row` object.
SweepRow row_from_json(const JsonValue& row, const std::string& path) {
  SweepRow out;
  const JsonValue* config = row.find("config");
  const JsonValue* params = row.find("params");
  const JsonValue* cells = row.find("cells");
  const JsonValue* mean_mw = row.find("mean_total_mw");
  const JsonValue* mean_ipc = row.find("mean_ipc");
  const JsonValue* ipw = row.find("ipc_per_watt");
  const JsonValue* failed = row.find("failed");
  if (config == nullptr || params == nullptr || cells == nullptr ||
      mean_mw == nullptr || mean_ipc == nullptr || ipw == nullptr ||
      failed == nullptr) {
    checkpoint_error(path, "row is missing a required member");
  }
  std::array<int, arch::kNumHwParams> values{};
  for (arch::HwParam p : arch::all_hw_params()) {
    const JsonValue* v = params->find(std::string(arch::hw_param_name(p)));
    if (v == nullptr) {
      checkpoint_error(path, "row params is missing " +
                                 std::string(arch::hw_param_name(p)));
    }
    values[static_cast<std::size_t>(p)] = static_cast<int>(v->as_number());
  }
  out.config = arch::HardwareConfig(config->as_string(), values);
  out.mean_total_mw = mean_mw->as_number();
  out.mean_ipc = mean_ipc->as_number();
  out.ipc_per_watt = ipw->as_number();
  out.failed = as_index(*failed, path, "failed");
  for (const JsonValue& cell_json : cells->as_array()) {
    SweepCell cell;
    const JsonValue* workload = cell_json.find("workload");
    const JsonValue* ok = cell_json.find("ok");
    if (workload == nullptr || ok == nullptr) {
      checkpoint_error(path, "cell is missing workload/ok");
    }
    cell.workload = workload->as_string();
    cell.ok = ok->as_bool();
    if (cell.ok) {
      const JsonValue* mw = cell_json.find("total_mw");
      const JsonValue* ipc = cell_json.find("ipc");
      if (mw == nullptr || ipc == nullptr) {
        checkpoint_error(path, "ok cell is missing total_mw/ipc");
      }
      cell.total_mw = mw->as_number();
      cell.ipc = ipc->as_number();
    } else {
      const JsonValue* error = cell_json.find("error");
      if (error == nullptr) {
        checkpoint_error(path, "failed cell is missing its error");
      }
      cell.error = error->as_string();
    }
    out.cells.push_back(std::move(cell));
  }
  return out;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  return crc32_update(0xffffffffu, data) ^ 0xffffffffu;
}

std::string sweep_fingerprint(const std::string& base,
                              std::span<const SweepAxis> axes,
                              std::span<const std::string> workloads,
                              std::string_view model_fingerprint) {
  std::uint64_t h = util::hash_str("sweep-checkpoint-v2");
  h = util::hash_combine(h, util::hash_str(model_fingerprint));
  h = util::hash_combine(h, util::hash_str(base));
  h = util::hash_combine(h, axes.size());
  for (const SweepAxis& axis : axes) {
    h = util::hash_combine(h, util::hash_str(arch::hw_param_name(axis.param)));
    h = util::hash_combine(h, axis.values.size());
    for (const int v : axis.values) {
      h = util::hash_combine(h, static_cast<std::uint64_t>(v));
    }
  }
  h = util::hash_combine(h, workloads.size());
  for (const std::string& w : workloads) {
    h = util::hash_combine(h, util::hash_str(w));
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

CheckpointReplay load_checkpoint(const std::string& path,
                                 std::string_view fingerprint,
                                 std::size_t configs, std::size_t workloads) {
  CheckpointReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return replay;  // absent: fresh start
  replay.found = true;
  AUTOPOWER_FAULT_POINT("serve.checkpoint.load");

  std::vector<std::uint8_t> seen(configs, 0);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    // getline hitting EOF before the delimiter means the final line has
    // no trailing newline — the torn tail a SIGKILL mid-write leaves.
    // Drop it (the config is just re-evaluated); everything AFTER a
    // newline terminator is held to full crc/parse validity instead.
    const bool intact = !in.eof();
    if (!intact) break;
    if (!saw_header) {
      JsonValue header;
      try {
        header = JsonValue::parse(line);
      } catch (const util::Error& e) {
        checkpoint_error(path, "bad header line: " + std::string(e.what()));
      }
      const JsonValue* version = header.find("autopower_sweep_checkpoint");
      if (version == nullptr || version->as_number() != 1.0) {
        checkpoint_error(path, "not a sweep checkpoint (bad version)");
      }
      const JsonValue* fp = header.find("fingerprint");
      if (fp == nullptr || fp->as_string() != fingerprint) {
        checkpoint_error(path,
                         "fingerprint mismatch — this checkpoint belongs to "
                         "a different base/grid/workloads sweep");
      }
      const JsonValue* n_configs = header.find("configs");
      const JsonValue* n_workloads = header.find("workloads");
      if (n_configs == nullptr || n_workloads == nullptr ||
          as_index(*n_configs, path, "configs") != configs ||
          as_index(*n_workloads, path, "workloads") != workloads) {
        checkpoint_error(path, "grid shape mismatch");
      }
      saw_header = true;
      replay.valid_bytes += line.size() + 1;
      continue;
    }
    // Row line: {"i":N,"crc":"xxxxxxxx","row":{...}}.  The crc covers
    // the exact bytes of the row object, located by the canonical
    // "row": prefix (nothing before it can contain the token: the line
    // starts with the i and crc members only).
    JsonValue parsed;
    try {
      parsed = JsonValue::parse(line);
    } catch (const util::Error& e) {
      checkpoint_error(path, "corrupt row line: " + std::string(e.what()));
    }
    const JsonValue* index_json = parsed.find("i");
    const JsonValue* crc_json = parsed.find("crc");
    const JsonValue* row_json = parsed.find("row");
    if (index_json == nullptr || crc_json == nullptr || row_json == nullptr) {
      checkpoint_error(path, "row line is missing i/crc/row");
    }
    const std::size_t pos = line.find("\"row\":");
    if (pos == std::string::npos || line.empty() || line.back() != '}') {
      checkpoint_error(path, "row line has no row payload");
    }
    const std::string_view payload =
        std::string_view(line).substr(pos + 6, line.size() - (pos + 6) - 1);
    if (hex_u32(crc32(payload)) != crc_json->as_string()) {
      checkpoint_error(path,
                       "crc mismatch on a newline-terminated row line "
                       "(corruption, not a torn tail) — refusing to resume");
    }
    const std::size_t index = as_index(*index_json, path, "i");
    if (index >= configs) {
      checkpoint_error(path, "row index out of range for this grid");
    }
    if (seen[index]) {
      // First write wins; a duplicate can only come from an external
      // rewrite but is harmless to skip (both lines passed their crc).
      replay.valid_bytes += line.size() + 1;
      continue;
    }
    SweepRow row = row_from_json(*row_json, path);
    if (row.cells.size() != workloads) {
      checkpoint_error(path, "row cell count does not match the workloads");
    }
    row.index = index;
    seen[index] = 1;
    replay.rows.push_back(std::move(row));
    replay.valid_bytes += line.size() + 1;
  }
  if (in.bad()) checkpoint_error(path, "read failed");
  return replay;
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   std::string_view fingerprint,
                                   std::size_t configs, std::size_t workloads,
                                   std::uint64_t keep_bytes)
    : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    checkpoint_error(path_, std::string("open failed: ") +
                                std::strerror(errno));
  }
  // Resume keeps the validated prefix (dropping any torn tail past it);
  // a fresh start truncates to empty and writes a new header.
  if (::ftruncate(fd_, static_cast<off_t>(keep_bytes)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    const std::string what = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    checkpoint_error(path_, "truncate failed: " + what);
  }
  if (keep_bytes == 0) {
    buffer_ = "{\"autopower_sweep_checkpoint\":1,\"fingerprint\":\"";
    buffer_ += fingerprint;
    buffer_ += "\",\"configs\":" + std::to_string(configs) +
               ",\"workloads\":" + std::to_string(workloads) + "}\n";
    std::lock_guard lock(mu_);
    flush_locked();  // a valid header exists before any work begins
  }
}

CheckpointWriter::~CheckpointWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; callers needing failure detection call
    // close() themselves (the sweep does, before ranking).
  }
}

void CheckpointWriter::append(std::size_t index, std::string_view row_json) {
  std::uint32_t crc = crc32_update(0xffffffffu, "{");
  crc = crc32_update(crc, row_json);
  crc = (crc32_update(crc, "}")) ^ 0xffffffffu;

  std::lock_guard lock(mu_);
  if (fd_ < 0) checkpoint_error(path_, "append after close");
  buffer_ += "{\"i\":" + std::to_string(index) + ",\"crc\":\"" +
             hex_u32(crc) + "\",\"row\":{";
  buffer_ += row_json;
  buffer_ += "}}\n";
  if (++buffered_rows_ >= kFlushRows || buffer_.size() >= kFlushBytes) {
    flush_locked();
  }
}

void CheckpointWriter::flush() {
  std::lock_guard lock(mu_);
  flush_locked();
}

void CheckpointWriter::close() {
  std::lock_guard lock(mu_);
  if (fd_ < 0) return;
  flush_locked();
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    checkpoint_error(path_, std::string("close failed: ") +
                                std::strerror(errno));
  }
}

void CheckpointWriter::write_all_locked(const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd_, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      checkpoint_error(path_, std::string("write failed: ") +
                                  std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void CheckpointWriter::flush_locked() {
  if (buffer_.empty()) return;
  // The injectable seam for disk-full/EIO during a sweep: a checkpoint
  // that cannot be persisted fails the run (exit non-zero) instead of
  // silently losing crash safety.
  AUTOPOWER_FAULT_POINT("serve.checkpoint.write");
  write_all_locked(buffer_.data(), buffer_.size());
  if (::fsync(fd_) != 0) {
    checkpoint_error(path_, std::string("fsync failed: ") +
                                std::strerror(errno));
  }
  buffer_.clear();
  buffered_rows_ = 0;
}

}  // namespace autopower::serve
