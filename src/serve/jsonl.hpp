// Minimal hand-rolled JSONL (one JSON object per line) support for the
// batch serving API.  No external dependency: a small recursive-descent
// JSON parser (objects, arrays, strings with escapes, numbers, booleans,
// null) plus an escaping writer.  Numbers are emitted with enough digits
// to round-trip a double exactly, so serialised responses preserve the
// engine's bit-identical determinism guarantee.
//
// Request line schema (see README "Batch serving"):
//   {"config": "C3", "workload": "dhrystone", "mode": "total"}
// `mode` is optional and defaults to "total"; unknown keys are rejected.
//
// Response line schema:
//   {"index": 0, "config": "C3", "workload": "dhrystone", "mode": "total",
//    "ok": true, "total_mw": 95.6}
// plus "components": [{"component": ..., "clock_mw": ..., "sram_mw": ...,
// "logic_mw": ..., "total_mw": ...}, ...] in per_component mode,
// "trace_mw": [...] in trace mode, and "error": "..." when ok is false.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/engine.hpp"

namespace autopower::serve {

/// A parsed JSON value (tree-owning tagged union).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }

  /// Typed accessors; throw util::Error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; nullptr when absent (throws if not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Parses exactly one JSON value spanning the whole input (leading and
  /// trailing whitespace allowed).  Throws util::Error on malformed input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Escapes `text` for inclusion inside a JSON string literal (no quotes).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Formats a double with round-trip precision ("%.17g"-equivalent, but
/// using the shortest representation that parses back exactly).
[[nodiscard]] std::string json_number(double value);

/// Parses one JSONL request line.  Rejects unknown keys, wrong types, and
/// missing config/workload.
[[nodiscard]] BatchRequest request_from_jsonl(std::string_view line);

/// Serialises one response as a single JSONL line (no trailing newline).
[[nodiscard]] std::string response_to_jsonl(const BatchResponse& response);

/// Reads every non-empty line of `in` as a request.  Error messages carry
/// the 1-based line number.
[[nodiscard]] std::vector<BatchRequest> read_requests(std::istream& in);

/// Writes one line per response, in order.
void write_responses(std::ostream& out,
                     std::span<const BatchResponse> responses);

}  // namespace autopower::serve
