#include "serve/registry.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace autopower::serve {

ModelRegistry::ModelHandle ModelRegistry::load(const std::string& path) {
  auto model = std::make_shared<core::AutoPowerModel>();
  model->load_from_file(path);
  return model;  // converts to shared_ptr<const AutoPowerModel>
}

void ModelRegistry::update_gauge_locked() const {
  if (!util::MetricsRegistry::enabled()) return;
  util::MetricsRegistry::global()
      .gauge("serve.registry.models")
      .set(static_cast<double>(models_.size() + slots_.size()));
}

ModelRegistry::ModelHandle ModelRegistry::get(const std::string& path) {
  {
    std::lock_guard lock(mu_);
    if (const auto it = models_.find(path); it != models_.end()) {
      return it->second;
    }
  }
  // Load outside the lock: archive reads are slow and must not block
  // concurrent lookups of already-published models.  If two threads race
  // on the same cold path the first insert wins and both see one snapshot;
  // a load that throws unwinds before the emplace and publishes nothing.
  ModelHandle loaded = load(path);
  std::lock_guard lock(mu_);
  const auto [it, inserted] = models_.emplace(path, std::move(loaded));
  (void)inserted;
  update_gauge_locked();
  return it->second;
}

ModelRegistry::ModelHandle ModelRegistry::reload(const std::string& path) {
  ModelHandle loaded = load(path);
  std::lock_guard lock(mu_);
  models_[path] = loaded;
  update_gauge_locked();
  return loaded;
}

void ModelRegistry::erase(const std::string& path) {
  std::lock_guard lock(mu_);
  models_.erase(path);
  update_gauge_locked();
}

std::size_t ModelRegistry::size() const {
  std::lock_guard lock(mu_);
  return models_.size() + slots_.size();
}

ModelRegistry::ModelHandle ModelRegistry::open(const std::string& name,
                                               const std::string& path) {
  AP_REQUIRE(!name.empty(), "model slot name must not be empty");
  {
    std::lock_guard lock(mu_);
    if (const auto it = slots_.find(name); it != slots_.end()) {
      AP_REQUIRE(it->second.path == path,
                 "model slot '" + name + "' already bound to " +
                     (it->second.path.empty() ? "an in-memory model"
                                              : it->second.path));
      return it->second.model;
    }
  }
  // Same convention as get(): the disk read happens outside mu_, the
  // first insert wins, and a throwing load never publishes the slot.
  ModelHandle loaded = load(path);
  std::lock_guard lock(mu_);
  const auto [it, inserted] = slots_.emplace(name, Slot{path, {}});
  if (inserted) {
    it->second.model = std::move(loaded);
  } else {
    AP_REQUIRE(it->second.path == path,
               "model slot '" + name + "' already bound to " +
                   (it->second.path.empty() ? "an in-memory model"
                                            : it->second.path));
  }
  update_gauge_locked();
  return it->second.model;
}

ModelRegistry::ModelHandle ModelRegistry::publish(const std::string& name,
                                                  ModelHandle model) {
  AP_REQUIRE(!name.empty(), "model slot name must not be empty");
  AP_REQUIRE(model != nullptr, "cannot publish a null model");
  std::lock_guard lock(mu_);
  const auto [it, inserted] = slots_.emplace(name, Slot{"", model});
  AP_REQUIRE(inserted, "model slot '" + name + "' already exists");
  update_gauge_locked();
  return it->second.model;
}

ModelRegistry::ModelHandle ModelRegistry::named(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = slots_.find(name);
  return it == slots_.end() ? nullptr : it->second.model;
}

std::string ModelRegistry::path_of(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = slots_.find(name);
  AP_REQUIRE(it != slots_.end(), "unknown model slot: " + name);
  return it->second.path;
}

ModelRegistry::ModelHandle ModelRegistry::reload_named(
    const std::string& name) {
  std::string path;
  {
    std::lock_guard lock(mu_);
    const auto it = slots_.find(name);
    AP_REQUIRE(it != slots_.end(), "unknown model slot: " + name);
    AP_REQUIRE(!it->second.path.empty(),
               "model slot '" + name + "' has no backing archive");
    path = it->second.path;
  }
  // Disk read outside mu_; a throwing load leaves the old snapshot
  // published (the caller sees the exception, clients see no change).
  ModelHandle loaded = load(path);
  std::lock_guard lock(mu_);
  const auto it = slots_.find(name);
  AP_REQUIRE(it != slots_.end(), "unknown model slot: " + name);
  it->second.model = loaded;
  update_gauge_locked();
  return loaded;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) out.push_back(name);
  return out;
}

}  // namespace autopower::serve
