#include "serve/registry.hpp"

#include <utility>

namespace autopower::serve {

ModelRegistry::ModelHandle ModelRegistry::load(const std::string& path) {
  auto model = std::make_shared<core::AutoPowerModel>();
  model->load_from_file(path);
  return model;  // converts to shared_ptr<const AutoPowerModel>
}

ModelRegistry::ModelHandle ModelRegistry::get(const std::string& path) {
  {
    std::lock_guard lock(mu_);
    if (const auto it = models_.find(path); it != models_.end()) {
      return it->second;
    }
  }
  // Load outside the lock: archive reads are slow and must not block
  // concurrent lookups of already-published models.  If two threads race
  // on the same cold path the first insert wins and both see one snapshot.
  ModelHandle loaded = load(path);
  std::lock_guard lock(mu_);
  const auto [it, inserted] = models_.emplace(path, std::move(loaded));
  (void)inserted;
  return it->second;
}

ModelRegistry::ModelHandle ModelRegistry::reload(const std::string& path) {
  ModelHandle loaded = load(path);
  std::lock_guard lock(mu_);
  models_[path] = loaded;
  return loaded;
}

void ModelRegistry::erase(const std::string& path) {
  std::lock_guard lock(mu_);
  models_.erase(path);
}

std::size_t ModelRegistry::size() const {
  std::lock_guard lock(mu_);
  return models_.size();
}

}  // namespace autopower::serve
