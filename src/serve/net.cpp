#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/fault.hpp"

namespace autopower::serve::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("net: socket");
  sock_ = Socket(fd);
  const int one = 1;
  // SO_REUSEADDR so a restarted daemon can rebind through TIME_WAIT.
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    fail_errno("net: bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) fail_errno("net: listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail_errno("net: getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept(int wake_fd) {
  for (;;) {
    pollfd fds[2] = {{sock_.fd(), POLLIN, 0}, {wake_fd, POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;  // a signal woke us; re-poll
      fail_errno("net: poll");
    }
    if ((fds[1].revents & (POLLIN | POLLHUP)) != 0) return Socket{};
    if ((fds[0].revents & POLLIN) == 0) continue;
    // Stands in for a transient accept(2) failure (EMFILE, handshake
    // aborted under load): the daemon logs it and keeps accepting.
    AUTOPOWER_FAULT_POINT("serve.net.accept");
    const int client = ::accept(sock_.fd(), nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      fail_errno("net: accept");
    }
    const int one = 1;
    // Responses are single short lines; never wait for a full segment.
    (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(client);
  }
}

void Listener::close() noexcept { sock_.close(); }

bool LineReader::next_line(std::string& line) {
  for (;;) {
    const auto nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.assign(buffer_, pos_, nl - pos_);
      pos_ = nl + 1;
      // Compact once the consumed prefix dominates the buffer.
      if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buffer_.size() - pos_ > max_line_) {
      throw NetError("net: request line exceeds " +
                     std::to_string(max_line_) + " bytes");
    }
    if (eof_) {
      if (pos_ >= buffer_.size()) return false;
      line.assign(buffer_, pos_, buffer_.size() - pos_);
      pos_ = buffer_.size();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    // Stands in for the connection dying mid-line (reset, torn read).
    AUTOPOWER_FAULT_POINT("serve.net.read");
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("net: read");
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void write_line(int fd, std::string_view line) {
  // Stands in for the peer vanishing mid-response (reset, short write
  // that never completes).
  AUTOPOWER_FAULT_POINT("serve.net.write");
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as NetError, not SIGPIPE.
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("net: write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Socket connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("net: socket");
  Socket sock(fd);
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    fail_errno("net: connect 127.0.0.1:" + std::to_string(port));
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace autopower::serve::net
