// Model registry — loads trained `.ap` archives once and hands out
// immutable, thread-safe model snapshots.
//
// A loaded AutoPowerModel is cached behind a
// `std::shared_ptr<const AutoPowerModel>`: the registry never mutates a
// published model, and `AutoPowerModel::predict*` const methods are safe
// for concurrent use (see src/core/autopower.hpp), so any number of
// serving threads may share one snapshot.  reload() re-reads the archive
// and atomically swaps the published snapshot; callers that grabbed the
// old snapshot keep a consistent model until they drop their handle
// (read-copy-update by shared_ptr refcount).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/autopower.hpp"

namespace autopower::serve {

class ModelRegistry {
 public:
  using ModelHandle = std::shared_ptr<const core::AutoPowerModel>;

  /// Returns the model archived at `path`, loading it on first use.
  /// Throws util::Error if the file is missing or malformed.
  [[nodiscard]] ModelHandle get(const std::string& path);

  /// Re-reads the archive and replaces the cached snapshot.
  ModelHandle reload(const std::string& path);

  /// Drops the cached snapshot for `path` (no-op if absent).  Handles
  /// already given out stay valid.
  void erase(const std::string& path);

  [[nodiscard]] std::size_t size() const;

 private:
  static ModelHandle load(const std::string& path);

  mutable std::mutex mu_;
  std::map<std::string, ModelHandle> models_;
};

}  // namespace autopower::serve
