// Model registry — loads trained `.ap` archives once and hands out
// immutable, thread-safe model snapshots.
//
// A loaded AutoPowerModel is cached behind a
// `std::shared_ptr<const AutoPowerModel>`: the registry never mutates a
// published model, and `AutoPowerModel::predict*` const methods are safe
// for concurrent use (see src/core/autopower.hpp), so any number of
// serving threads may share one snapshot.  reload() re-reads the archive
// and atomically swaps the published snapshot; callers that grabbed the
// old snapshot keep a consistent model until they drop their handle
// (read-copy-update by shared_ptr refcount).
//
// Two key spaces coexist:
//   * path-keyed (`get` / `reload` / `erase`) — the original cache used by
//     one-shot commands (`batch`, `sweep`): dedupes loads of one archive.
//   * named slots (`open` / `publish` / `named` / `reload_named`) — the
//     daemon's model zoo: a stable routing name bound to a backing archive
//     path, so `--model name=path` slots can be re-read and hot-swapped by
//     name while clients keep routing to the same `"model"` token.
//
// Locking convention (shared with StructuralSimCache and EvalCache): disk
// I/O always happens OUTSIDE `mu_` — a slow archive read must not block
// lookups of already-published models — and a cold-path race is resolved
// by first-insert-wins publication, so a load that throws can never
// publish a slot.  The gauge `serve.registry.models` tracks the number of
// published snapshots across both key spaces.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/autopower.hpp"

namespace autopower::serve {

class ModelRegistry {
 public:
  using ModelHandle = std::shared_ptr<const core::AutoPowerModel>;

  /// Returns the model archived at `path`, loading it on first use.
  /// Throws util::Error if the file is missing or malformed.
  [[nodiscard]] ModelHandle get(const std::string& path);

  /// Re-reads the archive and replaces the cached snapshot.
  ModelHandle reload(const std::string& path);

  /// Drops the cached snapshot for `path` (no-op if absent).  Handles
  /// already given out stay valid.
  void erase(const std::string& path);

  /// Published snapshots across both key spaces.
  [[nodiscard]] std::size_t size() const;

  /// Binds the slot `name` to the archive at `path` and publishes its
  /// model (loaded outside the mutex; on a cold-path race the first
  /// insert wins).  Re-opening an existing name with the same path
  /// returns the already-published handle; a different path throws.
  ModelHandle open(const std::string& name, const std::string& path);

  /// Publishes an already-loaded model under `name` with no backing
  /// archive.  reload_named() on such a slot throws — there is nothing
  /// on disk to re-read.
  ModelHandle publish(const std::string& name, ModelHandle model);

  /// The slot's published snapshot, or nullptr for an unknown name.
  [[nodiscard]] ModelHandle named(const std::string& name) const;

  /// Backing archive path of a named slot; empty for publish()ed slots.
  /// Throws for an unknown name.
  [[nodiscard]] std::string path_of(const std::string& name) const;

  /// Re-reads the slot's backing archive and atomically swaps the
  /// published snapshot (the load happens outside the mutex; a failed
  /// load leaves the old snapshot published).  Returns the new handle.
  ModelHandle reload_named(const std::string& name);

  /// Slot names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Slot {
    std::string path;  ///< backing archive; empty for publish()ed slots
    ModelHandle model;
  };

  static ModelHandle load(const std::string& path);
  void update_gauge_locked() const;

  mutable std::mutex mu_;
  std::map<std::string, ModelHandle> models_;  ///< path-keyed cache
  std::map<std::string, Slot> slots_;          ///< named slots
};

}  // namespace autopower::serve
