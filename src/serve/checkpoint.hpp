// Crash-safe sweep checkpointing: append-only, crc-guarded JSONL.
//
// A streaming sweep (serve/sweep.hpp) appends one line per *finished*
// configuration so a killed run can resume without repeating work.  The
// file format is:
//
//   line 1:  {"autopower_sweep_checkpoint":1,"fingerprint":"<16 hex>",
//             "configs":<grid size>,"workloads":<count>}
//   line 2+: {"i":<grid index>,"crc":"<8 hex>","row":{<row body>}}
//
// The fingerprint hashes the sweep's IDENTITY — base config, grid axes
// (parameter names and value lists) and workload list — so a checkpoint
// can only be replayed into the sweep that wrote it.  Ranking knobs
// (metric, --top) and execution knobs (threads, memory budget) are
// deliberately excluded: they don't change what a row contains, so a
// resume may re-rank under a different metric or thread count and still
// reproduce the by-then-uninterrupted report byte for byte.
//
// The crc (IEEE CRC-32, reflected) covers the exact bytes of the `row`
// object, which are also the exact bytes append_row_json re-emits for a
// replayed row — numbers round-trip through serve::json_number — so
// "crc valid" means "replaying this line reproduces the original bytes".
//
// Torn-line policy (what a SIGKILL can leave behind):
//   * A final line with NO trailing newline is a torn tail: the write
//     was cut mid-line.  It is dropped, the file is truncated back to
//     the last intact line on resume, and the config is re-evaluated.
//     Losing at most one fsync batch of rows is the designed cost of a
//     kill; re-evaluation is deterministic, so the report is unaffected.
//   * A newline-TERMINATED line that fails crc or does not parse is NOT
//     torn — it is corruption (bit rot, truncation in the middle, a
//     concurrent writer) and resuming would silently drop completed
//     work or replay garbage.  load_checkpoint throws util::Error; the
//     CLI surfaces it and exits non-zero.  A checkpoint is never
//     silently skipped past.
//
// Durability: rows are buffered and flushed in batches (count- and
// byte-triggered) with fsync, bounding both the syscall rate at
// million-row scale and the worst-case loss window.  The writer is
// internally locked — sweep workers append concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/sweep.hpp"

namespace autopower::serve {

/// IEEE CRC-32 (reflected, init/xorout 0xffffffff) over `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// The sweep-identity fingerprint recorded in a checkpoint header:
/// 16 lowercase hex digits over base + axes + workloads + the model's
/// archive fingerprint.  Including the model identity means resuming a
/// sweep with a retrained archive refuses with a fingerprint mismatch
/// instead of silently splicing the old model's rows into the new
/// model's report.
[[nodiscard]] std::string sweep_fingerprint(
    const std::string& base, std::span<const SweepAxis> axes,
    std::span<const std::string> workloads,
    std::string_view model_fingerprint);

/// What load_checkpoint recovered.
struct CheckpointReplay {
  bool found = false;            ///< file existed (absent = fresh start)
  std::vector<SweepRow> rows;    ///< replayed rows, `index` set, unranked
  std::uint64_t valid_bytes = 0; ///< prefix ending at the last intact line
};

/// Replays `path`.  Returns found=false when the file does not exist.
/// Throws util::Error on a header/fingerprint mismatch, a corrupt
/// newline-terminated line (crc, parse, duplicate or out-of-range
/// index), or an I/O error; drops a torn (newline-less) tail per the
/// policy above.  `fingerprint`, `configs` and `workloads` are the
/// resuming sweep's own identity, cross-checked against the header.
[[nodiscard]] CheckpointReplay load_checkpoint(
    const std::string& path, std::string_view fingerprint,
    std::size_t configs, std::size_t workloads);

/// Append-only checkpoint writer.  Thread-safe: sweep workers call
/// append() concurrently.  Failures (open, write, fsync — or the
/// "serve.checkpoint.write" fault site) throw util::Error; the sweep
/// treats a checkpoint it cannot write as fatal rather than silently
/// continuing without crash safety.
class CheckpointWriter {
 public:
  /// Fresh start: truncates `path` and writes the header line.
  /// Resume: pass load_checkpoint's `valid_bytes` as `keep_bytes` — the
  /// file is truncated back to the intact prefix (dropping a torn tail)
  /// and appended to.
  CheckpointWriter(const std::string& path, std::string_view fingerprint,
                   std::size_t configs, std::size_t workloads,
                   std::uint64_t keep_bytes = 0);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Records config `index` as finished.  `row_json` is the exact
  /// append_row_json body; the line's crc covers `{row_json}`.
  void append(std::size_t index, std::string_view row_json);

  /// Writes buffered lines and fsyncs.
  void flush();

  /// flush() + close(2); further appends are invalid.  Called by the
  /// destructor, but callers that must observe failure call it directly
  /// (the destructor swallows errors).
  void close();

 private:
  void write_all_locked(const char* data, std::size_t size);
  void flush_locked();

  std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  std::string buffer_;
  std::size_t buffered_rows_ = 0;
};

}  // namespace autopower::serve
