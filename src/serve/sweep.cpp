#include "serve/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <exception>
#include <limits>
#include <ostream>
#include <thread>
#include <utility>

#include "arch/events.hpp"
#include "serve/checkpoint.hpp"
#include "serve/jsonl.hpp"
#include "sim/perfsim.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/parse.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

namespace autopower::serve {

std::string_view to_string(SweepMetric metric) noexcept {
  switch (metric) {
    case SweepMetric::kIpcPerWatt: return "ipc_per_watt";
    case SweepMetric::kIpc: return "ipc";
    case SweepMetric::kPower: return "power";
  }
  return "ipc_per_watt";
}

SweepMetric sweep_metric_from_string(std::string_view text) {
  if (text == "ipc_per_watt") return SweepMetric::kIpcPerWatt;
  if (text == "ipc") return SweepMetric::kIpc;
  if (text == "power") return SweepMetric::kPower;
  throw util::InvalidArgument("unknown sweep metric: " + std::string(text) +
                              " (expected ipc_per_watt | ipc | power)");
}

namespace {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  while (!text.empty()) {
    const std::size_t pos = text.find(sep);
    out.push_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return out;
}

void append_int(std::string& out, long long value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

}  // namespace

std::vector<SweepAxis> parse_grid(std::string_view spec) {
  AP_REQUIRE(!spec.empty(), "empty grid spec");
  std::vector<SweepAxis> axes;
  for (std::string_view axis_text : split(spec, ';')) {
    AP_REQUIRE(!axis_text.empty(), "empty axis in grid spec");
    const std::size_t eq = axis_text.find('=');
    AP_REQUIRE(eq != std::string_view::npos,
               "grid axis needs Param=v1,v2,...: " + std::string(axis_text));
    SweepAxis axis;
    axis.param = arch::hw_param_by_name(axis_text.substr(0, eq));
    for (const SweepAxis& existing : axes) {
      AP_REQUIRE(existing.param != axis.param,
                 "duplicate grid axis: " +
                     std::string(arch::hw_param_name(axis.param)));
    }
    for (std::string_view token : split(axis_text.substr(eq + 1), ',')) {
      axis.values.push_back(
          util::parse_int(token, "grid value", 1, 99999999));
    }
    AP_REQUIRE(!axis.values.empty(), "grid axis has no values: " +
                                         std::string(axis_text));
    axes.push_back(std::move(axis));
  }
  return axes;
}

GridCursor::GridCursor(const arch::HardwareConfig& base,
                       std::span<const SweepAxis> axes)
    : base_name_(base.name()), axes_(axes.begin(), axes.end()) {
  AP_REQUIRE(axes_.size() <= arch::kNumHwParams,
             "grid has more axes than hardware parameters");
  for (arch::HwParam p : arch::all_hw_params()) {
    base_values_[static_cast<std::size_t>(p)] = base.value(p);
  }
  for (const SweepAxis& axis : axes_) {
    AP_REQUIRE(!axis.values.empty(), "grid axis has no values");
    AP_REQUIRE(
        total_ <= std::numeric_limits<std::size_t>::max() /
                      axis.values.size(),
        "grid size overflows std::size_t");
    total_ *= axis.values.size();
  }
}

void GridCursor::values_at(std::size_t index,
                           std::array<int, arch::kNumHwParams>& values) const {
  values = base_values_;
  // Mixed-radix decode, last axis fastest (the first axis varies
  // slowest), matching the materialised expansion's enumeration order.
  std::size_t n = index;
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const SweepAxis& axis = axes_[a];
    values[static_cast<std::size_t>(axis.param)] =
        axis.values[n % axis.values.size()];
    n /= axis.values.size();
  }
}

void GridCursor::format_name(std::size_t index, std::string& name) const {
  // Axis digits in forward (name) order; ctor capped axes at
  // kNumHwParams so a stack array suffices.
  std::array<std::size_t, arch::kNumHwParams> digit{};
  std::size_t n = index;
  for (std::size_t a = axes_.size(); a-- > 0;) {
    digit[a] = n % axes_[a].values.size();
    n /= axes_[a].values.size();
  }
  name.clear();
  name += base_name_;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    name += '+';
    name += arch::hw_param_name(axes_[a].param);
    name += '=';
    append_int(name, axes_[a].values[digit[a]]);
  }
}

arch::HardwareConfig GridCursor::config_at(std::size_t index) const {
  std::array<int, arch::kNumHwParams> values{};
  values_at(index, values);
  std::string name;
  format_name(index, name);
  return arch::HardwareConfig(std::move(name), values);
}

std::vector<arch::HardwareConfig> expand_grid(
    const arch::HardwareConfig& base, std::span<const SweepAxis> axes) {
  const GridCursor cursor(base, axes);
  AP_REQUIRE(cursor.size() <= 1'000'000,
             "grid expands to more than 1e6 configurations");
  std::vector<arch::HardwareConfig> out;
  out.reserve(cursor.size());
  for (std::size_t n = 0; n < cursor.size(); ++n) {
    out.push_back(cursor.config_at(n));
  }
  return out;
}

namespace {

SweepCell evaluate_cell(const core::AutoPowerModel& model,
                        const sim::PerfSimulator& sim,
                        const arch::HardwareConfig& cfg,
                        const workload::WorkloadProfile& profile,
                        const workload::ProgramFeatures& program) {
  SweepCell cell;
  cell.workload = profile.name;
  try {
    core::EvalContext ctx;
    ctx.cfg = &cfg;
    ctx.workload = profile.name;
    ctx.program = program;
    ctx.events = sim.simulate(cfg, profile);
    cell.total_mw = model.predict_total(ctx);
    cell.ipc = ctx.events.rate(arch::EventKind::kInstructions);
    cell.ok = true;
  } catch (const std::exception& e) {
    cell.ok = false;
    cell.error = e.what();
  }
  return cell;
}

/// Fills one named config's cells and summary means.  Shared by the
/// streaming sweep workers and evaluate_configs so both paths produce
/// bit-identical rows for the same configuration.
void fill_row(const core::AutoPowerModel& model,
              const sim::PerfSimulator& sim, SweepRow& row,
              const std::vector<const workload::WorkloadProfile*>& profiles,
              const std::vector<workload::ProgramFeatures>& programs,
              util::Counter& m_cells, util::Counter& m_failed,
              util::Histogram& m_cell_latency) {
  const std::size_t n_workloads = profiles.size();
  row.cells.clear();
  row.cells.reserve(n_workloads);
  double mw = 0.0, ipc = 0.0;
  std::size_t ok = 0;
  for (std::size_t j = 0; j < n_workloads; ++j) {
    SweepCell cell;
    {
      util::ScopedTimer timer(m_cell_latency);
      cell = evaluate_cell(model, sim, row.config, *profiles[j],
                           programs[j]);
    }
    m_cells.inc();
    if (cell.ok) {
      mw += cell.total_mw;
      ipc += cell.ipc;
      ++ok;
    } else {
      m_failed.inc();
    }
    row.cells.push_back(std::move(cell));
  }
  row.failed = n_workloads - ok;
  row.mean_total_mw = 0.0;
  row.mean_ipc = 0.0;
  row.ipc_per_watt = 0.0;
  if (ok > 0) {
    row.mean_total_mw = mw / static_cast<double>(ok);
    row.mean_ipc = ipc / static_cast<double>(ok);
    if (row.mean_total_mw > 0.0) {
      row.ipc_per_watt = row.mean_ipc / (row.mean_total_mw / 1000.0);
    }
  }
}

/// Metric under which a row sorts; larger is always better (power is
/// negated).  Rows with no successful cell sort last.
double row_score(const SweepRow& row, SweepMetric metric) {
  if (row.failed == row.cells.size()) {
    return -std::numeric_limits<double>::infinity();
  }
  switch (metric) {
    case SweepMetric::kIpcPerWatt: return row.ipc_per_watt;
    case SweepMetric::kIpc: return row.mean_ipc;
    case SweepMetric::kPower: return -row.mean_total_mw;
  }
  return row.ipc_per_watt;
}

/// The report's total order: metric score descending, grid index
/// ascending as the deterministic tie-break — equivalent to the former
/// stable_sort over grid-ordered rows, but independent of which worker
/// produced a row and in which steal order.
bool row_better(const SweepRow& a, const SweepRow& b, SweepMetric metric) {
  const double sa = row_score(a, metric);
  const double sb = row_score(b, metric);
  if (sa != sb) return sa > sb;
  return a.index < b.index;
}

/// Bounded best-K collector: a min-heap (front = worst kept row) under
/// row_better, so a streaming sweep holds K rows per worker instead of
/// the whole grid.  k == 0 keeps everything (report-all mode).
class TopKRanker {
 public:
  TopKRanker(std::size_t k, SweepMetric metric) : k_(k), metric_(metric) {}

  void offer(SweepRow&& row) {
    if (k_ == 0) {
      rows_.push_back(std::move(row));
      return;
    }
    const auto worst_first = [this](const SweepRow& a, const SweepRow& b) {
      return row_better(a, b, metric_);
    };
    if (rows_.size() < k_) {
      rows_.push_back(std::move(row));
      std::push_heap(rows_.begin(), rows_.end(), worst_first);
      return;
    }
    if (!row_better(row, rows_.front(), metric_)) return;
    std::pop_heap(rows_.begin(), rows_.end(), worst_first);
    rows_.back() = std::move(row);
    std::push_heap(rows_.begin(), rows_.end(), worst_first);
  }

  /// Kept rows, heap-ordered (callers sort the merged result).
  std::vector<SweepRow>& rows() { return rows_; }

 private:
  std::size_t k_;
  SweepMetric metric_;
  std::vector<SweepRow> rows_;
};

/// One worker's contiguous slice of grid indices.  `next` is the claim
/// cursor (CAS'd forward one chunk at a time — by the owner or by a
/// thief); cache-line aligned so claims on different shards never false
/// share.
struct alignas(64) WorkerShard {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

/// Claims one chunk [begin, end) from `shard`; false when drained.  The
/// CAS (rather than fetch_add) means a claim never overshoots `end`, so
/// thieves and owner agree exactly on who evaluates what.
bool claim_chunk(WorkerShard& shard, std::size_t chunk, std::size_t& begin,
                 std::size_t& end) {
  std::size_t cur = shard.next.load(std::memory_order_relaxed);
  while (cur < shard.end) {
    const std::size_t hi = std::min(cur + chunk, shard.end);
    if (shard.next.compare_exchange_weak(cur, hi,
                                         std::memory_order_relaxed)) {
      begin = cur;
      end = hi;
      return true;
    }
  }
  return false;
}

}  // namespace

SweepReport run_sweep(const core::AutoPowerModel& model, const SweepSpec& spec,
                      std::shared_ptr<util::StructuralSimCache> structural) {
  AP_REQUIRE(!spec.workloads.empty(), "sweep needs at least one workload");
  AP_REQUIRE(!spec.resume || !spec.checkpoint.empty(),
             "sweep resume needs a checkpoint path");
  const arch::HardwareConfig& base = arch::boom_config(spec.base);
  const GridCursor cursor(base, spec.axes);
  const std::size_t n_configs = cursor.size();
  const std::size_t n_workloads = spec.workloads.size();

  // Resolve workloads up front: an unknown name is a spec error (it would
  // fail every cell), unlike a bad grid point which fails alone.
  std::vector<const workload::WorkloadProfile*> profiles;
  std::vector<workload::ProgramFeatures> programs;
  profiles.reserve(n_workloads);
  for (const std::string& name : spec.workloads) {
    profiles.push_back(&workload::workload_by_name(name));
    programs.push_back(workload::program_features(*profiles.back()));
  }

  if (structural == nullptr) {
    // --memory-budget sizes the shared L2 tier; entries are ~64 B
    // apiece, with a floor so tiny budgets still cache something.
    std::size_t max_entries = 0;
    if (spec.memory_budget > 0) {
      max_entries = std::max<std::size_t>(
          1024, static_cast<std::size_t>(
                    spec.memory_budget /
                    util::StructuralSimCache::kApproxEntryBytes));
    }
    structural =
        std::make_shared<util::StructuralSimCache>(/*shards_per_sub=*/8,
                                                   max_entries);
  }
  const util::StructuralSimCache::Stats before = structural->stats();

  // Checkpoint replay + writer.  Replayed indices are marked done before
  // any worker starts, so `done` is read-only while they run.
  std::vector<SweepRow> resumed_rows;
  std::vector<std::uint8_t> done;
  std::unique_ptr<CheckpointWriter> checkpoint;
  if (!spec.checkpoint.empty()) {
    const std::string fingerprint =
        sweep_fingerprint(spec.base, spec.axes, spec.workloads,
                          model.fingerprint());
    std::uint64_t keep_bytes = 0;
    if (spec.resume) {
      CheckpointReplay replay = load_checkpoint(spec.checkpoint, fingerprint,
                                                n_configs, n_workloads);
      keep_bytes = replay.valid_bytes;
      resumed_rows = std::move(replay.rows);
      if (!resumed_rows.empty()) {
        done.assign(n_configs, 0);
        for (const SweepRow& row : resumed_rows) done[row.index] = 1;
      }
    }
    checkpoint = std::make_unique<CheckpointWriter>(
        spec.checkpoint, fingerprint, n_configs, n_workloads, keep_bytes);
  }

  // Process-wide instruments; the cells counter is what the CLI's
  // --progress monitor polls while the sweep runs.
  auto& registry = util::MetricsRegistry::global();
  auto& m_cells = registry.counter("serve.sweep.cells");
  auto& m_failed = registry.counter("serve.sweep.cells_failed");
  auto& m_cell_latency = registry.histogram("serve.sweep.cell_latency_ns");
  auto& m_chunks = registry.counter("serve.sweep.chunks");
  auto& m_stolen = registry.counter("serve.sweep.chunks_stolen");
  const auto sweep_start = std::chrono::steady_clock::now();

  // Worker count: requested threads, clamped to the host (floor of two
  // when threading was asked for, so threaded semantics survive 1-core
  // hosts — the serve/train convention) and to the config count.
  std::size_t requested = spec.threads == 0 ? 1 : spec.threads;
  if (requested > 1) {
    requested = std::min<std::size_t>(
        requested,
        std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  }
  const std::size_t workers =
      std::min(requested, std::max<std::size_t>(n_configs, 1));

  // Contiguous per-worker shards + per-chunk work stealing: a worker
  // drains its own shard in chunks, then scans the others and steals
  // chunks from whatever is left, so one expensive region of the grid
  // cannot idle the rest of the pool.
  const auto shards = std::make_unique<WorkerShard[]>(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    shards[w].next.store(n_configs * w / workers,
                         std::memory_order_relaxed);
    shards[w].end = n_configs * (w + 1) / workers;
  }
  const std::size_t chunk =
      std::clamp<std::size_t>(n_configs / (workers * 8), 1, 1024);

  std::vector<TopKRanker> rankers(workers,
                                  TopKRanker(spec.top, spec.metric));

  const auto worker_loop = [&](std::size_t w) {
    sim::PerfSimulator sim(sim::SimOptions{}, structural);
    TopKRanker& ranker = rankers[w];
    std::string name_scratch;
    std::string json_scratch;
    std::array<int, arch::kNumHwParams> values_scratch{};

    const auto evaluate_config = [&](std::size_t index) {
      if (!done.empty() && done[index]) return;  // replayed from checkpoint
      SweepRow row;
      row.index = index;
      cursor.values_at(index, values_scratch);
      cursor.format_name(index, name_scratch);
      row.config = arch::HardwareConfig(name_scratch, values_scratch);
      fill_row(model, sim, row, profiles, programs, m_cells, m_failed,
               m_cell_latency);
      if (checkpoint != nullptr) {
        json_scratch.clear();
        append_row_json(json_scratch, row);
        checkpoint->append(index, json_scratch);
      }
      ranker.offer(std::move(row));
    };

    // Own shard first, then one pass over the victims: a shard's cursor
    // only moves forward, so a shard found drained stays drained.
    for (std::size_t off = 0; off < workers; ++off) {
      WorkerShard& shard = shards[(w + off) % workers];
      std::size_t begin = 0, end = 0;
      while (claim_chunk(shard, chunk, begin, end)) {
        m_chunks.inc();
        if (off != 0) m_stolen.inc();
        for (std::size_t i = begin; i < end; ++i) evaluate_config(i);
      }
    }
  };

  if (workers <= 1) {
    worker_loop(0);
  } else {
    // wait_idle(), not an in-task latch: a worker task lost to an
    // exception (or never launched) must not strand the sweep forever —
    // the pool's own idle barrier survives task failures, and siblings
    // steal the remaining chunks off the shared shards.
    util::ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([&worker_loop, w] { worker_loop(w); });
    }
    pool.wait_idle();
    const util::ThreadPool::TaskFailures failures = pool.task_failures();
    if (failures.count > 0) {
      // A lost worker means unevaluated configs and possibly unwritten
      // checkpoint rows; the sweep is incomplete, so fail loudly rather
      // than rank a partial grid.
      throw util::Error("sweep worker failed: " + failures.first_error);
    }
  }
  if (checkpoint != nullptr) checkpoint->close();

  SweepReport report;
  report.configs = n_configs;
  report.evaluations = n_configs * n_workloads;
  report.resumed = resumed_rows.size();
  {
    const util::StructuralSimCache::Stats after = structural->stats();
    report.structural = {after.hits - before.hits,
                         after.misses - before.misses,
                         after.evictions - before.evictions};
  }
  if (util::MetricsRegistry::enabled()) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    registry.gauge("serve.sweep.cells_per_sec")
        .set(elapsed > 0.0 ? static_cast<double>(report.evaluations) /
                                 elapsed
                           : 0.0);
    structural->export_metrics(registry);
  }

  // Merge: replayed rows and every worker's kept rows through one final
  // bounded ranker, then a full sort of the K (or all) survivors.  The
  // (score, grid index) order is a total order over distinct indices, so
  // the outcome is independent of thread count and steal schedule.
  TopKRanker merged(spec.top, spec.metric);
  for (SweepRow& row : resumed_rows) merged.offer(std::move(row));
  resumed_rows.clear();
  for (TopKRanker& ranker : rankers) {
    for (SweepRow& row : ranker.rows()) merged.offer(std::move(row));
  }
  report.rows = std::move(merged.rows());
  std::sort(report.rows.begin(), report.rows.end(),
            [&spec](const SweepRow& a, const SweepRow& b) {
              return row_better(a, b, spec.metric);
            });
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    report.rows[i].rank = i + 1;
  }
  return report;
}

std::vector<SweepRow> evaluate_configs(
    const core::AutoPowerModel& model,
    std::span<const arch::HardwareConfig> configs,
    std::span<const std::string> workloads, std::size_t threads,
    std::shared_ptr<util::StructuralSimCache> structural) {
  AP_REQUIRE(!workloads.empty(),
             "evaluate_configs needs at least one workload");
  std::vector<const workload::WorkloadProfile*> profiles;
  std::vector<workload::ProgramFeatures> programs;
  profiles.reserve(workloads.size());
  for (const std::string& name : workloads) {
    profiles.push_back(&workload::workload_by_name(name));
    programs.push_back(workload::program_features(*profiles.back()));
  }
  if (structural == nullptr) {
    structural =
        std::make_shared<util::StructuralSimCache>(/*shards_per_sub=*/8,
                                                   /*max_entries=*/0);
  }
  auto& registry = util::MetricsRegistry::global();
  auto& m_cells = registry.counter("serve.sweep.cells");
  auto& m_failed = registry.counter("serve.sweep.cells_failed");
  auto& m_cell_latency = registry.histogram("serve.sweep.cell_latency_ns");

  std::vector<SweepRow> rows(configs.size());
  if (configs.empty()) return rows;

  // Same worker-count clamp as run_sweep (floor of two when threading
  // was requested, so threaded semantics survive 1-core hosts).
  std::size_t requested = threads == 0 ? 1 : threads;
  if (requested > 1) {
    requested = std::min<std::size_t>(
        requested,
        std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  }
  const std::size_t workers = std::min(requested, configs.size());

  // Results land at their input index, so the output order (and every
  // byte of it) is independent of the claim schedule.
  std::atomic<std::size_t> next{0};
  const auto worker_loop = [&] {
    sim::PerfSimulator sim(sim::SimOptions{}, structural);
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < configs.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      SweepRow& row = rows[i];
      row.index = i;
      row.config = configs[i];
      fill_row(model, sim, row, profiles, programs, m_cells, m_failed,
               m_cell_latency);
    }
  };
  if (workers <= 1) {
    worker_loop();
  } else {
    util::ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.submit(worker_loop);
    pool.wait_idle();
    const util::ThreadPool::TaskFailures failures = pool.task_failures();
    if (failures.count > 0) {
      throw util::Error("evaluate_configs worker failed: " +
                        failures.first_error);
    }
  }
  return rows;
}

void append_row_json(std::string& out, const SweepRow& row) {
  out += "\"config\":\"";
  out += json_escape(row.config.name());
  out += "\",\"params\":{";
  bool first = true;
  for (arch::HwParam p : arch::all_hw_params()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += arch::hw_param_name(p);
    out += "\":";
    append_int(out, row.config.value(p));
  }
  out += "},\"mean_total_mw\":";
  out += json_number(row.mean_total_mw);
  out += ",\"mean_ipc\":";
  out += json_number(row.mean_ipc);
  out += ",\"ipc_per_watt\":";
  out += json_number(row.ipc_per_watt);
  out += ",\"failed\":";
  append_int(out, static_cast<long long>(row.failed));
  out += ",\"cells\":[";
  for (std::size_t i = 0; i < row.cells.size(); ++i) {
    const SweepCell& cell = row.cells[i];
    if (i > 0) out += ',';
    out += "{\"workload\":\"";
    out += json_escape(cell.workload);
    out += "\",\"ok\":";
    out += cell.ok ? "true" : "false";
    if (cell.ok) {
      out += ",\"total_mw\":";
      out += json_number(cell.total_mw);
      out += ",\"ipc\":";
      out += json_number(cell.ipc);
    } else {
      out += ",\"error\":\"";
      out += json_escape(cell.error);
      out += '"';
    }
    out += '}';
  }
  out += ']';
}

void write_sweep_report(std::ostream& out, const SweepReport& report) {
  std::string line;
  for (const SweepRow& row : report.rows) {
    // Stream-flavoured fault: latches badbit like a full disk, caught by
    // the caller's flush_and_check — a torn report must exit non-zero.
    AUTOPOWER_FAULT_STREAM("serve.report.write_row", out);
    line.clear();
    line += "{\"rank\":";
    append_int(line, static_cast<long long>(row.rank));
    line += ',';
    append_row_json(line, row);
    line += "}\n";
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
}

}  // namespace autopower::serve
