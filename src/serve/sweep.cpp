#include "serve/sweep.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <ostream>
#include <utility>

#include "arch/events.hpp"
#include "serve/jsonl.hpp"
#include "sim/perfsim.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/parse.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

namespace autopower::serve {

std::string_view to_string(SweepMetric metric) noexcept {
  switch (metric) {
    case SweepMetric::kIpcPerWatt: return "ipc_per_watt";
    case SweepMetric::kIpc: return "ipc";
    case SweepMetric::kPower: return "power";
  }
  return "ipc_per_watt";
}

SweepMetric sweep_metric_from_string(std::string_view text) {
  if (text == "ipc_per_watt") return SweepMetric::kIpcPerWatt;
  if (text == "ipc") return SweepMetric::kIpc;
  if (text == "power") return SweepMetric::kPower;
  throw util::InvalidArgument("unknown sweep metric: " + std::string(text) +
                              " (expected ipc_per_watt | ipc | power)");
}

namespace {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  while (!text.empty()) {
    const std::size_t pos = text.find(sep);
    out.push_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return out;
}

}  // namespace

std::vector<SweepAxis> parse_grid(std::string_view spec) {
  AP_REQUIRE(!spec.empty(), "empty grid spec");
  std::vector<SweepAxis> axes;
  for (std::string_view axis_text : split(spec, ';')) {
    AP_REQUIRE(!axis_text.empty(), "empty axis in grid spec");
    const std::size_t eq = axis_text.find('=');
    AP_REQUIRE(eq != std::string_view::npos,
               "grid axis needs Param=v1,v2,...: " + std::string(axis_text));
    SweepAxis axis;
    axis.param = arch::hw_param_by_name(axis_text.substr(0, eq));
    for (const SweepAxis& existing : axes) {
      AP_REQUIRE(existing.param != axis.param,
                 "duplicate grid axis: " +
                     std::string(arch::hw_param_name(axis.param)));
    }
    for (std::string_view token : split(axis_text.substr(eq + 1), ',')) {
      axis.values.push_back(
          util::parse_int(token, "grid value", 1, 99999999));
    }
    AP_REQUIRE(!axis.values.empty(), "grid axis has no values: " +
                                         std::string(axis_text));
    axes.push_back(std::move(axis));
  }
  return axes;
}

std::vector<arch::HardwareConfig> expand_grid(
    const arch::HardwareConfig& base, std::span<const SweepAxis> axes) {
  std::size_t total = 1;
  for (const SweepAxis& axis : axes) {
    AP_REQUIRE(!axis.values.empty(), "grid axis has no values");
    AP_REQUIRE(total <= 1'000'000 / axis.values.size(),
               "grid expands to more than 1e6 configurations");
    total *= axis.values.size();
  }

  std::array<int, arch::kNumHwParams> base_values{};
  for (arch::HwParam p : arch::all_hw_params()) {
    base_values[static_cast<std::size_t>(p)] = base.value(p);
  }

  std::vector<arch::HardwareConfig> out;
  out.reserve(total);
  // Mixed-radix counter over the axes; the first axis varies slowest.
  std::vector<std::size_t> index(axes.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    auto values = base_values;
    std::string name = base.name();
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const int v = axes[a].values[index[a]];
      values[static_cast<std::size_t>(axes[a].param)] = v;
      name += '+';
      name += arch::hw_param_name(axes[a].param);
      name += '=';
      name += std::to_string(v);
    }
    out.emplace_back(std::move(name), values);
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++index[a] < axes[a].values.size()) break;
      index[a] = 0;
    }
  }
  return out;
}

namespace {

SweepCell evaluate_cell(const core::AutoPowerModel& model,
                        const sim::PerfSimulator& sim,
                        const arch::HardwareConfig& cfg,
                        const workload::WorkloadProfile& profile,
                        const workload::ProgramFeatures& program) {
  SweepCell cell;
  cell.workload = profile.name;
  try {
    core::EvalContext ctx;
    ctx.cfg = &cfg;
    ctx.workload = profile.name;
    ctx.program = program;
    ctx.events = sim.simulate(cfg, profile);
    cell.total_mw = model.predict_total(ctx);
    cell.ipc = ctx.events.rate(arch::EventKind::kInstructions);
    cell.ok = true;
  } catch (const std::exception& e) {
    cell.ok = false;
    cell.error = e.what();
  }
  return cell;
}

/// Metric under which a row sorts; larger is always better (power is
/// negated).  Rows with no successful cell sort last.
double row_score(const SweepRow& row, SweepMetric metric) {
  bool any_ok = false;
  for (const SweepCell& cell : row.cells) any_ok |= cell.ok;
  if (!any_ok) return -std::numeric_limits<double>::infinity();
  switch (metric) {
    case SweepMetric::kIpcPerWatt: return row.ipc_per_watt;
    case SweepMetric::kIpc: return row.mean_ipc;
    case SweepMetric::kPower: return -row.mean_total_mw;
  }
  return row.ipc_per_watt;
}

}  // namespace

SweepReport run_sweep(const core::AutoPowerModel& model, const SweepSpec& spec,
                      std::shared_ptr<util::StructuralSimCache> structural) {
  AP_REQUIRE(!spec.workloads.empty(), "sweep needs at least one workload");
  const arch::HardwareConfig& base = arch::boom_config(spec.base);
  std::vector<arch::HardwareConfig> configs = expand_grid(base, spec.axes);

  // Resolve workloads up front: an unknown name is a spec error (it would
  // fail every cell), unlike a bad grid point which fails alone.
  std::vector<const workload::WorkloadProfile*> profiles;
  std::vector<workload::ProgramFeatures> programs;
  profiles.reserve(spec.workloads.size());
  for (const std::string& name : spec.workloads) {
    profiles.push_back(&workload::workload_by_name(name));
    programs.push_back(workload::program_features(*profiles.back()));
  }

  if (structural == nullptr) {
    structural = std::make_shared<util::StructuralSimCache>();
  }
  const util::StructuralSimCache::Stats before = structural->stats();

  const std::size_t n_workloads = spec.workloads.size();
  const std::size_t total = configs.size() * n_workloads;
  std::vector<SweepCell> cells(total);
  // Prefill: a cell abandoned by a lost worker (task launch failure)
  // reports a clean per-cell error instead of an empty one.
  for (std::size_t i = 0; i < total; ++i) {
    cells[i].workload = spec.workloads[i % n_workloads];
    cells[i].error = "cell not evaluated (worker lost)";
  }

  // Process-wide instruments; the cells counter is what the CLI's
  // --progress monitor polls while the sweep runs.
  auto& registry = util::MetricsRegistry::global();
  auto& m_cells = registry.counter("serve.sweep.cells");
  auto& m_failed = registry.counter("serve.sweep.cells_failed");
  auto& m_cell_latency = registry.histogram("serve.sweep.cell_latency_ns");
  const auto sweep_start = std::chrono::steady_clock::now();

  const auto worker_loop = [&](std::atomic<std::size_t>& next) {
    sim::PerfSimulator sim(sim::SimOptions{}, structural);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      {
        util::ScopedTimer timer(m_cell_latency);
        cells[i] = evaluate_cell(model, sim, configs[i / n_workloads],
                                 *profiles[i % n_workloads],
                                 programs[i % n_workloads]);
      }
      m_cells.inc();
      if (!cells[i].ok) m_failed.inc();
    }
  };

  const std::size_t workers =
      std::min(spec.threads == 0 ? 1 : spec.threads, std::max<std::size_t>(
                                                         total, 1));
  std::atomic<std::size_t> next{0};
  if (workers <= 1) {
    worker_loop(next);
  } else {
    // wait_idle(), not an in-task latch: a worker task lost to an
    // exception (or never launched) must not strand the sweep forever —
    // the pool's own idle barrier survives task failures, and siblings
    // drain the remaining cells off the shared counter.
    util::ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([&worker_loop, &next] { worker_loop(next); });
    }
    pool.wait_idle();
  }

  SweepReport report;
  report.configs = configs.size();
  report.evaluations = total;
  {
    const util::StructuralSimCache::Stats after = structural->stats();
    report.structural = {after.hits - before.hits,
                         after.misses - before.misses};
  }
  if (util::MetricsRegistry::enabled()) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    registry.gauge("serve.sweep.cells_per_sec")
        .set(elapsed > 0.0 ? static_cast<double>(total) / elapsed : 0.0);
    structural->export_metrics(registry);
  }

  report.rows.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    SweepRow row;
    row.config = std::move(configs[c]);
    row.cells.assign(cells.begin() + static_cast<std::ptrdiff_t>(
                                         c * n_workloads),
                     cells.begin() + static_cast<std::ptrdiff_t>(
                                         (c + 1) * n_workloads));
    double mw = 0.0, ipc = 0.0;
    std::size_t ok = 0;
    for (const SweepCell& cell : row.cells) {
      if (!cell.ok) continue;
      mw += cell.total_mw;
      ipc += cell.ipc;
      ++ok;
    }
    if (ok > 0) {
      row.mean_total_mw = mw / static_cast<double>(ok);
      row.mean_ipc = ipc / static_cast<double>(ok);
      if (row.mean_total_mw > 0.0) {
        row.ipc_per_watt = row.mean_ipc / (row.mean_total_mw / 1000.0);
      }
    }
    report.rows.push_back(std::move(row));
  }

  // Rank best-first; stable sort keeps grid order as the deterministic
  // tie-break.
  std::stable_sort(report.rows.begin(), report.rows.end(),
                   [&spec](const SweepRow& a, const SweepRow& b) {
                     return row_score(a, spec.metric) >
                            row_score(b, spec.metric);
                   });
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    report.rows[i].rank = i + 1;
  }
  if (spec.top > 0 && report.rows.size() > spec.top) {
    report.rows.resize(spec.top);
  }
  return report;
}

void write_sweep_report(std::ostream& out, const SweepReport& report) {
  for (const SweepRow& row : report.rows) {
    // Stream-flavoured fault: latches badbit like a full disk, caught by
    // the caller's flush_and_check — a torn report must exit non-zero.
    AUTOPOWER_FAULT_STREAM("serve.report.write_row", out);
    out << "{\"rank\":" << row.rank << ",\"config\":\""
        << json_escape(row.config.name()) << "\",\"params\":{";
    bool first = true;
    for (arch::HwParam p : arch::all_hw_params()) {
      if (!first) out << ',';
      first = false;
      out << '"' << arch::hw_param_name(p) << "\":" << row.config.value(p);
    }
    out << "},\"mean_total_mw\":" << json_number(row.mean_total_mw)
        << ",\"mean_ipc\":" << json_number(row.mean_ipc)
        << ",\"ipc_per_watt\":" << json_number(row.ipc_per_watt)
        << ",\"cells\":[";
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      const SweepCell& cell = row.cells[i];
      if (i > 0) out << ',';
      out << "{\"workload\":\"" << json_escape(cell.workload)
          << "\",\"ok\":" << (cell.ok ? "true" : "false");
      if (cell.ok) {
        out << ",\"total_mw\":" << json_number(cell.total_mw)
            << ",\"ipc\":" << json_number(cell.ipc);
      } else {
        out << ",\"error\":\"" << json_escape(cell.error) << '"';
      }
      out << '}';
    }
    out << "]}\n";
  }
}

}  // namespace autopower::serve
