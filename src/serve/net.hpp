// Minimal POSIX TCP plumbing for the serving daemon: a loopback
// listener, an RAII socket, a buffered line reader, and a full-write
// line writer.  No framing beyond newline-delimited lines (the daemon
// speaks the same JSONL the `batch` subcommand reads/writes), no TLS, no
// non-loopback binds — this is the transport under `serve::Daemon`, not
// a general networking library.
//
// Failure model: every operation that can fail at the OS level throws
// NetError (a util::Error, so the CLI's catch/exit-1 path applies), and
// every fallible seam carries a named fault site for the PR-5 chaos
// layer:
//
//   serve.net.accept   accept(2) failing transiently (EMFILE, aborted
//                      handshake) — the daemon must keep accepting
//   serve.net.read     recv(2) dying mid-line (reset, injected short
//                      read) — that connection must close cleanly
//   serve.net.write    send(2) dying mid-response (closed peer,
//                      injected short write) — the daemon must tear
//                      down only the affected connection
//
// Genuine short reads/writes (partial transfers, EINTR) are handled by
// looping; the fault sites simulate the *unrecoverable* flavour.
// Writes use MSG_NOSIGNAL so a dead peer surfaces as NetError, never
// SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace autopower::serve::net {

/// Thrown on any socket-level failure (bind, accept, read, write).
class NetError : public util::Error {
 public:
  using util::Error::Error;
};

/// RAII file-descriptor owner for one TCP connection end.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Half-close helpers; safe on an already-closed socket.
  void shutdown_read() noexcept;
  void shutdown_write() noexcept;
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1.  `port == 0` binds an
/// ephemeral port (tests); `port()` reports the actual bound port.
class Listener {
 public:
  explicit Listener(std::uint16_t port, int backlog = 64);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool open() const noexcept { return sock_.valid(); }

  /// Blocks until a client connects or `wake_fd` becomes readable
  /// (the daemon's stop pipe).  Returns an invalid Socket when woken —
  /// the caller's signal to stop accepting.  Throws NetError on an
  /// accept failure (including the serve.net.accept fault site); the
  /// pending connection, if any, stays in the backlog for a retry.
  [[nodiscard]] Socket accept(int wake_fd);

  /// Closes the listening socket (new connects are refused).
  void close() noexcept;

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Buffered newline-delimited reader over a connected socket.
class LineReader {
 public:
  /// Lines longer than `max_line` bytes are a protocol error (throws
  /// NetError) — an unframed peer must not grow the buffer unboundedly.
  explicit LineReader(int fd, std::size_t max_line = 1u << 20)
      : fd_(fd), max_line_(max_line) {}

  /// Reads the next '\n'-terminated line into `line` (terminator and a
  /// trailing '\r' stripped).  Returns false on clean EOF; a final
  /// unterminated line before EOF is returned as a line.  Throws
  /// NetError on a read failure (including the serve.net.read fault
  /// site).
  [[nodiscard]] bool next_line(std::string& line);

 private:
  int fd_;
  std::size_t max_line_;
  std::string buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix of buffer_
  bool eof_ = false;
};

/// Writes `line` plus '\n', looping over partial sends.  Throws NetError
/// when the peer is gone or the serve.net.write fault site fires.
void write_line(int fd, std::string_view line);

/// Client-side helper (tests, benches, in-process smoke drivers):
/// connects to 127.0.0.1:`port`.  Throws NetError on failure.
[[nodiscard]] Socket connect_loopback(std::uint16_t port);

}  // namespace autopower::serve::net
