#include "exp/harness.hpp"

#include "baselines/autopower_minus.hpp"
#include "baselines/mcpat_calib.hpp"
#include "core/autopower.hpp"

namespace autopower::exp {

MethodResult evaluate_predictor(
    const ExperimentData& data, std::span<const std::string> train_configs,
    const std::string& name,
    const std::function<double(const core::EvalContext&)>& predictor) {
  MethodResult result;
  result.method = name;
  for (const LabeledSample* s : data.samples_excluding(train_configs)) {
    result.actual.push_back(s->golden.total());
    result.predicted.push_back(predictor(s->ctx));
    result.sample_names.push_back(s->ctx.cfg->name() + "/" +
                                  s->ctx.workload);
  }
  result.accuracy = compute_accuracy(result.actual, result.predicted);
  return result;
}

std::vector<MethodResult> compare_methods(const ExperimentData& data,
                                          const power::GoldenPowerModel& golden,
                                          int k_train,
                                          const MethodSelection& selection) {
  const auto train_configs = ExperimentData::training_configs(k_train);
  const auto train_ctx = data.contexts_of(train_configs);

  std::vector<MethodResult> out;
  if (selection.autopower) {
    core::AutoPowerModel model;
    model.train(train_ctx, golden);
    out.push_back(evaluate_predictor(
        data, train_configs, "AutoPower",
        [&](const core::EvalContext& c) { return model.predict_total(c); }));
  }
  if (selection.mcpat_calib) {
    baselines::McPatCalib model;
    model.train(train_ctx, golden);
    out.push_back(evaluate_predictor(
        data, train_configs, "McPAT-Calib",
        [&](const core::EvalContext& c) { return model.predict_total(c); }));
  }
  if (selection.mcpat_calib_component) {
    baselines::McPatCalibComponent model;
    model.train(train_ctx, golden);
    out.push_back(evaluate_predictor(
        data, train_configs, "McPAT-Calib+Comp",
        [&](const core::EvalContext& c) { return model.predict_total(c); }));
  }
  if (selection.autopower_minus) {
    baselines::AutoPowerMinus model;
    model.train(train_ctx, golden);
    out.push_back(evaluate_predictor(
        data, train_configs, "AutoPower-",
        [&](const core::EvalContext& c) { return model.predict_total(c); }));
  }
  return out;
}

}  // namespace autopower::exp
