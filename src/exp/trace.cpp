#include "exp/trace.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace autopower::exp {

TraceData build_trace(const sim::PerfSimulator& sim,
                      const power::GoldenPowerModel& golden,
                      const arch::HardwareConfig& cfg,
                      const workload::WorkloadProfile& profile) {
  TraceData out;
  out.window_cycles = sim.options().window_cycles;
  const auto windows = sim.simulate_trace(cfg, profile);
  const auto program = workload::program_features(profile);
  out.windows.reserve(windows.size());
  out.golden_total.reserve(windows.size());
  for (const auto& ev : windows) {
    core::EvalContext ctx;
    ctx.cfg = &cfg;
    ctx.workload = profile.name;
    ctx.program = program;
    ctx.events = ev;
    out.golden_total.push_back(golden.evaluate(cfg, ev).total());
    out.total_cycles += ev.cycles();
    out.windows.push_back(std::move(ctx));
  }
  return out;
}

TraceErrors trace_errors(std::span<const double> golden,
                         std::span<const double> predicted) {
  AP_REQUIRE(golden.size() == predicted.size() && !golden.empty(),
             "trace error inputs must be equal-sized and non-empty");
  const auto [gmin_it, gmax_it] =
      std::minmax_element(golden.begin(), golden.end());
  const auto [pmin_it, pmax_it] =
      std::minmax_element(predicted.begin(), predicted.end());

  TraceErrors out;
  out.max_power_error = 100.0 * std::abs(*pmax_it - *gmax_it) /
                        std::max(*gmax_it, 1e-9);
  out.min_power_error = 100.0 * std::abs(*pmin_it - *gmin_it) /
                        std::max(*gmin_it, 1e-9);
  double acc = 0.0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    acc += std::abs(predicted[i] - golden[i]) / std::max(golden[i], 1e-9);
  }
  out.average_error = 100.0 * acc / static_cast<double>(golden.size());
  return out;
}

}  // namespace autopower::exp
